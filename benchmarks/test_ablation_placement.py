"""Ablation: trading placement vs greedy-only (Sec 2.4).

With a single program the greedy pass is already optimal (all VCs share
one core), so the interesting case is a multiprogrammed mix where cores
compete for central banks: trading reduces total data movement.
"""

import zlib

from _suite import CFG4
from conftest import once

from repro.analysis import format_table
from repro.core.whirlpool import WhirlpoolScheme
from repro.core.whirltool import train_whirltool
from repro.sim import simulate_mix
from repro.workloads import build_workload

MIX = ["sphinx3", "omnet", "astar", "soplex"]


def test_ablation_placement(benchmark, report):
    def run():
        apps = [
            build_workload(n, scale="train", seed=zlib.crc32(n.encode()) % 97)
            for n in MIX
        ]
        classifiers = [train_whirltool(n, n_pools=3) for n in MIX]
        trading = simulate_mix(
            apps,
            CFG4,
            lambda c, v: WhirlpoolScheme(c, v),
            classifiers=classifiers,
            n_intervals=8,
        )
        greedy = simulate_mix(
            apps,
            CFG4,
            lambda c, v: WhirlpoolScheme(c, v, trading=False),
            classifiers=classifiers,
            n_intervals=8,
        )
        return trading, greedy

    trading, greedy = once(benchmark, run)
    rows = []
    for app, rt, rg in zip(MIX, trading.per_app, greedy.per_app):
        rows.append(
            [
                app,
                round(rt.ipc, 4),
                round(rg.ipc, 4),
                round(rt.energy.network, 1),
                round(rg.energy.network, 1),
            ]
        )
    report(
        "ablation_placement",
        format_table(
            [
                "app",
                "IPC (trading)",
                "IPC (greedy)",
                "net nJ (trading)",
                "net nJ (greedy)",
            ],
            rows,
        ),
    )
    # Trading never loses throughput or network energy overall.
    assert sum(trading.ipcs()) >= sum(greedy.ipcs()) * 0.999
    assert trading.energy.network <= greedy.energy.network * 1.001
