"""Profiling-engine micro-benchmark: vectorized vs Fenwick reference.

Records old-vs-new wall time for the stack-distance engine so the
speedup stays visible in the bench trajectory, and gates CI: the
vectorized path must never be slower than the per-access Fenwick
reference.  Timings are printed rather than persisted — wall-clock
numbers are machine-dependent and would churn ``benchmarks/results/``.
"""

import time

import numpy as np

from repro.curves import (
    StackDistanceProfiler,
    miss_curve_from_distances,
    stack_distances,
    stack_distances_reference,
)
from repro.curves.miss_curve import MissCurve


def _trace(n, working_set=65536, seed=7):
    """A dense-reuse LLC line stream with realistic 48-bit addresses."""
    rng = np.random.default_rng(seed)
    return (rng.integers(0, working_set, size=n) * 64 + 0x7F0000000000) >> 6


def _best_of(fn, repeats=3):
    best, result = float("inf"), None
    for __ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _profile_reference(prof, lines, regions, instructions, n_intervals):
    """The pre-vectorization profiler: per-region re-slicing + Fenwick."""
    n = len(lines)
    scale = float(1 << prof.sample_shift)
    instr_per_interval = instructions / n_intervals
    bounds = np.linspace(0, n, n_intervals + 1).astype(np.int64)
    out = {}
    for rid in np.unique(regions).tolist():
        idx = np.nonzero(regions == rid)[0]
        r_lines = lines[idx]
        keep = prof._sample_mask(r_lines)
        kept_idx = idx[keep]
        dist = stack_distances_reference(r_lines[keep])
        curves = []
        for t in range(n_intervals):
            lo, hi = bounds[t], bounds[t + 1]
            window = (kept_idx >= lo) & (kept_idx < hi)
            n_acc = int(np.count_nonzero((idx >= lo) & (idx < hi)))
            curve = miss_curve_from_distances(
                dist[window],
                chunk_bytes=prof.chunk_bytes,
                n_chunks=prof.n_chunks,
                instructions=instr_per_interval,
                line_bytes=prof.line_bytes,
                scale=scale,
                distance_scale=scale,
            )
            if curve.accesses > 0:
                ratio = n_acc / curve.accesses
                curve = MissCurve(
                    misses=curve.misses * ratio,
                    chunk_bytes=curve.chunk_bytes,
                    accesses=float(n_acc),
                    instructions=curve.instructions,
                )
            else:
                curve = MissCurve(
                    misses=np.full(prof.n_chunks + 1, float(n_acc)),
                    chunk_bytes=prof.chunk_bytes,
                    accesses=float(n_acc),
                    instructions=instr_per_interval,
                )
            curves.append(curve)
        out[int(rid)] = curves
    return out


class TestPerfProfiling:
    def test_perf_smoke_200k(self):
        """CI gate: vectorized must beat the reference on 200k accesses."""
        lines = _trace(200_000)
        t_vec, got = _best_of(lambda: stack_distances(lines))
        t_ref, want = _best_of(lambda: stack_distances_reference(lines))
        assert np.array_equal(got, want)
        print(
            f"\n[perf] stack_distances 200k: vectorized {t_vec:.3f}s, "
            f"reference {t_ref:.3f}s, speedup {t_ref / t_vec:.1f}x"
        )
        assert t_vec < t_ref, (
            f"vectorized engine slower than reference: {t_vec:.3f}s "
            f">= {t_ref:.3f}s"
        )

    def test_perf_1m_speedup(self):
        """Headline number: 1M-access trace, targeting >= 10x.

        The hard assertion is a conservative 5x so shared/slow CI boxes
        don't flake; the measured speedup (~10x on a dedicated core) is
        printed for the bench log.
        """
        lines = _trace(1_000_000)
        t_vec, got = _best_of(lambda: stack_distances(lines))
        # best-of on both sides keeps the comparison symmetric; two
        # reference repeats bound the suite's wall time (it's ~4 s/run).
        t_ref, want = _best_of(
            lambda: stack_distances_reference(lines), repeats=2
        )
        assert np.array_equal(got, want)
        speedup = t_ref / t_vec
        print(
            f"\n[perf] stack_distances 1M: vectorized {t_vec:.3f}s, "
            f"reference {t_ref:.3f}s, speedup {speedup:.1f}x"
        )
        assert speedup >= 5.0, f"speedup regressed to {speedup:.1f}x"

    def test_perf_profiler_single_pass(self):
        """End-to-end profiler: one-pass engine vs per-region Fenwick."""
        n = 400_000
        lines = _trace(n)
        rng = np.random.default_rng(3)
        regions = rng.integers(0, 8, size=n).astype(np.int32)
        prof = StackDistanceProfiler(chunk_bytes=64 * 1024, n_chunks=64)
        t_vec, got = _best_of(
            lambda: prof.profile(lines, regions, 1e7, n_intervals=8)
        )
        t_ref, want = _best_of(
            lambda: _profile_reference(prof, lines, regions, 1e7, n_intervals=8),
            repeats=2,
        )
        assert sorted(got) == sorted(want)
        for rid in got:
            for c_got, c_want in zip(got[rid], want[rid]):
                assert np.array_equal(c_got.misses, c_want.misses)
        print(
            f"\n[perf] profile 400k x 8 regions x 8 intervals: "
            f"single-pass {t_vec:.3f}s, per-region reference {t_ref:.3f}s, "
            f"speedup {t_ref / t_vec:.1f}x"
        )
        assert t_vec < t_ref
