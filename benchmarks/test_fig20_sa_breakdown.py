"""Fig 20: SA under the six schemes.

SA contrasts with cactus: rather than using fewer banks, Whirlpool uses
*more* banks to retain more of the working set and cut memory accesses
(paper: -15% energy, +7.3% performance, higher network energy share).
"""

from _suite import app_results
from conftest import once
from test_fig10_mis_breakdown import scheme_table


def test_fig20_sa_breakdown(benchmark, report):
    results = once(benchmark, lambda: app_results("SA").schemes)
    report("fig20_sa_breakdown", scheme_table(results))
    jig = results["Jigsaw"]
    whirl = results["Whirlpool"]
    assert whirl.cycles <= jig.cycles * 1.01
    # Whirlpool trades misses for capacity: memory energy never rises
    # above Jigsaw's.
    assert whirl.energy.memory <= jig.energy.memory * 1.02
