"""Ablation: latency-curve vs miss-curve partitioning (Sec 2.4).

Jigsaw partitions on end-to-end latency curves instead of miss-rate
curves so it stops claiming banks whose miss benefit doesn't pay for
their network distance (dt's unused banks in Fig 4).

The comparison runs steady-state (one reconfiguration with oracle
monitors): with periodic reconfiguration both variants also differ in
how they ride phase changes, which confounds the sizing objective this
ablation isolates.
"""

from _suite import CFG4
from conftest import once

from repro.analysis import format_table, gmean
from repro.schemes import JigsawScheme
from repro.sim import simulate
from repro.workloads import build_workload

APPS = ["delaunay", "bzip2", "sphinx3", "SA", "omnet", "dict"]


def test_ablation_latency_vs_miss(benchmark, report):
    def run():
        out = {}
        for app in APPS:
            w = build_workload(app, scale="ref", seed=0)
            lat = simulate(w, CFG4, JigsawScheme, n_intervals=1)
            ucp = simulate(
                w,
                CFG4,
                lambda c, v: JigsawScheme(c, v, latency_aware=False),
                n_intervals=1,
            )
            out[app] = (
                lat.cycles,
                ucp.cycles,
                lat.history[0].vc_sizes.get(0, 0.0),
                ucp.history[0].vc_sizes.get(0, 0.0),
            )
        return out

    data = once(benchmark, run)
    rows = []
    ratios = []
    for app, (tl, tu, sl, su) in data.items():
        ratios.append(tu / tl)
        rows.append(
            [
                app,
                f"{100 * (tu / tl - 1):+.2f}%",
                round(sl / 2**20, 2),
                round(su / 2**20, 2),
            ]
        )
    report(
        "ablation_latency_vs_miss",
        format_table(
            [
                "app",
                "miss-curve partitioning slowdown",
                "latency-aware size (MB)",
                "miss-curve size (MB)",
            ],
            rows,
        ),
    )
    # Latency-aware partitioning never loses at steady state, and the
    # miss-curve variant systematically claims at least as much capacity
    # (it sees no cost in far-away banks).
    assert gmean(ratios) >= 1.0 - 1e-9
    assert all(su >= sl - 1e-6 for (__, ___, sl, su) in data.values())
