"""Engine supervision micro-benchmark: bookkeeping must stay cheap.

Same contract as the other perf smokes: a CI gate with a conservative
floor so slow runners don't flake, plus timings written as JSON
(``benchmarks/perf_engine_timings.json``, gitignored) for the CI
artifact upload.  The gate guards the tentpole's overhead claim: the
supervision layer (retry accounting, deadline scans, quarantine
checks) adds per-job bookkeeping measured in microseconds, so grids of
trivial jobs are engine-bound, not supervisor-bound — and a supervised
run is not meaningfully slower than the legacy single-attempt path.
"""

import time
from pathlib import Path

from repro.exp.engine import run_jobs
from repro.exp.store import MemoryStore
from repro.obs.timings import infer_unit, record_timings
from repro.retry import RetryPolicy

#: Trivial jobs per measured run — enough to amortize setup noise.
N_JOBS = 20_000

#: CI floor: supervised per-job overhead must stay under 100 µs (it
#: measures ~5-10 µs on a dedicated core; 100 µs only catches an
#: accidental O(n) scan or syscall sneaking into the per-job path).
MAX_US_PER_JOB = 100.0

#: CI floor: supervision may cost at most 3x the legacy path on
#: trivial jobs (measured ~1.1x; real jobs dwarf both).
MAX_SUPERVISED_RATIO = 3.0

TIMINGS_PATH = Path(__file__).parent / "perf_engine_timings.json"


class _Keyed:
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def key(self) -> str:
        return self.name


def _noop(job):
    return 0


#: The CI gate each recorded entry is checked against.
_GATES = {
    "supervision_overhead": (
        f"us_per_job < {MAX_US_PER_JOB}us and "
        f"supervised_ratio < {MAX_SUPERVISED_RATIO}x"
    ),
    "retry_delay": "us_per_delay < 20us",
}


def _record_timings(name, **fields):
    record_timings(
        TIMINGS_PATH,
        name,
        {k: (v, infer_unit(k)) for k, v in fields.items()},
        gate=_GATES.get(name),
    )


class TestPerfEngine:
    def test_perf_smoke_supervision_overhead(self):
        """CI gate: supervised bookkeeping stays microseconds per job."""
        jobs = [_Keyed(f"j{i}") for i in range(N_JOBS)]

        t0 = time.perf_counter()
        report = run_jobs(jobs, _noop, store=MemoryStore())
        legacy_s = time.perf_counter() - t0
        assert report.executed == N_JOBS

        policy = RetryPolicy(max_attempts=4, base_delay=0.01)
        t0 = time.perf_counter()
        report = run_jobs(
            jobs, _noop, store=MemoryStore(), retry=policy
        )
        supervised_s = time.perf_counter() - t0
        assert report.executed == N_JOBS and report.retried == 0

        us_per_job = supervised_s / N_JOBS * 1e6
        ratio = supervised_s / legacy_s
        _record_timings(
            "supervision_overhead",
            legacy_s=legacy_s,
            supervised_s=supervised_s,
            us_per_job=us_per_job,
            supervised_ratio=ratio,
        )
        print(
            f"\nengine supervision: {us_per_job:.1f} us/job supervised "
            f"({ratio:.2f}x legacy)"
        )
        assert us_per_job < MAX_US_PER_JOB, (
            f"supervised bookkeeping {us_per_job:.1f} us/job exceeds "
            f"{MAX_US_PER_JOB} us"
        )
        assert ratio < MAX_SUPERVISED_RATIO, (
            f"supervision costs {ratio:.2f}x legacy (floor "
            f"{MAX_SUPERVISED_RATIO}x)"
        )

    def test_perf_smoke_retry_delay_computation(self):
        """CI gate: the seeded backoff math is not a per-retry hotspot."""
        policy = RetryPolicy(max_attempts=4, base_delay=0.05, seed=7)
        n = 100_000
        t0 = time.perf_counter()
        total = 0.0
        for i in range(n):
            total += policy.delay(f"key-{i & 1023}", 1 + (i % 3))
        elapsed = time.perf_counter() - t0
        us_per_delay = elapsed / n * 1e6
        _record_timings(
            "retry_delay", total_s=elapsed, us_per_delay=us_per_delay
        )
        print(f"\nretry delay: {us_per_delay:.2f} us/call")
        assert total > 0
        # blake2b over a short string measures ~1 us; 20 us catches an
        # accidental re-parse or allocation storm in the jitter path.
        assert us_per_delay < 20.0
