"""Table 3: configuration of the simulated CMPs."""

from conftest import once

from repro.analysis import format_table
from repro.nuca import four_core_config, sixteen_core_config


def test_table3_config(benchmark, report):
    def run():
        return four_core_config(), sixteen_core_config()

    cfg4, cfg16 = once(benchmark, run)
    sections = []
    for cfg in (cfg4, cfg16):
        rows = [[k, v] for k, v in cfg.describe().items()]
        sections.append(f"--- {cfg.name} ---\n" + format_table(["", ""], rows))
    report("table3_config", "\n\n".join(sections))

    # Table 3 invariants.
    assert cfg4.geometry.dim == 5 and cfg4.n_cores == 4
    assert cfg16.geometry.dim == 9 and cfg16.n_cores == 16
    assert cfg4.geometry.bank_bytes == 512 * 1024
    assert cfg4.latency.bank_latency == 9
    assert cfg4.latency.mem_latency == 120
    assert cfg4.line_bytes == 64
    assert len(cfg4.geometry.mcu_entries) == 1
    assert len(cfg16.geometry.mcu_entries) == 4
    # Per-core LLC shares: ~3.1 and ~2.5 MB/core.
    assert abs(cfg4.llc_bytes / cfg4.n_cores / 2**20 - 3.125) < 0.01
    assert abs(cfg16.llc_bytes / cfg16.n_cores / 2**20 - 2.53) < 0.05
