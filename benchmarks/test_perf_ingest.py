"""Ingest micro-benchmark: packed-binary streaming throughput.

Same contract as the other perf smokes: a CI gate with a conservative
floor so slow runners don't flake, plus timings written as JSON
(``benchmarks/perf_ingest_timings.json``, gitignored) for the CI
artifact upload.  The gate is on the ``mtrace`` packed-binary reader —
the format external captures arrive in at scale — measured end to end
through :class:`TraceSource` chunking.  A second smoke times the full
out-of-core pipeline (read + attribute + streaming profile) and checks
it against the in-memory engine for exactness, not just speed.
"""

import time
from pathlib import Path

import numpy as np

from repro.curves.reuse import StackDistanceProfiler
from repro.ingest import (
    ArraySource,
    MTraceSource,
    StreamingStackProfiler,
    write_trace_file,
)
from repro.ingest.formats import MTRACE_RECORD
from repro.obs.timings import infer_unit, record_timings

#: Records in the throughput instance (x16 bytes = 32 MiB of records).
N_RECORDS = 2_000_000

#: CI floor, in MB/s of record bytes streamed.  np.fromfile-based
#: chunking measures in the GB/s range on a dedicated core; 50 MB/s
#: only catches an accidental fall off the vectorized path.
FLOOR_MB_S = 50.0

TIMINGS_PATH = Path(__file__).parent / "perf_ingest_timings.json"


#: The CI gate each recorded entry is checked against.
_GATES = {
    "mtrace_stream_2M": f"mb_per_s >= {FLOOR_MB_S}MB/s",
    "stream_profile_400k": "ratio <= 6.0x",
}


def _record_timings(name, **fields):
    record_timings(
        TIMINGS_PATH,
        name,
        {k: (v, infer_unit(k)) for k, v in fields.items()},
        gate=_GATES.get(name),
    )


def _write_instance(path, n=N_RECORDS, seed=17):
    rng = np.random.default_rng(seed)
    # Mixed locality: hot working set + streaming sweep, like a real app.
    hot = rng.integers(0, 1 << 22, n // 2)
    sweep = (np.arange(n - n // 2, dtype=np.int64) * 64) % (1 << 28)
    addrs = np.concatenate([hot, sweep])
    rng.shuffle(addrs)
    write_trace_file(
        path, ArraySource(addrs=addrs, instructions=float(n) * 3), "mtrace"
    )
    return addrs


class TestPerfIngest:
    def test_perf_smoke_mtrace_throughput(self, tmp_path):
        """CI gate: packed-binary streaming >= FLOOR_MB_S."""
        path = tmp_path / "perf.mtrace"
        _write_instance(path)
        body_mb = N_RECORDS * MTRACE_RECORD.itemsize / 1e6
        best = float("inf")
        for __ in range(3):
            source = MTraceSource(path)
            t0 = time.perf_counter()
            n = 0
            for chunk in source.chunks(1 << 20):
                n += len(chunk)
            best = min(best, time.perf_counter() - t0)
        assert n == N_RECORDS
        rate = body_mb / best
        _record_timings(
            "mtrace_stream_2M", seconds=best, mb=body_mb, mb_per_s=rate
        )
        print(
            f"\n[perf] ingest mtrace 2M records: {best*1e3:.1f} ms, "
            f"{rate:.0f} MB/s"
        )
        assert rate >= FLOOR_MB_S, (
            f"packed-binary streaming regressed to {rate:.1f} MB/s "
            f"(floor {FLOOR_MB_S} MB/s)"
        )

    def test_perf_smoke_streaming_profile_exact(self, tmp_path):
        """Out-of-core profile of a 400k-record capture: timed + exact."""
        n = 400_000
        rng = np.random.default_rng(23)
        lines = rng.integers(0, 1 << 16, n).astype(np.int64)
        regions = rng.integers(0, 8, n).astype(np.int32)
        instructions = float(n) * 4
        source = ArraySource(
            addrs=lines * 64, regions=regions, instructions=instructions
        )

        t0 = time.perf_counter()
        got = StreamingStackProfiler(
            chunk_bytes=64 * 1024, n_chunks=64
        ).profile_source(source, n_intervals=4, chunk_records=1 << 16)
        t_stream = time.perf_counter() - t0

        t0 = time.perf_counter()
        want = StackDistanceProfiler(
            chunk_bytes=64 * 1024, n_chunks=64
        ).profile(lines, regions, instructions, n_intervals=4)
        t_mem = time.perf_counter() - t0

        for rid in want:
            for cg, cw in zip(got[rid], want[rid]):
                assert np.array_equal(cg.misses, cw.misses)
                assert cg.accesses == cw.accesses
        _record_timings(
            "stream_profile_400k",
            streaming_s=t_stream,
            in_memory_s=t_mem,
            ratio=t_stream / t_mem,
        )
        print(
            f"\n[perf] streaming profile 400k: {t_stream*1e3:.0f} ms "
            f"(in-memory {t_mem*1e3:.0f} ms, {t_stream/t_mem:.2f}x) — exact"
        )
        # Out-of-core bookkeeping costs something; 6x is the alarm line.
        assert t_stream <= 6.0 * t_mem, (
            f"streaming profiler fell to {t_stream/t_mem:.1f}x in-memory time"
        )
