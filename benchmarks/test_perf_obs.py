"""Observability overhead micro-benchmark: disabled must mean free.

The ``repro.obs`` layer is instrumented into the engine's per-job path,
the store's per-load path, and the ingest per-chunk path — so when it
is disabled (the default), every helper must be a true no-op: one
module-global ``None`` check and a return.  This smoke gates the
disabled per-call cost at ``MAX_DISABLED_US`` (it measures a few tens
of nanoseconds on a dedicated core; 1 µs catches an accidental
allocation, string format, or clock read sneaking into the dark path).

An informational (ungated) entry also records the enabled-path cost
against an in-memory sink, so a regression there is visible in the CI
artifact without flaking slow runners.

Timings land in ``benchmarks/perf_obs_timings.json`` (gitignored) for
the CI artifact upload, same contract as the other perf smokes.
"""

import time
from pathlib import Path

from repro import obs
from repro.obs import MemorySink
from repro.obs.timings import infer_unit, record_timings

#: Calls per measured loop — enough to amortize loop and clock noise.
N_CALLS = 200_000

#: CI gate: per-call cost of each disabled helper (µs).
MAX_DISABLED_US = 1.0

TIMINGS_PATH = Path(__file__).parent / "perf_obs_timings.json"


_GATES = {
    "disabled_noop": f"each metric < {MAX_DISABLED_US}us",
    "enabled_memory_sink": None,  # informational only
}


def _record_timings(name, **fields):
    record_timings(
        TIMINGS_PATH,
        name,
        {k: (v, infer_unit(k)) for k, v in fields.items()},
        gate=_GATES.get(name),
    )


def _per_call_us(fn, n=N_CALLS):
    best = float("inf")
    for __ in range(3):
        t0 = time.perf_counter()
        for __ in range(n):
            fn()
        best = min(best, time.perf_counter() - t0)
    return best / n * 1e6


class TestPerfObs:
    def test_perf_smoke_disabled_path_is_noop(self):
        """CI gate: every disabled helper stays under MAX_DISABLED_US."""
        obs.disable()
        assert not obs.enabled()

        def spanned():
            with obs.span("x", key="k"):
                pass

        costs = {
            "counter_us": _per_call_us(lambda: obs.counter("c")),
            "event_us": _per_call_us(lambda: obs.event("e", key="k")),
            "histogram_us": _per_call_us(lambda: obs.histogram("h", 1.0)),
            "span_us": _per_call_us(spanned),
            "enabled_check_us": _per_call_us(obs.enabled),
        }
        _record_timings("disabled_noop", **costs)
        print(
            "\n[perf] obs disabled path: "
            + ", ".join(f"{k[:-3]} {v:.3f} us" for k, v in costs.items())
        )
        for name, us in costs.items():
            assert us < MAX_DISABLED_US, (
                f"disabled obs.{name[:-3]} costs {us:.3f} us/call "
                f"(gate {MAX_DISABLED_US} us) — the dark path must stay "
                "a bare None check"
            )

    def test_perf_smoke_enabled_memory_sink(self):
        """Informational: enabled-path cost against a MemorySink."""
        sink = MemorySink()
        obs.enable(sinks=[sink])
        try:
            counter_us = _per_call_us(
                lambda: obs.counter("c"), n=N_CALLS // 10
            )

            def spanned():
                with obs.span("x", key="k"):
                    pass

            span_us = _per_call_us(spanned, n=N_CALLS // 10)
        finally:
            obs.disable()
        assert sink.events  # the sink really was live
        _record_timings(
            "enabled_memory_sink", counter_us=counter_us, span_us=span_us
        )
        print(
            f"\n[perf] obs enabled (memory sink): counter {counter_us:.2f} "
            f"us, span {span_us:.2f} us"
        )
