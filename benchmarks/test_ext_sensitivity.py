"""Extension: configuration-sensitivity sweeps.

Does Whirlpool's advantage over Jigsaw survive changes to the machine?
Sweeps memory latency and bank count (capacity) on mis and checks the
gain persists everywhere — the robustness question any adopter asks
first.
"""

from _suite import CFG4
from conftest import once

from repro.analysis import format_table
from repro.core.whirlpool import WhirlpoolScheme
from repro.schemes import JigsawScheme, ManualPoolClassifier
from repro.sim.sweep import sweep
from repro.workloads import build_workload

MEM_LATENCIES = [60, 120, 240]
BANK_KBS = [256, 512, 1024]


def test_ext_sensitivity(benchmark, report):
    def run():
        w = build_workload("MIS", scale="ref", seed=0)
        factories = {
            "Jigsaw": JigsawScheme,
            "Whirlpool": lambda c, v: WhirlpoolScheme(c, v),
        }
        classifiers = {"Whirlpool": ManualPoolClassifier()}
        by_mem = sweep(
            w, CFG4, "mem_latency", MEM_LATENCIES, factories, classifiers
        )
        by_bank = sweep(
            w, CFG4, "bank_kb", BANK_KBS, factories, classifiers
        )
        return by_mem, by_bank

    by_mem, by_bank = once(benchmark, run)
    sections = []
    for label, result in [("mem_latency (cycles)", by_mem), ("bank_kb", by_bank)]:
        gains = result.relative_series("Jigsaw", "Whirlpool")
        rows = [
            [p, f"{100 * (g - 1):+.1f}%"]
            for p, g in zip(result.points, gains)
        ]
        sections.append(
            f"--- sweep: {label} ---\n"
            + format_table([label, "Whirlpool gain over Jigsaw"], rows)
        )
    report("ext_sensitivity", "\n\n".join(sections))

    # Whirlpool's advantage persists at every sweep point.
    for result in (by_mem, by_bank):
        for gain in result.relative_series("Jigsaw", "Whirlpool"):
            assert gain > 1.0
    # mis's gain is an *on-chip* data-movement gain (bypassing skips the
    # bank/NoC round trip), so it is largest when memory latency is low
    # and shrinks as DRAM dominates both schemes equally.
    mem_gains = by_mem.relative_series("Jigsaw", "Whirlpool")
    assert mem_gains[0] >= mem_gains[-1]
