"""Extension: stream prefetchers (Appendix A).

"Additionally, we evaluated systems with stream prefetchers: Whirlpool's
performance relative to other schemes is unchanged.  We do not include
prefetchers because they add undesirable data movement energy."

The bench filters traces through the stream-prefetcher model, re-runs
Jigsaw and Whirlpool, and checks (a) the relative ordering is preserved
and (b) prefetch traffic adds data-movement energy.
"""

from _suite import CFG4
from conftest import once

from repro.analysis import format_table
from repro.core.whirlpool import WhirlpoolScheme
from repro.schemes import JigsawScheme, ManualPoolClassifier
from repro.sim import simulate
from repro.sim.prefetch import apply_stream_prefetcher, prefetch_energy
from repro.workloads import Workload, build_workload

APPS = ["MIS", "cactus", "mcf"]


def test_ext_prefetcher(benchmark, report):
    def run():
        out = {}
        for app in APPS:
            w = build_workload(app, scale="ref", seed=0)
            pf = apply_stream_prefetcher(w.trace)
            w_pf = Workload(
                name=w.name,
                trace=pf.trace,
                heap=w.heap,
                manual_pools=w.manual_pools,
                table2_loc=w.table2_loc,
            )
            base = {
                "Jigsaw": simulate(w, CFG4, JigsawScheme),
                "Whirlpool": simulate(
                    w,
                    CFG4,
                    lambda c, v: WhirlpoolScheme(c, v),
                    classifier=ManualPoolClassifier(),
                ),
            }
            with_pf = {
                "Jigsaw": simulate(w_pf, CFG4, JigsawScheme),
                "Whirlpool": simulate(
                    w_pf,
                    CFG4,
                    lambda c, v: WhirlpoolScheme(c, v),
                    classifier=ManualPoolClassifier(),
                ),
            }
            extra = prefetch_energy(pf, CFG4)
            out[app] = (base, with_pf, pf, extra)
        return out

    data = once(benchmark, run)
    rows = []
    for app, (base, with_pf, pf, extra) in data.items():
        ratio_base = base["Jigsaw"].cycles / base["Whirlpool"].cycles
        ratio_pf = with_pf["Jigsaw"].cycles / with_pf["Whirlpool"].cycles
        energy_no = base["Whirlpool"].energy.total
        energy_pf = with_pf["Whirlpool"].energy.total + extra.total
        rows.append(
            [
                app,
                f"{pf.covered / (pf.covered + len(pf.trace)):.0%}",
                round(ratio_base, 3),
                round(ratio_pf, 3),
                round(energy_pf / energy_no, 3),
            ]
        )
    report(
        "ext_prefetcher",
        format_table(
            [
                "app",
                "coverage",
                "W gain (no pf)",
                "W gain (with pf)",
                "energy with pf (vs without)",
            ],
            rows,
        ),
    )
    for app, (base, with_pf, pf, extra) in data.items():
        # (a) Whirlpool still wins with prefetching.
        assert with_pf["Whirlpool"].cycles <= with_pf["Jigsaw"].cycles * 1.01, app
        # (b) Prefetch traffic costs energy: the system with a prefetcher
        # moves at least as much data as without.
        energy_no = base["Whirlpool"].energy.total
        energy_pf = with_pf["Whirlpool"].energy.total + extra.total
        assert energy_pf > 0.95 * energy_no, app
