"""Fig 21: overall single-threaded results across all 31 benchmarks.

Paper numbers: Whirlpool improves performance by 3.9% gmean over Jigsaw
and cuts data-movement energy 8%; S-NUCA/LRU costs 51% more energy and
15% performance vs Whirlpool; IdealSPD 54%/18%; Awasthi 40%/15%;
DRRIP 50%/14%.
"""

from _suite import app_results
from conftest import once

from repro.analysis import STANDARD_SCHEMES, format_table, gmean
from repro.workloads import ALL_APPS


def test_fig21_overall_single(benchmark, report):
    def run():
        per_app = {}
        for app in ALL_APPS:
            res = app_results(app)
            per_app[app] = res.schemes
        return per_app

    per_app = once(benchmark, run)
    # Gmean slowdown vs Whirlpool, energy vs Whirlpool, APKI breakdowns.
    rows = []
    summary = {}
    for scheme in STANDARD_SCHEMES:
        slowdowns = []
        energies = []
        hits = misses = byps = 0.0
        instr = 0.0
        for app in ALL_APPS:
            r = per_app[app][scheme]
            w = per_app[app]["Whirlpool"]
            slowdowns.append(r.cycles / w.cycles)
            energies.append(r.energy.total / w.energy.total)
            hits += r.hits
            misses += r.misses
            byps += r.bypasses
            instr += r.instructions
        k = 1000.0 / instr
        summary[scheme] = (gmean(slowdowns), gmean(energies))
        rows.append(
            [
                scheme,
                round(100 * (gmean(slowdowns) - 1), 1),
                round(gmean(energies), 3),
                round(hits * k, 1),
                round(misses * k, 1),
                round(byps * k, 1),
            ]
        )
    text = format_table(
        [
            "scheme",
            "gmean slowdown vs W (%)",
            "energy vs W",
            "hit APKI",
            "miss APKI",
            "byp APKI",
        ],
        rows,
    )
    report("fig21_overall_single", text)

    # Paper shapes (ordering, not absolute magnitudes):
    assert summary["Whirlpool"] == (1.0, 1.0)
    for other in ("LRU", "DRRIP", "IdealSPD", "Awasthi", "Jigsaw"):
        slow, energy = summary[other]
        assert slow >= 0.995, other  # Whirlpool fastest on average
        assert energy >= 0.98, other  # and most energy-efficient
    # The monolithic/S-NUCA baselines lose clearly; Jigsaw is closest.
    assert summary["LRU"][0] > summary["Jigsaw"][0]
    assert summary["LRU"][1] > 1.15
