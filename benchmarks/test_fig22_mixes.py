"""Fig 22: multiprogrammed mixes, 4 and 16 cores.

Weighted speedup of Whirlpool / Whirlpool-NoBypass / Jigsaw-NoBypass
over the Jigsaw baseline, sorted by improvement (inverse CDF).  Paper:
Whirlpool beats Jigsaw by up to 13% at 4 cores (5.1% gmean) and 6.4% at
16 cores (3.0% gmean); gains shrink with more cores.

Apps reuse a name-derived seed so the profile cache is shared across
mixes (the paper's fixed-work methodology reuses the same app snapshots
too).
"""

import zlib

import numpy as np
from _suite import grid_record, run_grid
from conftest import once

from repro.analysis import format_table, gmean
from repro.exp import Job
from repro.workloads.registry import SPEC_APPS

N_MIXES = 12
VARIANTS = ["Jigsaw", "Jigsaw-NoBypass", "Whirlpool", "Whirlpool-NoBypass"]


def app_seed(name: str) -> int:
    return zlib.crc32(name.encode()) % 1000


def mix_jobs(n_cores) -> dict[tuple[int, str], Job]:
    """The (mix × variant) job grid; apps reuse name-derived seeds so
    the profile cache is shared across mixes."""
    rng = np.random.default_rng(42)
    jobs = {}
    for mix in range(N_MIXES):
        names = [str(n) for n in rng.choice(SPEC_APPS, size=n_cores)]
        for variant in VARIANTS:
            jobs[(mix, variant)] = Job(
                app="+".join(names),
                scheme=variant,
                config="4core" if n_cores == 4 else "16core",
                scale="train",
                classifier="auto",
                n_intervals=8,
                kind="mix",
                mix_seeds=tuple(app_seed(n) for n in names),
            )
    return jobs


def run_mixes(n_cores):
    jobs = mix_jobs(n_cores)
    run_grid(list(jobs.values()))
    speedups = {"Whirlpool": [], "Whirlpool-NoBypass": [], "Jigsaw-NoBypass": []}
    for mix in range(N_MIXES):
        base = sum(grid_record(jobs[(mix, "Jigsaw")])["ipcs"])
        for name in speedups:
            speedups[name].append(
                sum(grid_record(jobs[(mix, name)])["ipcs"]) / base
            )
    for name in speedups:
        speedups[name] = sorted(speedups[name], reverse=True)
    return speedups


def test_fig22_mixes(benchmark, report):
    def run():
        return {"4-core": run_mixes(4), "16-core": run_mixes(16)}

    data = once(benchmark, run)
    sections = []
    for label, speedups in data.items():
        rows = [
            [i]
            + [round(speedups[k][i], 4) for k in sorted(speedups)]
            for i in range(N_MIXES)
        ]
        table = format_table(["mix (sorted)"] + sorted(speedups), rows)
        gm = {k: gmean(v) for k, v in speedups.items()}
        summary = "  ".join(f"{k}: {v:.4f}" for k, v in sorted(gm.items()))
        sections.append(f"--- {label} ---\n{table}\ngmean vs Jigsaw: {summary}")
    report("fig22_mixes", "\n\n".join(sections))

    gm4 = gmean(data["4-core"]["Whirlpool"])
    gm16 = gmean(data["16-core"]["Whirlpool"])
    # Whirlpool consistently improves over Jigsaw at both scales.
    assert gm4 > 1.0
    assert gm16 > 0.995
    assert max(data["4-core"]["Whirlpool"]) > 1.01
    # NoBypass variants track their bypass counterparts closely in mixes.
    assert abs(gmean(data["4-core"]["Whirlpool-NoBypass"]) - gm4) < 0.03
    # Known deviation (EXPERIMENTS.md): the paper sees larger gains with
    # *fewer* cores; with our train-scale apps the 16-core mixes are more
    # capacity-contended, so the gain ordering flips.  Both stay positive.
