"""Fig 22: multiprogrammed mixes, 4 and 16 cores.

Weighted speedup of Whirlpool / Whirlpool-NoBypass / Jigsaw-NoBypass
over the Jigsaw baseline, sorted by improvement (inverse CDF).  Paper:
Whirlpool beats Jigsaw by up to 13% at 4 cores (5.1% gmean) and 6.4% at
16 cores (3.0% gmean); gains shrink with more cores.

Apps reuse a name-derived seed so the profile cache is shared across
mixes (the paper's fixed-work methodology reuses the same app snapshots
too).
"""

import zlib

import numpy as np
from _suite import CFG4, CFG16
from conftest import once

from repro.analysis import format_table, gmean
from repro.core.whirlpool import WhirlpoolScheme
from repro.core.whirltool import train_whirltool
from repro.schemes import JigsawScheme, SingleVCClassifier
from repro.sim import simulate_mix
from repro.workloads import build_workload
from repro.workloads.registry import SPEC_APPS

N_MIXES = 12
_CLASSIFIER_CACHE = {}


def app_seed(name: str) -> int:
    return zlib.crc32(name.encode()) % 1000


def classifier_for(name: str):
    if name not in _CLASSIFIER_CACHE:
        _CLASSIFIER_CACHE[name] = train_whirltool(
            name, n_pools=3, seed=app_seed(name)
        )
    return _CLASSIFIER_CACHE[name]


def run_mixes(config, n_cores):
    rng = np.random.default_rng(42)
    speedups = {"Whirlpool": [], "Whirlpool-NoBypass": [], "Jigsaw-NoBypass": []}
    for __ in range(N_MIXES):
        names = [str(n) for n in rng.choice(SPEC_APPS, size=n_cores)]
        apps = [
            build_workload(n, scale="train", seed=app_seed(n)) for n in names
        ]
        single = [SingleVCClassifier()] * len(apps)
        pooled = [classifier_for(n) for n in names]
        variants = {
            "Jigsaw": (JigsawScheme, single),
            "Jigsaw-NoBypass": (
                lambda c, v: JigsawScheme(c, v, bypass=False),
                single,
            ),
            "Whirlpool": (lambda c, v: WhirlpoolScheme(c, v), pooled),
            "Whirlpool-NoBypass": (
                lambda c, v: WhirlpoolScheme(c, v, bypass=False),
                pooled,
            ),
        }
        results = {
            name: simulate_mix(
                apps, config, factory, classifiers=cls, n_intervals=8
            )
            for name, (factory, cls) in variants.items()
        }
        base = sum(results["Jigsaw"].ipcs())
        for name in speedups:
            speedups[name].append(sum(results[name].ipcs()) / base)
    for name in speedups:
        speedups[name] = sorted(speedups[name], reverse=True)
    return speedups


def test_fig22_mixes(benchmark, report):
    def run():
        return {"4-core": run_mixes(CFG4, 4), "16-core": run_mixes(CFG16, 16)}

    data = once(benchmark, run)
    sections = []
    for label, speedups in data.items():
        rows = [
            [i]
            + [round(speedups[k][i], 4) for k in sorted(speedups)]
            for i in range(N_MIXES)
        ]
        table = format_table(["mix (sorted)"] + sorted(speedups), rows)
        gm = {k: gmean(v) for k, v in speedups.items()}
        summary = "  ".join(f"{k}: {v:.4f}" for k, v in sorted(gm.items()))
        sections.append(f"--- {label} ---\n{table}\ngmean vs Jigsaw: {summary}")
    report("fig22_mixes", "\n\n".join(sections))

    gm4 = gmean(data["4-core"]["Whirlpool"])
    gm16 = gmean(data["16-core"]["Whirlpool"])
    # Whirlpool consistently improves over Jigsaw at both scales.
    assert gm4 > 1.0
    assert gm16 > 0.995
    assert max(data["4-core"]["Whirlpool"]) > 1.01
    # NoBypass variants track their bypass counterparts closely in mixes.
    assert abs(gmean(data["4-core"]["Whirlpool-NoBypass"]) - gm4) < 0.03
    # Known deviation (EXPERIMENTS.md): the paper sees larger gains with
    # *fewer* cores; with our train-scale apps the 16-core mixes are more
    # capacity-contended, so the gain ordering flips.  Both stay positive.
