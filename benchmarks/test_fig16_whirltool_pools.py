"""Fig 16: WhirlTool speedup over Jigsaw with 2/3/4 pools, all 31 apps.

Also overlays the manual classification's result for the 12 Table-2
apps.  Paper findings this bench checks: several apps improve 5-15%
(mis up to 38%); 3 pools is the sweet spot; WhirlTool matches manual
classification on most ported apps.
"""

import numpy as np
from _suite import app_results
from conftest import once

from repro.analysis import format_table, gmean
from repro.workloads import ALL_APPS


def test_fig16_whirltool_pools(benchmark, report):
    def run():
        rows = {}
        for app in ALL_APPS:
            res = app_results(app)
            jig = res.schemes["Jigsaw"].cycles
            rows[app] = {
                "wt": {
                    k: 100.0 * (jig / r.cycles - 1.0)
                    for k, r in res.whirltool.items()
                },
                "manual": (
                    100.0 * (jig / res.manual.cycles - 1.0)
                    if res.manual
                    else None
                ),
                "manual_pools": res.manual_pools,
            }
        return rows

    data = once(benchmark, run)
    rows = []
    for app in ALL_APPS:
        d = data[app]
        manual = (
            f"{d['manual']:+.1f}% ({d['manual_pools']}p)"
            if d["manual"] is not None
            else "-"
        )
        rows.append(
            [app]
            + [f"{d['wt'][k]:+.1f}%" for k in (2, 3, 4)]
            + [manual]
        )
    text = format_table(
        ["app", "2 pools", "3 pools", "4 pools", "manual"], rows
    )
    speedups3 = [1.0 + data[a]["wt"][3] / 100.0 for a in ALL_APPS]
    text += f"\n\ngmean speedup (3 pools) vs Jigsaw: {gmean(speedups3):.3f}"
    report("fig16_whirltool_pools", text)

    # Paper shapes:
    best3 = max(data[a]["wt"][3] for a in ALL_APPS)
    assert best3 > 10.0  # several apps gain >10% (mis largest)
    assert gmean(speedups3) > 1.0  # positive on average
    # 4 pools adds little over 3 pools on average.
    s4 = gmean([1.0 + data[a]["wt"][4] / 100.0 for a in ALL_APPS])
    assert abs(s4 - gmean(speedups3)) < 0.05
    # WhirlTool roughly matches manual classification where it exists.
    diffs = [
        data[a]["wt"][3] - data[a]["manual"]
        for a in ALL_APPS
        if data[a]["manual"] is not None
    ]
    assert np.mean(diffs) > -4.0  # not systematically worse than manual
