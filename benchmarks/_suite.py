"""Shared, memoized computation for the benchmark harness.

Several figures reuse the same per-app evaluations (Fig 10/16/19/20/21
all need the standard scheme comparison), so the harness runs every
(app, scheme, classifier) cell as a ``repro.exp`` job through one
session-wide store: jobs executed for one figure are skipped by every
later figure that needs the same cell.  Set ``REPRO_BENCH_WORKERS=N``
to fan the grid out over a process pool; the default executes in
process (traces are dropped after use either way — only result records
are retained).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.analysis.compare import STANDARD_SCHEMES
from repro.core.whirltool import (
    WhirlToolAnalyzer,
    WhirlToolProfiler,
)
from repro.exp import Job, MemoryStore, run_jobs
from repro.exp.execute import cached_workload, execute_job, record_to_result
from repro.nuca import four_core_config, sixteen_core_config
from repro.schemes.base import SchemeResult
from repro.workloads import build_workload

CFG4 = four_core_config()
CFG16 = sixteen_core_config()


def bench_workers() -> int:
    """Process-pool size for benchmark grids (0/1 = in-process)."""
    return int(os.environ.get("REPRO_BENCH_WORKERS", "0") or 0)


@dataclass
class AppResults:
    """Everything the single-threaded figures need for one app."""

    app: str
    schemes: dict[str, SchemeResult]
    whirltool: dict[int, SchemeResult] = field(default_factory=dict)
    manual: SchemeResult | None = None
    manual_pools: int | None = None


_APP_CACHE: dict[str, AppResults] = {}
_CLUSTER_CACHE: dict[tuple[str, str, int], object] = {}

#: Session-wide job store shared by every figure's grid.
_STORE = MemoryStore()


def run_grid(jobs: list[Job]) -> None:
    """Run a job grid through the session store (skip-done semantics)."""
    run_jobs(jobs, execute_job, store=_STORE, workers=bench_workers())


def grid_record(job: Job) -> dict:
    """The raw result record for one job (mix jobs have no SchemeResult)."""
    return _STORE.get(job.key())


def grid_result(job: Job) -> SchemeResult:
    """The stored :class:`SchemeResult` for one job."""
    return record_to_result(_STORE.get(job.key()))


def clustering_for(app: str, train_scale: str = "train", seed: int = 0):
    """Train WhirlTool's clustering once per (app, scale)."""
    key = (app, train_scale, seed)
    if key not in _CLUSTER_CACHE:
        workload = build_workload(app, scale=train_scale, seed=seed)
        profile = WhirlToolProfiler().profile(workload)
        _CLUSTER_CACHE[key] = WhirlToolAnalyzer().cluster(profile)
    return _CLUSTER_CACHE[key]


def _app_jobs(app: str, pool_counts: tuple[int, ...], with_manual: bool):
    """The job grid behind one app's :class:`AppResults`."""
    jobs = {}
    for scheme in STANDARD_SCHEMES:
        classifier = "whirltool:3" if scheme == "Whirlpool" else "single"
        jobs[scheme] = Job(app=app, scheme=scheme, classifier=classifier)
    for k in pool_counts:
        jobs[f"wt{k}"] = Job(
            app=app, scheme="Whirlpool", classifier=f"whirltool:{k}"
        )
    if with_manual:
        jobs["manual"] = Job(app=app, scheme="Whirlpool", classifier="manual")
    return jobs


def app_results(app: str, pool_counts: tuple[int, ...] = (2, 3, 4)) -> AppResults:
    """Standard 6-scheme comparison + WhirlTool pool sweep for one app."""
    if app in _APP_CACHE:
        return _APP_CACHE[app]
    # The manual-pool metadata is scale-invariant (Table 2 is checked at
    # train scale), so peek at the cheap cached train build rather than
    # constructing the ref trace in the parent.
    workload = cached_workload(app, "train", 0)
    manual_pools = (
        len(set(workload.manual_pools.values()))
        if workload.manual_pools
        else None
    )
    del workload
    jobs = _app_jobs(app, pool_counts, with_manual=manual_pools is not None)
    run_grid(list(jobs.values()))
    schemes = {name: grid_result(jobs[name]) for name in STANDARD_SCHEMES}
    wt_results = {3: schemes["Whirlpool"]}
    for k in pool_counts:
        if k != 3:
            wt_results[k] = grid_result(jobs[f"wt{k}"])
    result = AppResults(
        app=app,
        schemes=schemes,
        whirltool=wt_results,
        manual=grid_result(jobs["manual"]) if manual_pools else None,
        manual_pools=manual_pools,
    )
    _APP_CACHE[app] = result
    return result
