"""Shared, memoized computation for the benchmark harness.

Several figures reuse the same per-app evaluations (Fig 10/16/19/20/21
all need the standard scheme comparison), so results are computed once
per session and cached here.  Traces are dropped after use; only
:class:`~repro.schemes.base.SchemeResult` objects are retained.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.compare import run_schemes
from repro.core.whirlpool import WhirlpoolScheme
from repro.core.whirltool import (
    WhirlToolAnalyzer,
    WhirlToolClassifier,
    WhirlToolProfiler,
)
from repro.nuca import four_core_config, sixteen_core_config
from repro.schemes.base import SchemeResult
from repro.sim import simulate
from repro.workloads import build_workload

CFG4 = four_core_config()
CFG16 = sixteen_core_config()


@dataclass
class AppResults:
    """Everything the single-threaded figures need for one app."""

    app: str
    schemes: dict[str, SchemeResult]
    whirltool: dict[int, SchemeResult] = field(default_factory=dict)
    manual: SchemeResult | None = None
    manual_pools: int | None = None


_APP_CACHE: dict[str, AppResults] = {}
_CLUSTER_CACHE: dict[tuple[str, str, int], object] = {}


def clustering_for(app: str, train_scale: str = "train", seed: int = 0):
    """Train WhirlTool's clustering once per (app, scale)."""
    key = (app, train_scale, seed)
    if key not in _CLUSTER_CACHE:
        workload = build_workload(app, scale=train_scale, seed=seed)
        profile = WhirlToolProfiler().profile(workload)
        _CLUSTER_CACHE[key] = WhirlToolAnalyzer().cluster(profile)
    return _CLUSTER_CACHE[key]


def app_results(app: str, pool_counts: tuple[int, ...] = (2, 3, 4)) -> AppResults:
    """Standard 6-scheme comparison + WhirlTool pool sweep for one app."""
    if app in _APP_CACHE:
        return _APP_CACHE[app]
    workload = build_workload(app, scale="ref", seed=0)
    clustering = clustering_for(app)
    wt3 = WhirlToolClassifier(clustering, n_pools=3)
    schemes = run_schemes(
        workload, CFG4, whirlpool_classifier=wt3
    )
    wt_results = {3: schemes["Whirlpool"]}
    for k in pool_counts:
        if k == 3:
            continue
        cls = WhirlToolClassifier(clustering, n_pools=k)
        wt_results[k] = simulate(
            workload,
            CFG4,
            lambda c, v: WhirlpoolScheme(c, v),
            classifier=cls,
        )
    manual = None
    manual_pools = None
    if workload.manual_pools:
        from repro.schemes import ManualPoolClassifier

        manual = simulate(
            workload,
            CFG4,
            lambda c, v: WhirlpoolScheme(c, v),
            classifier=ManualPoolClassifier(),
        )
        manual_pools = len(set(workload.manual_pools.values()))
    result = AppResults(
        app=app,
        schemes=schemes,
        whirltool=wt_results,
        manual=manual,
        manual_pools=manual_pools,
    )
    _APP_CACHE[app] = result
    return result
