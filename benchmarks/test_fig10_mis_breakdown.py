"""Fig 10: mis under the six schemes — time, energy, LLC accesses.

Paper: Whirlpool improves mis by 38% over Jigsaw and cuts data-movement
energy by 53%; IdealSPD consumes the most energy (multi-level lookups);
Awasthi gets stuck at a small allocation and misses more.
"""

from _suite import app_results
from conftest import once

from repro.analysis import STANDARD_SCHEMES, format_table


def scheme_table(results):
    base = results["Jigsaw"]
    rows = []
    for name in STANDARD_SCHEMES:
        r = results[name]
        b = r.apki_breakdown()
        e = r.energy
        rows.append(
            [
                name,
                r.cycles / base.cycles,
                e.total / base.energy.total,
                round(e.network / base.energy.total, 3),
                round(e.bank / base.energy.total, 3),
                round(e.memory / base.energy.total, 3),
                round(b["hits"], 1),
                round(b["misses"], 1),
                round(b["bypasses"], 1),
            ]
        )
    return format_table(
        [
            "scheme",
            "exec time",
            "energy",
            "(net)",
            "(bank)",
            "(mem)",
            "hit APKI",
            "miss APKI",
            "byp APKI",
        ],
        rows,
    )


def test_fig10_mis_breakdown(benchmark, report):
    results = once(benchmark, lambda: app_results("MIS").schemes)
    report("fig10_mis_breakdown", scheme_table(results))
    jig = results["Jigsaw"]
    whirl = results["Whirlpool"]
    # Whirlpool wins on both axes and bypasses the edge pool.
    assert whirl.cycles < jig.cycles
    assert whirl.energy.total < jig.energy.total
    assert whirl.bypasses > 0
    # S-NUCA variants clearly slower (paper: ~+28%); IdealSPD worst-ish.
    assert results["LRU"].cycles > 1.15 * whirl.cycles
    assert results["IdealSPD"].energy.total > jig.energy.total
