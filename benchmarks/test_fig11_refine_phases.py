"""Fig 11: refine's irregular phases and Whirlpool's adaptation.

Most of the time vertices get the bulk of the cache; during bursts the
pattern inverts (vertices stream, triangles/misc grow).  The bench
captures Whirlpool's per-interval allocations and checks both regimes
appear.
"""

from conftest import once

from repro.analysis import format_table
from repro.core.whirlpool import WhirlpoolScheme
from repro.schemes import ManualPoolClassifier
from repro.sim import simulate
from repro.workloads import build_workload

_MB = 1 << 20


def test_fig11_refine_phases(benchmark, report, cfg4):
    def run():
        w = build_workload("refine", scale="ref", seed=0)
        res = simulate(
            w,
            cfg4,
            lambda c, v: WhirlpoolScheme(c, v),
            classifier=ManualPoolClassifier(),
            n_intervals=30,
        )
        mapping, specs = ManualPoolClassifier().classify(w)
        names = {s.vc_id: s.name for s in specs}
        series = []
        for t, stats in enumerate(res.history):
            row = {"t": t}
            for vc, size in stats.vc_sizes.items():
                row[names[vc]] = size / _MB
            series.append(row)
        return series

    series = once(benchmark, run)
    pools = sorted(k for k in series[0] if k != "t")
    rows = [
        [s["t"]] + [round(s.get(p, 0.0), 2) for p in pools] for s in series
    ]
    report(
        "fig11_refine_phases",
        format_table(["interval"] + [f"{p} (MB)" for p in pools], rows),
    )
    verts = [s.get("vertices", 0.0) for s in series]
    tris = [s.get("triangles", 0.0) for s in series]
    misc = [s.get("misc", 0.0) for s in series]
    # Common phase: vertices get the bulk of the cache.
    assert max(verts) > 3.0
    common = sum(1 for v, t in zip(verts, tris) if v > t)
    assert common >= 5
    # Burst phase (Fig 11a): the pattern shifts — misc+triangles surge
    # well past their steady-state allocations while vertices dip.
    steady_other = sorted(m + t for m, t in zip(misc, tris))[len(series) // 2]
    surge = max(m + t for m, t in zip(misc, tris))
    assert surge > 2.0 * steady_other
    assert min(verts[5:]) < 0.8 * max(verts)
