"""Extension: the Awasthi αA/αB parameter sweep (Appendix A).

"We have implemented Awasthi as proposed, sweeping implementation
parameters αA, αB to find the values that perform best."  This bench
performs that sweep on a representative subset and confirms the default
parameters sit at (or near) the best-performing point — and that no
parameter choice closes the gap to Jigsaw.
"""

from _suite import CFG4
from conftest import once

from repro.analysis import format_table, gmean
from repro.schemes import AwasthiScheme, JigsawScheme
from repro.sim import simulate
from repro.workloads import build_workload

APPS = ["MIS", "cactus", "bzip2", "sphinx3"]
ALPHA_A = [0.005, 0.02, 0.08]
ALPHA_B = [0.02, 0.06, 0.15]


def test_ext_awasthi_sweep(benchmark, report):
    def run():
        jig = {}
        grid = {}
        for app in APPS:
            w = build_workload(app, scale="ref", seed=0)
            jig[app] = simulate(w, CFG4, JigsawScheme).cycles
            for aa in ALPHA_A:
                for ab in ALPHA_B:
                    r = simulate(
                        w,
                        CFG4,
                        lambda c, v: AwasthiScheme(c, v, alpha_a=aa, alpha_b=ab),
                    )
                    grid.setdefault((aa, ab), {})[app] = r.cycles
        return jig, grid

    jig, grid = once(benchmark, run)
    rows = []
    best = None
    for (aa, ab), cycles in sorted(grid.items()):
        gm = gmean([cycles[a] / jig[a] for a in APPS])
        rows.append([aa, ab, round(gm, 4)])
        if best is None or gm < best[2]:
            best = (aa, ab, gm)
    text = format_table(
        ["alpha_a", "alpha_b", "gmean time vs Jigsaw"], rows
    )
    text += (
        f"\n\nbest: alpha_a={best[0]}, alpha_b={best[1]} "
        f"-> {best[2]:.4f} (defaults: 0.02 / 0.06)"
    )
    report("ext_awasthi_sweep", text)
    # The default point is within 3% of the best sweep point...
    default = gmean([grid[(0.02, 0.06)][a] / jig[a] for a in APPS])
    assert default <= best[2] * 1.03
    # ...and even the best-tuned Awasthi stays behind Jigsaw on average.
    assert best[2] > 0.99
