"""Fig 22 companion: the other schemes on multiprogrammed mixes.

Paper (Sec 4.5): "On 4- and 16-core mixes, Whirlpool outperforms S-NUCA
by 32%/62%, DRRIP by 25%/52%, IdealSPD by 30%/50%, and Awasthi by
18%/25%."  This bench reproduces the 4-core comparison on a smaller mix
set (the per-scheme ordering is the claim under test).
"""

import zlib

import numpy as np
from _suite import CFG4
from conftest import once

from repro.analysis import format_table, gmean
from repro.core.whirlpool import WhirlpoolScheme
from repro.core.whirltool import train_whirltool
from repro.schemes import (
    AwasthiScheme,
    IdealSPDScheme,
    JigsawScheme,
    SNUCAScheme,
    SingleVCClassifier,
)
from repro.sim import simulate_mix
from repro.workloads import build_workload
from repro.workloads.registry import SPEC_APPS

N_MIXES = 6
_CLS = {}


def app_seed(name: str) -> int:
    return zlib.crc32(name.encode()) % 1000


def cls_for(name: str):
    if name not in _CLS:
        _CLS[name] = train_whirltool(name, n_pools=3, seed=app_seed(name))
    return _CLS[name]


def test_fig22b_other_schemes(benchmark, report):
    def run():
        rng = np.random.default_rng(7)
        speedups = {
            k: [] for k in ("LRU", "DRRIP", "IdealSPD", "Awasthi", "Jigsaw")
        }
        for __ in range(N_MIXES):
            names = [str(n) for n in rng.choice(SPEC_APPS, size=4)]
            apps = [
                build_workload(n, scale="train", seed=app_seed(n))
                for n in names
            ]
            single = [SingleVCClassifier()] * 4
            pooled = [cls_for(n) for n in names]
            whirl = simulate_mix(
                apps,
                CFG4,
                lambda c, v: WhirlpoolScheme(c, v),
                classifiers=pooled,
                n_intervals=8,
            )
            others = {
                "LRU": lambda c, v: SNUCAScheme(c, v, "lru"),
                "DRRIP": lambda c, v: SNUCAScheme(c, v, "drrip"),
                "IdealSPD": IdealSPDScheme,
                "Awasthi": AwasthiScheme,
                "Jigsaw": JigsawScheme,
            }
            base = sum(whirl.ipcs())
            for name, factory in others.items():
                res = simulate_mix(
                    apps, CFG4, factory, classifiers=single, n_intervals=8
                )
                speedups[name].append(base / sum(res.ipcs()))
        return speedups

    speedups = once(benchmark, run)
    rows = [
        [name, f"{100 * (gmean(v) - 1):+.1f}%", f"{100 * (max(v) - 1):+.1f}%"]
        for name, v in speedups.items()
    ]
    report(
        "fig22b_other_schemes",
        format_table(
            ["scheme", "Whirlpool gmean advantage", "max advantage"], rows
        ),
    )
    # Whirlpool beats every other scheme on mixes; Jigsaw is the closest
    # competitor (the paper's ordering).
    gms = {k: gmean(v) for k, v in speedups.items()}
    for name, gm in gms.items():
        assert gm > 1.0, name
    assert gms["Jigsaw"] == min(gms.values())
