"""Fig 19: cactus under the six schemes.

cactus has two regions, only one with reuse.  Whirlpool caches the Pugh
variables near the core and bypasses the leapfrog grid, cutting network
traffic over Jigsaw (paper: -42% energy, +8.6% performance).
"""

from _suite import app_results
from conftest import once
from test_fig10_mis_breakdown import scheme_table


def test_fig19_cactus_breakdown(benchmark, report):
    results = once(benchmark, lambda: app_results("cactus").schemes)
    report("fig19_cactus_breakdown", scheme_table(results))
    jig = results["Jigsaw"]
    whirl = results["Whirlpool"]
    assert whirl.cycles < jig.cycles
    assert whirl.energy.total < jig.energy.total
    # The win comes from bypassing the grid: less network energy.
    assert whirl.energy.network < jig.energy.network
    assert whirl.bypasses > 0
