"""Fig 13: parallel applications on the 16-core chip.

S-NUCA vs Jigsaw vs Jigsaw+PaWS vs Whirlpool+PaWS on mergesort, fft,
delaunay, pagerank, connectedComponents, triangleCounting.

Paper shapes: Jigsaw ≈ S-NUCA under conventional work stealing; PaWS
helps Jigsaw moderately (up to 19% on pagerank); Whirlpool+PaWS wins big
(up to 67% and 2.6x energy on connectedComponents).
"""

from conftest import once

from repro.analysis import format_table
from repro.parallel import PARALLEL_APPS, build_parallel_workload
from repro.sim.parallel import PARALLEL_SCHEMES, evaluate_parallel


def test_fig13_parallel(benchmark, report, cfg16):
    def run():
        out = {}
        for app in sorted(PARALLEL_APPS):
            pw = build_parallel_workload(app, scale="ref", seed=0)
            out[app] = {
                s: evaluate_parallel(pw, cfg16, s) for s in PARALLEL_SCHEMES
            }
        return out

    all_results = once(benchmark, run)
    rows = []
    for app, results in sorted(all_results.items()):
        base = results["snuca"]
        row = [app]
        for s in PARALLEL_SCHEMES:
            r = results[s]
            row += [
                round(r.cycles / base.cycles, 3),
                round(r.energy.total / base.energy.total, 3),
            ]
        rows.append(row)
    headers = ["app"]
    for s in PARALLEL_SCHEMES:
        headers += [f"{s} time", f"{s} energy"]
    report("fig13_parallel", format_table(headers, rows))

    for app, results in all_results.items():
        # Jigsaw ~ S-NUCA under work stealing.
        assert 0.8 < results["jigsaw"].cycles / results["snuca"].cycles < 1.2, app
        # Whirlpool+PaWS is the best configuration on both axes.
        wp = results["whirlpool+paws"]
        assert wp.cycles <= min(r.cycles for r in results.values()), app
        assert wp.energy.total <= min(
            r.energy.total for r in results.values()
        ), app
    # connectedComponents shows the largest Whirlpool gain (paper: 67%).
    cc = all_results["connectedComponents"]
    gain_cc = cc["jigsaw"].cycles / cc["whirlpool+paws"].cycles
    assert gain_cc > 1.3
