"""Table 2: pools found manually in various applications.

Regenerates the table from the workload implementations and checks it
against the paper's numbers, plus the headline summary: "Whirlpool
improves performance on these applications by 7.3% over Jigsaw" —
checked as a positive gmean gain over the ported apps.
"""

from _suite import app_results
from conftest import once

from repro.analysis import format_table, gmean
from repro.core import TABLE2
from repro.workloads import build_workload


def test_table2_manual_pools(benchmark, report):
    def run():
        rows = []
        gains = []
        for entry in TABLE2:
            w = build_workload(entry.workload, scale="train", seed=0)
            pools = len(set(w.manual_pools.values()))
            res = app_results(entry.workload)
            gain = res.schemes["Jigsaw"].cycles / res.manual.cycles
            gains.append(gain)
            rows.append(
                [
                    entry.application,
                    pools,
                    entry.data_structures,
                    entry.loc,
                    f"{100 * (gain - 1):+.1f}%",
                ]
            )
        return rows, gains

    rows, gains = once(benchmark, run)
    text = format_table(
        ["application", "pools", "data structures", "LOC", "speedup vs Jigsaw"],
        rows,
    )
    text += f"\n\ngmean speedup over Jigsaw (manual ports): {gmean(gains):.3f}"
    report("table2_manual_pools", text)

    for entry, row in zip(TABLE2, rows):
        assert row[1] == entry.pools, entry.application
    # Paper: +7.3% average over Jigsaw on the ported apps.
    assert gmean(gains) > 1.02
    # Porting is cheap: tens of lines each (Table 2's point).
    assert max(e.loc for e in TABLE2) <= 60
