"""Fig 17: WhirlTool's hierarchical clustering (dt and omnetpp).

Shows the merge tree (distance at each merge) and the 3-pool cut.
"""

from _suite import clustering_for
from conftest import once

from repro.workloads import build_workload


def test_fig17_dendrograms(benchmark, report):
    def run():
        out = {}
        for app in ("delaunay", "omnet"):
            clustering = clustering_for(app)
            out[app] = clustering
        return out

    clusterings = once(benchmark, run)
    sections = []
    for app, clustering in sorted(clusterings.items()):
        assign = clustering.assignments(3)
        pools = {}
        for cp, pool in assign.items():
            pools.setdefault(pool, []).append(
                clustering.names.get(cp, str(cp))
            )
        cut = "; ".join(
            f"pool{p}: {', '.join(sorted(members))}"
            for p, members in sorted(pools.items())
        )
        sections.append(
            f"--- {app} ---\nmerge tree (distance, clusters):\n"
            f"{clustering.dendrogram_text()}\n3-pool cut: {cut}"
        )
    report("fig17_dendrograms", "\n\n".join(sections))

    dt = clusterings["delaunay"]
    w = build_workload("delaunay", scale="train", seed=0)
    assert set(dt.callpoints) == set(w.region_names)
    # Merge distances are recorded for every merge.
    assert len(dt.merges) == len(dt.callpoints) - 1
