"""Figs 3-5: where S-NUCA, Jigsaw, and Whirlpool place dt's data.

S-NUCA spreads the working set over all 25 banks; Jigsaw packs it into
the banks closest to the core but cannot tell structures apart;
Whirlpool additionally places the most intensely accessed pool (points)
closest, then vertices, then triangles.
"""

import numpy as np
from conftest import once

from repro.analysis import placement_map
from repro.nuca.geometry import Placement
from repro.schemes import JigsawScheme, ManualPoolClassifier
from repro.sim import simulate
from repro.workloads import build_workload


def test_fig05_dt_placement(benchmark, report, cfg4):
    def run():
        w = build_workload("delaunay", scale="ref", seed=0)
        geo = cfg4.geometry

        # Fig 3: S-NUCA spreads everything across every bank.
        snuca = Placement(
            {b: cfg4.geometry.bank_bytes * 0.5 for b in range(geo.n_banks)}
        )

        # Fig 4: Jigsaw packs one undifferentiated VC near the core.
        jig = simulate(w, cfg4, JigsawScheme)
        jig_last = jig.history[-1]
        jig_place = geo.closest_placement(0, jig_last.vc_sizes[0])

        # Fig 5: Whirlpool's per-pool placement, captured from the
        # scheme's actual last-interval decision.
        captured = {}
        class Capturing(JigsawScheme):
            def decide(self, curves):
                alloc = super().decide(curves)
                captured.clear()
                for vc, a in alloc.items():
                    if a.placement is not None:
                        captured[self.vcs[vc].name] = a.placement
                return alloc

        simulate(w, cfg4, Capturing, classifier=ManualPoolClassifier())
        return snuca, jig_place, captured, jig_last.vc_sizes[0]

    snuca, jig_place, whirl_places, jig_size = once(benchmark, run)
    geo = cfg4.geometry
    text = "\n".join(
        [
            "Fig 3 (S-NUCA): data hashed over every bank",
            placement_map(geo, {"data": snuca}, core=0),
            "",
            f"Fig 4 (Jigsaw): one VC of {jig_size / 2**20:.1f} MB near the core",
            placement_map(geo, {"process": jig_place}, core=0),
            "",
            "Fig 5 (Whirlpool): points nearest, vertices next, triangles after",
            placement_map(geo, whirl_places, core=0),
        ]
    )
    report("fig05_dt_placement", text)
    # Whirlpool orders pools by intensity: points closest.
    d = geo.distances(0)
    hops = {name: p.avg_hops(d) for name, p in whirl_places.items()}
    assert hops["points"] <= hops["vertices"] <= hops["triangles"]
    # Jigsaw leaves far banks unused (uses about half the cache).
    assert jig_size < 0.7 * cfg4.llc_bytes
    assert np.isfinite(jig_size)
