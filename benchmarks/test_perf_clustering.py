"""Clustering micro-benchmark: batched engine vs the serial oracle.

Same contract as the profiling and partitioning smokes downstack: the
batched ``WhirlToolAnalyzer.cluster`` (condensed distance matrix, one
batched combine/partition evaluation per distance row) must beat — and
stay >= 5x faster than — the retained ``cluster_reference`` on a
48-callpoint x 16-interval profile, while producing a bit-identical
merge tree.  Timings are written as JSON
(``benchmarks/perf_clustering_timings.json``, gitignored) so CI can
upload them as an artifact; wall-clock numbers stay out of
``benchmarks/results/``.
"""

import time
from pathlib import Path

import numpy as np

from repro.core.whirltool import WhirlToolAnalyzer
from repro.core.whirltool.profiler import CallpointProfile
from repro.curves import MissCurve
from repro.obs.timings import record_timings

N_CALLPOINTS = 48
N_INTERVALS = 16
N_CHUNKS = 64
CHUNK_BYTES = 64 * 1024

TIMINGS_PATH = Path(__file__).parent / "perf_clustering_timings.json"


def _instance(
    n_callpoints=N_CALLPOINTS,
    n_intervals=N_INTERVALS,
    n_chunks=N_CHUNKS,
    seed=7,
):
    """A profile shaped like a large application: a mix of cache-friendly,
    streaming, and cliff callpoints, with idle phases sprinkled in so the
    inactive-interval skip path is exercised too."""
    rng = np.random.default_rng(seed)
    curves = {}
    for cp in range(n_callpoints):
        kind = rng.integers(0, 3)
        series = []
        for __ in range(n_intervals):
            if rng.random() < 0.15:
                series.append(
                    MissCurve(np.zeros(n_chunks + 1), CHUNK_BYTES, 0.0, 1e6)
                )
                continue
            scale = float(rng.uniform(50, 2000))
            if kind == 0:  # cache-friendly exponential decay
                vals = scale * np.power(
                    rng.uniform(0.6, 0.9), np.arange(n_chunks + 1)
                )
            elif kind == 1:  # streaming
                vals = np.full(n_chunks + 1, scale)
            else:  # working-set cliff
                knee = int(rng.integers(1, n_chunks))
                vals = np.concatenate(
                    [
                        np.full(knee, scale),
                        np.full(
                            n_chunks + 1 - knee,
                            scale * rng.uniform(0.0, 0.2),
                        ),
                    ]
                )
            series.append(
                MissCurve(
                    misses=vals,
                    chunk_bytes=CHUNK_BYTES,
                    accesses=float(vals[0]),
                    instructions=float(rng.uniform(5e5, 2e6)),
                )
            )
        curves[cp] = series
    return CallpointProfile(
        curves=curves,
        names={cp: f"r{cp}" for cp in curves},
        n_intervals=n_intervals,
    )


def _best_of(fn, repeats=1):
    best, result = float("inf"), None
    for __ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _record_timings(name, t_batched, t_ref):
    """Append one benchmark's timings to the CI artifact JSON."""
    record_timings(
        TIMINGS_PATH,
        name,
        {
            "batched_s": t_batched,
            "reference_s": t_ref,
            "speedup": (t_ref / t_batched, "x"),
        },
        gate="speedup >= 5.0x",
    )


class TestPerfClustering:
    def test_perf_smoke_12x4(self):
        """CI gate: batched must beat the reference on a small profile."""
        profile = _instance(n_callpoints=12, n_intervals=4, seed=3)
        analyzer = WhirlToolAnalyzer()
        t_batched, got = _best_of(lambda: analyzer.cluster(profile), repeats=3)
        t_ref, want = _best_of(
            lambda: analyzer.cluster_reference(profile), repeats=3
        )
        assert got.merges == want.merges  # bit-identical tree
        _record_timings("smoke_12x4", t_batched, t_ref)
        print(
            f"\n[perf] clustering 12x4: batched {t_batched*1e3:.1f} ms, "
            f"reference {t_ref*1e3:.1f} ms, speedup {t_ref / t_batched:.1f}x"
        )
        assert t_batched < t_ref, (
            f"batched clustering slower than reference: {t_batched:.4f}s "
            f">= {t_ref:.4f}s"
        )

    def test_perf_smoke_48x16_speedup(self):
        """Headline instance: 48 callpoints x 16 intervals, >= 5x required.

        ~1128 initial pairs and 47 merges; the reference runs every
        pair x interval through the scalar Listing-1 loop plus two
        per-pair hulls, the batched engine runs them as a handful of
        array passes.  Measured speedup is ~15x on a dedicated core,
        asserted at the 5x acceptance floor so slow CI boxes don't flake.
        """
        profile = _instance()
        analyzer = WhirlToolAnalyzer()
        t_batched, got = _best_of(lambda: analyzer.cluster(profile), repeats=2)
        t_ref, want = _best_of(lambda: analyzer.cluster_reference(profile))
        # Bit-identical merge trees: order, clusters, and exact distances.
        assert got.merges == want.merges
        assert got.callpoints == want.callpoints
        speedup = t_ref / t_batched
        _record_timings("smoke_48x16", t_batched, t_ref)
        print(
            f"\n[perf] clustering 48x16: batched {t_batched*1e3:.1f} ms, "
            f"reference {t_ref*1e3:.1f} ms, speedup {speedup:.1f}x"
        )
        assert speedup >= 5.0, f"speedup regressed to {speedup:.1f}x"
