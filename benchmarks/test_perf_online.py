"""Online Whirlpool micro-benchmark: incremental vs from-scratch cost.

The point of :class:`OnlineWhirlTool` is that revising pools when an
epoch seals costs far less than re-running the pipeline over everything
seen so far.  This smoke streams a multi-epoch capture, re-clustering
at *every* epoch (a detector that always fires — the worst case for the
incremental path), and gates the mean per-epoch cost at >=
``SPEEDUP_FLOOR``x cheaper than a from-scratch re-profile + re-cluster
of the prefix with the same streaming engine.  It also pins the final
streamed pools bit-identical to the offline oracle, so the speed never
comes from drift.

Timings land in ``benchmarks/perf_online_timings.json`` (gitignored)
for the CI artifact upload, same contract as the other perf smokes.
"""

import time
from pathlib import Path

import numpy as np

from repro.core.whirltool import (
    CallpointProfile,
    OnlineWhirlTool,
    PhaseDetector,
    WhirlToolAnalyzer,
    online_pools_reference,
)
from repro.ingest import (
    ArraySource,
    IterableSource,
    StreamingStackProfiler,
    TraceChunk,
)
from repro.obs.timings import infer_unit, record_timings

#: Capture shape: EPOCHS epochs of EPOCH_RECORDS records each.
EPOCH_RECORDS = 250_000
EPOCHS = 16
N_REGIONS = 4

#: CI gate: per-epoch incremental update must be at least this many
#: times cheaper than a from-scratch re-profile + re-cluster of the
#: prefix.  Profiling dominates at this instance size, so the
#: asymptotic ratio is ~(EPOCHS+1)/2 = 8.5x; a dedicated core measures
#: ~7x end to end, and 5x leaves slack for slow shared runners.
SPEEDUP_FLOOR = 5.0

TIMINGS_PATH = Path(__file__).parent / "perf_online_timings.json"

GRID = dict(chunk_bytes=64 * 1024, n_chunks=32, sample_shift=3)


def _record_timings(name, **fields):
    record_timings(
        TIMINGS_PATH,
        name,
        {k: (v, infer_unit(k)) for k, v in fields.items()},
        gate=f"speedup >= {SPEEDUP_FLOOR}x",
    )


class _AlwaysPhase(PhaseDetector):
    """Force a re-cluster at every sealed epoch (worst case)."""

    def update(self, curves):
        return True


def _make_trace(seed=31):
    n = EPOCH_RECORDS * EPOCHS
    rng = np.random.default_rng(seed)
    regions = rng.integers(0, N_REGIONS, n).astype(np.int32)
    # Distinct per-region working sets so the dendrogram is non-trivial,
    # plus a drifting hot set so epochs actually differ.
    drift = (np.arange(n) // EPOCH_RECORDS) * 7
    lines = rng.integers(0, 1 << 10, n) + regions * (1 << 12) + drift
    return lines.astype(np.int64), regions


class TestPerfOnline:
    def test_perf_smoke_incremental_vs_scratch(self):
        """CI gate: per-epoch update >= SPEEDUP_FLOOR x cheaper."""
        lines, regions = _make_trace()
        n = len(lines)
        ipr = 4.0  # instructions per record

        def gen():
            for start in range(0, n, EPOCH_RECORDS):
                stop = start + EPOCH_RECORDS
                yield TraceChunk(
                    addrs=lines[start:stop] * 64, regions=regions[start:stop]
                )

        tool = OnlineWhirlTool(
            epoch_records=EPOCH_RECORDS,
            instructions_per_record=ipr,
            detector=_AlwaysPhase(),
            **GRID,
        )
        tool.start(IterableSource(gen()))
        t_incremental = 0.0
        for chunk in IterableSource(gen()).chunks(1 << 16):
            t0 = time.perf_counter()
            reports = tool.push(chunk)
            t_incremental += time.perf_counter() - t0
            assert all(r.reclustered for r in reports)
        t0 = time.perf_counter()
        streamed = tool.finish()
        t_incremental += time.perf_counter() - t0
        assert tool.sealed_epochs == EPOCHS

        # From-scratch per epoch: re-profile the whole prefix with the
        # same streaming engine and re-cluster it — the cost the online
        # path avoids.
        analyzer = WhirlToolAnalyzer()
        t_scratch = 0.0
        for k in range(1, EPOCHS + 1):
            stop = k * EPOCH_RECORDS
            prefix = ArraySource(
                addrs=lines[:stop] * 64,
                regions=regions[:stop],
                instructions=stop * ipr,
            )
            t0 = time.perf_counter()
            curves = StreamingStackProfiler(**GRID).profile_source(
                prefix, n_intervals=k, chunk_records=1 << 16
            )
            analyzer.cluster(
                CallpointProfile(curves=curves, n_intervals=k)
            )
            t_scratch += time.perf_counter() - t0

        # Exactness: the streamed pools equal the offline oracle over
        # the full capture (equal-width intervals coincide with the
        # record-count epochs here).
        want = online_pools_reference(
            ArraySource(
                addrs=lines * 64, regions=regions, instructions=n * ipr
            ),
            n_intervals=EPOCHS,
            **GRID,
        )
        assert streamed.callpoints == want.callpoints
        assert streamed.merges == want.merges

        mean_inc = t_incremental / EPOCHS
        mean_scr = t_scratch / EPOCHS
        speedup = mean_scr / mean_inc
        _record_timings(
            "online_16_epochs_4M",
            incremental_s=t_incremental,
            scratch_s=t_scratch,
            mean_epoch_incremental_s=mean_inc,
            mean_epoch_scratch_s=mean_scr,
            speedup=speedup,
        )
        print(
            f"\n[perf] online whirlpool {EPOCHS} epochs x {EPOCH_RECORDS} "
            f"records: {mean_inc*1e3:.1f} ms/epoch incremental vs "
            f"{mean_scr*1e3:.1f} ms/epoch from scratch ({speedup:.1f}x) "
            "— exact"
        )
        assert speedup >= SPEEDUP_FLOOR, (
            f"incremental epoch update is only {speedup:.1f}x cheaper than "
            f"from-scratch (floor {SPEEDUP_FLOOR}x)"
        )
