"""Fig 9: mis's miss-rate and latency curves — why edges get bypassed.

Vertex state caches well; edges are streaming.  With the bypass point in
the latency curve (size 0 excludes cache access latency), the partitioner
gives the cache to the vertex state and bypasses edges.
"""

import numpy as np
from conftest import once

from repro.analysis import format_table
from repro.curves import latency_curve
from repro.schemes import ManualPoolClassifier
from repro.sim.profiling import profile_vcs
from repro.workloads import build_workload

_MB = 1 << 20


def test_fig09_mis_curves(benchmark, report, cfg4):
    def run():
        w = build_workload("MIS", scale="ref", seed=0)
        mapping, specs = ManualPoolClassifier().classify(w)
        curves = profile_vcs(
            w.trace,
            mapping,
            chunk_bytes=cfg4.chunk_bytes,
            n_chunks=cfg4.model_chunks,
            n_intervals=1,
            sample_shift=3,
        )
        names = {s.vc_id: s.name for s in specs}
        sizes_mb = [0, 2, 4, 6, 8, 12]
        rows = []
        bypass_choice = {}
        for vc, series in sorted(curves.items()):
            curve = series[0]
            rows.append(
                [names[vc]]
                + [round(curve.mpki_at(s * _MB), 1) for s in sizes_mb]
            )
            stalls = latency_curve(
                curve,
                cfg4.geometry.reach_fn(0),
                cfg4.latency_for_core(0),
                bypassable=True,
            )
            bypass_choice[names[vc]] = int(np.argmin(stalls)) == 0
        return rows, bypass_choice

    rows, bypass_choice = once(benchmark, run)
    headers = ["pool"] + [f"{s}MB" for s in [0, 2, 4, 6, 8, 12]]
    text = (
        "Miss rate curves (MPKI)\n"
        + format_table(headers, rows)
        + "\n\nbypass chosen (latency curve minimized at size 0): "
        + ", ".join(f"{k}={v}" for k, v in sorted(bypass_choice.items()))
    )
    report("fig09_mis_curves", text)
    assert bypass_choice["edges"]  # streaming -> bypass
    assert not bypass_choice["flags"]  # vertex state -> cache it
