"""Fig 2: dt's working set and access-pattern breakdown.

Paper: dt has a 6 MB working set in three structures — points (0.5 MB),
vertices (1.5 MB), triangles (4 MB) — with accesses split roughly evenly
(~25 APKI total), so access *intensity* differs by ~8x between points
and triangles.
"""

from conftest import once

from repro.analysis import format_table
from repro.workloads import build_workload

_MB = 1 << 20


def test_fig02_dt_breakdown(benchmark, report):
    def run():
        w = build_workload("delaunay", scale="ref", seed=0)
        fp = w.trace.region_footprint_bytes()
        apki = w.trace.region_apki()
        rows = []
        for rid in sorted(fp, key=lambda r: fp[r]):
            name = w.region_names[rid]
            mb = fp[rid] / _MB
            intensity = apki[rid] / mb
            rows.append([name, mb, apki[rid], intensity])
        return rows

    rows = once(benchmark, run)
    report(
        "fig02_dt_breakdown",
        format_table(
            ["structure", "working set (MB)", "APKI", "APKI/MB"], rows
        ),
    )
    by_name = {r[0]: r for r in rows}
    # Fig 2 shapes: 0.5 / 1.5 / 4 MB, ~even APKI split, ~8x intensity gap.
    assert 0.3 < by_name["points"][1] < 0.7
    assert 1.0 < by_name["vertices"][1] < 2.0
    assert 3.0 < by_name["triangles"][1] < 5.0
    total_ws = sum(r[1] for r in rows)
    assert 5.0 < total_ws < 7.0  # ~6 MB, fits the 12.5 MB LLC
    assert by_name["points"][3] > 5 * by_name["triangles"][3]
