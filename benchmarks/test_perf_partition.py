"""Partitioner micro-benchmark: vectorized allocator vs heapq reference.

Same contract as ``test_perf_profiling.py`` one layer up the stack: the
vectorized waterfilling allocator must beat (and stay >= 5x faster than)
the retained chunk-at-a-time oracle on a 64-consumer x 4096-chunk
instance, while returning bit-identical allocations.  Timings are also
written as JSON (``benchmarks/perf_partition_timings.json``, gitignored)
so CI can upload them as an artifact; wall-clock numbers stay out of
``benchmarks/results/``.
"""

import time
from pathlib import Path

import numpy as np

from repro.curves.partition import (
    partition_cost_curves,
    partition_cost_curves_reference,
)
from repro.obs.timings import record_timings

N_CONSUMERS = 64
N_CHUNKS = 4096

TIMINGS_PATH = Path(__file__).parent / "perf_partition_timings.json"


def _instance(n_consumers=N_CONSUMERS, n_chunks=N_CHUNKS, seed=11):
    """Hull-shaped cost curves: convex decay plus a few concave cliffs.

    This is what the Jigsaw call site feeds the partitioner — latency
    curves built on convex-hulled miss curves, with occasional concave
    corners from the bank-distance steps.
    """
    rng = np.random.default_rng(seed)
    curves = []
    for __ in range(n_consumers):
        gains = np.sort(rng.exponential(1.0, size=n_chunks)) + 1e-6
        vals = np.concatenate([[0.0], np.cumsum(gains)])[::-1].copy()
        for pos in rng.integers(1, n_chunks, size=3):
            vals[:pos] += rng.uniform(50, 200)
        curves.append(vals)
    return curves


def _best_of(fn, repeats=3):
    best, result = float("inf"), None
    for __ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _record_timings(name, t_vec, t_ref):
    """Append one benchmark's timings to the CI artifact JSON."""
    record_timings(
        TIMINGS_PATH,
        name,
        {
            "vectorized_s": t_vec,
            "reference_s": t_ref,
            "speedup": (t_ref / t_vec, "x"),
        },
        gate="speedup >= 5.0x",
    )


class TestPerfPartition:
    def test_perf_smoke_16x512(self):
        """CI gate: vectorized must beat the reference on a small grid."""
        curves = _instance(n_consumers=16, n_chunks=512, seed=3)
        total = 16 * 512 // 2
        t_vec, got = _best_of(lambda: partition_cost_curves(curves, total))
        t_ref, want = _best_of(
            lambda: partition_cost_curves_reference(curves, total)
        )
        assert got == want
        _record_timings("smoke_16x512", t_vec, t_ref)
        print(
            f"\n[perf] partition 16x512: vectorized {t_vec*1e3:.1f} ms, "
            f"reference {t_ref*1e3:.1f} ms, speedup {t_ref / t_vec:.1f}x"
        )
        assert t_vec < t_ref, (
            f"vectorized allocator slower than reference: {t_vec:.4f}s "
            f">= {t_ref:.4f}s"
        )

    def test_perf_smoke_64x4096_speedup(self):
        """Headline instance: 64 consumers x 4096 chunks, >= 5x required.

        Full contention (every chunk is in play) so the merge ranks all
        ~260k marginal-gain segments; measured speedup is ~10x on a
        dedicated core, asserted at the 5x acceptance floor so slow CI
        boxes don't flake.
        """
        curves = _instance()
        total = N_CONSUMERS * N_CHUNKS
        t_vec, got = _best_of(lambda: partition_cost_curves(curves, total))
        t_ref, want = _best_of(
            lambda: partition_cost_curves_reference(curves, total), repeats=2
        )
        assert got == want  # bit-identical sizes and total cost
        speedup = t_ref / t_vec
        _record_timings("smoke_64x4096", t_vec, t_ref)
        print(
            f"\n[perf] partition 64x4096: vectorized {t_vec*1e3:.1f} ms, "
            f"reference {t_ref*1e3:.1f} ms, speedup {speedup:.1f}x"
        )
        assert speedup >= 5.0, f"speedup regressed to {speedup:.1f}x"
