"""Fig 18: WhirlTool's sensitivity to training inputs.

For most apps, training on the small inputs matches training on the full
inputs; leslie, omnet, xalanc, and setCover change access patterns
between inputs and lose a few percent with small-input training.
"""

from _suite import CFG4
from conftest import once

from repro.analysis import format_table
from repro.core.whirlpool import WhirlpoolScheme
from repro.core.whirltool import train_whirltool
from repro.schemes import JigsawScheme
from repro.sim import simulate
from repro.workloads import build_workload

SENSITIVE_APPS = ["leslie", "omnet", "xalanc", "setCover"]
STABLE_APPS = ["mcf", "sphinx3"]


def test_fig18_training_inputs(benchmark, report):
    def run():
        out = {}
        for app in SENSITIVE_APPS + STABLE_APPS:
            w = build_workload(app, scale="ref", seed=0)
            jig = simulate(w, CFG4, JigsawScheme)
            speeds = {}
            for train_scale in ("train", "ref"):
                cls = train_whirltool(app, n_pools=3, train_scale=train_scale)
                r = simulate(
                    w,
                    CFG4,
                    lambda c, v: WhirlpoolScheme(c, v),
                    classifier=cls,
                )
                speeds[train_scale] = 100.0 * (jig.cycles / r.cycles - 1.0)
            out[app] = speeds
        return out

    data = once(benchmark, run)
    rows = [
        [app, f"{d['train']:+.1f}%", f"{d['ref']:+.1f}%"]
        for app, d in data.items()
    ]
    report(
        "fig18_training_inputs",
        format_table(
            ["app", "profile train/small", "profile ref/large"], rows
        ),
    )
    # Training on the evaluation inputs never does meaningfully worse.
    for app, d in data.items():
        assert d["ref"] >= d["train"] - 1.5, app
    # Overall the tool stays robust: small average gap.
    gaps = [d["ref"] - d["train"] for d in data.values()]
    assert sum(gaps) / len(gaps) < 8.0
