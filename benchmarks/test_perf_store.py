"""Artifact-store micro-benchmark: zero-copy profile loads.

Same contract as the other perf smokes: a CI gate with a conservative
floor so slow runners don't flake, plus timings written as JSON
(``benchmarks/perf_store_timings.json``, gitignored) for the CI
artifact upload.  The gate models the campaign-worker steady state:
the first worker pays one cold deserialize of a compressed legacy
profile, every later worker re-opens the store's uncompressed payload
and gets memory-mapped views — the OS page cache makes the repeat
open O(header bytes), not O(payload bytes).
"""

import time
from pathlib import Path

import numpy as np

from repro.curves.miss_curve import MissCurve
from repro.obs.timings import infer_unit, record_timings
from repro.store import ArtifactStore, load_profile, publish_profile
from repro.store.profiles import encode_payload

#: 8 VCs x 4 intervals x (256k + 1) float64 points ~= 64 MiB of curves.
N_VCS = 8
N_INTERVALS = 4
N_POINTS = 256 * 1024
CHUNK_BYTES = 64 * 1024

#: CI floor for repeat-open speedup over a cold compressed deserialize.
#: Header parsing vs. inflating the whole payload measures in the
#: hundreds on a dedicated core; 5x only catches an accidental fall
#: off the mmap path (e.g. a compressed member sneaking into the store).
FLOOR_SPEEDUP = 5.0

TIMINGS_PATH = Path(__file__).parent / "perf_store_timings.json"


def _record_timings(name, **fields):
    record_timings(
        TIMINGS_PATH,
        name,
        {k: (v, infer_unit(k)) for k, v in fields.items()},
        gate=f"speedup >= {FLOOR_SPEEDUP}x",
    )


def _make_curves(seed=29):
    rng = np.random.default_rng(seed)
    curves = {}
    for vc in range(N_VCS):
        per_interval = []
        for __ in range(N_INTERVALS):
            drops = rng.random(N_POINTS)
            misses = np.concatenate(
                [[float(drops.sum() + 1.0)], (drops.sum() + 1.0) - np.cumsum(drops)]
            )
            per_interval.append(
                MissCurve(
                    misses=misses,
                    chunk_bytes=CHUNK_BYTES,
                    accesses=float(N_POINTS),
                    instructions=4.0 * N_POINTS,
                )
            )
        curves[vc] = per_interval
    return curves


class TestPerfStore:
    def test_perf_smoke_memmap_repeat_load(self, tmp_path):
        """CI gate: repeat store load >= FLOOR_SPEEDUP x cold deserialize."""
        curves = _make_curves()
        payload = encode_payload(curves)
        payload_mb = sum(a.nbytes for a in payload.values()) / 1e6

        # Cold path: the legacy cache layout — one compressed npz that
        # must be inflated and copied in full on every load.
        legacy = tmp_path / "legacy.npz"
        with open(legacy, "wb") as fh:
            np.savez_compressed(fh, **payload)
        t_cold = float("inf")
        for __ in range(3):
            t0 = time.perf_counter()
            loaded = load_profile(
                legacy, chunk_bytes=CHUNK_BYTES, n_intervals=N_INTERVALS
            )
            t_cold = min(t_cold, time.perf_counter() - t0)
        assert loaded is not None

        # Store path: publish once (what profile_vcs does), then time the
        # repeat open a second campaign worker performs.
        store = ArtifactStore(tmp_path / "store")
        fingerprint = "f" * 32
        path = publish_profile(store, fingerprint, curves)
        t_map = float("inf")
        for __ in range(3):
            t0 = time.perf_counter()
            mapped = load_profile(
                path, chunk_bytes=CHUNK_BYTES, n_intervals=N_INTERVALS
            )
            t_map = min(t_map, time.perf_counter() - t0)

        # The speedup only counts if the load really is zero-copy: every
        # curve a read-only view over the mapped archive, not a copy.
        for per_interval in mapped.values():
            for curve in per_interval:
                assert not curve.misses.flags.writeable
                assert curve.misses.base is not None
        for vc, per_interval in loaded.items():
            for got, want in zip(mapped[vc], per_interval):
                assert np.array_equal(got.misses, want.misses)
                assert got.accesses == want.accesses

        speedup = t_cold / t_map
        _record_timings(
            "profile_load_64mb",
            payload_mb=payload_mb,
            cold_deserialize_s=t_cold,
            memmap_load_s=t_map,
            speedup=speedup,
        )
        print(
            f"\n[perf] store profile load {payload_mb:.0f} MB: "
            f"mapped {t_map*1e3:.1f} ms vs cold {t_cold*1e3:.1f} ms "
            f"({speedup:.0f}x)"
        )
        assert speedup >= FLOOR_SPEEDUP, (
            f"store loads fell to {speedup:.1f}x a cold deserialize "
            f"(floor {FLOOR_SPEEDUP}x) — memmap fast path lost?"
        )
