"""Extension: GMON monitor resolution sensitivity (Sec 3.2).

Whirlpool adds 24 KB of GMON monitors; real monitors observe
way-quantized miss curves, not the exact curves the software profiler
produces.  This bench re-runs Whirlpool's partitioning on curves
quantized to 16/32/64 monitor points and checks the decisions are robust
— justifying the paper's "small overheads" claim.
"""

import numpy as np
from _suite import CFG4
from conftest import once

from repro.analysis import format_table
from repro.core.whirlpool import WhirlpoolScheme
from repro.curves import GMON
from repro.schemes import ManualPoolClassifier
from repro.sim.profiling import profile_vcs
from repro.workloads import build_workload

APPS = ["MIS", "delaunay", "cactus"]
WAYS = [16, 32, 64]


def test_ext_monitor_fidelity(benchmark, report):
    def run():
        out = {}
        for app in APPS:
            w = build_workload(app, scale="ref", seed=0)
            mapping, specs = ManualPoolClassifier().classify(w)
            curves = profile_vcs(
                w.trace,
                mapping,
                chunk_bytes=CFG4.chunk_bytes,
                n_chunks=CFG4.model_chunks,
                n_intervals=1,
                sample_shift=3,
            )
            exact = {vc: series[0] for vc, series in curves.items()}
            scheme = WhirlpoolScheme(CFG4, specs)
            ref_alloc = scheme.decide(exact)
            per_ways = {}
            for n_ways in WAYS:
                gmon = GMON(n_ways=n_ways)
                scheme_q = WhirlpoolScheme(CFG4, specs)
                alloc = scheme_q.decide(gmon.observe(exact))
                # Size decision drift vs the exact-curve decision.
                drift = sum(
                    abs(alloc[vc].size_bytes - ref_alloc[vc].size_bytes)
                    for vc in ref_alloc
                )
                per_ways[n_ways] = drift / max(CFG4.llc_bytes, 1)
            out[app] = per_ways
        return out

    data = once(benchmark, run)
    rows = [
        [app] + [f"{data[app][w] * 100:.1f}%" for w in WAYS]
        for app in APPS
    ]
    report(
        "ext_monitor_fidelity",
        format_table(
            ["app"] + [f"{w}-way GMON size drift" for w in WAYS], rows
        ),
    )
    # 64-way monitors reproduce the exact-curve allocation almost
    # perfectly; even 16 ways stay within a fraction of the LLC.
    for app in APPS:
        assert data[app][64] < 0.10, app
        assert data[app][16] < 0.35, app
        # More monitor resolution never hurts (monotone fidelity).
        drifts = [data[app][w] for w in WAYS]
        assert drifts[2] <= drifts[0] + 0.02, app
    assert np.isfinite(sum(sum(d.values()) for d in data.values()))
