"""Benchmark harness fixtures.

Every bench regenerates one of the paper's tables or figures, prints it,
and persists it under ``benchmarks/results/``.  Run with::

    pytest benchmarks/ --benchmark-only

Profiling results are cached on disk (``.profile_cache/``), so re-runs
are much faster than the first run.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.nuca import four_core_config, sixteen_core_config  # noqa: E402


@pytest.fixture(scope="session")
def cfg4():
    """The 4-core, 5x5-mesh chip (Fig 1)."""
    return four_core_config()


@pytest.fixture(scope="session")
def cfg16():
    """The 16-core, 9x9-mesh chip (Fig 12)."""
    return sixteen_core_config()


@pytest.fixture
def report():
    """Print + persist an experiment's output."""
    from repro.analysis import write_result

    def _report(name: str, text: str) -> None:
        print(f"\n=== {name} ===\n{text}")
        write_result(name, text)

    return _report


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
