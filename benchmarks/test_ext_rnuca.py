"""Extension: R-NUCA in the comparison set (Appendix A text).

The paper states R-NUCA achieves 6.8%/7.2% lower performance than
Awasthi on 4-/16-core mixes because its placement heuristics compare
unfavorably.  This bench runs R-NUCA on the single-threaded suite subset
and checks it lands behind Awasthi and far behind Jigsaw/Whirlpool.
"""

from _suite import CFG4, app_results
from conftest import once

from repro.analysis import format_table, gmean
from repro.schemes import RNUCAScheme
from repro.sim import simulate
from repro.workloads import build_workload

APPS = ["MIS", "delaunay", "cactus", "mcf", "sphinx3", "bzip2", "SA", "omnet"]


def test_ext_rnuca(benchmark, report):
    def run():
        out = {}
        for app in APPS:
            w = build_workload(app, scale="ref", seed=0)
            rn = simulate(w, CFG4, RNUCAScheme)
            res = app_results(app)
            out[app] = {
                "R-NUCA": rn.cycles,
                "Awasthi": res.schemes["Awasthi"].cycles,
                "Jigsaw": res.schemes["Jigsaw"].cycles,
                "Whirlpool": res.schemes["Whirlpool"].cycles,
            }
        return out

    data = once(benchmark, run)
    rows = []
    rn_vs_awasthi = []
    rn_vs_whirl = []
    for app, cycles in data.items():
        rn_vs_awasthi.append(cycles["R-NUCA"] / cycles["Awasthi"])
        rn_vs_whirl.append(cycles["R-NUCA"] / cycles["Whirlpool"])
        rows.append(
            [
                app,
                round(cycles["R-NUCA"] / cycles["Jigsaw"], 3),
                round(cycles["Awasthi"] / cycles["Jigsaw"], 3),
                round(cycles["Whirlpool"] / cycles["Jigsaw"], 3),
            ]
        )
    text = format_table(
        ["app", "R-NUCA time", "Awasthi time", "Whirlpool time (vs Jigsaw)"],
        rows,
    )
    text += (
        f"\n\ngmean R-NUCA vs Awasthi: {gmean(rn_vs_awasthi):.3f} "
        f"(paper: ~1.07); vs Whirlpool: {gmean(rn_vs_whirl):.3f}"
    )
    report("ext_rnuca", text)
    # R-NUCA trails Awasthi on average and Whirlpool clearly.
    assert gmean(rn_vs_awasthi) > 1.0
    assert gmean(rn_vs_whirl) > 1.1
