"""Ablation: VC bypassing on/off for Jigsaw and Whirlpool (Sec 4.5).

Paper: without bypassing Jigsaw loses 0.2% and Whirlpool 1.2% — the
classification is what makes bypassing worth having, because Whirlpool
can isolate the no-reuse pools.
"""

from _suite import CFG4
from conftest import once

from repro.analysis import format_table, gmean
from repro.core.whirlpool import WhirlpoolScheme
from repro.core.whirltool import train_whirltool
from repro.schemes import JigsawScheme
from repro.sim import simulate
from repro.workloads import build_workload

APPS = ["MIS", "cactus", "mcf", "libqntm", "delaunay", "sphinx3"]


def test_ablation_bypass(benchmark, report):
    def run():
        out = {}
        for app in APPS:
            w = build_workload(app, scale="ref", seed=0)
            cls = train_whirltool(app, n_pools=3)
            results = {
                "Jigsaw": simulate(w, CFG4, JigsawScheme),
                "Jigsaw-NoBypass": simulate(
                    w, CFG4, lambda c, v: JigsawScheme(c, v, bypass=False)
                ),
                "Whirlpool": simulate(
                    w, CFG4, lambda c, v: WhirlpoolScheme(c, v), classifier=cls
                ),
                "Whirlpool-NoBypass": simulate(
                    w,
                    CFG4,
                    lambda c, v: WhirlpoolScheme(c, v, bypass=False),
                    classifier=cls,
                ),
            }
            out[app] = {k: r.cycles for k, r in results.items()}
        return out

    data = once(benchmark, run)
    rows = []
    j_loss, w_loss = [], []
    for app, cycles in data.items():
        jl = cycles["Jigsaw-NoBypass"] / cycles["Jigsaw"]
        wl = cycles["Whirlpool-NoBypass"] / cycles["Whirlpool"]
        j_loss.append(jl)
        w_loss.append(wl)
        rows.append([app, f"{100 * (jl - 1):+.2f}%", f"{100 * (wl - 1):+.2f}%"])
    rows.append(
        [
            "gmean",
            f"{100 * (gmean(j_loss) - 1):+.2f}%",
            f"{100 * (gmean(w_loss) - 1):+.2f}%",
        ]
    )
    report(
        "ablation_bypass",
        format_table(
            ["app", "Jigsaw loss w/o bypass", "Whirlpool loss w/o bypass"],
            rows,
        ),
    )
    # Whirlpool depends on bypassing more than Jigsaw does.
    assert gmean(w_loss) >= gmean(j_loss) - 0.002
    assert gmean(w_loss) > 1.0
