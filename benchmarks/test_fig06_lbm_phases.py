"""Fig 6: lbm's two grids alternate roles every timestep.

On average the pools look identical; per phase their access rates differ
markedly.  This is why lbm needs a *dynamic* policy on top of static
classification (Sec 2.2).
"""

import numpy as np
from conftest import once

from repro.analysis import format_table
from repro.workloads import build_workload


def test_fig06_lbm_phases(benchmark, report):
    def run():
        w = build_workload("lbm", scale="ref", seed=0)
        n_windows = 20
        bounds = np.linspace(0, len(w.trace), n_windows + 1).astype(int)
        ids = sorted(w.region_names)
        series = {w.region_names[r]: [] for r in ids}
        instr_per = w.trace.instructions / n_windows
        for t in range(n_windows):
            seg = w.trace.regions[bounds[t] : bounds[t + 1]]
            for rid in ids:
                apki = np.count_nonzero(seg == rid) * 1000.0 / instr_per
                series[w.region_names[rid]].append(apki)
        return series

    series = once(benchmark, run)
    names = sorted(series)
    rows = [
        [t] + [round(series[n][t], 1) for n in names]
        for t in range(len(series[names[0]]))
    ]
    report(
        "fig06_lbm_phases",
        format_table(["window"] + [f"{n} APKI" for n in names], rows),
    )
    g1 = np.array(series[names[0]])
    g2 = np.array(series[names[1]])
    # Alternating dominance, equal on average (the Fig 6 signature).
    flips = np.sign(g1 - g2)
    assert np.count_nonzero(flips[:-1] != flips[1:]) >= 5
    assert abs(g1.mean() - g2.mean()) < 0.2 * g1.mean()
