"""Fig 8: dt's per-pool miss-rate and latency curves, and chosen VC sizes.

The full working set fits on chip, so Whirlpool picks the sizes that
minimize each VC's total latency (points/vertices/triangles saturate at
their 0.5/1.5/4 MB working sets).
"""

import numpy as np
from conftest import once

from repro.analysis import format_table
from repro.curves import latency_curve
from repro.schemes import ManualPoolClassifier
from repro.sim.profiling import profile_vcs
from repro.workloads import build_workload

_MB = 1 << 20


def test_fig08_dt_curves(benchmark, report, cfg4):
    def run():
        w = build_workload("delaunay", scale="ref", seed=0)
        mapping, specs = ManualPoolClassifier().classify(w)
        curves = profile_vcs(
            w.trace,
            mapping,
            chunk_bytes=cfg4.chunk_bytes,
            n_chunks=cfg4.model_chunks,
            n_intervals=1,
            sample_shift=2,
        )
        names = {s.vc_id: s.name for s in specs}
        sizes_mb = [0, 1, 2, 4, 6, 8, 12]
        mpki_rows = []
        stall_rows = []
        chosen = {}
        for vc, series in sorted(curves.items()):
            curve = series[0]
            mpki_rows.append(
                [names[vc]] + [round(curve.mpki_at(s * _MB), 2) for s in sizes_mb]
            )
            stalls = latency_curve(
                curve, cfg4.geometry.reach_fn(0), cfg4.latency_for_core(0)
            )
            grid = curve.sizes_bytes()
            stall_rows.append(
                [names[vc]]
                + [
                    round(float(np.interp(s * _MB, grid, stalls)), 3)
                    for s in sizes_mb
                ]
            )
            chosen[names[vc]] = float(grid[int(np.argmin(stalls))]) / _MB
        return mpki_rows, stall_rows, chosen

    mpki_rows, stall_rows, chosen = once(benchmark, run)
    headers = ["pool"] + [f"{s}MB" for s in [0, 1, 2, 4, 6, 8, 12]]
    text = (
        "(a) Miss rate curves (MPKI)\n"
        + format_table(headers, mpki_rows)
        + "\n\n(b) Memory latency curves (data-stall CPI)\n"
        + format_table(headers, stall_rows)
        + "\n\nLatency-minimizing sizes (MB): "
        + ", ".join(f"{k}={v:.1f}" for k, v in sorted(chosen.items()))
    )
    report("fig08_dt_curves", text)
    # Every pool's latency optimum is near its working set, not the
    # whole cache (Fig 8b) — the sum lands near dt's 6 MB footprint.
    assert chosen["points"] < 1.5
    assert chosen["vertices"] < 3.0
    assert chosen["triangles"] < 6.5
    assert 3.0 < sum(chosen.values()) < 9.0
