"""Fig 23 / Appendix B: the combined miss-curve model.

(a) combining two different curves; (b) recombining a self-similar
split reproduces the original curve.
"""

import numpy as np
from conftest import once

from repro.analysis import format_table
from repro.curves import MissCurve, combine_miss_curves


def make(values, instr=1e6):
    values = np.asarray(values, dtype=float)
    return MissCurve(
        misses=values, chunk_bytes=64 * 1024, accesses=float(values[0]),
        instructions=instr,
    )


def test_fig23_combine_model(benchmark, report):
    def run():
        n = 60
        m1 = make(1000 * np.power(0.9, np.arange(n + 1)))
        m2 = make([800.0] * 20 + [50.0] * (n - 19))
        combined = combine_miss_curves(m1, m2)
        # (b) split m1 into two identical half-flow subpools and recombine.
        sub_vals = np.interp(
            np.arange(n + 1) * 2.0, np.arange(n + 1), m1.misses
        ) / 2.0
        sub = make(sub_vals)
        recombined = combine_miss_curves(sub, sub)
        return m1, m2, combined, recombined

    m1, m2, combined, recombined = once(benchmark, run)
    sizes = [0, 5, 10, 20, 40, 60]
    rows = [
        [s, m1.misses[s], m2.misses[s], combined.misses[s], recombined.misses[s]]
        for s in sizes
    ]
    report(
        "fig23_combine_model",
        format_table(
            ["size (chunks)", "m1", "m2", "combined(m1,m2)", "recombine(split m1)"],
            rows,
        ),
    )
    # (a) combined needs more capacity than either input alone.
    assert np.all(combined.misses >= m1.misses - 1e-6)
    assert np.all(combined.misses >= m2.misses - 1e-6)
    # (b) self-similar recombination tracks the original closely.
    err = np.abs(recombined.misses - m1.misses) / max(m1.misses[0], 1.0)
    assert float(err.max()) < 0.2
