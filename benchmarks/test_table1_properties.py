"""Table 1: desirable properties of memory-system management techniques.

Mostly qualitative, but the rows for the schemes implemented here are
checked against their code-level properties (does the scheme use static
information? adapt dynamically? place data? need multi-lookups?).
"""

from conftest import once

from repro.analysis import format_table

#: (scheme, static info, dynamic policy, spatial placement,
#:  single-lookup, easy to use)
TABLE1 = [
    ("Scratchpads", True, False, True, True, False),
    ("Code hints", True, False, False, True, True),
    ("Cache replacement", False, True, False, True, True),
    ("Private D-NUCA", False, True, True, False, True),
    ("Shared D-NUCA", False, True, True, True, True),
    ("Whirlpool", True, True, True, True, True),
]


def test_table1_properties(benchmark, report):
    rows = once(
        benchmark,
        lambda: [
            [name] + ["yes" if v else "no" for v in props]
            for name, *props in TABLE1
        ],
    )
    report(
        "table1_properties",
        format_table(
            [
                "scheme",
                "static info",
                "dynamic policy",
                "spatial placement",
                "single-lookup",
                "easy to use",
            ],
            rows,
        ),
    )
    # Code-level checks on the implemented schemes.
    from repro.core.whirlpool import WhirlpoolScheme
    from repro.schemes import IdealSPDScheme, JigsawScheme

    # Whirlpool: dynamic (reconfigures), spatial (places), single-lookup
    # (VTB-addressed — data never migrates on access).
    assert hasattr(WhirlpoolScheme, "decide")
    assert issubclass(WhirlpoolScheme, JigsawScheme)
    # Private D-NUCA (IdealSPD): multi-level lookups are modeled as extra
    # directory+L4 energy in its accounting.
    assert IdealSPDScheme.name == "IdealSPD"
    whirl_row = [r for r in TABLE1 if r[0] == "Whirlpool"][0]
    assert all(whirl_row[1:])  # Whirlpool is the only all-yes row
