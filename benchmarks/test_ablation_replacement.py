"""Ablation: Whirlpool-style classification for *replacement* (Sec 2.3).

The paper explored extending DRRIP with per-pool insertion dueling
(like TA-DRRIP/CAMP) and found the benefits of static classification in
a monolithic cache to be marginal — replacement is an easier problem
than placement, and DRRIP already does well.  This bench reproduces the
negative result with the event-driven simulator.
"""

import numpy as np
from conftest import once

from repro.analysis import format_table
from repro.nuca import CacheSim
from repro.replacement import DRRIP, LRU, PoolAwareDRRIP
from repro.workloads import build_workload


def test_ablation_replacement(benchmark, report):
    def run():
        w = build_workload("MIS", scale="train", seed=0)
        # Scale down to a small monolithic cache so the event-driven
        # simulation stays fast while keeping WS:cache ratios.
        lines = (w.trace.lines % (1 << 18)).astype(np.int64)[:400_000]
        pools = w.trace.regions[:400_000]
        __, pool_ids = np.unique(pools, return_inverse=True)
        size = 4096 * 64  # 256 KB
        out = {}
        for name, factory in [
            ("LRU", lambda s, w_: LRU(s, w_)),
            ("DRRIP", lambda s, w_: DRRIP(s, w_)),
            (
                "Pool-aware DRRIP",
                lambda s, w_: PoolAwareDRRIP(s, w_, n_pools=4),
            ),
        ]:
            cache = CacheSim(size_bytes=size, ways=16, policy_factory=factory)
            stats = cache.run(lines, pool_ids.astype(np.int64))
            out[name] = stats.misses
        return out

    misses = once(benchmark, run)
    rows = [
        [name, m, round(m / misses["LRU"], 4)] for name, m in misses.items()
    ]
    report(
        "ablation_replacement",
        format_table(["policy", "misses", "vs LRU"], rows),
    )
    # The Sec-2.3 negative result: pool-aware insertion is at best a
    # marginal improvement over plain DRRIP (within a few percent).
    ratio = misses["Pool-aware DRRIP"] / misses["DRRIP"]
    assert 0.85 < ratio < 1.10
