"""Region attribution: allocation ranges -> Whirlpool regions."""

import numpy as np
import pytest

from repro.ingest.attribute import FALLBACK_NAME, AttributionTable
from repro.mem.allocator import Allocation, HeapAllocator, allocation_ranges


def alloc(base, size, callpoint):
    return Allocation(base=base, size=size, pool=-1, callpoint=callpoint)


class TestAllocationRanges:
    def test_sorted_disjoint(self):
        starts, ends, cps = allocation_ranges(
            [alloc(0x2000, 0x100, 7), alloc(0x1000, 0x100, 5)]
        )
        assert starts.tolist() == [0x1000, 0x2000]
        assert ends.tolist() == [0x1100, 0x2100]
        assert cps.tolist() == [5, 7]

    def test_overlap_raises(self):
        # The satellite contract: overlapping live allocations are a
        # corrupt log, not a last-writer-wins tie.
        with pytest.raises(ValueError, match="overlap"):
            allocation_ranges(
                [alloc(0x1000, 0x200, 1), alloc(0x1100, 0x100, 2)]
            )

    def test_adjacent_ranges_ok(self):
        starts, _, _ = allocation_ranges(
            [alloc(0x1000, 0x100, 1), alloc(0x1100, 0x100, 2)]
        )
        assert len(starts) == 2

    def test_empty(self):
        starts, ends, cps = allocation_ranges([])
        assert len(starts) == len(ends) == len(cps) == 0

    def test_heap_allocations_never_overlap(self):
        heap = HeapAllocator()
        pool = heap.pool_create()
        for i in range(50):
            heap.pool_malloc(64 + i * 100, pool, callpoint=i)
        starts, _, _ = allocation_ranges(heap.live_allocations)
        assert len(starts) == 50


class TestAttributionTable:
    def make(self):
        return AttributionTable.from_allocations(
            [alloc(0x1000, 0x100, 11), alloc(0x3000, 0x80, 22)],
            names={11: "graph", 22: "index"},
        )

    def test_attribute_hits_and_fallback(self):
        table = self.make()
        got = table.attribute(
            np.array([0x1000, 0x10FF, 0x1100, 0x3000, 0x307F, 0x3080, 0x0])
        )
        fb = table.fallback_region
        assert got.tolist() == [11, 11, fb, 22, 22, fb, fb]

    def test_fallback_named_heap(self):
        table = self.make()
        assert table.region_names[table.fallback_region] == FALLBACK_NAME

    def test_fallback_never_shadows_a_region(self):
        table = self.make()
        assert table.fallback_region not in (11, 22)

    def test_matches_naive_lookup(self):
        rng = np.random.default_rng(0)
        allocs = [alloc(0x1000 + i * 0x1000, 0x400, 100 + i) for i in range(8)]
        table = AttributionTable.from_allocations(allocs)
        addrs = rng.integers(0, 0xA000, 2000)
        got = table.attribute(addrs)
        for a, r in zip(addrs.tolist(), got.tolist()):
            want = table.fallback_region
            for al in allocs:
                if al.base <= a < al.end:
                    want = al.callpoint
            assert r == want

    def test_from_heap(self):
        heap = HeapAllocator()
        a = heap.pool_malloc(1 << 14, heap.pool_create(), callpoint=9)
        table = AttributionTable.from_heap(heap)
        assert table.attribute(np.array([a.base]))[0] == 9

    def test_log_round_trip(self, tmp_path):
        table = self.make()
        path = tmp_path / "allocs.jsonl"
        table.to_log(path)
        back = AttributionTable.from_log(path)
        assert back.starts.tolist() == table.starts.tolist()
        assert back.ends.tolist() == table.ends.tolist()
        assert back.regions.tolist() == table.regions.tolist()
        assert back.fallback_region == table.fallback_region
        assert back.region_names == table.region_names

    def test_log_overlap_raises(self, tmp_path):
        path = tmp_path / "allocs.jsonl"
        path.write_text(
            '{"base": 4096, "size": 512, "region": 1}\n'
            '{"base": 4352, "size": 512, "region": 2}\n'
        )
        with pytest.raises(ValueError, match="overlap"):
            AttributionTable.from_log(path)

    def test_log_bad_line_raises(self, tmp_path):
        path = tmp_path / "allocs.jsonl"
        path.write_text('{"base": 4096}\n')
        with pytest.raises(ValueError, match="base/size/region"):
            AttributionTable.from_log(path)

    def test_invalid_table_shapes_rejected(self):
        with pytest.raises(ValueError, match="disjoint"):
            AttributionTable(
                starts=np.array([0, 100]),
                ends=np.array([150, 200]),
                regions=np.array([1, 2]),
            )
        with pytest.raises(ValueError, match="end > start"):
            AttributionTable(
                starts=np.array([100]),
                ends=np.array([100]),
                regions=np.array([1]),
            )

    def test_log_fallback_override_leaves_no_phantom_region(self, tmp_path):
        # Regression: overriding the fallback id used to keep the
        # auto-picked fallback's "heap" entry in region_names.
        path = tmp_path / "allocs.jsonl"
        path.write_text(
            '{"fallback_region": 99}\n'
            '{"base": 4096, "size": 512, "region": 5}\n'
            '{"base": 8192, "size": 512, "region": 6}\n'
        )
        table = AttributionTable.from_log(path)
        assert table.fallback_region == 99
        assert set(table.region_names) == {99}
        assert table.region_names[99] == FALLBACK_NAME

    def test_negative_region_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            AttributionTable(
                starts=np.array([0]),
                ends=np.array([64]),
                regions=np.array([-1]),
            )

    def test_empty_table_all_fallback(self):
        table = AttributionTable.from_allocations([])
        got = table.attribute(np.array([1, 2, 3]))
        assert (got == table.fallback_region).all()
