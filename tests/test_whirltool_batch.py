"""Differential tests: batched clustering engine vs the serial oracle.

``WhirlToolAnalyzer.cluster`` (condensed-matrix, batched distance
evaluation) must reproduce ``cluster_reference`` *exactly* on arbitrary
multi-interval profiles: same merge order, same recorded cluster tuple
order, bit-equal distances, same tie-breaks.  Plus the index-based
``assignments`` replay regressions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.whirltool import (
    CallpointProfile,
    ClusteringResult,
    WhirlToolAnalyzer,
)
from repro.curves import MissCurve

CHUNK = 64 * 1024


def profile_strategy():
    """Random multi-interval profiles with varied shapes and idle phases."""

    @st.composite
    def build(draw):
        n_callpoints = draw(st.integers(2, 6))
        n_intervals = draw(st.integers(1, 4))
        n_chunks = draw(st.integers(2, 12))
        rng = np.random.default_rng(draw(st.integers(0, 2**31)))
        curves = {}
        for cp in range(n_callpoints):
            series = []
            for __ in range(n_intervals):
                if rng.random() < 0.2:  # idle phase
                    series.append(
                        MissCurve(
                            np.zeros(n_chunks + 1), CHUNK, 0.0, 1e6
                        )
                    )
                    continue
                vals = rng.uniform(0, 1000, n_chunks + 1)
                series.append(
                    MissCurve(
                        misses=vals,
                        chunk_bytes=CHUNK,
                        accesses=float(np.max(vals)),
                        instructions=float(rng.uniform(1e3, 1e7)),
                    )
                )
            curves[cp] = series
        return CallpointProfile(
            curves=curves,
            names={cp: f"r{cp}" for cp in curves},
            n_intervals=n_intervals,
        )

    return build()


def assert_clusterings_identical(got: ClusteringResult, want: ClusteringResult):
    assert got.callpoints == want.callpoints
    assert got.names == want.names
    assert len(got.merges) == len(want.merges)
    for (ga, gb, gd), (wa, wb, wd) in zip(got.merges, want.merges):
        assert ga == wa  # frozenset equality AND recorded tuple order
        assert gb == wb
        assert gd == wd  # exact float equality, no tolerance


class TestClusterVsReference:
    @settings(max_examples=40, deadline=None)
    @given(profile_strategy())
    def test_bit_identical_merge_trees(self, profile):
        analyzer = WhirlToolAnalyzer()
        got = analyzer.cluster(profile)
        want = analyzer.cluster_reference(profile)
        assert_clusterings_identical(got, want)
        for k in (1, 2, 3, len(profile.curves)):
            assert got.assignments(k) == want.assignments(k)

    def test_exact_distance_ties_break_on_min_callpoint(self):
        """Identical curves force exact distance ties everywhere."""
        vals = np.concatenate([np.full(4, 500.0), np.full(5, 100.0)])

        def twin():
            return MissCurve(vals.copy(), CHUNK, 500.0, 1e6)

        profile = CallpointProfile(
            curves={cp: [twin()] for cp in (3, 7, 11, 19)},
            names={},
            n_intervals=1,
        )
        analyzer = WhirlToolAnalyzer()
        got = analyzer.cluster(profile)
        want = analyzer.cluster_reference(profile)
        assert_clusterings_identical(got, want)
        # The first merge must pick the lexicographically smallest
        # (min_a, min_b) pair among the all-tied distances.
        a, b, __ = got.merges[0]
        assert (min(a), min(b)) == (3, 7)

    def test_single_callpoint_profile(self):
        profile = CallpointProfile(
            curves={5: [MissCurve(np.array([10.0, 0.0]), CHUNK, 10.0, 1e6)]},
            names={5: "only"},
            n_intervals=1,
        )
        result = WhirlToolAnalyzer().cluster(profile)
        assert result.merges == []
        assert result.callpoints == [5]

    def test_interval_grid_mismatch_raises(self):
        c = MissCurve(np.array([10.0, 0.0]), CHUNK, 10.0, 1e6)
        profile = CallpointProfile(
            curves={1: [c], 2: [c, c]}, names={}, n_intervals=2
        )
        with pytest.raises(ValueError):
            WhirlToolAnalyzer().cluster(profile)

    def test_ragged_size_grids_fall_back_to_reference(self):
        """Mixed n_chunks still cluster (serial path), identically."""
        short = MissCurve(np.array([10.0, 2.0, 0.0]), CHUNK, 10.0, 1e6)
        long = MissCurve(
            100 * np.power(0.5, np.arange(8)), CHUNK, 100.0, 1e6
        )
        profile = CallpointProfile(
            curves={1: [short], 2: [long], 3: [short]},
            names={},
            n_intervals=1,
        )
        analyzer = WhirlToolAnalyzer()
        assert_clusterings_identical(
            analyzer.cluster(profile), analyzer.cluster_reference(profile)
        )


class TestAssignmentsReplay:
    def test_duplicate_membership_cut(self):
        """A merge retires exactly one slot per operand, not every
        set-equal cluster (the old list-comparison replay dropped all of
        them, collapsing the cut below the requested pool count)."""
        result = ClusteringResult(
            callpoints=[1, 1, 2, 3],
            merges=[
                (frozenset({1}), frozenset({2}), 0.1),
                (frozenset({1, 2}), frozenset({1}), 0.2),
                (frozenset({1, 2}), frozenset({3}), 0.3),
            ],
        )
        # Cutting at 3 applies only the first merge: the duplicate {1}
        # leaf must survive it, leaving {1}, {1,2}, {3} live.
        assert result.assignments(3) == {1: 1, 2: 1, 3: 2}
        # Cutting at 2 consumes the duplicate leaf via the second merge.
        assert result.assignments(2) == {1: 0, 2: 0, 3: 1}

    def test_duplicate_self_merge(self):
        result = ClusteringResult(
            callpoints=[4, 4],
            merges=[(frozenset({4}), frozenset({4}), 0.0)],
        )
        assert result.assignments(1) == {4: 0}

    def test_invalid_pool_count(self):
        result = ClusteringResult(callpoints=[1, 2])
        with pytest.raises(ValueError):
            result.assignments(0)

    def test_dendrogram_label_order_is_name_sorted(self):
        """Labels sort rendered names, independent of names-dict order."""
        merges = [(frozenset({2, 9}), frozenset({5}), 1.25)]
        forward = ClusteringResult(
            callpoints=[2, 5, 9],
            merges=merges,
            names={2: "zeta", 9: "alpha", 5: "mid"},
        )
        backward = ClusteringResult(
            callpoints=[2, 5, 9],
            merges=merges,
            names={5: "mid", 9: "alpha", 2: "zeta"},
        )
        assert forward.dendrogram_text() == backward.dendrogram_text()
        assert "alpha+zeta" in forward.dendrogram_text()
