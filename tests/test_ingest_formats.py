"""Format round-trips: export -> ingest -> identical traces and curves.

The contract every interchange format must honour: a synthesized trace
exported and re-ingested is the *same* trace — equal line/region arrays
and bit-identical miss curves — so external captures and in-process
fixtures are interchangeable everywhere downstream.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.curves.reuse import StackDistanceProfiler
from repro.ingest import (
    ArraySource,
    RTraceSource,
    RTraceWriter,
    convert_to_rtrace,
    detect_format,
    materialize,
    open_trace_source,
    write_trace_file,
)
from repro.workloads.trace import Trace

DATA = Path(__file__).parent / "data"


def make_trace(n=4000, seed=3):
    rng = np.random.default_rng(seed)
    return Trace(
        lines=rng.integers(0, 700, n),
        regions=rng.integers(0, 4, n).astype(np.int32),
        instructions=n * 9.0,
        region_names={0: "a", 1: "b", 2: "c", 3: "d"},
    )


def curves_of(trace):
    profiler = StackDistanceProfiler(chunk_bytes=1024, n_chunks=8)
    return profiler.profile(
        trace.lines, trace.regions, trace.instructions, n_intervals=2
    )


def assert_same_curves(got, want):
    assert sorted(got) == sorted(want)
    for rid in want:
        for cg, cw in zip(got[rid], want[rid]):
            assert np.array_equal(cg.misses, cw.misses)
            assert cg.accesses == cw.accesses
            assert cg.instructions == cw.instructions


class TestGoldenLackey:
    """Pinned parse of a real-shaped Lackey capture."""

    def test_parse(self):
        source = open_trace_source(DATA / "tiny.lackey")
        assert source.n_records == 5
        assert source.instructions == 5.0  # one per I record
        chunk = next(iter(source.chunks()))
        assert chunk.addrs.tolist() == [
            0x04EBA0C8,
            0x04EBA0C8,
            0x0425D410,
            0x04EBA100,
            0x0425D420,
        ]

    def test_chunked_parse_is_identical(self):
        source = open_trace_source(DATA / "tiny.lackey")
        merged = np.concatenate([c.addrs for c in source.chunks(2)])
        assert merged.tolist() == next(iter(source.chunks())).addrs.tolist()

    def test_malformed_record_raises(self, tmp_path):
        bad = tmp_path / "bad.lackey"
        bad.write_text(" L nothex,8\n")
        with pytest.raises(ValueError, match="malformed"):
            open_trace_source(bad)


class TestRoundTrips:
    @pytest.mark.parametrize("fmt", ["lackey", "mtrace", "csv", "jsonl"])
    def test_export_ingest_round_trip(self, tmp_path, fmt):
        trace = make_trace()
        path = tmp_path / f"t.{fmt}"
        write_trace_file(path, ArraySource.from_trace(trace), fmt)
        source = open_trace_source(path, fmt=fmt)
        assert source.n_records == len(trace)
        got = materialize(source, instructions=trace.instructions)
        assert np.array_equal(got.lines, trace.lines)
        if fmt in ("csv", "jsonl"):  # formats that carry regions
            assert np.array_equal(got.regions, trace.regions)
            assert_same_curves(curves_of(got), curves_of(trace))

    def test_mtrace_carries_instructions(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "t.mtrace"
        write_trace_file(path, ArraySource.from_trace(trace), "mtrace")
        assert open_trace_source(path).instructions == trace.instructions

    def test_rtrace_round_trip_and_curves(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "t.rtrace"
        convert_to_rtrace(
            ArraySource.from_trace(trace), path, max_records=333
        )
        got = materialize(RTraceSource(path))
        assert np.array_equal(got.lines, trace.lines)
        assert np.array_equal(got.regions, trace.regions)
        assert got.instructions == trace.instructions
        assert got.region_names == trace.region_names
        assert_same_curves(curves_of(got), curves_of(trace))

    def test_dedup_is_chunk_invariant_and_matches_builder(self, tmp_path):
        # The streamed --dedup must collapse exactly what
        # TraceBuilder.finalize's private-cache model collapses,
        # independent of where chunk boundaries fall.
        from repro.ingest import RTraceSource

        rng = np.random.default_rng(8)
        addrs = (rng.integers(0, 40, 3000) * 64).astype(np.int64)
        regions = rng.integers(0, 3, 3000).astype(np.int32)
        fingerprints = set()
        for chunk_records in (1, 7, 100, 4096):
            path = tmp_path / f"d{chunk_records}.rtrace"
            header = convert_to_rtrace(
                ArraySource(addrs=addrs, regions=regions),
                path,
                apki=10.0,
                dedup=True,
                max_records=chunk_records,
            )
            fingerprints.add(header["fingerprint"])
        assert len(fingerprints) == 1, "dedup depends on chunk size"
        got = materialize(RTraceSource(tmp_path / "d1.rtrace"))
        # Oracle: drop accesses equal to the region's previous line.
        last: dict[int, int] = {}
        keep = np.ones(len(addrs), dtype=bool)
        for i, (line, r) in enumerate(
            zip((addrs // 64).tolist(), regions.tolist())
        ):
            if last.get(r) == line:
                keep[i] = False
            last[r] = line
        assert np.array_equal(got.lines, (addrs // 64)[keep])
        assert np.array_equal(got.regions, regions[keep])

    def test_rtrace_fingerprint_is_chunk_invariant(self, tmp_path):
        trace = make_trace()
        src = ArraySource.from_trace(trace)
        h1 = convert_to_rtrace(src, tmp_path / "a.rtrace", max_records=100)
        h2 = convert_to_rtrace(src, tmp_path / "b.rtrace", max_records=4096)
        assert h1["fingerprint"] == h2["fingerprint"]
        assert RTraceSource(tmp_path / "a.rtrace").verify_fingerprint()

    def test_rtrace_fingerprint_detects_different_content(self, tmp_path):
        t1, t2 = make_trace(seed=1), make_trace(seed=2)
        h1 = convert_to_rtrace(ArraySource.from_trace(t1), tmp_path / "a.rtrace")
        h2 = convert_to_rtrace(ArraySource.from_trace(t2), tmp_path / "b.rtrace")
        assert h1["fingerprint"] != h2["fingerprint"]

    def test_rtrace_tampered_chunk_fails_verification(self, tmp_path):
        import zipfile

        trace = make_trace(n=200)
        path = tmp_path / "t.rtrace"
        convert_to_rtrace(ArraySource.from_trace(trace), path)
        with zipfile.ZipFile(path) as zf:
            members = {n: zf.read(n) for n in zf.namelist()}
        name = "chunk_000000.lines.npy"
        members[name] = members[name][:-1] + bytes(
            [members[name][-1] ^ 0xFF]
        )
        with zipfile.ZipFile(path, "w") as zf:
            for n, payload in members.items():
                zf.writestr(n, payload)
        assert not RTraceSource(path).verify_fingerprint()


class TestDetection:
    @pytest.mark.parametrize("fmt", ["lackey", "mtrace", "csv", "jsonl"])
    def test_detect_by_content(self, tmp_path, fmt):
        trace = make_trace(n=50)
        path = tmp_path / "mystery.dat"  # extension gives nothing away
        write_trace_file(path, ArraySource.from_trace(trace), fmt)
        assert detect_format(path) == fmt

    def test_detect_rtrace_by_magic(self, tmp_path):
        path = tmp_path / "mystery.bin"
        convert_to_rtrace(ArraySource.from_trace(make_trace(n=50)), path)
        assert detect_format(path) == "rtrace"

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "junk.dat"
        path.write_bytes(b"\x00\x01\x02 not a trace")
        with pytest.raises(ValueError, match="cannot detect"):
            detect_format(path)


class TestMalformedInputs:
    def test_mtrace_truncated_body_rejected(self, tmp_path):
        path = tmp_path / "t.mtrace"
        write_trace_file(
            path, ArraySource.from_trace(make_trace(n=100)), "mtrace"
        )
        data = path.read_bytes()
        path.write_bytes(data[:-8])
        with pytest.raises(ValueError, match="records"):
            open_trace_source(path)

    def test_mtrace_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "t.mtrace"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 32)
        with pytest.raises(ValueError, match="magic"):
            open_trace_source(path, fmt="mtrace")

    def test_csv_mixed_rows_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("addr,region\n100,1\n200\n")
        source = open_trace_source(path)
        with pytest.raises(ValueError, match="region"):
            list(source.chunks())

    def test_jsonl_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"addr": 1}\n{broken\n')
        with pytest.raises(ValueError, match="invalid JSON"):
            open_trace_source(path)

    def test_jsonl_float_address_rejected(self, tmp_path):
        # int(1.9) would silently alias distinct addresses.
        path = tmp_path / "t.jsonl"
        path.write_text('{"addr": 1.9}\n')
        source = open_trace_source(path)
        with pytest.raises(ValueError, match="JSON integer"):
            list(source.chunks())

    def test_jsonl_float_region_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"addr": 64, "region": 1.5}\n')
        source = open_trace_source(path)
        with pytest.raises(ValueError, match="JSON integer"):
            list(source.chunks())

    def test_csv_float_address_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("addr\n1.9\n")
        source = open_trace_source(path)
        with pytest.raises(ValueError):
            list(source.chunks())

    def test_rtrace_unsupported_version_rejected(self, tmp_path):
        import json
        import zipfile

        path = tmp_path / "t.rtrace"
        convert_to_rtrace(ArraySource.from_trace(make_trace(n=20)), path)
        with zipfile.ZipFile(path) as zf:
            members = {n: zf.read(n) for n in zf.namelist()}
        header = json.loads(members["header.json"])
        header["version"] = 99
        members["header.json"] = json.dumps(header).encode()
        with zipfile.ZipFile(path, "w") as zf:
            for n, payload in members.items():
                zf.writestr(n, payload)
        with pytest.raises(ValueError, match="version"):
            RTraceSource(path)

    def test_writer_rejects_mismatched_chunk(self, tmp_path):
        writer = RTraceWriter(tmp_path / "t.rtrace", line_bytes=64)
        with pytest.raises(ValueError, match="equal length"):
            writer.append(np.arange(3), np.zeros(2, dtype=np.int32))
        writer.close()

    def test_negative_address_rejected_at_chunk_boundary(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("addr\n100\n-5\n")
        source = open_trace_source(path)
        with pytest.raises(ValueError, match="negative"):
            list(source.chunks())

    def test_negative_region_rejected_at_ingest(self, tmp_path):
        # Fail here, not at the first simulation of a registered archive.
        path = tmp_path / "t.csv"
        path.write_text("addr,region\n4096,-1\n")
        source = open_trace_source(path)
        with pytest.raises(ValueError, match="negative region"):
            list(source.chunks())

    def test_rtrace_header_missing_keys_rejected(self, tmp_path):
        import json
        import zipfile

        path = tmp_path / "t.rtrace"
        with zipfile.ZipFile(path, "w") as zf:
            zf.writestr(
                "header.json",
                json.dumps({"format": "rtrace", "version": 1}),
            )
        with pytest.raises(ValueError, match="malformed rtrace header"):
            RTraceSource(path)


class TestMaterializeAndFailurePaths:
    def test_empty_source_diagnosed_before_instruction_check(self, tmp_path):
        # Regression: a zero-record capture without an instruction count
        # used to fail with "no instruction count", pointing users at
        # --instructions when the real problem was an empty source.
        path = tmp_path / "empty.csv"
        path.write_text("addr\n")
        source = open_trace_source(path)
        with pytest.raises(ValueError, match="yielded no records"):
            materialize(source)

    def test_convert_failure_unlinks_partial_archive(self, tmp_path):
        class ExplodingSource:
            n_records = 100
            line_bytes = 64
            instructions = 1000.0
            region_names: dict = {}

            def chunks(self, max_records=1 << 21):
                yield ArraySource.from_trace(make_trace(n=50)).chunks().__next__()
                raise RuntimeError("capture truncated mid-stream")

        dst = tmp_path / "t.rtrace"
        with pytest.raises(RuntimeError, match="truncated"):
            convert_to_rtrace(ExplodingSource(), dst)
        # A partial archive must not survive to be mistaken for a
        # complete one (it would carry a half-stream fingerprint).
        assert not dst.exists()

    def test_stored_compression_same_fingerprint_and_trace(self, tmp_path):
        import zipfile

        trace = make_trace(n=1000)
        deflated = tmp_path / "d.rtrace"
        stored = tmp_path / "s.rtrace"
        h1 = convert_to_rtrace(ArraySource.from_trace(trace), deflated)
        h2 = convert_to_rtrace(
            ArraySource.from_trace(trace),
            stored,
            compression=zipfile.ZIP_STORED,
        )
        # The content fingerprint hashes arrays, not container bytes.
        assert h1["fingerprint"] == h2["fingerprint"]
        with zipfile.ZipFile(stored) as zf:
            assert all(
                i.compress_type == zipfile.ZIP_STORED for i in zf.infolist()
            )
        a = materialize(RTraceSource(deflated))
        b = materialize(RTraceSource(stored))
        assert np.array_equal(a.lines, b.lines)
        assert np.array_equal(a.regions, b.regions)
        assert a.instructions == b.instructions

    def test_stored_archive_materializes_zero_copy(self, tmp_path):
        import zipfile

        trace = make_trace(n=500)
        path = tmp_path / "s.rtrace"
        convert_to_rtrace(
            ArraySource.from_trace(trace),
            path,
            compression=zipfile.ZIP_STORED,
        )
        got = materialize(RTraceSource(path))
        assert np.array_equal(got.lines, trace.lines)
        assert np.array_equal(got.regions, trace.regions)
        # Single-chunk mapped archive: the arrays are read-only views
        # over the file mapping, not private heap copies.
        assert not got.lines.flags.writeable
        assert not got.regions.flags.writeable
        assert got.lines.base is not None

    def test_line_chunks_matches_chunks(self, tmp_path):
        trace = make_trace(n=3000)
        path = tmp_path / "t.rtrace"
        convert_to_rtrace(
            ArraySource.from_trace(trace), path, max_records=700
        )
        source = RTraceSource(path)
        via_chunks = np.concatenate(
            [c.addrs // source.line_bytes for c in source.chunks(500)]
        )
        via_lines = np.concatenate(
            [lines for lines, __ in source.line_chunks(500)]
        )
        assert np.array_equal(via_chunks, via_lines)
