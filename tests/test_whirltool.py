"""Unit tests for WhirlTool (profiler, analyzer, runtime)."""

import numpy as np
import pytest

from repro.core.whirltool import (
    CallpointProfile,
    WhirlToolAnalyzer,
    WhirlToolClassifier,
    WhirlToolProfiler,
    pool_distance,
    train_whirltool,
)
from repro.curves import MissCurve
from repro.workloads import build_workload

CHUNK = 64 * 1024


def curve(values, accesses=None, instr=1e6):
    values = np.asarray(values, dtype=float)
    return MissCurve(
        misses=values,
        chunk_bytes=CHUNK,
        accesses=float(values[0]) if accesses is None else accesses,
        instructions=instr,
    )


def friendly(n=40, scale=1000.0):
    """Cache-friendly pool: misses vanish quickly."""
    return curve(scale * np.power(0.7, np.arange(n + 1)))


def streaming(n=40, scale=1000.0):
    return curve([scale] * (n + 1), accesses=scale)


class TestPoolDistance:
    def test_interval_grid_mismatch(self):
        with pytest.raises(ValueError):
            pool_distance([friendly()], [friendly(), friendly()])

    def test_friendly_pair_closer_than_antagonists(self):
        """Fig 15: combining two cache-friendly pools is cheap; combining
        a friendly pool with a streaming one is expensive."""
        f1, f2 = [friendly()], [friendly()]
        s = [streaming()]
        assert pool_distance(f1, s) > pool_distance(f1, f2)

    def test_disjoint_phases_small_distance(self):
        """Pools active in different intervals barely interfere."""
        active = friendly()
        idle = MissCurve(
            misses=np.zeros(41), chunk_bytes=CHUNK, accesses=0, instructions=1e6
        )
        a = [active, idle]
        b = [idle, active]
        together = [active, active]
        assert pool_distance(a, b) < pool_distance(together, together) + 1e-9
        assert pool_distance(a, b) == 0.0

    def test_symmetric(self):
        a, b = [friendly()], [streaming()]
        assert pool_distance(a, b) == pytest.approx(pool_distance(b, a))


class TestAnalyzer:
    def make_profile(self):
        return CallpointProfile(
            curves={
                1: [friendly()],
                2: [friendly(scale=900.0)],
                3: [streaming()],
            },
            names={1: "flags", 2: "verts", 3: "edges"},
        )

    def test_merge_tree_complete(self):
        result = WhirlToolAnalyzer().cluster(self.make_profile())
        assert len(result.merges) == 2  # n-1 merges

    def test_friendly_pools_merge_first(self):
        result = WhirlToolAnalyzer().cluster(self.make_profile())
        first_a, first_b, __ = result.merges[0]
        assert set(first_a) | set(first_b) == {1, 2}

    def test_assignments_cut(self):
        result = WhirlToolAnalyzer().cluster(self.make_profile())
        two = result.assignments(2)
        assert two[1] == two[2]
        assert two[1] != two[3]
        three = result.assignments(3)
        assert len(set(three.values())) == 3

    def test_assignments_more_pools_than_callpoints(self):
        result = WhirlToolAnalyzer().cluster(self.make_profile())
        many = result.assignments(10)
        assert len(set(many.values())) == 3

    def test_assignments_invalid(self):
        result = WhirlToolAnalyzer().cluster(self.make_profile())
        with pytest.raises(ValueError):
            result.assignments(0)

    def test_dendrogram_text(self):
        result = WhirlToolAnalyzer().cluster(self.make_profile())
        text = result.dendrogram_text()
        assert "flags" in text and "edges" in text


class TestProfiler:
    def test_profiles_all_callpoints(self):
        w = build_workload("MIS", scale="train", seed=0)
        profile = WhirlToolProfiler(n_intervals=4).profile(w)
        assert set(profile.callpoints) == set(w.region_names)
        assert profile.n_intervals == 4

    def test_interval_count_respected(self):
        w = build_workload("lbm", scale="train", seed=0)
        profile = WhirlToolProfiler(n_intervals=6).profile(w)
        for series in profile.curves.values():
            assert len(series) == 6


class TestEndToEnd:
    def test_mis_clusters_like_manual(self):
        """WhirlTool should separate edges from the vertex state."""
        cls = train_whirltool("MIS", n_pools=2)
        w = build_workload("MIS", scale="ref", seed=0)
        mapping, specs = cls.classify(w)
        by_name = {}
        for rid, vc in mapping.items():
            by_name[w.region_names[rid]] = vc
        assert by_name["edges"] != by_name["flags"]

    def test_classifier_stable_across_scales(self):
        """Callpoint ids trained on 'train' must resolve on 'ref'."""
        cls = train_whirltool("cactus", n_pools=2)
        ref = build_workload("cactus", scale="ref", seed=0)
        mapping, __ = cls.classify(ref)
        # No region should fall back to the process VC: every callpoint
        # was seen during training.
        assert all(vc != 0 for vc in mapping.values())

    def test_unprofiled_callpoints_use_process_vc(self):
        cls = train_whirltool("MIS", n_pools=3)
        other = build_workload("dict", scale="train", seed=0)
        mapping, specs = cls.classify(other)
        assert set(mapping.values()) == {0}

    def test_invalid_pool_count(self):
        with pytest.raises(ValueError):
            train_whirltool("MIS", n_pools=0)
