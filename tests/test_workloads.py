"""Integration tests over the workload suite.

These check the *semantic* properties the paper's evaluation relies on:
pool working-set sizes, access splits, streaming vs. cacheable reuse, and
phase behaviour.
"""

import numpy as np
import pytest

from repro.curves import StackDistanceProfiler
from repro.workloads import ALL_APPS, MANUAL_APPS, build_workload
from repro.workloads.registry import PBBS_APPS, SPEC_APPS

_MB = 1 << 20


def region_by_name(workload, name):
    for rid, rname in workload.region_names.items():
        if rname == name:
            return rid
    raise KeyError(name)


class TestRegistry:
    def test_suite_size_matches_paper(self):
        assert len(SPEC_APPS) == 15
        assert len(PBBS_APPS) == 16
        assert len(ALL_APPS) == 31

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            build_workload("nbody")  # excluded by the paper (<5 L2 MPKI)

    def test_manual_apps_have_pool_info(self):
        for name in MANUAL_APPS:
            w = build_workload(name, scale="train", seed=0)
            assert w.manual_pools, name
            assert w.table2_loc, name

    def test_determinism(self):
        a = build_workload("MIS", scale="train", seed=3)
        b = build_workload("MIS", scale="train", seed=3)
        assert np.array_equal(a.trace.lines, b.trace.lines)


class TestTable2PoolCounts:
    """Manual pool counts must match Table 2."""

    EXPECTED = {
        "BFS": 4,
        "delaunay": 3,
        "matching": 3,
        "refine": 3,
        "MIS": 3,
        "ST": 3,
        "MST": 3,
        "hull": 2,
        "bzip2": 4,
        "lbm": 2,
        "mcf": 2,
        "cactus": 2,
    }

    @pytest.mark.parametrize("name,pools", sorted(EXPECTED.items()))
    def test_pool_count(self, name, pools):
        w = build_workload(name, scale="train", seed=0)
        assert len(set(w.manual_pools.values())) == pools


class TestDtStructure:
    """dt must reproduce Fig 2: 6 MB working set, 0.5/1.5/4 MB pools."""

    @pytest.fixture(scope="class")
    def dt(self):
        return build_workload("delaunay", scale="ref", seed=0)

    def test_pool_footprints(self, dt):
        fp = dt.trace.region_footprint_bytes()
        by_name = {dt.region_names[r]: b for r, b in fp.items()}
        assert by_name["points"] == pytest.approx(0.5 * _MB, rel=0.2)
        assert by_name["vertices"] == pytest.approx(1.5 * _MB, rel=0.2)
        assert by_name["triangles"] == pytest.approx(4.0 * _MB, rel=0.2)

    def test_access_split_roughly_even(self, dt):
        apki = dt.trace.region_apki()
        shares = np.array(list(apki.values()))
        shares = shares / shares.sum()
        assert shares.min() > 0.2  # paper: split roughly evenly

    def test_total_working_set_fits_cache(self, dt):
        total = sum(dt.trace.region_footprint_bytes().values())
        assert 5 * _MB < total < 8 * _MB  # ~6 MB, fits in 12.5 MB


class TestMisStructure:
    """mis: vertices cache well, edges stream (Fig 9)."""

    @pytest.fixture(scope="class")
    def mis_curves(self):
        w = build_workload("MIS", scale="ref", seed=0)
        prof = StackDistanceProfiler(
            chunk_bytes=256 * 1024, n_chunks=50, sample_shift=3
        )
        curves = prof.profile(
            w.trace.lines, w.trace.regions, w.trace.instructions
        )
        by_name = {w.region_names[r]: cs[0] for r, cs in curves.items()}
        return by_name

    def test_edges_streaming(self, mis_curves):
        edges = mis_curves["edges"]
        # Minimal miss reduction even given the whole LLC.
        assert edges.misses_at(12 * _MB) > 0.85 * edges.misses_at(0)

    def test_vertex_state_cacheable(self, mis_curves):
        # The reuse lives in the per-vertex flags (the offsets array is
        # read once per vertex, like the edge array).
        flags = mis_curves["flags"]
        assert flags.misses_at(6 * _MB) < 0.4 * flags.misses_at(0)


class TestLbmPhases:
    """lbm: pools identical on average, different per phase (Fig 6)."""

    def test_alternating_intensity(self):
        w = build_workload("lbm", scale="ref", seed=0)
        n = len(w.trace)
        n_phases = 10
        bounds = np.linspace(0, n, n_phases + 1).astype(int)
        ids = sorted(w.region_names)
        apki_series = {rid: [] for rid in ids}
        for t in range(n_phases):
            seg = w.trace.regions[bounds[t] : bounds[t + 1]]
            for rid in ids:
                apki_series[rid].append(np.count_nonzero(seg == rid))
        g1, g2 = [np.array(apki_series[r], dtype=float) for r in ids]
        # Per-phase roles alternate...
        flips = np.sign(g1 - g2)
        assert np.count_nonzero(flips[:-1] != flips[1:]) >= 5
        # ...but on average the pools look the same.
        assert g1.sum() == pytest.approx(g2.sum(), rel=0.15)


class TestCactusStructure:
    def test_one_pool_reuses_one_streams(self):
        w = build_workload("cactus", scale="ref", seed=0)
        prof = StackDistanceProfiler(
            chunk_bytes=256 * 1024, n_chunks=50, sample_shift=2
        )
        curves = prof.profile(w.trace.lines, w.trace.regions, w.trace.instructions)
        by_name = {w.region_names[r]: cs[0] for r, cs in curves.items()}
        pugh = by_name["pugh"]
        grid = by_name["grid"]
        assert pugh.misses_at(4 * _MB) < 0.35 * pugh.misses_at(0)
        assert grid.misses_at(12 * _MB) > 0.8 * grid.misses_at(0)


class TestScales:
    @pytest.mark.parametrize("name", ["leslie", "omnet", "xalanc", "setCover"])
    def test_train_differs_from_ref(self, name):
        """Fig 18's sensitive apps change shape across input scales."""
        train = build_workload(name, scale="train", seed=0)
        ref = build_workload(name, scale="ref", seed=0)
        fp_train = sum(train.trace.region_footprint_bytes().values())
        fp_ref = sum(ref.trace.region_footprint_bytes().values())
        assert fp_ref > 1.5 * fp_train

    def test_train_smaller_everywhere(self):
        for name in ["mcf", "sort", "MIS"]:
            train = build_workload(name, scale="train", seed=0)
            ref = build_workload(name, scale="ref", seed=0)
            assert len(train.trace) < len(ref.trace)
