"""Unit tests for mesh geometry and reach curves."""

import numpy as np
import pytest

from repro.nuca import MeshGeometry, Placement


class TestMeshBasics:
    def test_bank_count(self):
        assert MeshGeometry(dim=5, n_cores=4).n_banks == 25
        assert MeshGeometry(dim=9, n_cores=16).n_banks == 81

    def test_total_bytes(self):
        geo = MeshGeometry(dim=5, n_cores=4, bank_bytes=512 * 1024)
        assert geo.total_bytes == 25 * 512 * 1024

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            MeshGeometry(dim=0, n_cores=1)

    def test_invalid_mcus(self):
        with pytest.raises(ValueError):
            MeshGeometry(dim=5, n_cores=4, n_mcus=5)

    def test_four_cores_on_distinct_sides(self):
        geo = MeshGeometry(dim=5, n_cores=4)
        entries = geo.core_entries
        assert len(set(entries)) == 4
        # First core on the west edge (col 0), mid-row — where dt runs.
        assert entries[0] == (2, 0)

    def test_sixteen_cores_distinct(self):
        geo = MeshGeometry(dim=9, n_cores=16)
        assert len(set(geo.core_entries)) == 16
        # All on the perimeter.
        for r, c in geo.core_entries:
            assert r in (0, 8) or c in (0, 8)


class TestDistances:
    def test_distance_to_own_tile_is_zero(self):
        geo = MeshGeometry(dim=5, n_cores=4)
        r, c = geo.core_entries[0]
        bank = r * 5 + c
        assert geo.distances(0)[bank] == 0

    def test_manhattan(self):
        geo = MeshGeometry(dim=5, n_cores=4)
        # Core 0 at (2,0); bank (0,4) is 2+4=6 hops away.
        assert geo.distances(0)[0 * 5 + 4] == 6

    def test_snuca_larger_than_closest(self):
        geo = MeshGeometry(dim=5, n_cores=4)
        assert geo.snuca_avg_hops(0) > geo.reach_avg_hops(0, 512 * 1024)

    def test_mem_hops_nearest_corner(self):
        geo = MeshGeometry(dim=5, n_cores=4, n_mcus=1)
        # MCU at (0,0); core 0 at (2,0): 2 hops.
        assert geo.mem_hops(0) == 2

    def test_more_mcus_reduce_mem_hops(self):
        one = MeshGeometry(dim=9, n_cores=16, n_mcus=1)
        four = MeshGeometry(dim=9, n_cores=16, n_mcus=4)
        avg_one = np.mean([one.mem_hops(c) for c in range(16)])
        avg_four = np.mean([four.mem_hops(c) for c in range(16)])
        assert avg_four < avg_one


class TestReach:
    def test_reach_monotone_in_size(self):
        geo = MeshGeometry(dim=5, n_cores=4)
        sizes = np.linspace(0, geo.total_bytes, 30)
        hops = [geo.reach_avg_hops(0, s) for s in sizes]
        assert all(b >= a - 1e-9 for a, b in zip(hops, hops[1:]))

    def test_reach_at_zero_is_closest_bank(self):
        geo = MeshGeometry(dim=5, n_cores=4)
        assert geo.reach_avg_hops(0, 0) == geo.distances(0).min()

    def test_reach_at_full_is_snuca_mean(self):
        geo = MeshGeometry(dim=5, n_cores=4)
        assert geo.reach_avg_hops(0, geo.total_bytes) == pytest.approx(
            geo.snuca_avg_hops(0)
        )

    def test_reach_clamps_past_capacity(self):
        geo = MeshGeometry(dim=5, n_cores=4)
        assert geo.reach_avg_hops(0, geo.total_bytes * 10) == pytest.approx(
            geo.snuca_avg_hops(0)
        )

    def test_partial_bank(self):
        geo = MeshGeometry(dim=5, n_cores=4, bank_bytes=1024)
        # Half a bank: only the closest bank is used.
        assert geo.reach_avg_hops(0, 512) == geo.distances(0).min()

    def test_reach_fn_matches_method(self):
        geo = MeshGeometry(dim=5, n_cores=4)
        fn = geo.reach_fn(1)
        assert fn(2 * 512 * 1024) == geo.reach_avg_hops(1, 2 * 512 * 1024)


class TestPlacement:
    def test_closest_placement_totals(self):
        geo = MeshGeometry(dim=5, n_cores=4, bank_bytes=1024)
        p = geo.closest_placement(0, 2500)
        assert p.total_bytes == 2500
        assert len(p.bank_bytes) == 3  # two full banks + one partial

    def test_closest_placement_avg_hops_matches_reach(self):
        geo = MeshGeometry(dim=5, n_cores=4)
        size = 3 * 512 * 1024 + 1000
        p = geo.closest_placement(0, size)
        assert p.avg_hops(geo.distances(0)) == pytest.approx(
            geo.reach_avg_hops(0, size)
        )

    def test_placement_add_negative_rejected(self):
        with pytest.raises(ValueError):
            Placement().add(0, -5)

    def test_empty_placement(self):
        p = Placement()
        assert p.total_bytes == 0
        assert p.avg_hops(np.zeros(4)) == 0.0


class TestCentroid:
    def test_single_core(self):
        geo = MeshGeometry(dim=5, n_cores=4)
        assert geo.centroid_core({2: 1.0}) == 2

    def test_empty_weights(self):
        geo = MeshGeometry(dim=5, n_cores=4)
        assert geo.centroid_core({}) == 0

    def test_balanced_weights_pick_some_core(self):
        geo = MeshGeometry(dim=9, n_cores=16)
        core = geo.centroid_core({c: 1.0 for c in range(16)})
        assert 0 <= core < 16
