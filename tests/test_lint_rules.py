"""Fixture tests for ``repro lint``: each rule against one violating and
one clean synthetic tree, plus suppression, output schema, and explain.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.devtools.lint import (
    RULES,
    Finding,
    explain_rule,
    format_json,
    format_text,
    lint_paths,
)

MANIFEST_HEADER = """\
[lint]
default_paths = ["src", "tests"]
"""


def make_tree(tmp_path, files, manifest=""):
    """Materialize a synthetic project and its invariants manifest."""
    root = tmp_path / "proj"
    root.mkdir(exist_ok=True)
    (root / "pyproject.toml").write_text("[project]\nname = 'x'\n")
    for rel, text in files.items():
        p = root / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(text))
    mpath = root / "invariants.toml"
    mpath.write_text(MANIFEST_HEADER + textwrap.dedent(manifest))
    return root, mpath


def run(root, mpath, rules):
    return lint_paths(rules=rules, root=root, manifest_path=mpath)


# ----------------------------------------------------------------------
# callpoint-pin
# ----------------------------------------------------------------------
PIN_MANIFEST = """
[[callpoint_pin]]
file = "src/registry.py"
line = 3
statement = "return x"
"""

PIN_OK = """\
def f():
    x = 1
    return x
"""

PIN_SHIFTED = """\
# a comment pushing everything down
def f():
    x = 1
    return x
"""


def test_callpoint_pin_clean(tmp_path):
    root, m = make_tree(tmp_path, {"src/registry.py": PIN_OK}, PIN_MANIFEST)
    assert run(root, m, ["callpoint-pin"]) == []


def test_callpoint_pin_shifted_line_fails(tmp_path):
    root, m = make_tree(
        tmp_path, {"src/registry.py": PIN_SHIFTED}, PIN_MANIFEST
    )
    findings = run(root, m, ["callpoint-pin"])
    assert len(findings) == 1
    assert findings[0].file == "src/registry.py"
    assert findings[0].line == 3
    assert "found at line 4" in findings[0].message


# ----------------------------------------------------------------------
# oracle-pairing
# ----------------------------------------------------------------------
ORACLE_MANIFEST = """
[[engine]]
kernel = "fast_sum"
module = "src/kern.py"
reference = "fast_sum_reference"
"""

ORACLE_OK = {
    "src/kern.py": """\
        def fast_sum(xs):
            return sum(xs)

        def fast_sum_reference(xs):
            total = 0
            for x in xs:
                total += x
            return total
        """,
    "tests/test_kern.py": """\
        from kern import fast_sum, fast_sum_reference

        def test_identical():
            assert fast_sum([1, 2]) == fast_sum_reference([1, 2])
        """,
}


def test_oracle_pairing_clean(tmp_path):
    root, m = make_tree(tmp_path, ORACLE_OK, ORACLE_MANIFEST)
    assert run(root, m, ["oracle-pairing"]) == []


def test_oracle_pairing_renamed_reference_fails(tmp_path):
    files = dict(ORACLE_OK)
    files["src/kern.py"] = files["src/kern.py"].replace(
        "fast_sum_reference", "fast_sum_oracle"
    )
    root, m = make_tree(tmp_path, files, ORACLE_MANIFEST)
    findings = run(root, m, ["oracle-pairing"])
    assert len(findings) == 1
    assert "no retained reference oracle" in findings[0].message


def test_oracle_pairing_missing_test_pin_fails(tmp_path):
    files = {"src/kern.py": ORACLE_OK["src/kern.py"]}
    root, m = make_tree(tmp_path, files, ORACLE_MANIFEST)
    findings = run(root, m, ["oracle-pairing"])
    assert len(findings) == 1
    assert "no test or benchmark file references both" in findings[0].message


def test_oracle_pairing_unregistered_engine_kernel_fails(tmp_path):
    files = {
        "src/new.py": """\
            def shiny(xs, engine="batched"):
                return list(xs)
            """
    }
    root, m = make_tree(tmp_path, files, "")
    findings = run(root, m, ["oracle-pairing"])
    assert len(findings) == 1
    assert "not registered" in findings[0].message


def test_oracle_pairing_inline_serial_engine(tmp_path):
    manifest = """
    [[engine]]
    kernel = "simulate"
    module = "src/drv.py"
    reference = "engine:serial"
    """
    files = {
        "src/drv.py": """\
            def simulate(trace, engine="batched"):
                if engine == "serial":
                    return 1
                return 2
            """,
        "tests/test_drv.py": """\
            from drv import simulate

            def test_engines_agree():
                assert simulate([], engine="serial") == simulate([])
            """,
    }
    root, m = make_tree(tmp_path, files, manifest)
    assert run(root, m, ["oracle-pairing"]) == []
    # Drop the serial path: the inline oracle is gone.
    files["src/drv.py"] = """\
        def simulate(trace, engine="batched"):
            return 2
        """
    root, m = make_tree(tmp_path, files, manifest)
    findings = run(root, m, ["oracle-pairing"])
    assert len(findings) == 1
    assert "never dispatches" in findings[0].message


# ----------------------------------------------------------------------
# atomic-publish
# ----------------------------------------------------------------------
ATOMIC_MANIFEST = """
[atomic_publish]
modules = ["src/repro/store"]
"""

ATOMIC_BAD = {
    "src/repro/store/sink.py": """\
        import os
        import shutil

        def save(path, data):
            with open(path, "w") as f:
                f.write(data)

        def move(src, dst):
            shutil.move(src, dst)
        """
}

ATOMIC_OK = {
    "src/repro/store/sink.py": """\
        import os

        def save(path, data):
            tmp = f".{path}.tmp"
            with open(tmp, "w") as f:
                f.write(data)
            os.replace(tmp, path)

        def append(path, line):
            with open(path, "a") as f:
                f.write(line)
        """
}


def test_atomic_publish_flags_truncating_writes(tmp_path):
    root, m = make_tree(tmp_path, ATOMIC_BAD, ATOMIC_MANIFEST)
    findings = run(root, m, ["atomic-publish"])
    assert len(findings) == 2
    messages = " | ".join(f.message for f in findings)
    assert "truncates a final path" in messages
    assert "shutil.move" in messages


def test_atomic_publish_accepts_staging_and_append(tmp_path):
    root, m = make_tree(tmp_path, ATOMIC_OK, ATOMIC_MANIFEST)
    assert run(root, m, ["atomic-publish"]) == []


def test_atomic_publish_ignores_out_of_scope_files(tmp_path):
    files = {"src/repro/other.py": ATOMIC_BAD["src/repro/store/sink.py"]}
    root, m = make_tree(tmp_path, files, ATOMIC_MANIFEST)
    assert run(root, m, ["atomic-publish"]) == []


# ----------------------------------------------------------------------
# mmap-write-safety
# ----------------------------------------------------------------------
MMAP_BAD = {
    "src/use.py": """\
        import numpy as np
        from repro.store.profiles import load_profile

        def corrupt(path):
            arr = load_profile(path, 4096, 1)
            arr[0] = 1.0
            arr.sort()
            np.clip(arr, 0.0, None, out=arr)
            return arr

        def corrupt_payload(curve):
            curve.misses[0] = 0.0
        """
}

MMAP_OK = {
    "src/use.py": """\
        import numpy as np
        from repro.store.profiles import load_profile

        def safe(path):
            arr = np.array(load_profile(path, 4096, 1))
            arr[0] = 1.0
            arr.sort()
            return arr

        def scalar_counter(stats):
            stats.misses += 1

        def monotone(curve):
            m = np.asarray(curve.misses, dtype=np.float64)
            m = np.minimum.accumulate(m)
            np.clip(m, 0.0, None, out=m)
            return m
        """
}


def test_mmap_write_safety_flags_view_mutation(tmp_path):
    root, m = make_tree(tmp_path, MMAP_BAD, "")
    findings = run(root, m, ["mmap-write-safety"])
    assert len(findings) == 4
    messages = " | ".join(f.message for f in findings)
    assert "subscript store" in messages
    assert ".sort()" in messages
    assert "out=arr" in messages
    assert "curve.misses" in messages


def test_mmap_write_safety_allows_copies_and_counters(tmp_path):
    root, m = make_tree(tmp_path, MMAP_OK, "")
    assert run(root, m, ["mmap-write-safety"]) == []


# ----------------------------------------------------------------------
# fingerprint-version
# ----------------------------------------------------------------------
FP_SOURCE = """\
import hashlib

FORMAT_VERSION = 2

def _fingerprint(trace):
    h = hashlib.blake2b(digest_size=16)
    h.update(trace.lines.tobytes())
    h.update(f"v{FORMAT_VERSION}".encode())
    return h.hexdigest()
"""


def _pin_digest(root):
    import ast

    from repro.devtools.lint.base import Rule
    from repro.devtools.lint.rules_layout import fingerprint_fields_digest

    tree = ast.parse((root / "src/fp.py").read_text())
    digest, _ = fingerprint_fields_digest(tree, ["_fingerprint"], Rule())
    return digest


def fp_manifest(digest, version=2):
    return f"""
    [[fingerprint]]
    name = "t"
    file = "src/fp.py"
    functions = ["_fingerprint"]
    version_file = "src/fp.py"
    version_const = "FORMAT_VERSION"
    version = {version}
    fields_digest = "{digest}"
    """


def test_fingerprint_version_clean(tmp_path):
    root, _ = make_tree(tmp_path, {"src/fp.py": FP_SOURCE}, "")
    digest = _pin_digest(root)
    root, m = make_tree(
        tmp_path, {"src/fp.py": FP_SOURCE}, fp_manifest(digest)
    )
    assert run(root, m, ["fingerprint-version"]) == []


def test_fingerprint_field_change_without_bump_fails(tmp_path):
    root, _ = make_tree(tmp_path, {"src/fp.py": FP_SOURCE}, "")
    digest = _pin_digest(root)
    changed = FP_SOURCE.replace(
        "h.update(trace.lines.tobytes())",
        "h.update(trace.lines.tobytes())\n    h.update(trace.regions.tobytes())",
    )
    root, m = make_tree(
        tmp_path, {"src/fp.py": changed}, fp_manifest(digest)
    )
    findings = run(root, m, ["fingerprint-version"])
    assert len(findings) == 1
    assert "bump the format version" in findings[0].message


def test_fingerprint_field_change_with_bump_asks_for_repin(tmp_path):
    root, _ = make_tree(tmp_path, {"src/fp.py": FP_SOURCE}, "")
    digest = _pin_digest(root)
    changed = FP_SOURCE.replace("FORMAT_VERSION = 2", "FORMAT_VERSION = 3")
    changed = changed.replace(
        "h.update(trace.lines.tobytes())",
        "h.update(trace.lines.tobytes())\n    h.update(b'salt')",
    )
    root, m = make_tree(
        tmp_path, {"src/fp.py": changed}, fp_manifest(digest)
    )
    findings = run(root, m, ["fingerprint-version"])
    assert len(findings) == 1
    assert "re-pin" in findings[0].message
    # The message carries the new digest so re-pinning is mechanical.
    assert _pin_digest(root) in findings[0].message


# ----------------------------------------------------------------------
# packed-word-dtype
# ----------------------------------------------------------------------
PACKED_BAD = {
    "src/pack.py": """\
        import numpy as np

        def pack(order, counts):
            packed = order << 32 | counts
            return packed
        """
}

PACKED_OK = {
    "src/pack.py": """\
        import numpy as np

        BASE = 1 << 32

        def pack(order, counts):
            packed = order.astype(np.int64) << 32 | counts
            return packed

        def pack_named(order, counts):
            wide = order.astype(np.uint64)
            packed = wide << 32 | counts
            return packed
        """
}


def test_packed_word_dtype_flags_narrow_shift(tmp_path):
    root, m = make_tree(tmp_path, PACKED_BAD, "")
    findings = run(root, m, ["packed-word-dtype"])
    assert len(findings) == 1
    assert "not visibly 64-bit" in findings[0].message


def test_packed_word_dtype_accepts_wide_and_python_ints(tmp_path):
    root, m = make_tree(tmp_path, PACKED_OK, "")
    assert run(root, m, ["packed-word-dtype"]) == []


# ----------------------------------------------------------------------
# obs-span-pairing
# ----------------------------------------------------------------------
OBS_BAD = {
    "src/svc.py": """\
        from repro import obs

        def unentered(job):
            obs.span("engine.job", key=job)  # never entered

        def discarded(job):
            obs.start_span("submit", key=job)  # handle dropped

        def never_ended(job):
            handle = obs.start_span("submit", key=job)
            return handle
        """
}

OBS_OK = {
    "src/svc.py": """\
        from repro import obs

        def traced(job):
            with obs.span("engine.job", key=job):
                return 1

        def split(job):
            handle = obs.start_span("submit", key=job)
            handle.end(outcome="completed")
        """
}

OBS_MANIFEST = """
[obs]
instrumented = ["src/svc.py"]
"""


def test_obs_span_pairing_flags_broken_pairs(tmp_path):
    root, m = make_tree(tmp_path, OBS_BAD, "")
    findings = run(root, m, ["obs-span-pairing"])
    messages = " | ".join(f.message for f in findings)
    assert len(findings) == 3
    assert "outside a `with` statement" in messages
    assert "handle discarded" in messages
    assert "no handle .end()" in messages


def test_obs_span_pairing_clean(tmp_path):
    root, m = make_tree(tmp_path, OBS_OK, OBS_MANIFEST)
    assert run(root, m, ["obs-span-pairing"]) == []


def test_obs_span_pairing_bare_import_alias(tmp_path):
    files = {
        "src/svc.py": """\
            from repro.obs import span

            def unentered():
                span("x")
            """
    }
    root, m = make_tree(tmp_path, files, "")
    findings = run(root, m, ["obs-span-pairing"])
    assert len(findings) == 1
    assert "span(...) outside" in findings[0].message


def test_obs_manifest_flags_stripped_instrumentation(tmp_path):
    files = {"src/svc.py": "def f():\n    return 1\n"}
    root, m = make_tree(tmp_path, files, OBS_MANIFEST)
    findings = run(root, m, ["obs-span-pairing"])
    assert len(findings) == 1
    assert "no longer imports repro.obs" in findings[0].message


def test_obs_manifest_flags_missing_module(tmp_path):
    root, m = make_tree(tmp_path, {"src/other.py": "x = 1\n"}, OBS_MANIFEST)
    findings = run(root, m, ["obs-span-pairing"])
    assert len(findings) == 1
    assert "missing from the tree" in findings[0].message


# ----------------------------------------------------------------------
# suppression, schema, explain, framework
# ----------------------------------------------------------------------
def test_noqa_suppresses_specific_rule(tmp_path):
    files = {
        "src/pack.py": """\
            def pack(order, counts):
                packed = order << 32 | counts  # repro: noqa[packed-word-dtype]
                return packed
            """
    }
    root, m = make_tree(tmp_path, files, "")
    assert run(root, m, ["packed-word-dtype"]) == []


def test_noqa_star_suppresses_all_rules(tmp_path):
    files = {
        "src/pack.py": """\
            def pack(order, counts):
                return order << 32  # repro: noqa[*]
            """
    }
    root, m = make_tree(tmp_path, files, "")
    assert run(root, m, ["packed-word-dtype"]) == []


def test_noqa_other_rule_does_not_suppress(tmp_path):
    files = {
        "src/pack.py": """\
            def pack(order, counts):
                return order << 32  # repro: noqa[atomic-publish]
            """
    }
    root, m = make_tree(tmp_path, files, "")
    assert len(run(root, m, ["packed-word-dtype"])) == 1


def test_parse_error_reported_not_crashing(tmp_path):
    root, m = make_tree(tmp_path, {"src/broken.py": "def f(:\n"}, "")
    findings = run(root, m, None)
    assert [f.rule_id for f in findings] == ["parse-error"]


def test_json_schema(tmp_path):
    root, m = make_tree(tmp_path, PACKED_BAD, "")
    findings = run(root, m, ["packed-word-dtype"])
    doc = format_json(findings, root)
    assert doc["version"] == 1
    assert doc["root"] == str(root)
    assert doc["counts"] == {"packed-word-dtype": 1}
    (record,) = doc["findings"]
    assert set(record) == {"file", "line", "rule", "message"}
    assert record["file"] == "src/pack.py"
    assert isinstance(record["line"], int)
    json.dumps(doc)  # round-trips


def test_text_format(tmp_path):
    root, m = make_tree(tmp_path, PACKED_BAD, "")
    findings = run(root, m, ["packed-word-dtype"])
    text = format_text(findings)
    assert text.splitlines()[0].startswith(
        "src/pack.py:4: [packed-word-dtype]"
    )
    assert format_text([]) == "no findings"


def test_explain_prints_rationale():
    for rule_id in RULES:
        text = explain_rule(rule_id)
        assert text.startswith(f"{rule_id}:")
        assert len(text.splitlines()) > 1, rule_id
    with pytest.raises(ValueError, match="unknown rule id"):
        explain_rule("no-such-rule")


def test_unknown_rule_id_rejected(tmp_path):
    root, m = make_tree(tmp_path, {}, "")
    with pytest.raises(ValueError, match="unknown rule ids"):
        run(root, m, ["bogus"])


def test_findings_sort_stably():
    a = Finding("a.py", 2, "r", "m")
    b = Finding("a.py", 1, "r", "m")
    c = Finding("b.py", 1, "r", "m")
    assert sorted([c, a, b]) == [b, a, c]


def test_repo_tree_is_lint_clean():
    """The shipped tree must satisfy its own invariants."""
    repo = Path(__file__).resolve().parents[1]
    findings = lint_paths(root=repo)
    assert findings == [], format_text(findings)
