"""Unit tests for trace containers and the trace builder."""

import numpy as np
import pytest

from repro.mem import HeapAllocator
from repro.workloads.trace import Trace, TraceBuilder, interleave


class TestTrace:
    def make(self):
        return Trace(
            lines=np.array([1, 2, 3, 1]),
            regions=np.array([0, 1, 1, 0]),
            instructions=4000.0,
            region_names={0: "a", 1: "b"},
        )

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Trace(lines=np.zeros(2), regions=np.zeros(3), instructions=1.0)

    def test_nonpositive_instructions_rejected(self):
        with pytest.raises(ValueError):
            Trace(lines=np.zeros(2), regions=np.zeros(2), instructions=0.0)

    def test_apki(self):
        assert self.make().apki == 1.0

    def test_region_apki(self):
        apki = self.make().region_apki()
        assert apki[0] == pytest.approx(0.5)
        assert apki[1] == pytest.approx(0.5)

    def test_region_footprint(self):
        fp = self.make().region_footprint_bytes()
        assert fp[0] == 64  # one distinct line
        assert fp[1] == 128  # two distinct lines

    def test_region_footprint_matches_per_region_unique(self):
        """The lexsort pass equals the per-region np.unique oracle."""
        rng = np.random.default_rng(42)
        for n in (1, 7, 1000):
            trace = Trace(
                lines=rng.integers(0, 40, n),
                regions=rng.integers(0, 6, n).astype(np.int32),
                instructions=1000.0,
            )
            want = {
                int(rid): int(
                    len(np.unique(trace.lines[trace.regions == rid])) * 64
                )
                for rid in np.unique(trace.regions)
            }
            assert trace.region_footprint_bytes() == want

    def test_region_footprint_empty_trace_raises_nothing(self):
        # Trace forbids zero instructions but not zero accesses.
        trace = Trace(
            lines=np.array([], dtype=np.int64),
            regions=np.array([], dtype=np.int32),
            instructions=1.0,
        )
        assert trace.region_footprint_bytes() == {}

    def test_slice_prorates_instructions(self):
        t = self.make().slice_accesses(0, 2)
        assert len(t) == 2
        assert t.instructions == pytest.approx(2000.0)

    def test_empty_slice_is_valid(self):
        # Regression: an empty window used to produce instructions == 0,
        # which Trace.__post_init__ rejects.
        for lo, hi in ((2, 2), (0, 0), (3, 1)):
            t = self.make().slice_accesses(lo, hi)
            assert len(t) == 0
            assert t.instructions > 0

    def test_empty_slice_apki_is_zero(self):
        assert self.make().slice_accesses(1, 1).apki == 0.0


class TestTraceValidation:
    """Malformed address input is a real path once ingestion exists."""

    def test_negative_lines_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Trace(
                lines=np.array([1, -2, 3]),
                regions=np.zeros(3, dtype=np.int32),
                instructions=1.0,
            )

    def test_float_lines_rejected(self):
        with pytest.raises(ValueError, match="integer"):
            Trace(
                lines=np.array([1.5, 2.0]),
                regions=np.zeros(2, dtype=np.int32),
                instructions=1.0,
            )

    def test_float_regions_rejected(self):
        with pytest.raises(ValueError, match="integer"):
            Trace(
                lines=np.array([1, 2]),
                regions=np.array([0.0, 1.0]),
                instructions=1.0,
            )

    def test_negative_regions_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Trace(
                lines=np.array([1, 2]),
                regions=np.array([0, -1]),
                instructions=1.0,
            )

    def test_empty_float_arrays_allowed(self):
        # numpy defaults [] to float64; empty traces stay constructible.
        t = Trace(lines=np.array([]), regions=np.array([]), instructions=1.0)
        assert len(t) == 0
        assert t.lines.dtype == np.int64

    def test_builder_rejects_negative_addresses(self):
        tb = TraceBuilder()
        r = tb.region("data")
        with pytest.raises(ValueError, match="non-negative"):
            tb.access(np.array([0, -64]), r)

    def test_builder_rejects_float_addresses(self):
        tb = TraceBuilder()
        r = tb.region("data")
        with pytest.raises(ValueError, match="integer"):
            tb.access(np.array([0.5, 64.0]), r)

    def test_builder_rejects_negative_interleaved(self):
        tb = TraceBuilder()
        ra = tb.region("a")
        rb = tb.region("b")
        with pytest.raises(ValueError, match="non-negative"):
            tb.access_interleaved(
                {ra: np.array([0, 64]), rb: np.array([-128])}
            )

    def test_uint_addresses_accepted(self):
        tb = TraceBuilder()
        r = tb.region("data")
        tb.access(np.array([0, 64], dtype=np.uint64), r)
        assert tb.n_accesses == 2

    def test_uint64_overflow_rejected(self):
        # Kernel-space addresses >= 2^63 would wrap negative in the
        # int64 cast instead of staying validated.
        with pytest.raises(ValueError, match="range"):
            Trace(
                lines=np.array([2**63], dtype=np.uint64),
                regions=np.zeros(1, dtype=np.int32),
                instructions=1.0,
            )

    def test_region_int32_overflow_rejected(self):
        with pytest.raises(ValueError, match="range"):
            Trace(
                lines=np.array([1]),
                regions=np.array([2**31]),
                instructions=1.0,
            )


class TestInterleave:
    def test_proportional(self):
        a = np.array([1, 1, 1, 1])
        b = np.array([2, 2])
        merged, src = interleave(a, b)
        assert len(merged) == 6
        # b's elements land near positions 1/4 and 3/4 of the stream.
        positions = np.nonzero(src == 1)[0]
        assert positions[0] in (1, 2)
        assert positions[1] in (4, 5)

    def test_preserves_order_within_stream(self):
        a = np.array([10, 20, 30])
        b = np.array([1, 2, 3])
        merged, src = interleave(a, b)
        assert list(merged[src == 0]) == [10, 20, 30]
        assert list(merged[src == 1]) == [1, 2, 3]

    def test_empty_streams_skipped(self):
        merged, src = interleave(np.array([]), np.array([5]))
        assert list(merged) == [5]
        assert list(src) == [1]

    def test_all_empty(self):
        merged, src = interleave(np.array([]), np.array([]))
        assert len(merged) == 0


class TestTraceBuilder:
    def test_basic_flow(self):
        tb = TraceBuilder()
        r = tb.region("data")
        tb.access(np.array([0, 64, 128]), r)
        trace = tb.finalize(instructions=3000.0)
        assert list(trace.lines) == [0, 1, 2]
        assert trace.region_names[r] == "data"

    def test_unregistered_region_rejected(self):
        tb = TraceBuilder()
        with pytest.raises(ValueError):
            tb.access(np.array([0]), 99)

    def test_empty_finalize_rejected(self):
        with pytest.raises(ValueError):
            TraceBuilder().finalize(instructions=1.0)

    def test_region_with_allocation_uses_callpoint(self):
        heap = HeapAllocator()
        a = heap.malloc(100)
        tb = TraceBuilder()
        rid = tb.region("x", a)
        assert rid == a.callpoint

    def test_distinct_auto_region_ids(self):
        tb = TraceBuilder()
        assert tb.region("a") != tb.region("b")

    def test_callpoint_collision_rejected(self):
        # Regression: two allocations sharing a callpoint id used to
        # silently overwrite the first region's name.
        heap = HeapAllocator()
        a = heap.malloc(100, callpoint=42)
        b = heap.malloc(200, callpoint=42)
        tb = TraceBuilder()
        tb.region("first", a)
        with pytest.raises(ValueError, match="callpoint collision"):
            tb.region("second", b)

    def test_callpoint_reregistration_same_name_ok(self):
        heap = HeapAllocator()
        a = heap.malloc(100, callpoint=42)
        tb = TraceBuilder()
        assert tb.region("x", a) == tb.region("x", a) == 42

    def test_callpoint_collision_with_auto_id_rejected(self):
        heap = HeapAllocator()
        a = heap.malloc(100, callpoint=0)
        tb = TraceBuilder()
        tb.region("auto")  # takes id 0
        with pytest.raises(ValueError, match="callpoint collision"):
            tb.region("allocated", a)

    def test_interleaved_accesses(self):
        tb = TraceBuilder()
        ra = tb.region("a")
        rb = tb.region("b")
        tb.access_interleaved({ra: np.array([0, 64]), rb: np.array([128, 192])})
        trace = tb.finalize(1000.0)
        assert len(trace) == 4
        assert set(trace.regions.tolist()) == {ra, rb}

    def test_n_accesses(self):
        tb = TraceBuilder()
        r = tb.region("a")
        tb.access(np.array([0, 64]), r)
        assert tb.n_accesses == 2
