"""Cross-validation: analytical models vs the event-driven simulator.

The NUCA schemes are analytical (miss curves + latency model); these
tests pin them against the concrete set-associative simulator so the
analytical layer cannot silently drift.
"""

import numpy as np
import pytest

from repro.curves import StackDistanceProfiler
from repro.curves.combine import shared_cache_misses
from repro.nuca import CacheSim
from repro.replacement import LRU
from repro.workloads import build_workload
from repro.workloads.patterns import zipf_random
from repro.mem import HeapAllocator


def lru_factory(s, w):
    return LRU(s, w)


class TestAnalyticalVsEventDriven:
    def test_single_stream_miss_rate(self):
        """Mattson curve matches simulated LRU on a real app trace."""
        w = build_workload("bzip2", scale="train", seed=0)
        lines = w.trace.lines[:250_000]
        # Fold into a small address space so a small cache is exercised.
        folded = (lines % (1 << 16)).astype(np.int64)
        cache_lines = 4096  # 256 KB
        sim = CacheSim(
            size_bytes=cache_lines * 64, ways=16, policy_factory=lru_factory
        )
        stats = sim.run(folded)
        prof = StackDistanceProfiler(chunk_bytes=64 * 64, n_chunks=1 << 12)
        curve = prof.profile_combined(folded, instructions=1e6)[0]
        predicted = curve.misses_at(cache_lines * 64)
        assert stats.misses == pytest.approx(predicted, rel=0.12)

    def test_shared_cache_flow_model(self):
        """Appendix-B k-way sharing tracks a simulated shared cache."""
        rng = np.random.default_rng(0)
        heap = HeapAllocator()
        a = heap.malloc(1 << 20)
        b = heap.malloc(4 << 20)
        stream_a = zipf_random(rng, a, 150_000, alpha=1.2)
        stream_b = zipf_random(rng, b, 150_000, alpha=1.05)
        # Interleave 1:1.
        merged = np.empty(300_000, dtype=np.int64)
        merged[0::2] = stream_a // 64
        merged[1::2] = stream_b // 64
        cache_bytes = 1 << 20
        sim = CacheSim(size_bytes=cache_bytes, ways=16, policy_factory=lru_factory)
        total_sim = sim.run(merged).misses

        prof = StackDistanceProfiler(chunk_bytes=64 * 1024, n_chunks=128)
        ca = prof.profile_combined(stream_a // 64, instructions=1e6)[0]
        cb = prof.profile_combined(stream_b // 64, instructions=1e6)[0]
        predicted = sum(shared_cache_misses([ca, cb], cache_bytes))
        assert total_sim == pytest.approx(predicted, rel=0.2)

    def test_shared_model_per_stream_bounds(self):
        """Each stream's shared misses >= its solo misses at full size."""
        rng = np.random.default_rng(1)
        heap = HeapAllocator()
        a = heap.malloc(2 << 20)
        b = heap.malloc(2 << 20)
        sa = zipf_random(rng, a, 80_000, alpha=1.3) // 64
        sb = zipf_random(rng, b, 80_000, alpha=1.1) // 64
        prof = StackDistanceProfiler(chunk_bytes=64 * 1024, n_chunks=96)
        ca = prof.profile_combined(sa, instructions=1e6)[0]
        cb = prof.profile_combined(sb, instructions=1e6)[0]
        size = 1 << 20
        shared = shared_cache_misses([ca, cb], size)
        assert shared[0] >= ca.misses_at(size) - 1e-6
        assert shared[1] >= cb.misses_at(size) - 1e-6
        assert shared[0] <= ca.accesses + 1e-6
        assert shared[1] <= cb.accesses + 1e-6
