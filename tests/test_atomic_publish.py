"""Crash-safety of publish paths: a failed write never leaves a final
artifact, and whatever residue a crash can leave is exactly what
``store gc`` removes.

These are the runtime counterpart of the ``atomic-publish`` lint rule:
the rule proves every write site *uses* temp + ``os.replace``; these
tests prove the pattern actually delivers its guarantee under injected
failures at each stage.
"""

import os
from pathlib import Path

import numpy as np
import pytest

from repro.curves.miss_curve import MissCurve
from repro.exp.campaign import Campaign
from repro.exp.mixes import MixCampaign
from repro.ingest.pipeline import convert_to_rtrace
from repro.ingest.source import ArraySource
from repro.store.artifacts import ArtifactStore
from repro.store.profiles import publish_profile


class Boom(RuntimeError):
    pass


def _store(tmp_path: Path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "store")


def _tree_files(root: Path) -> list[str]:
    return sorted(
        p.relative_to(root).as_posix()
        for p in root.rglob("*")
        if p.is_file()
    )


# ----------------------------------------------------------------------
# ArtifactStore.publish
# ----------------------------------------------------------------------
def test_crashed_publish_leaves_no_final_artifact(tmp_path):
    store = _store(tmp_path)
    fp = "deadbeefdeadbeef"

    def write(tmp: Path) -> None:
        tmp.write_bytes(b"partial")  # bytes hit the staging file...
        raise Boom("crash before os.replace")

    with pytest.raises(Boom):
        store.publish("profiles", fp, write)
    # The final path never appeared, and the staging temp was reclaimed
    # by publish's own cleanup — the store tree holds no residue at all.
    assert store.get("profiles", fp) is None
    assert _tree_files(store.root) == []


def test_crashed_publish_before_provenance_is_still_usable(tmp_path):
    store = _store(tmp_path)
    fp = "feedfacefeedface"
    store.publish("profiles", fp, lambda tmp: tmp.write_bytes(b"payload"))
    # Payload lands before (independently of) the sidecar: an artifact
    # is usable the instant it exists, and gc keeps unprovenanced
    # payloads (reported, never reclaimed).
    report = store.gc()
    assert report["removed"] == []
    assert f"profiles/{fp}" in report["unprovenanced"]
    assert store.get("profiles", fp) is not None


def test_gc_removes_crash_residue_only(tmp_path):
    store = _store(tmp_path)
    fp = "0123456789abcdef"
    curves = {
        0: [
            MissCurve(
                misses=np.array([4.0, 2.0, 1.0]),
                chunk_bytes=4096,
                accesses=4.0,
                instructions=100.0,
            )
        ]
    }
    publish_profile(
        store,
        fp,
        curves,
        provenance={"kind": "profiles", "fingerprint": fp},
    )
    dst = store.path("profiles", fp)
    # Hand-craft the residue a kill -9 between write() and os.replace
    # could leave: a dot-temp next to the artifact and staging litter.
    residue_sibling = dst.parent / f".{dst.name}.{os.getpid()}.tmp"
    residue_sibling.write_bytes(b"partial")
    staging = store.root / "tmp"
    staging.mkdir(parents=True, exist_ok=True)
    (staging / "upload.partial").write_bytes(b"x" * 10)

    dry = store.gc(dry_run=True)
    assert len(dry["removed"]) == 2
    assert residue_sibling.exists(), "dry run must not delete"

    report = store.gc()
    assert sorted(report["removed"]) == sorted(dry["removed"])
    assert not residue_sibling.exists()
    assert not (staging / "upload.partial").exists()
    # The published artifact and its sidecar survived.
    assert store.get("profiles", fp) == dst
    assert store.provenance("profiles", fp) is not None
    assert store.verify()["bad"] == {}


# ----------------------------------------------------------------------
# convert_to_rtrace
# ----------------------------------------------------------------------
class _FailingSource(ArraySource):
    """Yields one good chunk, then dies mid-stream."""

    def chunks(self, max_records=1):
        it = super().chunks(max_records)
        yield next(it)
        raise Boom("stream died")


def test_convert_to_rtrace_midstream_failure_unlinks_dst(tmp_path):
    addrs = np.arange(8, dtype=np.int64) * 64
    regions = np.zeros(8, dtype=np.int32)
    source = _FailingSource(addrs, regions, instructions=100.0)
    dst = tmp_path / "out.rtrace"
    with pytest.raises(Boom):
        convert_to_rtrace(source, dst, max_records=1)
    assert not dst.exists(), "partial archive must not survive the crash"


# ----------------------------------------------------------------------
# Campaign / MixCampaign spec saves
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "spec",
    [
        Campaign(name="c"),
        MixCampaign(name="m"),
    ],
    ids=["campaign", "mix-campaign"],
)
def test_spec_save_failure_preserves_previous_file(
    tmp_path, monkeypatch, spec
):
    path = tmp_path / "spec.json"
    spec.save(path)
    before = path.read_text()

    def exploding_replace(src, dst):
        raise Boom("no replace")

    monkeypatch.setattr(os, "replace", exploding_replace)
    with pytest.raises(Boom):
        spec.save(path)
    # The previous spec is intact and the staging temp was cleaned up.
    assert path.read_text() == before
    assert _tree_files(tmp_path) == ["spec.json"]
