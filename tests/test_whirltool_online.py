"""Online Whirlpool vs the offline pipeline: bit-identical at completion.

The tentpole contract: streaming a sized source to completion through
:class:`OnlineWhirlTool` (any chunk size, any interval count, any
sample shift) produces pools *exactly* equal — merge order, distances,
tie-breaks — to :func:`online_pools_reference`, the offline
profile-then-cluster pipeline.  Likewise
:meth:`WhirlToolAnalyzer.cluster_incremental` replaying cached distance
terms must reproduce :meth:`WhirlToolAnalyzer.cluster` float-for-float
on every growing prefix of a profile.
"""

import io
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core.whirltool import (
    CallpointProfile,
    IncrementalClusterCache,
    OnlineWhirlTool,
    PhaseDetector,
    WhirlToolAnalyzer,
    online_pools_reference,
)
from repro.core.whirltool.online import EpochReport
from repro.curves.reuse import StackDistanceProfiler
from repro.ingest import ArraySource, IterableSource, TraceChunk
from repro.ingest.watch import follow_lines, open_stream_source, run_watch


def assert_same_result(got, want):
    """Exact ClusteringResult equality: same floats, not just close."""
    assert got.callpoints == want.callpoints
    assert len(got.merges) == len(want.merges)
    for (ga, gb, gd), (wa, wb, wd) in zip(got.merges, want.merges):
        assert ga == wa
        assert gb == wb
        assert gd == wd


def make_source(seed, n=600, n_regions=4, instructions=None):
    rng = np.random.default_rng(seed)
    regions = rng.integers(0, n_regions, n).astype(np.int32)
    # Give regions distinct locality so the dendrogram is non-trivial.
    addrs = (rng.integers(0, 30, n) + regions * 64) * 64
    return ArraySource(
        addrs=addrs.astype(np.int64),
        regions=regions,
        instructions=float(n * 9.0 if instructions is None else instructions),
    )


SMALL_GRID = dict(chunk_bytes=512, n_chunks=9)


class TestOnlineEqualsOffline:
    """OnlineWhirlTool.run == online_pools_reference (the oracle pin)."""

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 200),
        chunk=st.sampled_from([1, 7, 64, 1 << 21]),
        n_intervals=st.sampled_from([1, 4, 16]),
        shift=st.sampled_from([0, 3]),
    )
    def test_stream_to_completion_bit_identical(
        self, seed, chunk, n_intervals, shift
    ):
        source = make_source(seed)
        want = online_pools_reference(
            source, n_intervals=n_intervals, sample_shift=shift, **SMALL_GRID
        )
        tool = OnlineWhirlTool(
            n_intervals=n_intervals, sample_shift=shift, **SMALL_GRID
        )
        got = tool.run(source, chunk_records=chunk)
        assert_same_result(got, want)
        assert got.assignments(3) == want.assignments(3)

    def test_more_intervals_than_records(self):
        source = make_source(3, n=5)
        want = online_pools_reference(source, n_intervals=16, **SMALL_GRID)
        got = OnlineWhirlTool(n_intervals=16, **SMALL_GRID).run(
            source, chunk_records=2
        )
        assert_same_result(got, want)

    def test_mapping_threads_through(self):
        source = make_source(4, n_regions=5)
        mapping = {0: 0, 1: 1, 2: 1, 3: 0, 4: 2}
        want = online_pools_reference(
            source, n_intervals=4, mapping=mapping, **SMALL_GRID
        )
        got = OnlineWhirlTool(n_intervals=4, **SMALL_GRID).run(
            source, chunk_records=53, mapping=mapping
        )
        assert_same_result(got, want)

    def test_intermediate_epochs_reported(self):
        source = make_source(5)
        tool = OnlineWhirlTool(n_intervals=4, **SMALL_GRID)
        tool.start(source)
        reports = []
        for chunk in source.chunks(37):
            reports.extend(tool.push(chunk))
        tool.finish()
        assert [r.epoch for r in reports] == [0, 1, 2, 3]
        assert all(isinstance(r, EpochReport) for r in reports)
        # Epoch 0 always clusters (no baseline yet).
        assert reports[0].reclustered and not reports[0].phase_change
        assert reports[0].assignments is not None
        assert tool.sealed_epochs == 4


def profile_prefix(profile, k):
    """The first ``k`` intervals of every series."""
    return CallpointProfile(
        curves={cp: s[:k] for cp, s in profile.curves.items()},
        names=dict(profile.names),
        n_intervals=k,
    )


def make_profile(seed, n_intervals=8, n_regions=4, n=800):
    source = make_source(seed, n=n, n_regions=n_regions)
    chunk = next(source.chunks(1 << 21))
    lines = chunk.addrs // 64
    curves = StackDistanceProfiler(**SMALL_GRID).profile(
        lines, chunk.regions, source.instructions, n_intervals=n_intervals
    )
    return CallpointProfile(curves=curves, n_intervals=n_intervals)


class TestIncrementalCluster:
    """cluster_incremental replays cached terms; cluster is its oracle."""

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 100), n_intervals=st.sampled_from([1, 3, 8]))
    def test_cold_cache_matches_cluster(self, seed, n_intervals):
        profile = make_profile(seed, n_intervals=n_intervals)
        analyzer = WhirlToolAnalyzer()
        got = analyzer.cluster_incremental(profile, IncrementalClusterCache())
        assert_same_result(got, analyzer.cluster(profile))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_growing_prefixes_one_cache(self, seed):
        # The online replay: one persistent cache, re-clustered at each
        # prefix; every step must equal a from-scratch cluster().
        profile = make_profile(seed, n_intervals=8)
        analyzer = WhirlToolAnalyzer()
        cache = IncrementalClusterCache()
        for k in (1, 2, 4, 7, 8):
            prefix = profile_prefix(profile, k)
            got = analyzer.cluster_incremental(prefix, cache)
            assert_same_result(got, analyzer.cluster(prefix))
        # The cache really was incremental: terms cover all 8 intervals.
        assert all(len(v) == 8 for v in cache.terms.values())

    def test_grid_change_invalidates(self):
        analyzer = WhirlToolAnalyzer()
        cache = IncrementalClusterCache()
        a = make_profile(1, n_intervals=4)
        analyzer.cluster_incremental(a, cache)
        chunk = next(make_source(2).chunks(1 << 21))
        curves = StackDistanceProfiler(chunk_bytes=1024, n_chunks=6).profile(
            chunk.addrs // 64, chunk.regions, 5400.0, n_intervals=4
        )
        b = CallpointProfile(curves=curves, n_intervals=4)
        got = analyzer.cluster_incremental(b, cache)
        assert_same_result(got, analyzer.cluster(b))
        assert cache.grid == (1024, 6)

    def test_single_leaf_falls_back(self):
        profile = make_profile(3, n_regions=1)
        analyzer = WhirlToolAnalyzer()
        got = analyzer.cluster_incremental(profile, IncrementalClusterCache())
        assert_same_result(got, analyzer.cluster(profile))


class TestPhaseDetector:
    def curves_for(self, lines, instructions, n=400):
        prof = StackDistanceProfiler(**SMALL_GRID)
        regions = np.zeros(len(lines), dtype=np.int32)
        return {
            0: prof.profile(lines, regions, instructions, n_intervals=1)[0][0]
        }

    def test_first_epoch_is_baseline(self):
        det = PhaseDetector()
        lines = np.arange(100, dtype=np.int64) % 7
        assert det.update(self.curves_for(lines, 1000.0)) is False

    def test_steady_traffic_no_trigger(self):
        det = PhaseDetector()
        lines = np.arange(400, dtype=np.int64) % 11
        det.update(self.curves_for(lines, 4000.0))
        assert det.update(self.curves_for(lines, 4000.0)) is False

    def test_intensity_shift_triggers(self):
        det = PhaseDetector(rel_threshold=0.5)
        lines = np.arange(400, dtype=np.int64) % 11
        det.update(self.curves_for(lines, 4000.0))
        # Same accesses over 4x the instructions: APKI drops 4x.
        assert det.update(self.curves_for(lines, 16000.0)) is True

    def test_region_appearance_triggers(self):
        det = PhaseDetector()
        prof = StackDistanceProfiler(**SMALL_GRID)
        lines = np.arange(200, dtype=np.int64) % 9
        one = prof.profile(
            lines, np.zeros(200, dtype=np.int32), 2000.0, n_intervals=1
        )
        two = prof.profile(
            lines, (np.arange(200) % 2).astype(np.int32), 2000.0, n_intervals=1
        )
        det.update({rid: s[0] for rid, s in one.items()})
        assert det.update({rid: s[0] for rid, s in two.items()}) is True

    def test_validation(self):
        with pytest.raises(ValueError, match="rel_threshold"):
            PhaseDetector(rel_threshold=0.0)
        with pytest.raises(ValueError, match="probe_fraction"):
            PhaseDetector(probe_fraction=1.5)


def unbounded_copy(source, chunk_records=97):
    """Re-serve a sized source as an unbounded generator source."""

    def gen():
        yield from source.chunks(chunk_records)

    return IterableSource(
        gen(),
        line_bytes=source.line_bytes,
        region_names=dict(source.region_names),
    )


class TestUnboundedSources:
    def test_unbounded_round_trip(self):
        source = make_source(7, n=1000)
        tool = OnlineWhirlTool(epoch_records=128, **SMALL_GRID)
        result = tool.run(unbounded_copy(source), chunk_records=64)
        # 1000 records at 128/epoch: 7 full epochs + a partial eighth.
        assert tool.sealed_epochs == 8
        assert result is tool.pools
        assert set(result.assignments(3)) == {0, 1, 2, 3}

    def test_unbounded_matches_any_chunking(self):
        # Epoch bounds derive from epoch_records, not arrival chunking,
        # and the profiler is chunk-size independent: identical pools.
        source = make_source(8, n=700)
        results = []
        for chunk in (1, 13, 256):
            tool = OnlineWhirlTool(epoch_records=100, **SMALL_GRID)
            results.append(
                tool.run(unbounded_copy(source, 311), chunk_records=chunk)
            )
        assert_same_result(results[0], results[1])
        assert_same_result(results[0], results[2])

    def test_trailing_partial_epoch_sealed_at_finish(self):
        source = make_source(9, n=250)
        tool = OnlineWhirlTool(epoch_records=100, **SMALL_GRID)
        tool.start(unbounded_copy(source))
        reports = []
        for chunk in unbounded_copy(source).chunks(90):
            reports.extend(tool.push(chunk))
        assert [r.end_record for r in reports] == [100, 200]
        tool.finish()
        assert tool.sealed_epochs == 3  # 100 + 100 + the trailing 50

    def test_offline_oracle_rejects_unbounded(self):
        with pytest.raises(ValueError, match="sized, replayable"):
            online_pools_reference(
                unbounded_copy(make_source(1)), instructions=1000.0
            )

    def test_empty_unbounded_stream_rejected(self):
        tool = OnlineWhirlTool(**SMALL_GRID)
        tool.start(IterableSource(iter(())))
        with pytest.raises(ValueError, match="source yielded no records"):
            tool.finish()


class TestLifecycleErrors:
    def test_push_before_start(self):
        with pytest.raises(ValueError, match="start"):
            OnlineWhirlTool().push(
                TraceChunk(addrs=np.array([64], dtype=np.int64))
            )

    def test_push_after_finish(self):
        source = make_source(2, n=50)
        tool = OnlineWhirlTool(n_intervals=2, **SMALL_GRID)
        tool.run(source, chunk_records=10)
        with pytest.raises(ValueError, match="finished"):
            tool.push(TraceChunk(addrs=np.array([64], dtype=np.int64)))

    def test_sized_overrun_rejected(self):
        source = make_source(2, n=50)
        tool = OnlineWhirlTool(n_intervals=2, **SMALL_GRID)
        tool.start(source)
        for chunk in source.chunks(50):
            tool.push(chunk)
        with pytest.raises(ValueError, match="more than its declared"):
            tool.push(TraceChunk(addrs=np.array([64], dtype=np.int64)))

    def test_sized_underrun_rejected(self):
        source = make_source(2, n=50)
        tool = OnlineWhirlTool(n_intervals=2, **SMALL_GRID)
        tool.start(source)
        tool.push(next(source.chunks(20)))
        with pytest.raises(ValueError, match="declared"):
            tool.finish()

    def test_zero_record_sized_source_rejected(self):
        tool = OnlineWhirlTool(**SMALL_GRID)
        with pytest.raises(ValueError, match="source yielded no records"):
            tool.start(
                ArraySource(
                    addrs=np.array([], dtype=np.int64), instructions=10.0
                )
            )

    def test_missing_instructions_rejected(self):
        tool = OnlineWhirlTool(**SMALL_GRID)
        with pytest.raises(ValueError, match="instruction"):
            tool.start(ArraySource(addrs=np.array([64, 128], dtype=np.int64)))


def write_csv(path, n=900, n_regions=3, seed=0):
    rng = np.random.default_rng(seed)
    with open(path, "w") as f:
        f.write("addr,region\n")
        for i in range(n):
            region = int(rng.integers(0, n_regions))
            addr = (int(rng.integers(0, 40)) + region * 64) * 64
            f.write(f"{addr},{region}\n")


class TestWatch:
    def test_follow_lines_sees_late_writes(self):
        class GrowingStream:
            # readline returns '' (EOF) until more data "arrives".
            def __init__(self):
                self.feeds = ["a\n", "", "b\n", "", ""]

            def readline(self):
                return self.feeds.pop(0) if self.feeds else ""

        slept = []
        got = list(
            follow_lines(
                GrowingStream(),
                poll_interval=0.25,
                idle_timeout=0.5,
                sleep=slept.append,
            )
        )
        assert got == ["a\n", "b\n"]
        assert slept  # it waited at EOF instead of stopping

    def test_follow_lines_buffers_partial_line(self):
        class TornWrite:
            def __init__(self):
                self.feeds = ["12", "8,0\n"]

            def readline(self):
                return self.feeds.pop(0) if self.feeds else ""

        got = list(
            follow_lines(TornWrite(), idle_timeout=0.5, sleep=lambda s: None)
        )
        assert got == ["128,0\n"]

    def test_stream_source_matches_sized_reader(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(path, n=400)
        streamed = open_stream_source(
            str(path), fmt="csv", idle_timeout=0.0, batch_records=64
        )
        from repro.ingest import open_trace_source

        sized = open_trace_source(str(path), fmt="csv")
        got = np.concatenate([c.addrs for c in streamed.chunks(64)])
        chunks = list(sized.chunks(1 << 21))
        want = np.concatenate([c.addrs for c in chunks])
        assert np.array_equal(got, want)

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="followable"):
            open_stream_source("t.bin", fmt="rtrace")

    def test_run_watch_reports_epochs(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(path, n=900)
        source = open_stream_source(str(path), fmt="csv", idle_timeout=0.0)
        out = io.StringIO()
        code = run_watch(source, epoch_records=256, n_pools=2, out=out, **SMALL_GRID)
        assert code == 0
        text = out.getvalue()
        assert "epoch 0" in text and "epoch 2" in text
        assert "end of stream: 4 epochs" in text
        assert "pool 0:" in text

    def test_watch_cli_on_file(self, tmp_path, capsys):
        path = tmp_path / "t.csv"
        write_csv(path, n=600)
        code = main(
            [
                "ingest", "watch", str(path),
                "--format", "csv",
                "--epoch-records", "200",
                "--idle-timeout", "0",
                "--pools", "2",
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "epoch 0" in text
        assert "end of stream: 3 epochs" in text

    def test_validate_cli_on_stdin(self, tmp_path, capsys, monkeypatch):
        path = tmp_path / "t.csv"
        write_csv(path, n=120)
        monkeypatch.setattr("sys.stdin", open(path))
        code = main(["ingest", "validate", "-", "--format", "csv"])
        assert code == 0
        text = capsys.readouterr().out
        assert "120 records parse cleanly" in text
        assert "unbounded" in text

    def test_stream_cli_requires_format(self, capsys):
        code = main(["ingest", "watch", "-"])
        assert code == 2
        assert "--format" in capsys.readouterr().err


class TestFollowRotation:
    """Log rotation and truncation handling in follow_lines (path=...)."""

    def _follow(self, path, hooks, idle_timeout=3.0):
        """Follow ``path``, running one hook per EOF poll (then no-ops)."""
        stream = open(path)
        hooks = iter(hooks)

        def sleeping(seconds):
            hook = next(hooks, None)
            if hook is not None:
                hook()

        try:
            return list(
                follow_lines(
                    stream,
                    poll_interval=1.0,
                    idle_timeout=idle_timeout,
                    sleep=sleeping,
                    path=path,
                )
            )
        finally:
            stream.close()

    def test_rotation_reopens_the_new_file(self, tmp_path):
        path = tmp_path / "t.log"
        path.write_text("a\nb\n")

        def rotate():
            # logrotate-style: rename away, recreate under the old name.
            path.rename(tmp_path / "t.log.1")
            path.write_text("c\nd\n")

        got = self._follow(path, [rotate])
        assert got == ["a\n", "b\n", "c\n", "d\n"]

    def test_truncation_rewinds_to_start(self, tmp_path):
        path = tmp_path / "t.log"
        path.write_text("aaaa\nbbbb\n")

        def truncate():
            # In-place truncation: same inode, smaller file.
            path.write_text("x\n")

        got = self._follow(path, [truncate])
        assert got == ["aaaa\n", "bbbb\n", "x\n"]

    def test_rotation_with_vanished_successor_keeps_following(self, tmp_path):
        # Rename with no replacement yet: the follower must not crash,
        # and must pick the successor up once it appears.
        path = tmp_path / "t.log"
        path.write_text("a\n")

        def rename_away():
            path.rename(tmp_path / "t.log.1")

        def recreate():
            path.write_text("b\n")

        got = self._follow(path, [rename_away, recreate])
        assert got == ["a\n", "b\n"]

    def test_plain_growth_is_not_mistaken_for_rotation(self, tmp_path):
        path = tmp_path / "t.log"
        path.write_text("a\n")

        def append():
            with open(path, "a") as f:
                f.write("b\n")

        got = self._follow(path, [append])
        assert got == ["a\n", "b\n"]

    def test_streams_without_files_skip_the_checks(self):
        # path=None (pipes, test doubles): identical legacy behavior.
        class Fake:
            def __init__(self):
                self.feeds = ["a\n", ""]

            def readline(self):
                return self.feeds.pop(0) if self.feeds else ""

        got = list(
            follow_lines(Fake(), idle_timeout=0.5, sleep=lambda s: None)
        )
        assert got == ["a\n"]

    def test_stream_source_follows_rotation(self, tmp_path):
        # End to end through open_stream_source: records from both the
        # original file and its rotated successor land in the chunks.
        path = tmp_path / "t.csv"
        path.write_text("64,0\n128,0\n")
        source = open_stream_source(
            str(path), fmt="csv", idle_timeout=0.2, poll_interval=0.05,
            batch_records=8,
        )

        import threading

        def rotate_soon():
            time.sleep(0.08)
            path.rename(tmp_path / "t.csv.1")
            path.write_text("192,0\n256,0\n")

        worker = threading.Thread(target=rotate_soon)
        worker.start()
        try:
            addrs = np.concatenate([c.addrs for c in source.chunks(8)])
        finally:
            worker.join()
        assert sorted(addrs.tolist()) == [64, 128, 192, 256]
