"""Unit tests for capacity partitioning and partitioned miss curves."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves import (
    MissCurve,
    combine_miss_curves,
    partition_capacity,
    partitioned_miss_curve,
)
from repro.curves.partition import partition_cost_curves


def curve(values, chunk=1024, instr=1000.0):
    values = np.asarray(values, dtype=float)
    return MissCurve(
        misses=values, chunk_bytes=chunk, accesses=float(values[0]), instructions=instr
    )


class TestPartitionCostCurves:
    def test_single_consumer_gets_everything_useful(self):
        sizes, cost = partition_cost_curves([np.array([10.0, 5, 2, 2, 2])], 10)
        assert sizes == [2]  # beyond 2 chunks there is no gain
        assert cost == 2.0

    def test_greedy_is_optimal_on_convex_curves(self):
        c1 = np.array([100.0, 60, 30, 15, 10, 8])
        c2 = np.array([80.0, 30, 10, 5, 3, 2])
        total = 6
        sizes, cost = partition_cost_curves([c1, c2], total)
        best = min(
            c1[s1] + c2[s2]
            for s1 in range(len(c1))
            for s2 in range(len(c2))
            if s1 + s2 <= total
        )
        assert cost == pytest.approx(best)
        assert sum(sizes) <= total

    def test_exhaustive_three_way(self):
        rng = np.random.default_rng(7)
        curves = []
        for _ in range(3):
            vals = np.sort(rng.uniform(0, 50, size=6))[::-1].copy()
            curves.append(vals)
        total = 8
        sizes, cost = partition_cost_curves([c.copy() for c in curves], total)
        # Exhaustive optimum over the hulls.
        from repro.curves.miss_curve import _lower_convex_hull

        hulls = [_lower_convex_hull(c) for c in curves]
        best = min(
            sum(h[s] for h, s in zip(hulls, combo))
            for combo in itertools.product(range(6), repeat=3)
            if sum(combo) <= total
        )
        assert cost == pytest.approx(best, rel=1e-9)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError, match="total_chunks"):
            partition_cost_curves([np.array([5.0, 1])], 0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="total_chunks"):
            partition_cost_curves([np.array([5.0, 1])], -3)

    def test_no_consumers_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            partition_cost_curves([], 5)

    def test_single_point_curve_rejected(self):
        with pytest.raises(ValueError, match="at least 2 points"):
            partition_cost_curves([np.array([5.0, 1]), np.array([2.0])], 5)


class TestPartitionCapacity:
    def test_respects_chunk_grid(self):
        a = curve([10, 2, 0])
        b = curve([10, 8, 6])
        sizes, __ = partition_capacity([a, b], total_bytes=2048)
        assert all(s % 1024 == 0 for s in sizes)
        assert sum(sizes) <= 2048

    def test_starving_the_streaming_pool(self):
        """A pool with a flat curve gets nothing; the cacheable pool wins."""
        cacheable = curve([100, 50, 5, 0, 0])
        streaming = curve([100, 99, 98, 97, 96])
        sizes, __ = partition_capacity([cacheable, streaming], total_bytes=3 * 1024)
        assert sizes[0] == 3 * 1024
        assert sizes[1] == 0

    def test_empty_list(self):
        assert partition_capacity([], 1024) == ([], 0.0)

    def test_sub_chunk_capacity(self):
        """Less than one whole chunk: everyone sits at their size-0 cost."""
        a = curve([10, 2, 0])
        b = curve([20, 8, 6])
        sizes, cost = partition_capacity([a, b], total_bytes=512)
        assert sizes == [0, 0]
        assert cost == pytest.approx((10 + 20) / 1000.0)

    def test_grid_mismatch_rejected(self):
        with pytest.raises(ValueError):
            partition_capacity([curve([1, 0], chunk=64), curve([1, 0])], 1024)


class TestPartitionedMissCurve:
    def test_below_combined_curve(self):
        """Partitioning never does worse than sharing (paper Sec 4.2)."""
        a = curve([100, 40, 10, 2, 0, 0, 0, 0])
        b = curve([90, 88, 86, 84, 82, 80, 78, 76])
        part = partitioned_miss_curve(a, b)
        comb = combine_miss_curves(a, b)
        assert np.all(part.misses <= comb.misses + 1e-6)

    def test_equals_sum_at_extremes(self):
        a = curve([50, 20, 0])
        b = curve([30, 10, 0])
        part = partitioned_miss_curve(a, b)
        assert part.misses[0] == pytest.approx(80)
        # With enough space for both working sets, misses reach the floor.
        assert part.misses[-1] >= 0

    def test_symmetric(self):
        a = curve([100, 30, 5, 0])
        b = curve([60, 50, 40, 35])
        ab = partitioned_miss_curve(a, b)
        ba = partitioned_miss_curve(b, a)
        assert np.allclose(ab.misses, ba.misses)

    def test_similar_pools_small_distance(self):
        """Two cache-friendly pools interfere little (Fig 15, left)."""
        m1 = curve([100, 20, 2, 0, 0, 0, 0, 0, 0])
        m2 = curve([100, 25, 3, 0, 0, 0, 0, 0, 0])
        m3 = curve([100, 98, 96, 94, 92, 90, 88, 86, 84])  # antagonist
        d12 = float(
            np.sum(combine_miss_curves(m1, m2).misses - partitioned_miss_curve(m1, m2).misses)
        )
        d13 = float(
            np.sum(combine_miss_curves(m1, m3).misses - partitioned_miss_curve(m1, m3).misses)
        )
        assert d13 > d12

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.floats(0, 100), min_size=3, max_size=15),
        st.lists(st.floats(0, 100), min_size=3, max_size=15),
    )
    def test_partitioned_never_above_combined(self, va, vb):
        n = max(len(va), len(vb)) - 1
        a = curve(va).extended(n)
        b = curve(vb).extended(n)
        part = partitioned_miss_curve(a, b)
        comb = combine_miss_curves(a, b)
        tol = 1e-6 * max(1.0, float(comb.misses[0]))
        assert np.all(part.misses <= comb.misses + tol)
