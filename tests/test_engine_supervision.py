"""Supervision tests for the job engine (repro.exp.engine).

Exercises the fault-tolerance layer with real process pools: retry with
backoff, worker-crash detection and pool rebuild, per-job wall-clock
timeouts that kill and reap hung workers, quarantine of poison jobs,
and the strict-mode teardown guarantee (no zombie workers after a
raise).  Executors are module-level so they pickle; cross-process
coordination goes through sentinel files in a directory passed by
environment variable (pool workers inherit the env on fork).
"""

import dataclasses
import multiprocessing
import os
import time

import pytest

from repro.exp.engine import run_jobs
from repro.exp.quarantine import Quarantine
from repro.exp.store import MemoryStore, ResultStore
from repro.retry import RetryPolicy

FLAG_DIR_ENV = "REPRO_ENGINE_TEST_DIR"

#: Fast-converging test policy: no real sleeping between attempts.
FAST = RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0)


@dataclasses.dataclass
class TJob:
    name: str

    def key(self):
        return self.name

    def to_dict(self):
        return {"name": self.name}


def exec_ok(job):
    return {"v": job.name}


def exec_fail_named(job):
    """Raise forever for jobs named fail*; succeed otherwise."""
    if job.name.startswith("fail"):
        raise ValueError(f"poison {job.name}")
    return {"v": job.name}


def _first_time(job) -> bool:
    """True exactly once per job name, across all pool processes."""
    flag = os.path.join(os.environ[FLAG_DIR_ENV], f"seen_{job.name}")
    try:
        fd = os.open(flag, os.O_CREAT | os.O_EXCL)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def exec_flaky_raise(job):
    """Raise on each flaky* job's first attempt, succeed after."""
    if job.name.startswith("flaky") and _first_time(job):
        raise OSError(f"transient {job.name}")
    return {"v": job.name}


def exec_crash_once(job):
    """Die like an OOM kill on each crash* job's first attempt."""
    if job.name.startswith("crash") and _first_time(job):
        os._exit(23)
    return {"v": job.name}


def exec_crash_always(job):
    """Die on every attempt of crash* jobs."""
    if job.name.startswith("crash"):
        os._exit(23)
    return {"v": job.name}


def exec_hang_once(job):
    """Hang far past any timeout on each hang* job's first attempt."""
    if job.name.startswith("hang") and _first_time(job):
        time.sleep(300)
    return {"v": job.name}


@pytest.fixture
def flag_dir(tmp_path, monkeypatch):
    d = tmp_path / "flags"
    d.mkdir()
    monkeypatch.setenv(FLAG_DIR_ENV, str(d))
    return d


def _assert_no_workers_left():
    """Every pool process is reaped — nothing outlives the engine."""
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            return
        time.sleep(0.05)
    raise AssertionError(
        f"zombie workers left behind: {multiprocessing.active_children()}"
    )


class TestSerialRetry:
    def test_retry_until_success_counts_resubmissions(self):
        attempts = []

        def flaky(job):
            attempts.append(job.name)
            if len(attempts) < 3:
                raise OSError("transient")
            return {"v": job.name}

        store = MemoryStore()
        report = run_jobs(
            [TJob("a")], flaky, store=store, retry=FAST, sleep=lambda s: None
        )
        assert report.executed == 1 and report.retried == 2
        assert not report.failures and "a" in store

    def test_backoff_delays_follow_the_policy(self):
        slept = []

        def always(job):
            raise OSError("x")

        policy = RetryPolicy(
            max_attempts=3, base_delay=0.5, backoff=2.0, jitter=0.0
        )
        run_jobs(
            [TJob("a")],
            always,
            strict=False,
            retry=policy,
            sleep=slept.append,
            clock=lambda: 0.0,  # frozen clock: sleeps equal the raw delays
        )
        assert slept == [0.5, 1.0]

    def test_no_retry_without_policy_legacy_behavior(self):
        calls = []

        def once(job):
            calls.append(1)
            raise ValueError("boom")

        report = run_jobs([TJob("a")], once, strict=False)
        assert len(calls) == 1 and report.retried == 0
        assert "a" in report.failures

    def test_strict_raises_after_exhaustion(self):
        with pytest.raises(ValueError, match="poison"):
            run_jobs(
                [TJob("fail-1")],
                exec_fail_named,
                retry=FAST,
                sleep=lambda s: None,
            )

    def test_exhausted_job_is_quarantined_with_history(self, tmp_path):
        q = Quarantine(tmp_path / "q.jsonl")
        report = run_jobs(
            [TJob("fail-1"), TJob("ok-1")],
            exec_fail_named,
            strict=False,
            retry=FAST,
            quarantine=q,
            sleep=lambda s: None,
        )
        assert report.executed == 1
        assert report.quarantined == ["fail-1"]
        entry = q.get("fail-1")
        assert len(entry["attempts"]) == FAST.max_attempts
        assert all(a["kind"] == "error" for a in entry["attempts"])

    def test_quarantined_jobs_are_skipped_not_rerun(self, tmp_path):
        q = Quarantine(tmp_path / "q.jsonl")
        q.add("fail-1", TJob("fail-1"), [{"kind": "error", "error": "x"}])
        calls = []

        def spy(job):
            calls.append(job.name)
            return {"v": job.name}

        report = run_jobs(
            [TJob("fail-1"), TJob("ok-1")], spy, strict=False, quarantine=q
        )
        assert calls == ["ok-1"]
        assert report.quarantined == ["fail-1"]
        assert "quarantined" in report.failures["fail-1"]


class TestPooledSupervision:
    def test_parallel_flaky_jobs_converge(self, flag_dir):
        jobs = [TJob(f"flaky-{i}") for i in range(4)] + [TJob("ok")]
        store = MemoryStore()
        report = run_jobs(
            jobs, exec_flaky_raise, store=store, workers=2, retry=FAST
        )
        assert report.executed == 5 and not report.failures
        assert report.retried == 4
        _assert_no_workers_left()

    def test_worker_crash_rebuilds_pool_and_retries(self, flag_dir):
        jobs = [TJob(f"crash-{i}") for i in range(2)] + [
            TJob(f"ok-{i}") for i in range(3)
        ]
        store = MemoryStore()
        report = run_jobs(
            jobs, exec_crash_once, store=store, workers=2, retry=FAST
        )
        assert report.executed == 5 and not report.failures
        assert report.retried >= 2  # each crasher needed at least one re-run
        assert all(job.key() in store for job in jobs)
        _assert_no_workers_left()

    def test_poison_crasher_is_quarantined_others_survive(
        self, flag_dir, tmp_path
    ):
        q = Quarantine(tmp_path / "q.jsonl")
        jobs = [TJob("crash-poison")] + [TJob(f"ok-{i}") for i in range(3)]
        store = MemoryStore()
        report = run_jobs(
            jobs,
            exec_crash_always,
            store=store,
            workers=2,
            strict=False,
            retry=FAST,
            quarantine=q,
        )
        assert report.executed == 3
        assert report.quarantined == ["crash-poison"]
        entry = q.get("crash-poison")
        # Charged attempts are all attributable worker deaths, and the
        # cap held: the poison job was not retried forever.
        assert len(entry["attempts"]) == FAST.max_attempts
        assert all(a["kind"] == "worker-crash" for a in entry["attempts"])
        _assert_no_workers_left()

    def test_hung_worker_is_killed_and_job_retried(self, flag_dir):
        jobs = [TJob("hang-0"), TJob("ok-0"), TJob("ok-1")]
        store = MemoryStore()
        t0 = time.monotonic()
        report = run_jobs(
            jobs,
            exec_hang_once,
            store=store,
            workers=2,
            retry=FAST,
            job_timeout=2.0,
        )
        elapsed = time.monotonic() - t0
        assert report.executed == 3 and not report.failures
        assert report.retried >= 1
        assert elapsed < 60, "timeout did not preempt the 300s hang"
        hung = store.get("hang-0")
        assert hung == {"v": "hang-0"}
        _assert_no_workers_left()

    def test_timeout_exhaustion_reports_timeout_kind(self, flag_dir, tmp_path):
        q = Quarantine(tmp_path / "q.jsonl")

        report = run_jobs(
            [TJob("hang-forever")],
            exec_hang_always,
            workers=2,
            strict=False,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01, jitter=0.0),
            job_timeout=1.0,
            quarantine=q,
        )
        assert "hang-forever" in report.failures
        kinds = [a["kind"] for a in q.get("hang-forever")["attempts"]]
        assert kinds == ["timeout", "timeout"]
        _assert_no_workers_left()

    def test_strict_cancellation_leaves_no_zombies(self, flag_dir):
        # Plenty of queued work behind the poison job: the raise must
        # cancel everything queued and reap every worker.
        jobs = [TJob("crash-poison")] + [TJob(f"ok-{i}") for i in range(20)]
        with pytest.raises(Exception):
            run_jobs(
                jobs,
                exec_crash_always,
                workers=2,
                strict=True,
                retry=RetryPolicy(max_attempts=1),
            )
        _assert_no_workers_left()

    def test_results_match_serial_run(self, flag_dir, tmp_path):
        jobs = [TJob(f"crash-{i}") for i in range(2)] + [
            TJob(f"ok-{i}") for i in range(4)
        ]
        serial = ResultStore(tmp_path / "serial.jsonl")
        run_jobs([TJob(j.name) for j in jobs], exec_ok, store=serial)

        supervised = ResultStore(tmp_path / "supervised.jsonl")
        run_jobs(jobs, exec_crash_once, store=supervised, workers=2, retry=FAST)
        # Same records, regardless of crashes and completion order.
        assert sorted(
            (tmp_path / "serial.jsonl").read_text().splitlines()
        ) == sorted((tmp_path / "supervised.jsonl").read_text().splitlines())


def exec_hang_always(job):
    if job.name.startswith("hang"):
        time.sleep(300)
    return {"v": job.name}
