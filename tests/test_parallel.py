"""Unit + integration tests for the task-parallel runtime and Fig 13 sim."""

import numpy as np
import pytest

from repro.nuca import sixteen_core_config
from repro.parallel import (
    PARALLEL_APPS,
    build_parallel_workload,
    schedule_tasks,
)
from repro.parallel.task import ParallelWorkload, Task
from repro.sim.parallel import PARALLEL_SCHEMES, evaluate_parallel


@pytest.fixture(scope="module")
def cfg():
    return sixteen_core_config()


def tiny_workload(n_parts=4, tasks_per_part=6):
    tasks = []
    names = {p: f"part{p}" for p in range(n_parts)}
    rng = np.random.default_rng(0)
    for p in range(n_parts):
        for __ in range(tasks_per_part):
            addrs = (p + 1) * (1 << 30) + rng.integers(0, 1000, 500) * 64
            tasks.append(Task(home=p, streams={p: addrs}))
    return ParallelWorkload(
        name="tiny",
        tasks=tasks,
        region_names=names,
        partition_of_region={p: p for p in range(n_parts)},
        n_partitions=n_parts,
    )


class TestTask:
    def test_cost(self):
        t = Task(home=0, streams={0: np.zeros(10), 1: np.zeros(5)})
        assert t.cost == 15

    def test_workload_properties(self):
        w = tiny_workload()
        assert w.total_accesses == 4 * 6 * 500
        assert w.n_phases == 1


class TestScheduler:
    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            schedule_tasks(tiny_workload(), 4, policy="fifo")

    def test_paws_requires_geometry(self):
        with pytest.raises(ValueError):
            schedule_tasks(tiny_workload(), 4, policy="paws")

    def test_all_tasks_assigned(self, cfg):
        w = tiny_workload()
        for policy in ("ws", "paws"):
            s = schedule_tasks(
                w, 16, policy=policy, geometry=cfg.geometry, seed=1
            )
            assert all(c >= 0 for c in s.assignment)

    def test_work_conserved(self, cfg):
        w = tiny_workload()
        s = schedule_tasks(w, 16, policy="paws", geometry=cfg.geometry)
        assert s.core_work.sum() == w.total_accesses

    def test_load_balanced(self, cfg):
        w = tiny_workload(n_parts=16, tasks_per_part=8)
        for policy in ("ws", "paws"):
            s = schedule_tasks(
                w, 16, policy=policy, geometry=cfg.geometry, seed=2
            )
            assert s.imbalance < 1.5, policy

    def test_paws_improves_affinity(self, cfg):
        """PaWS runs far more tasks on their home core than classic WS."""
        w = tiny_workload(n_parts=16, tasks_per_part=8)
        ws = schedule_tasks(w, 16, policy="ws", geometry=cfg.geometry, seed=3)
        paws = schedule_tasks(
            w, 16, policy="paws", geometry=cfg.geometry, seed=3
        )

        def affinity(s):
            hits = sum(
                1
                for tid, core in enumerate(s.assignment)
                if core == w.tasks[tid].home
            )
            return hits / len(w.tasks)

        assert affinity(paws) > affinity(ws) + 0.3

    def test_phases_respected(self, cfg):
        """Tasks keep their phase's work separate (barrier semantics)."""
        tasks = [
            Task(home=0, phase=0, streams={0: np.zeros(10)}),
            Task(home=0, phase=1, streams={0: np.zeros(10)}),
        ]
        w = ParallelWorkload(
            name="x", tasks=tasks, region_names={0: "a"},
            partition_of_region={0: 0}, n_partitions=1,
        )
        s = schedule_tasks(w, 4, policy="ws", seed=0)
        assert all(c >= 0 for c in s.assignment)


class TestParallelApps:
    def test_registry_matches_fig13(self):
        assert set(PARALLEL_APPS) == {
            "mergesort",
            "fft",
            "delaunay",
            "pagerank",
            "connectedComponents",
            "triangleCounting",
        }

    def test_unknown_app(self):
        with pytest.raises(ValueError):
            build_parallel_workload("quicksort")

    @pytest.mark.parametrize("name", sorted(PARALLEL_APPS))
    def test_builds_with_16_partitions(self, name):
        w = build_parallel_workload(name, scale="train", seed=0)
        assert w.n_partitions == 16
        assert w.total_accesses > 0
        homes = {t.home for t in w.tasks}
        assert homes == set(range(16))

    def test_fft_partners_follow_butterfly(self):
        w = build_parallel_workload("fft", scale="train", seed=0)
        for t in w.tasks:
            regions = set(t.streams)
            assert t.home in regions
            others = regions - {t.home}
            if others:
                (q,) = others
                stride = 1 << t.phase
                assert q == t.home ^ stride

    def test_graph_apps_have_remote_accesses(self):
        w = build_parallel_workload("pagerank", scale="train", seed=0)
        remote = sum(
            len(s)
            for t in w.tasks
            for r, s in t.streams.items()
            if r != t.home
        )
        assert remote > 0


class TestFig13Shape:
    @pytest.fixture(scope="class")
    def results(self, request):
        cfg = sixteen_core_config()
        pw = build_parallel_workload("pagerank", scale="train", seed=0)
        return {s: evaluate_parallel(pw, cfg, s) for s in PARALLEL_SCHEMES}

    def test_unknown_scheme(self, cfg):
        pw = build_parallel_workload("fft", scale="train", seed=0)
        with pytest.raises(ValueError):
            evaluate_parallel(pw, cfg, "r-nuca")

    def test_jigsaw_close_to_snuca(self, results):
        """Work stealing defeats Jigsaw's placement (Sec 3.4)."""
        ratio = results["jigsaw"].cycles / results["snuca"].cycles
        assert 0.85 < ratio < 1.15

    def test_paws_helps_jigsaw(self, results):
        assert results["jigsaw+paws"].cycles < results["jigsaw"].cycles

    def test_whirlpool_paws_best(self, results):
        best = min(r.cycles for s, r in results.items() if s != "whirlpool+paws")
        assert results["whirlpool+paws"].cycles < best
        assert results["whirlpool+paws"].energy.total < min(
            r.energy.total
            for s, r in results.items()
            if s != "whirlpool+paws"
        )
