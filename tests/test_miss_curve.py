"""Unit tests for the MissCurve container."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.curves import MissCurve
from repro.curves.miss_curve import interp_rows


def curve(values, chunk=1024, accesses=None, instr=1000.0):
    values = np.asarray(values, dtype=float)
    return MissCurve(
        misses=values,
        chunk_bytes=chunk,
        accesses=float(values[0]) if accesses is None else accesses,
        instructions=instr,
    )


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MissCurve(np.array([]), chunk_bytes=64, accesses=0, instructions=1)

    def test_rejects_bad_chunk(self):
        with pytest.raises(ValueError):
            MissCurve(np.ones(3), chunk_bytes=0, accesses=1, instructions=1)

    def test_monotonicity_enforced(self):
        c = curve([10, 5, 7, 3])
        assert list(c.misses) == [10, 5, 5, 3]

    def test_zero_factory(self):
        c = MissCurve.zero(4, 1024)
        assert c.n_chunks == 4
        assert c.accesses == 0
        assert np.all(c.misses == 0)


class TestEvaluation:
    def test_interpolation(self):
        c = curve([10, 6, 2])
        assert c.misses_at(0) == 10
        assert c.misses_at(512) == 8  # halfway through first chunk
        assert c.misses_at(2048) == 2

    def test_clamps_past_end(self):
        c = curve([10, 2])
        assert c.misses_at(1 << 30) == 2

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            curve([1, 0]).misses_at(-1)

    def test_mpki(self):
        c = curve([10, 2], instr=1000.0)
        assert c.mpki_at(0) == 10.0

    def test_apki(self):
        c = curve([10, 2], accesses=50.0, instr=1000.0)
        assert c.apki == 50.0

    def test_clamp_starts_exactly_at_last_column(self):
        # pos == n_chunks is the first out-of-domain point; it must
        # already take the clamp branch, not index past the array.
        c = curve([10, 6, 2])  # n_chunks == 2, grid ends at 2048
        assert c.misses_at(2 * 1024) == 2
        assert c.misses_at(2 * 1024 + 1) == 2


class TestInterpRows:
    """``interp_rows`` must share ``misses_at``'s exact domain contract."""

    def test_matches_misses_at_including_boundaries(self):
        c = curve([10.0, 6.0, 2.0])
        matrix = np.tile(c.misses, (6, 1))
        sizes = np.array([0.0, 512.0, 1024.0, 2047.0, 2048.0, 1e9])
        pos = sizes / c.chunk_bytes
        got = interp_rows(matrix, pos)
        want = np.array([c.misses_at(s) for s in sizes])
        assert np.array_equal(got, want)

    def test_negative_pos_rejected(self):
        # Regression: int truncation rounds toward zero, so a negative
        # position used to silently extrapolate off the first segment
        # instead of raising like the serial oracle.
        with pytest.raises(ValueError, match="non-negative"):
            interp_rows(np.ones((2, 3)), np.array([0.5, -0.25]))

    def test_misses_at_negative_rejected_same_way(self):
        with pytest.raises(ValueError, match="non-negative"):
            curve([1, 0]).misses_at(-1e-9)

    def test_single_column_matrix_clamps(self):
        matrix = np.array([[7.0], [3.0]])
        got = interp_rows(matrix, np.array([0.0, 123.0]))
        assert np.array_equal(got, np.array([7.0, 3.0]))

    @given(
        values=st.lists(
            st.floats(0, 100, allow_nan=False), min_size=2, max_size=12
        ),
        frac=st.floats(0, 1, exclude_max=True, allow_nan=False),
    )
    def test_property_row_equals_scalar(self, values, frac):
        c = curve(values)
        size = frac * c.n_chunks * c.chunk_bytes
        got = interp_rows(
            c.misses[None, :], np.array([size / c.chunk_bytes])
        )[0]
        assert got == c.misses_at(size)


class TestTransforms:
    def test_convex_hull_below_curve(self):
        c = curve([10, 10, 10, 0, 0])  # cliff at 3 chunks
        hull = c.convex_hull()
        assert np.all(hull <= c.misses + 1e-9)
        # The hull of a cliff is the straight line to the cliff bottom.
        assert hull[1] == pytest.approx(10 * 2 / 3)

    def test_convex_hull_of_convex_curve_is_identity(self):
        vals = [16, 8, 4, 2, 1, 1]
        c = curve(vals)
        assert np.allclose(c.convex_hull(), vals)

    def test_hull_endpoints_preserved(self):
        c = curve([9, 9, 1, 1, 0])
        hull = c.convex_hull()
        assert hull[0] == 9
        assert hull[-1] == 0

    def test_extended_pads_with_floor(self):
        c = curve([4, 2])
        e = c.extended(4)
        assert list(e.misses) == [4, 2, 2, 2, 2]
        assert e.accesses == c.accesses

    def test_extended_cannot_shrink(self):
        with pytest.raises(ValueError):
            curve([4, 2, 1]).extended(1)

    def test_resampled_preserves_endpoints(self):
        c = curve([8, 6, 4, 2, 0])
        r = c.resampled(2)
        assert r.misses[0] == 8
        assert r.misses[-1] == 0

    def test_scaled(self):
        c = curve([8, 4], accesses=10)
        s = c.scaled(2.0)
        assert s.misses[0] == 16
        assert s.accesses == 20

    def test_merged_over_time(self):
        a = curve([8, 4], accesses=10, instr=100)
        b = curve([2, 0], accesses=5, instr=50)
        m = a.merged_over_time(b)
        assert list(m.misses) == [10, 4]
        assert m.accesses == 15
        assert m.instructions == 150

    def test_merge_grid_mismatch_rejected(self):
        with pytest.raises(ValueError):
            curve([1, 0], chunk=64).merged_over_time(curve([1, 0], chunk=128))


class TestHullProperties:
    @given(
        st.lists(st.floats(0, 1000, allow_nan=False), min_size=1, max_size=50)
    )
    def test_hull_is_convex_and_below(self, values):
        c = curve(values)
        hull = c.convex_hull()
        assert np.all(hull <= c.misses + 1e-6)
        if len(hull) >= 3:
            # Discrete convexity: second differences non-negative.
            d2 = np.diff(hull, 2)
            assert np.all(d2 >= -1e-6)
