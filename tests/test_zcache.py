"""Unit tests for the zcache (Table 3's bank organization)."""

import numpy as np
import pytest

from repro.curves import StackDistanceProfiler
from repro.nuca import CacheSim, ZCache
from repro.replacement import LRU


class TestZCacheBasics:
    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            ZCache(size_bytes=100, ways=4)
        with pytest.raises(ValueError):
            ZCache(size_bytes=64 * 64, ways=1)

    def test_nominal_associativity_52(self):
        """Table 3: 4-way, 52-candidate zcache."""
        z = ZCache(size_bytes=512 * 1024, ways=4, walk_levels=2)
        assert z.associativity == 4 + 12 + 36  # = 52

    def test_hit_after_fill(self):
        z = ZCache(size_bytes=64 * 64, ways=4)
        assert z.access(123) is False
        assert z.access(123) is True
        assert z.stats.hits == 1

    def test_capacity_respected(self):
        """No more distinct lines resident than capacity."""
        n_lines = 64
        z = ZCache(size_bytes=n_lines * 64, ways=4)
        for addr in range(200):
            z.access(addr)
        resident = int(np.count_nonzero(z._arrays >= 0))
        assert resident <= n_lines

    def test_small_working_set_all_hits(self):
        z = ZCache(size_bytes=256 * 64, ways=4)
        lines = np.tile(np.arange(64, dtype=np.int64), 20)
        stats = z.run(lines)
        # After the cold pass everything fits easily.
        assert stats.misses <= 64 + 4


class TestZCacheAssociativity:
    def conflict_trace(self, n_sets, reps=30):
        """Addresses that all collide in one set of a set-assoc cache."""
        hot = np.arange(8, dtype=np.int64) * n_sets  # same set index
        return np.tile(hot, reps)

    def test_beats_setassoc_on_conflicts(self):
        """8 lines hammering one 4-way set: set-assoc thrashes, the
        zcache's candidate walk spreads them out."""
        size = 64 * 64 * 4  # 256 lines, 4-way -> 64 sets
        sa = CacheSim(size_bytes=size, ways=4, policy_factory=lambda s, w: LRU(s, w))
        n_sets = sa.n_sets
        trace = self.conflict_trace(n_sets)
        sa_stats = sa.run(trace)
        z = ZCache(size_bytes=size, ways=4)
        z_stats = z.run(trace)
        assert z_stats.misses < 0.5 * sa_stats.misses

    def test_tracks_fully_associative_model(self):
        """Bank-level validation of the analytical assumption: a 4-way
        zcache behaves like the fully-associative Mattson curve."""
        rng = np.random.default_rng(3)
        lines = rng.zipf(1.4, size=40_000).astype(np.int64) % 4096
        size_lines = 512
        z = ZCache(size_bytes=size_lines * 64, ways=4)
        stats = z.run(lines)
        prof = StackDistanceProfiler(chunk_bytes=64 * 64, n_chunks=128)
        curve = prof.profile_combined(lines, instructions=1e6)[0]
        predicted = curve.misses_at(size_lines * 64)
        assert stats.misses == pytest.approx(predicted, rel=0.2)


class TestSweep:
    def test_vary_config_axes(self):
        from repro.nuca import four_core_config
        from repro.sim import vary_config

        cfg = four_core_config()
        assert vary_config(cfg, "mesh_dim", 7).geometry.dim == 7
        assert vary_config(cfg, "bank_kb", 256).geometry.bank_bytes == 256 * 1024
        assert vary_config(cfg, "mem_latency", 200).latency.mem_latency == 200
        assert vary_config(cfg, "base_cpi", 1.0).base_cpi == 1.0
        with pytest.raises(ValueError):
            vary_config(cfg, "voltage", 1.0)

    def test_sweep_runs_and_shapes(self):
        from repro.nuca import four_core_config
        from repro.schemes import JigsawScheme, SNUCAScheme
        from repro.sim import sweep
        from repro.workloads import build_workload

        w = build_workload("hull", scale="train", seed=0)
        result = sweep(
            w,
            four_core_config(),
            "mem_latency",
            [60, 240],
            {"Jigsaw": JigsawScheme, "LRU": lambda c, v: SNUCAScheme(c, v, "lru")},
        )
        assert result.axis == "mem_latency"
        assert len(result.results) == 2
        series = result.series("Jigsaw")
        assert series[1] > series[0]  # slower memory -> more cycles
        rel = result.relative_series("LRU", "Jigsaw")
        assert all(r >= 0.99 for r in rel)


class TestAwasthiAlphas:
    def test_invalid_alphas(self):
        from repro.nuca import four_core_config
        from repro.schemes import AwasthiScheme, VCSpec

        with pytest.raises(ValueError):
            AwasthiScheme(four_core_config(), [VCSpec(0, "p")], alpha_a=1.5)

    def test_aggressive_alpha_grows_more(self):
        from repro.curves import MissCurve
        from repro.nuca import four_core_config
        from repro.schemes import AwasthiScheme, VCSpec

        cfg = four_core_config()
        n = cfg.model_chunks
        vals = 5000 * np.power(0.985, np.arange(n + 1))
        c = MissCurve(
            misses=vals, chunk_bytes=cfg.chunk_bytes, accesses=5000.0,
            instructions=1e6,
        )
        eager = AwasthiScheme(cfg, [VCSpec(0, "p")], alpha_a=0.001, alpha_b=0.001)
        strict = AwasthiScheme(cfg, [VCSpec(0, "p")], alpha_a=0.1, alpha_b=0.2)
        for __ in range(15):
            a_eager = eager.decide({0: c})
            a_strict = strict.decide({0: c})
        assert a_eager[0].size_bytes >= a_strict[0].size_bytes