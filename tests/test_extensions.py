"""Tests for the extension modules: Talus, R-NUCA, prefetcher, GMON, CLI."""

import numpy as np
import pytest

from repro.curves import GMON, MissCurve, StackDistanceProfiler, quantize_curve
from repro.mem import HeapAllocator
from repro.nuca import CacheSim, four_core_config
from repro.replacement import LRU, TalusCache, talus_split
from repro.schemes import RNUCAScheme, VCSpec
from repro.sim.prefetch import apply_stream_prefetcher, prefetch_energy
from repro.workloads import TraceBuilder
from repro.workloads.patterns import scan, zipf_random

_MB = 1 << 20
CHUNK = 64 * 1024


def curve_from(values, accesses=None, instr=1e6):
    values = np.asarray(values, dtype=float)
    return MissCurve(
        misses=values,
        chunk_bytes=CHUNK,
        accesses=float(values[0]) if accesses is None else accesses,
        instructions=instr,
    )


class TestTalusSplit:
    def test_convex_region_single_partition(self):
        c = curve_from(1000 * np.power(0.9, np.arange(30)))
        rho, s1, s2 = talus_split(c, 10 * CHUNK)
        assert rho == 1.0
        assert s2 == 0.0

    def test_cliff_region_interpolates(self):
        # Cliff at 20 chunks; target 10 chunks sits on the hull chord.
        vals = [1000.0] * 20 + [0.0] * 11
        c = curve_from(vals)
        rho, s1, s2 = talus_split(c, 10 * CHUNK)
        assert 0 < rho < 1
        # Sizes recombine to the target.
        assert s1 + s2 == pytest.approx(10 * CHUNK)

    def test_talus_cache_beats_plain_lru_on_cliff(self):
        """The headline Talus property: hull performance at mid sizes.

        A cyclic scan over a 512 KB working set thrashes a 256 KB LRU
        cache (~100% misses); the hull says half the misses are
        avoidable, and the shadow partitions realize it.
        """
        ws_lines = 8192  # 512 KB working set
        lines = np.tile(np.arange(ws_lines, dtype=np.int64), 15)
        prof = StackDistanceProfiler(chunk_bytes=CHUNK, n_chunks=16)
        curve = prof.profile_combined(lines, instructions=1e6)[0]
        cache_bytes = 256 * 1024
        plain = CacheSim(
            size_bytes=cache_bytes, ways=16, policy_factory=lambda s, w: LRU(s, w)
        ).run(lines)
        talus = TalusCache(curve, cache_bytes).run(lines)
        predicted_hull = curve.hull_curve().misses_at(cache_bytes)
        # Plain LRU thrashes; Talus lands near the hull.
        assert plain.misses > 0.95 * len(lines)
        assert talus.misses < 0.8 * plain.misses
        assert talus.misses == pytest.approx(predicted_hull, rel=0.25)


class TestRNUCA:
    def test_private_data_confined_to_cluster(self):
        cfg = four_core_config()
        s = RNUCAScheme(cfg, [VCSpec(0, "process")])
        c = curve_from([1000.0] * (cfg.model_chunks + 1), accesses=1000)
        alloc = s.decide({0: c})
        assert alloc[0].size_bytes == 4 * cfg.geometry.bank_bytes

    def test_shared_data_spreads(self):
        cfg = four_core_config()
        s = RNUCAScheme(cfg, [VCSpec(0, "shared")])
        c = curve_from([1000.0] * (cfg.model_chunks + 1), accesses=1000)
        alloc = s.decide({0: c})
        assert alloc[0].size_bytes == cfg.llc_bytes

    def test_invalid_cluster(self):
        cfg = four_core_config()
        with pytest.raises(ValueError):
            RNUCAScheme(cfg, [VCSpec(0, "p")], cluster_banks=0)

    def test_worse_than_jigsaw_on_big_ws(self):
        """R-NUCA can't grow past its cluster (Appendix A comparison)."""
        from repro.schemes import JigsawScheme

        cfg = four_core_config()
        n = cfg.model_chunks
        vals = [5000.0] * int(8 * _MB / CHUNK) + [0.0] * (
            n + 1 - int(8 * _MB / CHUNK)
        )
        c = curve_from(vals, accesses=5000)
        vcs = [VCSpec(0, "process")]
        rn = RNUCAScheme(cfg, vcs).step({0: c}, {0: c}, 1e6)
        jig = JigsawScheme(cfg, vcs).step({0: c}, {0: c}, 1e6)
        assert rn.misses > jig.misses


class TestPrefetcher:
    def make_trace(self):
        heap = HeapAllocator()
        stream_buf = heap.malloc(2 * _MB)
        random_buf = heap.malloc(_MB)
        rng = np.random.default_rng(1)
        tb = TraceBuilder()
        r_s = tb.region("stream", stream_buf)
        r_r = tb.region("rand", random_buf)
        tb.access(scan(stream_buf), r_s)
        tb.access(zipf_random(rng, random_buf, 20_000), r_r)
        return tb.finalize(apki=30.0)

    def test_streams_covered_random_kept(self):
        trace = self.make_trace()
        result = apply_stream_prefetcher(trace)
        assert result.covered > 0.8 * (2 * _MB // 64)  # most of the scan
        kept_regions = set(result.trace.regions.tolist())
        assert len(kept_regions) == 2  # random region survives

    def test_instructions_preserved(self):
        trace = self.make_trace()
        result = apply_stream_prefetcher(trace)
        assert result.trace.instructions == trace.instructions

    def test_accuracy_and_energy(self):
        trace = self.make_trace()
        result = apply_stream_prefetcher(trace, waste=0.25)
        assert result.accuracy == pytest.approx(0.8, rel=0.01)
        cfg = four_core_config()
        e = prefetch_energy(result, cfg)
        assert e.memory > 0
        assert e.total == pytest.approx(
            cfg.energy.memory_access(cfg.geometry.mem_hops(0), result.issued).total
        )

    def test_no_streams_nothing_covered(self):
        heap = HeapAllocator()
        buf = heap.malloc(_MB)
        rng = np.random.default_rng(2)
        tb = TraceBuilder()
        r = tb.region("rand", buf)
        tb.access(zipf_random(rng, buf, 10_000), r)
        trace = tb.finalize(apki=30.0)
        result = apply_stream_prefetcher(trace)
        assert result.covered < 0.05 * len(trace)


class TestGMON:
    def test_quantized_preserves_endpoints(self):
        c = curve_from(1000 * np.power(0.95, np.arange(201)))
        q = quantize_curve(c, 16)
        assert q.misses[0] == c.misses[0]
        assert q.misses[-1] == pytest.approx(c.misses[-1])

    def test_quantized_is_interpolation(self):
        c = curve_from(np.linspace(1000, 0, 101))
        q = quantize_curve(c, 4)
        assert np.allclose(q.misses, c.misses, atol=1e-6)  # linear stays exact

    def test_rejects_tiny_ways(self):
        c = curve_from([10, 5, 0])
        with pytest.raises(ValueError):
            quantize_curve(c, 1)
        with pytest.raises(ValueError):
            GMON(n_ways=1)

    def test_observe_and_storage(self):
        c = curve_from(1000 * np.power(0.9, np.arange(50)))
        gmon = GMON(n_ways=8)
        out = gmon.observe({0: c, 1: c})
        assert set(out) == {0, 1}
        assert gmon.storage_bits(n_vcs=4) == 4 * 8 * 32


class TestCLI:
    def test_list_apps(self, capsys):
        from repro.cli import main

        assert main(["list-apps"]) == 0
        out = capsys.readouterr().out
        assert "MIS" in out and "pagerank" in out

    def test_config(self, capsys):
        from repro.cli import main

        assert main(["config"]) == 0
        out = capsys.readouterr().out
        assert "4-core 5x5" in out and "Table 2" in out

    def test_run_subset(self, capsys):
        from repro.cli import main

        code = main(
            ["run", "hull", "--scale", "train", "--schemes", "Jigsaw,Whirlpool"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Whirlpool" in out

    def test_run_rejects_unknown_scheme(self, capsys):
        from repro.cli import main

        assert main(["run", "hull", "--schemes", "Foo"]) == 2

    def test_whirltool_command(self, capsys):
        from repro.cli import main

        assert main(["whirltool", "hull", "--pools", "2"]) == 0
        out = capsys.readouterr().out
        assert "pool 0" in out

    def test_placement_requires_port(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["placement", "dict"])  # not a Table-2 app
