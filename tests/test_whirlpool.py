"""Unit tests for the Whirlpool scheme wrapper and Table-2 registry."""

import pytest

from repro.core import TABLE2, table2_rows, whirlpool
from repro.core.whirlpool import MAX_USER_POOLS, WhirlpoolScheme
from repro.nuca import four_core_config
from repro.schemes import VCSpec
from repro.sim import simulate
from repro.workloads import MANUAL_APPS, build_workload


@pytest.fixture(scope="module")
def cfg():
    return four_core_config()


class TestTable2:
    def test_twelve_apps(self):
        assert len(TABLE2) == 12

    def test_rows_match_paper(self):
        rows = dict((r[0], r[1:]) for r in table2_rows())
        assert rows["Maximal independent set"] == (
            3, "Vertices, edges, flags", 13
        )
        assert rows["436.cactusADM"][0] == 2
        assert rows["401.bzip2"][2] == 43

    def test_workloads_exist_for_all_entries(self):
        for entry in TABLE2:
            assert entry.workload in MANUAL_APPS

    def test_pool_counts_consistent_with_workloads(self):
        for entry in TABLE2:
            w = build_workload(entry.workload, scale="train")
            assert len(set(w.manual_pools.values())) == entry.pools


class TestWhirlpoolScheme:
    def test_name(self, cfg):
        s = WhirlpoolScheme(cfg, [VCSpec(0, "process")])
        assert s.name == "Whirlpool"
        s2 = WhirlpoolScheme(cfg, [VCSpec(0, "process")], bypass=False)
        assert s2.name == "Whirlpool-NoBypass"

    def test_vtb_budget_enforced(self, cfg):
        vcs = [VCSpec(0, "process")] + [
            VCSpec(i + 1, f"pool{i}") for i in range(MAX_USER_POOLS + 2)
        ]
        with pytest.raises(ValueError):
            WhirlpoolScheme(cfg, vcs)

    def test_area_overhead_small(self, cfg):
        """Sec 3.2: VTB entries + monitors ≈ 0.3% of cache area."""
        s = WhirlpoolScheme(cfg, [VCSpec(0, "process")])
        assert s.area_overhead_fraction < 0.005

    def test_inherits_hull_accounting(self, cfg):
        assert WhirlpoolScheme(cfg, [VCSpec(0, "p")]).hull_accounting


class TestWhirlpoolEndToEnd:
    def test_beats_jigsaw_on_manual_apps(self, cfg):
        """Whirlpool never loses badly to Jigsaw on the ported apps."""
        from repro.schemes import JigsawScheme

        for app in ["MIS", "cactus", "lbm"]:
            w = build_workload(app, scale="ref", seed=0)
            jig = simulate(w, cfg, JigsawScheme)
            factory, cls = whirlpool()
            whirl = simulate(w, cfg, factory, classifier=cls)
            assert whirl.cycles < jig.cycles * 1.01, app
            assert whirl.energy.total < jig.energy.total * 1.05, app

    def test_nobypass_ablation(self, cfg):
        """Bypassing matters more for Whirlpool than for Jigsaw (Sec 4.5)."""
        from repro.schemes import JigsawScheme

        w = build_workload("MIS", scale="ref", seed=0)
        factory_b, cls = whirlpool(bypass=True)
        factory_n, __ = whirlpool(bypass=False)
        whirl = simulate(w, cfg, factory_b, classifier=cls)
        whirl_nb = simulate(w, cfg, factory_n, classifier=cls)
        jig = simulate(w, cfg, JigsawScheme)
        jig_nb = simulate(w, cfg, lambda c, v: JigsawScheme(c, v, bypass=False))
        whirl_gain = whirl_nb.cycles / whirl.cycles
        jig_gain = jig_nb.cycles / jig.cycles
        assert whirl_gain >= jig_gain
