"""Profile-cache correctness: round-trips, stale files, format versions.

The on-disk cache must be invisible: a load must return exactly what a
cold profiling run computes, and any stale/partial/foreign file must
fall back to re-profiling rather than crash (a killed campaign worker
can leave such files behind).
"""

import os
import tempfile

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim import profiling
from repro.sim.profiling import profile_vcs
from repro.workloads.trace import Trace


@pytest.fixture()
def cache_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE_CACHE", str(tmp_path))
    return tmp_path


def make_trace(lines, regions, instructions):
    return Trace(
        lines=np.asarray(lines, dtype=np.int64),
        regions=np.asarray(regions, dtype=np.int32),
        instructions=instructions,
    )


def assert_curves_equal(a, b):
    assert set(a) == set(b)
    for vc in a:
        assert len(a[vc]) == len(b[vc])
        for ca, cb in zip(a[vc], b[vc]):
            assert np.array_equal(ca.misses, cb.misses)
            assert ca.accesses == cb.accesses
            assert ca.instructions == cb.instructions
            assert ca.chunk_bytes == cb.chunk_bytes


@st.composite
def trace_inputs(draw):
    n = draw(st.integers(min_value=1, max_value=300))
    lines = draw(
        st.lists(
            st.integers(min_value=0, max_value=255), min_size=n, max_size=n
        )
    )
    regions = draw(
        st.lists(st.integers(min_value=0, max_value=7), min_size=n, max_size=n)
    )
    instructions = draw(st.floats(min_value=1.0, max_value=1e6))
    mapping = {
        rid: draw(st.integers(min_value=0, max_value=3))
        for rid in sorted(set(regions))
    }
    n_intervals = draw(st.integers(min_value=1, max_value=3))
    return lines, regions, instructions, mapping, n_intervals


class TestCacheRoundTrip:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(inputs=trace_inputs())
    def test_store_load_equals_cold_run(self, inputs):
        lines, regions, instructions, mapping, n_intervals = inputs
        trace = make_trace(lines, regions, instructions)
        kwargs = dict(
            mapping=mapping,
            chunk_bytes=1024,
            n_chunks=6,
            n_intervals=n_intervals,
        )
        # Each example gets its own cache dir; hypothesis shrinks across
        # examples, so a shared fixture directory would alias entries.
        with tempfile.TemporaryDirectory() as cache:
            old = os.environ.get("REPRO_PROFILE_CACHE")
            os.environ["REPRO_PROFILE_CACHE"] = cache
            try:
                cold = profile_vcs(trace, use_cache=False, **kwargs)
                stored = profile_vcs(trace, use_cache=True, **kwargs)
                loaded = profile_vcs(trace, use_cache=True, **kwargs)
            finally:
                if old is None:
                    del os.environ["REPRO_PROFILE_CACHE"]
                else:
                    os.environ["REPRO_PROFILE_CACHE"] = old
        assert_curves_equal(stored, cold)
        assert_curves_equal(loaded, cold)


def seed_cache(cache_env, n_intervals=2):
    """Profile once with caching on; returns (trace, kwargs, cold, path)."""
    rng = np.random.default_rng(7)
    trace = make_trace(
        rng.integers(0, 64, size=200), rng.integers(0, 4, size=200), 5000.0
    )
    kwargs = dict(
        mapping={0: 0, 1: 0, 2: 1, 3: 1},
        chunk_bytes=1024,
        n_chunks=4,
        n_intervals=n_intervals,
    )
    cold = profile_vcs(trace, use_cache=False, **kwargs)
    profile_vcs(trace, use_cache=True, **kwargs)
    files = list(cache_env.glob("*.npz"))
    assert len(files) == 1
    return trace, kwargs, cold, files[0]


class TestStaleCache:
    def rewrite(self, path, mutate):
        data = dict(np.load(path))
        mutate(data)
        np.savez_compressed(path, **data)

    def test_missing_interval_arrays_fall_back(self, cache_env):
        trace, kwargs, cold, path = seed_cache(cache_env)
        # A stale/partial file missing an m_{i}_{t} array must re-profile,
        # not raise KeyError.
        self.rewrite(path, lambda d: d.pop("m_0_1"))
        assert_curves_equal(profile_vcs(trace, use_cache=True, **kwargs), cold)

    def test_wrong_format_version_falls_back(self, cache_env):
        trace, kwargs, cold, path = seed_cache(cache_env)
        self.rewrite(
            path,
            lambda d: d.update(format_version=np.array(999, dtype=np.int64)),
        )
        assert_curves_equal(profile_vcs(trace, use_cache=True, **kwargs), cold)

    def test_legacy_file_without_version_key_loads(self, cache_env):
        trace, kwargs, cold, path = seed_cache(cache_env)
        # Pre-versioning files (the committed cache) share the v1 layout
        # and must stay valid.
        self.rewrite(path, lambda d: d.pop("format_version"))
        mtime = path.stat().st_mtime_ns
        assert_curves_equal(profile_vcs(trace, use_cache=True, **kwargs), cold)
        assert path.stat().st_mtime_ns == mtime  # served from cache, not rewritten

    def test_garbage_file_falls_back(self, cache_env):
        trace, kwargs, cold, path = seed_cache(cache_env)
        path.write_bytes(b"not an npz file")
        assert_curves_equal(profile_vcs(trace, use_cache=True, **kwargs), cold)

    def test_store_writes_current_version(self, cache_env):
        __, __, __, path = seed_cache(cache_env)
        data = np.load(path)
        assert int(data["format_version"]) == profiling._FORMAT_VERSION
