"""Profile-cache correctness: round-trips, stale files, format versions.

The on-disk cache must be invisible: a load must return exactly what a
cold profiling run computes, and any stale/partial/foreign file must
fall back to re-profiling rather than crash (a killed campaign worker
can leave such files behind).
"""

import os
import tempfile

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim import profiling
from repro.sim.profiling import profile_vcs
from repro.workloads.trace import Trace


@pytest.fixture()
def cache_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE_CACHE", str(tmp_path))
    return tmp_path


def make_trace(lines, regions, instructions):
    return Trace(
        lines=np.asarray(lines, dtype=np.int64),
        regions=np.asarray(regions, dtype=np.int32),
        instructions=instructions,
    )


def assert_curves_equal(a, b):
    assert set(a) == set(b)
    for vc in a:
        assert len(a[vc]) == len(b[vc])
        for ca, cb in zip(a[vc], b[vc]):
            assert np.array_equal(ca.misses, cb.misses)
            assert ca.accesses == cb.accesses
            assert ca.instructions == cb.instructions
            assert ca.chunk_bytes == cb.chunk_bytes


@st.composite
def trace_inputs(draw):
    n = draw(st.integers(min_value=1, max_value=300))
    lines = draw(
        st.lists(
            st.integers(min_value=0, max_value=255), min_size=n, max_size=n
        )
    )
    regions = draw(
        st.lists(st.integers(min_value=0, max_value=7), min_size=n, max_size=n)
    )
    instructions = draw(st.floats(min_value=1.0, max_value=1e6))
    mapping = {
        rid: draw(st.integers(min_value=0, max_value=3))
        for rid in sorted(set(regions))
    }
    n_intervals = draw(st.integers(min_value=1, max_value=3))
    return lines, regions, instructions, mapping, n_intervals


class TestCacheRoundTrip:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(inputs=trace_inputs())
    def test_store_load_equals_cold_run(self, inputs):
        lines, regions, instructions, mapping, n_intervals = inputs
        trace = make_trace(lines, regions, instructions)
        kwargs = dict(
            mapping=mapping,
            chunk_bytes=1024,
            n_chunks=6,
            n_intervals=n_intervals,
        )
        # Each example gets its own cache dir; hypothesis shrinks across
        # examples, so a shared fixture directory would alias entries.
        with tempfile.TemporaryDirectory() as cache:
            old = os.environ.get("REPRO_PROFILE_CACHE")
            os.environ["REPRO_PROFILE_CACHE"] = cache
            try:
                cold = profile_vcs(trace, use_cache=False, **kwargs)
                stored = profile_vcs(trace, use_cache=True, **kwargs)
                loaded = profile_vcs(trace, use_cache=True, **kwargs)
            finally:
                if old is None:
                    del os.environ["REPRO_PROFILE_CACHE"]
                else:
                    os.environ["REPRO_PROFILE_CACHE"] = old
        assert_curves_equal(stored, cold)
        assert_curves_equal(loaded, cold)


def seed_cache(cache_env, n_intervals=2):
    """Profile once with caching on; returns (trace, kwargs, cold, path)."""
    rng = np.random.default_rng(7)
    trace = make_trace(
        rng.integers(0, 64, size=200), rng.integers(0, 4, size=200), 5000.0
    )
    kwargs = dict(
        mapping={0: 0, 1: 0, 2: 1, 3: 1},
        chunk_bytes=1024,
        n_chunks=4,
        n_intervals=n_intervals,
    )
    cold = profile_vcs(trace, use_cache=False, **kwargs)
    profile_vcs(trace, use_cache=True, **kwargs)
    files = list(cache_env.glob("*.npz"))
    assert len(files) == 1
    return trace, kwargs, cold, files[0]


class TestStaleCache:
    def rewrite(self, path, mutate):
        data = dict(np.load(path))
        mutate(data)
        np.savez_compressed(path, **data)

    def test_missing_interval_arrays_fall_back(self, cache_env):
        trace, kwargs, cold, path = seed_cache(cache_env)
        # A stale/partial file missing an m_{i}_{t} array must re-profile,
        # not raise KeyError.
        self.rewrite(path, lambda d: d.pop("m_0_1"))
        assert_curves_equal(profile_vcs(trace, use_cache=True, **kwargs), cold)

    def test_wrong_format_version_falls_back(self, cache_env):
        trace, kwargs, cold, path = seed_cache(cache_env)
        self.rewrite(
            path,
            lambda d: d.update(format_version=np.array(999, dtype=np.int64)),
        )
        assert_curves_equal(profile_vcs(trace, use_cache=True, **kwargs), cold)

    def test_legacy_file_without_version_key_is_regenerated(self, cache_env):
        trace, kwargs, cold, path = seed_cache(cache_env)
        # Files without a version key load as version 1, whose fingerprints
        # were computed from a stride-257 sample and can collide.  They
        # must be re-profiled and rewritten, never served.
        self.rewrite(path, lambda d: d.pop("format_version"))
        assert_curves_equal(profile_vcs(trace, use_cache=True, **kwargs), cold)
        data = np.load(path)
        assert int(data["format_version"]) == profiling._FORMAT_VERSION

    def test_garbage_file_falls_back(self, cache_env):
        trace, kwargs, cold, path = seed_cache(cache_env)
        path.write_bytes(b"not an npz file")
        assert_curves_equal(profile_vcs(trace, use_cache=True, **kwargs), cold)

    def test_store_writes_current_version(self, cache_env):
        __, __, __, path = seed_cache(cache_env)
        data = np.load(path)
        assert int(data["format_version"]) == profiling._FORMAT_VERSION


class TestFingerprint:
    def test_short_traces_with_equal_shape_do_not_collide(self, cache_env):
        # Regression: the v1 fingerprint hashed lines[::257]/regions[::257],
        # so any two traces shorter than 257 accesses that agreed on their
        # first access, length, and instruction count shared a cache key —
        # profile_vcs silently returned the *wrong* cached curves.
        kwargs = dict(mapping={0: 0}, chunk_bytes=1024, n_chunks=4)
        a = make_trace([0, 1, 2, 3], [0, 0, 0, 0], 100.0)
        b = make_trace([0, 5, 9, 13], [0, 0, 0, 0], 100.0)
        cold_b = profile_vcs(b, use_cache=False, **kwargs)
        profile_vcs(a, use_cache=True, **kwargs)  # populate cache with a
        served = profile_vcs(b, use_cache=True, **kwargs)
        assert_curves_equal(served, cold_b)
        assert len(list(cache_env.glob("*.npz"))) == 2

    def test_region_relabel_changes_fingerprint(self, cache_env):
        lines = [0, 1, 2, 3]
        a = make_trace(lines, [0, 0, 1, 1], 100.0)
        b = make_trace(lines, [0, 1, 1, 1], 100.0)
        kwargs = dict(mapping={0: 0, 1: 1}, chunk_bytes=1024, n_chunks=4)
        cold_b = profile_vcs(b, use_cache=False, **kwargs)
        profile_vcs(a, use_cache=True, **kwargs)
        assert_curves_equal(profile_vcs(b, use_cache=True, **kwargs), cold_b)


class TestStoreBackedCache:
    """Without $REPRO_PROFILE_CACHE, profiles live in the artifact store."""

    @pytest.fixture()
    def store_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE_CACHE", raising=False)
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
        # Isolate from the repo's committed fixture pile.
        monkeypatch.setattr(profiling, "_fixture_dir", lambda: None)
        return tmp_path / "store"

    def seed(self, n_intervals=2):
        rng = np.random.default_rng(11)
        trace = make_trace(
            rng.integers(0, 64, size=200),
            rng.integers(0, 4, size=200),
            5000.0,
        )
        kwargs = dict(
            mapping={0: 0, 1: 0, 2: 1, 3: 1},
            chunk_bytes=1024,
            n_chunks=4,
            n_intervals=n_intervals,
        )
        return trace, kwargs

    def test_round_trip_with_provenance(self, store_env):
        from repro.store import ArtifactStore

        trace, kwargs = self.seed()
        cold = profile_vcs(trace, use_cache=False, **kwargs)
        profile_vcs(trace, use_cache=True, **kwargs)
        loaded = profile_vcs(trace, use_cache=True, **kwargs)
        assert_curves_equal(loaded, cold)
        store = ArtifactStore()
        (artifact,) = list(store.artifacts("profiles"))
        meta = store.provenance("profiles", artifact[1])
        assert meta["builder"] == "repro.sim.profiling.profile_vcs"
        assert meta["inputs"]["n_records"] == 200
        assert meta["inputs"]["chunk_bytes"] == 1024

    def test_loads_are_memmapped_zero_copy(self, store_env):
        trace, kwargs = self.seed()
        profile_vcs(trace, use_cache=True, **kwargs)
        loaded = profile_vcs(trace, use_cache=True, **kwargs)
        for curves in loaded.values():
            for curve in curves:
                # A mapped view, not a private deserialized copy: this
                # is what lets N campaign workers share one page-cache
                # copy of every profile.
                assert not curve.misses.flags.writeable
                assert curve.misses.base is not None

    def test_legacy_fixture_fallback_reads_but_never_writes(
        self, store_env, tmp_path, monkeypatch
    ):
        # Seed a legacy flat-directory pile (the committed fixture
        # layout), then point the fixture fallback at it.
        legacy = tmp_path / "fixtures"
        monkeypatch.setenv("REPRO_PROFILE_CACHE", str(legacy))
        trace, kwargs = self.seed()
        cold = profile_vcs(trace, use_cache=False, **kwargs)
        profile_vcs(trace, use_cache=True, **kwargs)
        assert len(list(legacy.glob("*.npz"))) == 1
        monkeypatch.delenv("REPRO_PROFILE_CACHE")
        monkeypatch.setattr(profiling, "_fixture_dir", lambda: legacy)

        served = profile_vcs(trace, use_cache=True, **kwargs)
        assert_curves_equal(served, cold)
        # Fixture hits are not re-published: the store would otherwise
        # duplicate the entire committed pile on first use.
        from repro.store import ArtifactStore

        assert list(ArtifactStore().artifacts("profiles")) == []

    def test_clear_cache_clears_store_profiles(self, store_env):
        trace, kwargs = self.seed()
        profile_vcs(trace, use_cache=True, **kwargs)
        from repro.sim.profiling import clear_cache

        assert clear_cache() == 1
        from repro.store import ArtifactStore

        assert list(ArtifactStore().artifacts("profiles")) == []
        # Stale sidecars would otherwise be reported by gc forever.
        assert ArtifactStore().gc(dry_run=True)["removed"] == []
