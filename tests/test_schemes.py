"""Unit tests for the cache-management schemes."""

import numpy as np
import pytest

from repro.curves import MissCurve
from repro.nuca import four_core_config
from repro.schemes import (
    AwasthiScheme,
    IdealSPDScheme,
    JigsawScheme,
    SNUCAScheme,
    VCSpec,
)
from repro.schemes.awasthi import INITIAL_BANKS

_MB = 1 << 20
CHUNK = 64 * 1024


def curve(values, accesses=None, instr=1_000_000.0):
    values = np.asarray(values, dtype=float)
    return MissCurve(
        misses=values,
        chunk_bytes=CHUNK,
        accesses=float(values[0]) if accesses is None else accesses,
        instructions=instr,
    )


def flat_curve(level, n, accesses, instr=1_000_000.0):
    """A streaming pool: misses independent of size."""
    return curve([level] * (n + 1), accesses=accesses, instr=instr)


def cliff_curve(peak, cliff_chunks, n, accesses=None, instr=1_000_000.0):
    """All misses until `cliff_chunks`, none after (working set cliff).

    ``accesses`` defaults to ``peak``: with no capacity everything
    misses, beyond the cliff everything hits.
    """
    vals = [peak] * cliff_chunks + [0.0] * (n + 1 - cliff_chunks)
    return curve(vals, accesses=accesses or peak, instr=instr)


@pytest.fixture
def cfg():
    return four_core_config()


def n_model(cfg):
    return cfg.model_chunks


class TestSNUCA:
    def test_rejects_unknown_replacement(self, cfg):
        with pytest.raises(ValueError):
            SNUCAScheme(cfg, [VCSpec(0, "p")], replacement="fifo")

    def test_spreads_over_all_banks(self, cfg):
        s = SNUCAScheme(cfg, [VCSpec(0, "p")], "lru")
        alloc = s.decide({0: flat_curve(10, n_model(cfg), 100)})
        assert alloc[0].size_bytes == cfg.llc_bytes
        assert alloc[0].avg_hops == pytest.approx(cfg.geometry.snuca_avg_hops(0))

    def test_drrip_beats_lru_on_cliff_past_cache(self, cfg):
        """Thrashing working set slightly beyond the LLC (scan resistance)."""
        n = n_model(cfg)
        cliff = int(cfg.llc_bytes * 1.3 / CHUNK)
        c = cliff_curve(1000, cliff, n)
        vcs = [VCSpec(0, "p")]
        lru = SNUCAScheme(cfg, vcs, "lru").step({0: c}, {0: c}, 1e6)
        drrip = SNUCAScheme(cfg, vcs, "drrip").step({0: c}, {0: c}, 1e6)
        assert drrip.misses < lru.misses

    def test_drrip_equals_lru_on_convex_curve(self, cfg):
        n = n_model(cfg)
        vals = 1000 * np.power(0.97, np.arange(n + 1))
        c = curve(vals)
        vcs = [VCSpec(0, "p")]
        lru = SNUCAScheme(cfg, vcs, "lru").step({0: c}, {0: c}, 1e6)
        drrip = SNUCAScheme(cfg, vcs, "drrip").step({0: c}, {0: c}, 1e6)
        assert drrip.misses == pytest.approx(lru.misses, rel=0.01)

    def test_shared_misses_exceed_solo(self, cfg):
        """Two thrashy programs sharing S-NUCA interfere (combined model)."""
        n = n_model(cfg)
        cliff = int(cfg.llc_bytes * 0.7 / CHUNK)
        a = cliff_curve(1000, cliff, n)
        b = cliff_curve(1000, cliff, n)
        vcs = [VCSpec(0, "a", 0), VCSpec(1, "b", 2)]
        s = SNUCAScheme(cfg, vcs, "lru")
        stats = s.step({0: a, 1: b}, {0: a, 1: b}, 1e6)
        solo = a.misses_at(cfg.llc_bytes) + b.misses_at(cfg.llc_bytes)
        assert stats.misses > solo


class TestIdealSPD:
    def test_small_ws_mostly_private_hits(self, cfg):
        n = n_model(cfg)
        c = cliff_curve(1000, int(1.0 * _MB / CHUNK), n)  # 1 MB WS
        s = IdealSPDScheme(cfg, [VCSpec(0, "p")])
        stats = s.step({0: c}, {0: c}, 1e6)
        assert stats.misses == pytest.approx(0, abs=1)
        assert stats.hits == pytest.approx(c.accesses, rel=0.01)

    def test_large_ws_pays_multilevel_lookups(self, cfg):
        """When the WS exceeds the private region, IdealSPD is slower AND
        more energy-hungry than a plain shared LRU cache."""
        n = n_model(cfg)
        c = cliff_curve(1000, int(8 * _MB / CHUNK), n)
        vcs = [VCSpec(0, "p")]
        spd = IdealSPDScheme(cfg, vcs).step({0: c}, {0: c}, 1e6)
        lru = SNUCAScheme(cfg, vcs, "lru").step({0: c}, {0: c}, 1e6)
        assert spd.stall_cycles > lru.stall_cycles
        assert spd.energy.total > lru.energy.total


class TestAwasthi:
    def test_starts_near_four_banks(self, cfg):
        """The initial allocation is 4 banks; a WS cliff exactly there
        keeps the hill climber in place."""
        s = AwasthiScheme(cfg, [VCSpec(0, "p")])
        n = n_model(cfg)
        cliff = INITIAL_BANKS * cfg.geometry.bank_bytes // CHUNK
        c = cliff_curve(5000, cliff, n)
        alloc = s.decide({0: c})
        assert alloc[0].size_bytes == INITIAL_BANKS * cfg.geometry.bank_bytes

    def test_grows_on_steep_curve(self, cfg):
        n = n_model(cfg)
        # Steady 3%/chunk decay: per-bank steps stay visibly beneficial
        # well past the initial four banks.
        vals = 5000 * np.power(0.97, np.arange(n + 1))
        c = curve(vals, accesses=5000)
        s = AwasthiScheme(cfg, [VCSpec(0, "p")])
        for __ in range(20):
            alloc = s.decide({0: c})
        assert alloc[0].size_bytes > INITIAL_BANKS * cfg.geometry.bank_bytes

    def test_stuck_on_diffuse_gains(self, cfg):
        """A working-set cliff far beyond the current allocation gives no
        visible per-page benefit -> the hill climber never grows (Fig 9)."""
        n = n_model(cfg)
        cliff = int(10 * _MB / CHUNK)
        c = cliff_curve(1000, cliff, n, accesses=5000)
        s = AwasthiScheme(cfg, [VCSpec(0, "p")])
        for __ in range(20):
            alloc = s.decide({0: c})
        assert alloc[0].size_bytes <= (INITIAL_BANKS + 1) * cfg.geometry.bank_bytes

    def test_migration_energy_charged(self, cfg):
        n = n_model(cfg)
        c = flat_curve(10, n, accesses=100)
        s = AwasthiScheme(cfg, [VCSpec(0, "p")])
        stats = s.step({0: c}, {0: c}, 1e6)
        lru = SNUCAScheme(cfg, [VCSpec(0, "p")], "lru").step({0: c}, {0: c}, 1e6)
        # Bank energy includes page-move read/write traffic.
        assert stats.energy.bank > lru.energy.bank


class TestJigsaw:
    def test_latency_aware_sizing_leaves_far_banks_unused(self, cfg):
        """dt behaviour (Fig 4): once the WS fits, extra banks only add
        network latency, so they stay unused."""
        n = n_model(cfg)
        c = cliff_curve(50_000, int(5 * _MB / CHUNK), n)
        s = JigsawScheme(cfg, [VCSpec(0, "p")])
        alloc = s.decide({0: c})
        assert 4.5 * _MB <= alloc[0].size_bytes <= 7 * _MB

    def test_bypasses_streaming_vc(self, cfg):
        n = n_model(cfg)
        stream = flat_curve(40_000, n, accesses=40_000)
        s = JigsawScheme(cfg, [VCSpec(0, "edges", bypassable=True)])
        alloc = s.decide({0: stream})
        # Bypass engages only after two consecutive epochs (hysteresis:
        # entering bypass mode costs an invalidation).
        assert not alloc[0].bypass
        assert alloc[0].size_bytes == 0
        alloc = s.decide({0: stream})
        assert alloc[0].bypass
        assert alloc[0].size_bytes == 0

    def test_nobypass_still_checks_cache(self, cfg):
        n = n_model(cfg)
        stream = flat_curve(40_000, n, accesses=40_000)
        s = JigsawScheme(cfg, [VCSpec(0, "edges")], bypass=False)
        alloc = s.decide({0: stream})
        assert not alloc[0].bypass

    def test_pools_partitioned_by_value(self, cfg):
        """Cacheable pool gets capacity; streaming pool gets bypassed."""
        n = n_model(cfg)
        good = cliff_curve(60_000, int(3 * _MB / CHUNK), n)
        bad = flat_curve(60_000, n, accesses=60_000)
        s = JigsawScheme(
            cfg, [VCSpec(0, "flags"), VCSpec(1, "edges")], bypass=True
        )
        s.decide({0: good, 1: bad})  # first epoch: hysteresis
        alloc = s.decide({0: good, 1: bad})
        assert alloc[0].size_bytes >= 2.5 * _MB
        assert alloc[1].bypass

    def test_intense_pool_placed_closer(self, cfg):
        n = n_model(cfg)
        hot = cliff_curve(80_000, int(0.5 * _MB / CHUNK), n)
        cold = cliff_curve(80_000, int(4 * _MB / CHUNK), n)
        s = JigsawScheme(cfg, [VCSpec(0, "points"), VCSpec(1, "triangles")])
        alloc = s.decide({0: hot, 1: cold})
        assert alloc[0].avg_hops < alloc[1].avg_hops

    def test_step_accounts_bypasses(self, cfg):
        n = n_model(cfg)
        stream = flat_curve(40_000, n, accesses=40_000)
        s = JigsawScheme(cfg, [VCSpec(0, "edges")])
        s.step({0: stream}, {0: stream}, 1e6)  # hysteresis epoch
        stats = s.step({0: stream}, {0: stream}, 1e6)
        assert stats.bypasses == 40_000
        assert stats.hits == 0
        # Bypasses consume no bank energy.
        assert stats.energy.bank == 0
