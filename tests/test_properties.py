"""Property-based tests over cross-module invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves import (
    MissCurve,
    combine_miss_curves,
    partition_capacity,
    partitioned_miss_curve,
)
from repro.curves.combine import shared_cache_misses
from repro.nuca import MeshGeometry
from repro.parallel.task import ParallelWorkload, Task
from repro.parallel.scheduler import schedule_tasks


def curve_from(values, instr=1e6):
    values = np.asarray(values, dtype=float)
    return MissCurve(
        misses=values,
        chunk_bytes=64 * 1024,
        accesses=float(values[0]),
        instructions=instr,
    )


curve_values = st.lists(
    st.floats(0, 10_000, allow_nan=False), min_size=3, max_size=30
)


class TestCurveInvariants:
    @settings(max_examples=40, deadline=None)
    @given(curve_values, curve_values)
    def test_partition_no_worse_than_static_split(self, va, vb):
        """Optimal partitioning beats any fixed 50/50 split of capacity."""
        n = max(len(va), len(vb)) - 1
        a = curve_from(va).extended(n)
        b = curve_from(vb).extended(n)
        total = n * 64 * 1024
        __, best = partition_capacity([a, b], total)
        half = total / 2
        fixed = (
            a.hull_curve().misses_at(half) / a.instructions
            + b.hull_curve().misses_at(half) / b.instructions
        )
        assert best <= fixed + 1e-9 * max(1.0, fixed)

    @settings(max_examples=40, deadline=None)
    @given(curve_values, curve_values, st.integers(0, 20))
    def test_shared_between_solo_and_sum(self, va, vb, size_chunks):
        """Sharing a cache: each stream misses at least as much as alone
        with the whole cache, at most as much as with no cache."""
        n = max(len(va), len(vb)) - 1
        a = curve_from(va).extended(n)
        b = curve_from(vb).extended(n)
        size = min(size_chunks, n) * 64 * 1024
        shared = shared_cache_misses([a, b], size)
        for s, c in zip(shared, (a, b)):
            assert s >= c.misses_at(c.max_bytes) - 1e-6
            assert s <= c.misses[0] + 1e-6

    @settings(max_examples=40, deadline=None)
    @given(curve_values, curve_values)
    def test_combined_vs_partitioned_distance_nonnegative(self, va, vb):
        """WhirlTool's distance metric is non-negative by construction."""
        n = max(len(va), len(vb)) - 1
        a = curve_from(va).extended(n)
        b = curve_from(vb).extended(n)
        comb = combine_miss_curves(a, b)
        part = partitioned_miss_curve(a, b)
        area = np.sum(comb.misses - part.misses)
        assert area >= -1e-6 * max(1.0, comb.misses[0])


class TestGeometryInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 9), st.integers(1, 16), st.integers(1, 4))
    def test_reach_bounded_by_mesh_diameter(self, dim, n_cores, n_mcus):
        geo = MeshGeometry(dim=dim, n_cores=n_cores, n_mcus=n_mcus)
        diameter = 2 * (dim - 1)
        for core in range(min(n_cores, 4)):
            assert 0 <= geo.reach_avg_hops(core, geo.total_bytes) <= diameter
            assert geo.mem_hops(core) <= diameter

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 9), st.floats(0, 1))
    def test_reach_monotone(self, dim, frac):
        geo = MeshGeometry(dim=dim, n_cores=4)
        s1 = frac * geo.total_bytes
        s2 = min(s1 + geo.bank_bytes, geo.total_bytes)
        assert geo.reach_avg_hops(0, s2) >= geo.reach_avg_hops(0, s1) - 1e-9

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 9), st.floats(1e-3, 1))
    def test_central_placement_capacity(self, dim, frac):
        geo = MeshGeometry(dim=dim, n_cores=4)
        size = frac * geo.total_bytes
        p = geo.central_placement(size)
        assert p.total_bytes == pytest.approx(size)


class TestSchedulerInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.tuples(st.integers(0, 15), st.integers(1, 50)),
                 min_size=1, max_size=40),
        st.sampled_from(["ws", "paws"]),
    )
    def test_every_task_runs_exactly_once(self, specs, policy):
        geo = MeshGeometry(dim=9, n_cores=16)
        tasks = [
            Task(home=h, streams={h: np.zeros(c)}) for h, c in specs
        ]
        w = ParallelWorkload(
            name="prop",
            tasks=tasks,
            region_names={p: str(p) for p in range(16)},
            partition_of_region={p: p for p in range(16)},
            n_partitions=16,
        )
        s = schedule_tasks(w, 16, policy=policy, geometry=geo, seed=0)
        assert all(0 <= c < 16 for c in s.assignment)
        assert s.core_work.sum() == sum(c for __, c in specs)
