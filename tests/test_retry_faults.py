"""Unit tests for the fault-tolerance primitives.

Covers the deterministic retry policy (``repro.retry``), the seeded
fault-injection harness (``repro.devtools.faults``), and the quarantine
sidecar (``repro.exp.quarantine``) — the pieces the supervised engine
composes.  Engine-level behavior lives in ``test_engine_supervision``;
the end-to-end chaos invariant in ``test_faults_chaos``.
"""

import json

import pytest

from repro.devtools import faults
from repro.exp.quarantine import Quarantine, quarantine_path_for
from repro.retry import IO_RETRY, RetryPolicy, call_with_retries, seeded_unit


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    """Every test starts with no active plan and fresh tick counters."""
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.reset()
    yield
    faults.reset()


class TestSeededUnit:
    def test_deterministic_and_in_range(self):
        values = [seeded_unit(7, "key", n) for n in range(100)]
        assert values == [seeded_unit(7, "key", n) for n in range(100)]
        assert all(0.0 <= v < 1.0 for v in values)

    def test_varies_with_each_part(self):
        base = seeded_unit(0, "k", 1)
        assert seeded_unit(1, "k", 1) != base
        assert seeded_unit(0, "other", 1) != base
        assert seeded_unit(0, "k", 2) != base


class TestRetryPolicy:
    def test_delay_is_capped_exponential(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=0.1, backoff=2.0, max_delay=0.5,
            jitter=0.0,
        )
        delays = [policy.delay("k", n) for n in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=1.0, backoff=1.0, jitter=0.25, seed=3)
        d1 = policy.delay("k", 1)
        assert d1 == policy.delay("k", 1)
        assert 1.0 <= d1 < 1.25
        assert policy.delay("k", 1) != policy.delay("other", 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)


class TestCallWithRetries:
    def test_retries_then_succeeds(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        slept = []
        out = call_with_retries(flaky, key="k", sleep=slept.append)
        assert out == "ok"
        assert len(calls) == IO_RETRY.max_attempts == 3
        assert len(slept) == 2

    def test_exhaustion_reraises_last_error(self):
        def always():
            raise OSError("persistent")

        with pytest.raises(OSError, match="persistent"):
            call_with_retries(always, sleep=lambda s: None)

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def typed():
            calls.append(1)
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            call_with_retries(typed, sleep=lambda s: None)
        assert len(calls) == 1

    def test_on_retry_observes_attempts(self):
        seen = []

        def flaky():
            if len(seen) < 1:
                raise OSError("once")
            return 1

        call_with_retries(
            flaky,
            sleep=lambda s: None,
            on_retry=lambda n, exc: seen.append((n, type(exc).__name__)),
        )
        assert seen == [(1, "OSError")]


class TestFaultPlan:
    def test_round_trips_through_json(self):
        plan = faults.FaultPlan(
            [
                faults.FaultRule(site="worker", mode="crash", attempts=(1, 2)),
                faults.FaultRule(site="store-read", mode="raise", count=3),
            ],
            seed=11,
        )
        again = faults.FaultPlan.from_json(plan.to_json())
        assert again.seed == 11
        assert again.rules == plan.rules

    def test_rejects_unknown_mode_and_bad_probability(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            faults.FaultRule(site="worker", mode="explode")
        with pytest.raises(ValueError, match="p must be"):
            faults.FaultRule(site="worker", mode="crash", p=1.5)

    def test_attempt_rule_fires_only_on_listed_attempts(self):
        rule = faults.FaultRule(site="worker", mode="raise", attempts=(1, 3))
        assert rule.fires(0, "k", 1, 0)
        assert not rule.fires(0, "k", 2, 0)
        assert rule.fires(0, "k", 3, 0)
        assert not rule.fires(0, "k", None, 0)  # site without attempt info

    def test_count_rule_fires_first_n_ticks(self):
        rule = faults.FaultRule(site="store-read", mode="raise", count=2)
        fired = [rule.fires(0, "k", None, tick) for tick in range(4)]
        assert fired == [True, True, False, False]

    def test_probability_rule_is_seed_deterministic(self):
        rule = faults.FaultRule(site="worker", mode="raise", p=0.5)
        pattern = [rule.fires(5, "k", a, 0) for a in range(1, 20)]
        assert pattern == [rule.fires(5, "k", a, 0) for a in range(1, 20)]
        assert any(pattern) and not all(pattern)


class TestInjection:
    def test_inert_without_env(self):
        faults.maybe_inject("worker", key="k", attempt=1)
        assert faults.filter_bytes("store-read", b"payload") == b"payload"

    def test_raise_mode_fires_then_stops(self, monkeypatch):
        plan = {
            "rules": [
                {"site": "store-read", "mode": "raise", "count": 2},
            ]
        }
        monkeypatch.setenv(faults.ENV_VAR, json.dumps(plan))
        for __ in range(2):
            with pytest.raises(OSError, match="injected transient fault"):
                faults.maybe_inject("store-read", key="k")
        faults.maybe_inject("store-read", key="k")  # third tick: clean

    def test_match_scopes_rules_to_keys(self, monkeypatch):
        plan = {
            "rules": [
                {
                    "site": "store-read",
                    "mode": "raise",
                    "count": 99,
                    "match": "poison",
                },
            ]
        }
        monkeypatch.setenv(faults.ENV_VAR, json.dumps(plan))
        faults.maybe_inject("store-read", key="healthy")
        with pytest.raises(OSError):
            faults.maybe_inject("store-read", key="poison-abc")

    def test_sites_are_isolated(self, monkeypatch):
        plan = {
            "rules": [{"site": "follow-read", "mode": "raise", "count": 99}]
        }
        monkeypatch.setenv(faults.ENV_VAR, json.dumps(plan))
        faults.maybe_inject("store-read", key="k")  # different site: clean
        with pytest.raises(OSError):
            faults.maybe_inject("follow-read", key="k")

    def test_filter_bytes_corrupt_and_truncate(self, monkeypatch):
        plan = {
            "rules": [
                {"site": "rtrace-chunk", "mode": "truncate", "count": 1},
                {"site": "rtrace-chunk", "mode": "corrupt", "count": 1},
            ]
        }
        monkeypatch.setenv(faults.ENV_VAR, json.dumps(plan))
        data = bytes(range(16))
        torn = faults.filter_bytes("rtrace-chunk", data, key="m")
        assert torn == data[:8]  # first tick: truncated
        flipped = faults.filter_bytes("rtrace-chunk", data, key="m")
        assert len(flipped) == len(data) and flipped != data  # then corrupted
        clean = faults.filter_bytes("rtrace-chunk", data, key="m")
        assert clean == data  # rules spent

    def test_plan_loads_from_file_path(self, tmp_path, monkeypatch):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(
            json.dumps(
                {"rules": [{"site": "worker", "mode": "raise", "count": 1}]}
            )
        )
        monkeypatch.setenv(faults.ENV_VAR, str(plan_file))
        with pytest.raises(OSError):
            faults.maybe_inject("worker", key="k")


class _FakeJob:
    def __init__(self, name):
        self.name = name

    def key(self):
        return self.name

    def to_dict(self):
        return {"name": self.name}


class TestQuarantine:
    def test_sidecar_path_sits_next_to_store(self, tmp_path):
        assert quarantine_path_for(tmp_path / "campaign.jsonl") == (
            tmp_path / "campaign.quarantine.jsonl"
        )

    def test_add_replay_round_trip(self, tmp_path):
        path = tmp_path / "q.jsonl"
        q = Quarantine(path)
        attempts = [{"kind": "worker-crash", "error": "boom", "elapsed": 0.1}]
        q.add("k1", _FakeJob("k1"), attempts, interruptions=2)
        assert "k1" in q and len(q) == 1

        again = Quarantine(path)
        entry = again.get("k1")
        assert entry["job"] == {"name": "k1"}
        assert entry["attempts"] == attempts
        assert entry["interruptions"] == 2

    def test_last_write_wins_on_replay(self, tmp_path):
        path = tmp_path / "q.jsonl"
        q = Quarantine(path)
        q.add("k", _FakeJob("k"), [{"kind": "error", "error": "a"}])
        q.add("k", _FakeJob("k"), [{"kind": "error", "error": "b"}])
        again = Quarantine(path)
        assert len(again) == 1
        assert again.get("k")["attempts"][0]["error"] == "b"

    def test_torn_trailing_line_is_skipped_and_repaired(self, tmp_path):
        path = tmp_path / "q.jsonl"
        q = Quarantine(path)
        q.add("k1", _FakeJob("k1"), [])
        q.add("k2", _FakeJob("k2"), [])
        raw = path.read_text()
        lines = raw.splitlines()
        path.write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2])

        survivor = Quarantine(path)
        assert "k1" in survivor and "k2" not in survivor
        survivor.add("k3", _FakeJob("k3"), [])
        assert set(Quarantine(path).keys()) == {"k1", "k3"}

    def test_remove_rewrites_atomically(self, tmp_path):
        path = tmp_path / "q.jsonl"
        q = Quarantine(path)
        for name in ("a", "b", "c"):
            q.add(name, _FakeJob(name), [])
        assert q.remove(["b", "missing"]) == 1
        assert set(Quarantine(path).keys()) == {"a", "c"}
        assert not list(tmp_path.glob(".q.jsonl.*"))  # no staging leftovers

    def test_remove_last_entry_unlinks_file(self, tmp_path):
        path = tmp_path / "q.jsonl"
        q = Quarantine(path)
        q.add("only", _FakeJob("only"), [])
        q.remove(["only"])
        assert not path.exists()
        assert len(Quarantine(path)) == 0

    def test_clear(self, tmp_path):
        path = tmp_path / "q.jsonl"
        q = Quarantine(path)
        q.add("a", _FakeJob("a"), [])
        assert q.clear() == 1
        assert not path.exists() and len(q) == 0
