"""Integration tests for the simulation drivers and profiling cache."""

import numpy as np
import pytest

from repro.nuca import four_core_config
from repro.schemes import (
    JigsawScheme,
    ManualPoolClassifier,
    PerRegionClassifier,
    SNUCAScheme,
    SingleVCClassifier,
)
from repro.sim import simulate, simulate_mix, weighted_speedup
from repro.sim.profiling import cache_dir, profile_vcs
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def cfg():
    return four_core_config()


@pytest.fixture(scope="module")
def mis():
    return build_workload("MIS", scale="train", seed=0)


class TestClassifiers:
    def test_single_vc(self, mis):
        mapping, specs = SingleVCClassifier().classify(mis)
        assert len(specs) == 1
        assert set(mapping.values()) == {0}

    def test_manual(self, mis):
        mapping, specs = ManualPoolClassifier().classify(mis)
        assert len(specs) == 3  # Table 2: vertices, edges, flags
        names = {s.name for s in specs}
        assert names == {"vertices", "edges", "flags"}

    def test_manual_requires_port(self):
        w = build_workload("dict", scale="train")
        with pytest.raises(ValueError):
            ManualPoolClassifier().classify(w)

    def test_per_region(self, mis):
        mapping, specs = PerRegionClassifier().classify(mis)
        assert len(specs) == len(mis.region_names)


class TestProfilingCache:
    def test_cache_roundtrip(self, mis, cfg, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE_CACHE", str(tmp_path))
        assert cache_dir() == tmp_path
        mapping, __ = SingleVCClassifier().classify(mis)
        kwargs = dict(
            chunk_bytes=cfg.chunk_bytes,
            n_chunks=cfg.model_chunks,
            n_intervals=4,
            sample_shift=3,
        )
        first = profile_vcs(mis.trace, mapping, **kwargs)
        assert len(list(tmp_path.glob("*.npz"))) == 1
        second = profile_vcs(mis.trace, mapping, **kwargs)
        for vc in first:
            for a, b in zip(first[vc], second[vc]):
                assert np.allclose(a.misses, b.misses)
                assert a.accesses == b.accesses

    def test_different_mapping_different_entry(self, mis, cfg, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE_CACHE", str(tmp_path))
        kwargs = dict(
            chunk_bytes=cfg.chunk_bytes,
            n_chunks=cfg.model_chunks,
            n_intervals=2,
            sample_shift=3,
        )
        m1, __ = SingleVCClassifier().classify(mis)
        m2, __ = ManualPoolClassifier().classify(mis)
        profile_vcs(mis.trace, m1, **kwargs)
        profile_vcs(mis.trace, m2, **kwargs)
        assert len(list(tmp_path.glob("*.npz"))) == 2


class TestSimulate:
    def test_result_conservation(self, mis, cfg):
        r = simulate(mis, cfg, JigsawScheme, use_cache=False)
        assert r.instructions == pytest.approx(mis.trace.instructions, rel=1e-6)
        total = r.hits + r.misses + r.bypasses
        assert total == pytest.approx(len(mis.trace), rel=0.01)

    def test_deterministic(self, mis, cfg):
        a = simulate(mis, cfg, JigsawScheme, use_cache=False)
        b = simulate(mis, cfg, JigsawScheme, use_cache=False)
        assert a.cycles == b.cycles
        assert a.energy.total == b.energy.total

    def test_paper_shape_mis(self, mis, cfg):
        """Whirlpool > Jigsaw > S-NUCA on mis (Fig 10)."""
        lru = simulate(mis, cfg, lambda c, v: SNUCAScheme(c, v, "lru"))
        jig = simulate(mis, cfg, JigsawScheme)
        whirl = simulate(mis, cfg, JigsawScheme, classifier=ManualPoolClassifier())
        assert whirl.cycles < jig.cycles < lru.cycles
        assert whirl.energy.total < jig.energy.total
        assert whirl.bypasses > 0  # edges bypassed

    def test_history_length_matches_intervals(self, mis, cfg):
        r = simulate(mis, cfg, JigsawScheme, n_intervals=10)
        assert len(r.history) == 10


class TestMix:
    def test_mix_runs_and_conserves(self, cfg):
        apps = [
            build_workload("bzip2", scale="train", seed=0),
            build_workload("mcf", scale="train", seed=1),
        ]
        res = simulate_mix(apps, cfg, JigsawScheme, n_intervals=6)
        assert len(res.per_app) == 2
        for app, r in zip(apps, res.per_app):
            total = r.hits + r.misses + r.bypasses
            assert total == pytest.approx(len(app.trace), rel=0.02)

    def test_too_many_programs_rejected(self, cfg):
        apps = [build_workload("bzip2", scale="train")] * 5
        with pytest.raises(ValueError):
            simulate_mix(apps, cfg, JigsawScheme)

    def test_weighted_speedup_identity(self, cfg):
        apps = [build_workload("bzip2", scale="train", seed=0)]
        res = simulate_mix(apps, cfg, JigsawScheme, n_intervals=6)
        ws = weighted_speedup(res, [res.per_app[0].ipc])
        assert ws == pytest.approx(1.0)

    def test_mismatched_alone_ipcs(self, cfg):
        apps = [build_workload("bzip2", scale="train", seed=0)]
        res = simulate_mix(apps, cfg, JigsawScheme, n_intervals=6)
        with pytest.raises(ValueError):
            weighted_speedup(res, [1.0, 2.0])

    def test_partitioning_beats_sharing_for_mix(self, cfg):
        """Jigsaw should beat S-NUCA on a thrashy mix (Fig 22 shape)."""
        apps = [
            build_workload("mcf", scale="train", seed=0),
            build_workload("cactus", scale="train", seed=1),
            build_workload("sphinx3", scale="train", seed=2),
            build_workload("omnet", scale="train", seed=3),
        ]
        jig = simulate_mix(apps, cfg, JigsawScheme, n_intervals=6)
        lru = simulate_mix(
            apps, cfg, lambda c, v: SNUCAScheme(c, v, "lru"), n_intervals=6
        )
        assert sum(jig.ipcs()) > sum(lru.ipcs())
