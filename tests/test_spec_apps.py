"""Per-app structure tests for the 15 SPEC CPU2006 models.

Each test pins the app-specific property its model exists to reproduce
(pool structure, working-set ratios, phase behaviour, streaming vs
reuse) so regressions in the generators can't silently invalidate the
evaluation.
"""

import numpy as np
import pytest

from repro.curves import StackDistanceProfiler
from repro.workloads import build_workload
from repro.workloads.registry import SPEC_APPS

_MB = 1 << 20


@pytest.fixture(scope="module")
def curves_of():
    cache = {}

    def _get(name, scale="ref"):
        if (name, scale) not in cache:
            w = build_workload(name, scale=scale, seed=0)
            prof = StackDistanceProfiler(
                chunk_bytes=256 * 1024, n_chunks=100, sample_shift=3
            )
            out = prof.profile(
                w.trace.lines, w.trace.regions, w.trace.instructions
            )
            cache[(name, scale)] = (
                w,
                {w.region_names[r]: cs[0] for r, cs in out.items()},
            )
        return cache[(name, scale)]

    return _get


def is_streaming(curve, at_bytes=12 * _MB, threshold=0.8):
    return curve.misses_at(at_bytes) > threshold * curve.misses_at(0)


def is_cacheable(curve, at_bytes=8 * _MB, threshold=0.5):
    return curve.misses_at(at_bytes) < threshold * curve.misses_at(0)


class TestEveryApp:
    @pytest.mark.parametrize("name", SPEC_APPS)
    def test_builds_and_has_positive_apki(self, name):
        w = build_workload(name, scale="train", seed=0)
        assert len(w.trace) > 10_000
        assert 5.0 < w.trace.apki < 200.0  # paper: >5 L2 MPKI apps


class TestBzip2(object):
    def test_four_pools_small_ws(self, curves_of):
        w, curves = curves_of("bzip2")
        assert set(curves) == {"arr1", "arr2", "ftab", "tt"}
        # Total WS ~4 MB: small enough for IdealSPD's private region to
        # do well (Sec 4.5).
        total = sum(w.trace.region_footprint_bytes().values())
        assert total < 6 * _MB

    def test_ftab_hot(self, curves_of):
        __, curves = curves_of("bzip2")
        # The frequency table caches in very little space.
        ftab = curves["ftab"]
        assert ftab.misses_at(1 * _MB) < 0.3 * ftab.misses_at(0)


class TestMcf:
    def test_nodes_chase_arcs_stream(self, curves_of):
        __, curves = curves_of("mcf")
        assert is_streaming(curves["arcs"])
        # Nodes have whole-region reuse: cacheable once ~3 MB fit.
        assert curves["nodes"].misses_at(4 * _MB) < 0.5 * curves[
            "nodes"
        ].misses_at(1 * _MB)


class TestLbm:
    def test_two_symmetric_grids(self, curves_of):
        w, curves = curves_of("lbm")
        assert set(curves) == {"grid1", "grid2"}
        fp = w.trace.region_footprint_bytes()
        sizes = sorted(fp.values())
        assert sizes[1] < 1.3 * sizes[0]  # symmetric working sets


class TestCactus:
    def test_grid_exceeds_llc(self, curves_of):
        w, __ = curves_of("cactus")
        fp = {
            w.region_names[r]: b
            for r, b in w.trace.region_footprint_bytes().items()
        }
        assert fp["grid"] > 12.5 * _MB  # streams past the whole LLC


class TestLibquantum:
    def test_single_streaming_region(self, curves_of):
        w, curves = curves_of("libqntm")
        assert len(curves) == 1
        (curve,) = curves.values()
        # The register wraps repeatedly: reuse only at full-WS distance.
        assert curve.misses_at(2 * _MB) > 0.9 * curve.misses_at(0)


class TestGems:
    def test_alternating_field_emphasis(self):
        w = build_workload("gems", scale="ref", seed=0)
        ids = {name: rid for rid, name in w.region_names.items()}
        n = len(w.trace)
        halves = []
        for lo, hi in [(0, n // 10), (n // 10, 2 * n // 10)]:
            seg = w.trace.regions[lo:hi]
            e = np.count_nonzero(seg == ids["e_field"])
            h = np.count_nonzero(seg == ids["h_field"])
            halves.append(e / max(h, 1))
        # E-heavy phase then H-heavy phase.
        assert halves[0] > 1.0 > halves[1]


class TestSphinx:
    def test_acoustic_model_dominates(self, curves_of):
        w, curves = curves_of("sphinx3")
        apki = w.trace.region_apki()
        by_name = {w.region_names[r]: v for r, v in apki.items()}
        assert by_name["acoustic_model"] == max(by_name.values())


class TestTrainingSensitivity:
    @pytest.mark.parametrize("name", ["leslie", "omnet", "xalanc"])
    def test_pattern_shape_changes_across_scales(self, name, curves_of):
        """Fig 18's apps change *shape*, not just size, across inputs."""
        __, train = curves_of(name, "train")
        __, ref = curves_of(name, "ref")
        # At least one region flips between streaming-ish and cacheable.
        flips = 0
        for rname in train:
            t = train[rname]
            r = ref[rname]
            t_frac = t.misses_at(2 * _MB) / max(t.misses_at(0), 1e-9)
            r_frac = r.misses_at(2 * _MB) / max(r.misses_at(0), 1e-9)
            if abs(t_frac - r_frac) > 0.3:
                flips += 1
        assert flips >= 1, name

    @pytest.mark.parametrize("name", ["mcf", "sphinx3", "milc"])
    def test_stable_apps_keep_shape(self, name, curves_of):
        __, train = curves_of(name, "train")
        __, ref = curves_of(name, "ref")
        for rname in train:
            t = train[rname]
            r = ref[rname]
            # Compare at proportional sizes (train is a scaled-down WS).
            t_frac = t.misses_at(1 * _MB) / max(t.misses_at(0), 1e-9)
            r_frac = r.misses_at(3 * _MB) / max(r.misses_at(0), 1e-9)
            assert abs(t_frac - r_frac) < 0.55, rname


class TestStreamers:
    @pytest.mark.parametrize("name,region", [
        ("milc", "links"),
        ("zeusmp", "field_grids"),
        ("soplex", "matrix"),
        ("gems", "e_field"),
        ("leslie", "grids_u"),
    ])
    def test_declared_streams_stream(self, name, region, curves_of):
        __, curves = curves_of(name)
        assert is_streaming(curves[region], at_bytes=6 * _MB, threshold=0.6), (
            name,
            region,
        )

    @pytest.mark.parametrize("name,region", [
        ("gcc", "symtab"),
        ("astar", "open_list"),
        ("omnet", "event_heap"),
        ("soplex", "basis"),
    ])
    def test_declared_hot_pools_cache(self, name, region, curves_of):
        __, curves = curves_of(name)
        c = curves[region]
        assert c.misses_at(2 * _MB) < 0.45 * c.misses_at(0), (name, region)
