"""Unit tests for the energy model."""

from repro.nuca import EnergyBreakdown, EnergyModel


class TestEnergyBreakdown:
    def test_total(self):
        e = EnergyBreakdown(network=1, bank=2, memory=3)
        assert e.total == 6

    def test_add(self):
        a = EnergyBreakdown(1, 2, 3)
        b = EnergyBreakdown(10, 20, 30)
        c = a + b
        assert (c.network, c.bank, c.memory) == (11, 22, 33)

    def test_scaled(self):
        e = EnergyBreakdown(1, 2, 3).scaled(2.0)
        assert e.total == 12


class TestEnergyModel:
    def test_llc_access_components(self):
        m = EnergyModel(bank_nj=1.0, hop_nj=0.5)
        e = m.llc_access(hops=3, count=2)
        assert e.bank == 2.0
        assert e.network == 2 * 3 * 0.5 * 2  # round trip × hops × nj × count
        assert e.memory == 0.0

    def test_memory_access(self):
        m = EnergyModel(mem_nj=20.0, hop_nj=0.5)
        e = m.memory_access(mem_hops=2, count=3)
        assert e.memory == 60.0
        assert e.network == 2 * 2 * 0.5 * 3

    def test_memory_dwarfs_bank(self):
        """DRAM accesses cost several times an on-chip bank access.

        (Constants are calibrated to Fig 10's energy *proportions*, where
        network + bank traffic is comparable to memory traffic; see
        DESIGN.md.)
        """
        m = EnergyModel()
        assert m.mem_nj / m.bank_nj >= 5

    def test_migration_touches_two_banks(self):
        m = EnergyModel(bank_nj=1.0, hop_nj=0.0)
        assert m.migration(hops=4, count=1).bank == 2.0

    def test_zero_count(self):
        m = EnergyModel()
        assert m.llc_access(5, count=0).total == 0.0
