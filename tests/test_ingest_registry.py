"""Ingested traces as first-class workloads: registry, CLI, campaigns."""

import numpy as np
import pytest

from repro.cli import main
from repro.ingest import ArraySource, convert_to_rtrace
from repro.workloads import build_workload, ingested_apps, register_trace
from repro.workloads.registry import TRACE_DIR_ENV, _REGISTERED_TRACES
from repro.workloads.trace import Trace


@pytest.fixture(autouse=True)
def clean_registry():
    yield
    _REGISTERED_TRACES.clear()


def make_rtrace(path, n=2000, seed=0):
    rng = np.random.default_rng(seed)
    trace = Trace(
        lines=rng.integers(0, 256, n),
        regions=rng.integers(0, 3, n).astype(np.int32),
        instructions=n * 10.0,
        region_names={0: "x", 1: "y", 2: "z"},
    )
    convert_to_rtrace(ArraySource.from_trace(trace), path)
    return trace


class TestRegistry:
    def test_register_and_build(self, tmp_path):
        path = tmp_path / "ext.rtrace"
        trace = make_rtrace(path)
        register_trace("ext", path)
        workload = build_workload("ext")
        assert workload.name == "ext"
        assert np.array_equal(workload.trace.lines, trace.lines)
        assert np.array_equal(workload.trace.regions, trace.regions)
        assert workload.trace.region_names == trace.region_names
        assert "ext" in ingested_apps()

    def test_trace_dir_resolution(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
        make_rtrace(tmp_path / "envapp.rtrace")
        assert "envapp" in ingested_apps()
        assert build_workload("envapp").name == "envapp"

    def test_builtin_name_collision_rejected(self, tmp_path):
        path = tmp_path / "bzip2.rtrace"
        make_rtrace(path)
        with pytest.raises(ValueError, match="built-in"):
            register_trace("bzip2", path)

    def test_missing_archive_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="does not exist"):
            register_trace("ghost", tmp_path / "ghost.rtrace")

    def test_unknown_name_lists_ingested(self, tmp_path):
        path = tmp_path / "ext.rtrace"
        make_rtrace(path)
        register_trace("ext", path)
        with pytest.raises(ValueError, match="ingested: ext"):
            build_workload("no-such-app")

    def test_scale_and_seed_ignored_for_ingested(self, tmp_path):
        path = tmp_path / "ext.rtrace"
        make_rtrace(path)
        register_trace("ext", path)
        a = build_workload("ext", scale="train", seed=1)
        b = build_workload("ext", scale="ref", seed=2)
        assert np.array_equal(a.trace.lines, b.trace.lines)


class TestIngestCLI:
    def export_csv(self, path, n=500, seed=1):
        rng = np.random.default_rng(seed)
        trace = Trace(
            lines=rng.integers(0, 64, n),
            regions=rng.integers(0, 2, n).astype(np.int32),
            instructions=n * 5.0,
        )
        from repro.ingest import write_trace_file

        write_trace_file(path, ArraySource.from_trace(trace), "csv")
        return trace

    def test_convert_inspect_validate(self, tmp_path, capsys):
        src = tmp_path / "t.csv"
        dst = tmp_path / "t.rtrace"
        self.export_csv(src)
        assert main(
            ["ingest", "convert", str(src), str(dst), "--apki", "10"]
        ) == 0
        assert main(["ingest", "inspect", str(dst)]) == 0
        out = capsys.readouterr().out
        assert "format: rtrace" in out
        assert "fingerprint" in out
        assert main(["ingest", "validate", str(dst)]) == 0

    def test_validate_catches_tampering(self, tmp_path, capsys):
        import zipfile

        src = tmp_path / "t.csv"
        dst = tmp_path / "t.rtrace"
        self.export_csv(src)
        main(["ingest", "convert", str(src), str(dst), "--apki", "10"])
        with zipfile.ZipFile(dst) as zf:
            members = {n: zf.read(n) for n in zf.namelist()}
        name = "chunk_000000.regions.npy"
        members[name] = members[name][:-1] + bytes([members[name][-1] ^ 1])
        with zipfile.ZipFile(dst, "w") as zf:
            for n, payload in members.items():
                zf.writestr(n, payload)
        assert main(["ingest", "validate", str(dst)]) == 1
        assert "fingerprint" in capsys.readouterr().err

    def test_register_and_run_resolution(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path / "traces"))
        src = tmp_path / "t.csv"
        self.export_csv(src)
        assert main(
            ["ingest", "register", str(src), "--name", "cliapp", "--apki", "8"]
        ) == 0
        assert (tmp_path / "traces" / "cliapp.rtrace").exists()
        assert build_workload("cliapp").name == "cliapp"

    def test_register_without_instructions_fails(self, tmp_path, capsys):
        monkeypatch_dir = tmp_path / "traces"
        src = tmp_path / "t.csv"
        self.export_csv(src)
        rc = main(
            [
                "ingest", "register", str(src),
                "--trace-dir", str(monkeypatch_dir),
            ]
        )
        assert rc == 2
        assert "instruction count" in capsys.readouterr().err
        assert not (monkeypatch_dir / "t.rtrace").exists()

    def test_convert_without_destination_fails(self, tmp_path, capsys):
        src = tmp_path / "t.csv"
        self.export_csv(src)
        assert main(["ingest", "convert", str(src)]) == 2

    def test_missing_input_fails_cleanly(self, tmp_path):
        assert main(["ingest", "inspect", str(tmp_path / "nope.csv")]) == 2

    def test_register_builtin_name_refused(self, tmp_path, capsys):
        # A trace named after a built-in would be shadowed by the
        # registry's builder-first resolution — refuse up front.
        src = tmp_path / "t.csv"
        self.export_csv(src)
        rc = main(
            ["ingest", "register", str(src), "--name", "mcf",
             "--apki", "8", "--trace-dir", str(tmp_path / "traces")]
        )
        assert rc == 2
        assert "built-in" in capsys.readouterr().err
        assert not (tmp_path / "traces" / "mcf.rtrace").exists()

    def test_register_rtrace_honours_apki_override(self, tmp_path, capsys):
        # Regression: the fast copy path used to ignore --apki, making
        # the "re-run with --instructions or --apki" advice a dead end.
        src = tmp_path / "t.csv"
        self.export_csv(src)
        bare = tmp_path / "bare.rtrace"
        assert main(["ingest", "convert", str(src), str(bare)]) == 0
        rc = main(
            ["ingest", "register", str(bare), "--name", "fixed",
             "--apki", "8", "--trace-dir", str(tmp_path / "traces")]
        )
        assert rc == 0
        from repro.ingest import RTraceSource

        registered = RTraceSource(tmp_path / "traces" / "fixed.rtrace")
        assert registered.instructions == registered.n_records * 1000.0 / 8

    def test_failed_reregistration_keeps_existing_archive(
        self, tmp_path, capsys
    ):
        # Regression: register used to overwrite the destination before
        # its instruction-count check, so a failed re-registration
        # destroyed a working archive.
        traces = tmp_path / "traces"
        src = tmp_path / "t.csv"
        self.export_csv(src)
        assert main(
            ["ingest", "register", str(src), "--name", "keeper",
             "--apki", "8", "--trace-dir", str(traces)]
        ) == 0
        good = (traces / "keeper.rtrace").read_bytes()
        rc = main(
            ["ingest", "register", str(src), "--name", "keeper",
             "--trace-dir", str(traces)]  # no instruction count
        )
        assert rc == 2
        assert (traces / "keeper.rtrace").read_bytes() == good
        assert not list(traces.glob(".*tmp*"))

    def test_staging_leftovers_never_listed(self, tmp_path, monkeypatch):
        # A crash-leftover staging temp (or any dotfile) must not
        # surface as a phantom workload.
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
        make_rtrace(tmp_path / "real.rtrace", n=100)
        (tmp_path / ".ghost.123.rtrace-tmp").write_bytes(b"partial")
        (tmp_path / ".hidden.rtrace").write_bytes(b"partial")
        assert ingested_apps() == ["real"]

    def test_convert_alloc_log_to_regionless_format_refused(
        self, tmp_path, capsys
    ):
        src = tmp_path / "t.csv"
        self.export_csv_static(src)
        rc = main(
            ["ingest", "convert", str(src), str(tmp_path / "t.lackey"),
             "--alloc-log", str(tmp_path / "nonexistent.jsonl")]
        )
        assert rc == 2
        assert "--alloc-log" in capsys.readouterr().err

    @staticmethod
    def export_csv_static(path, n=100, seed=2):
        rng = np.random.default_rng(seed)
        trace = Trace(
            lines=rng.integers(0, 64, n),
            regions=rng.integers(0, 2, n).astype(np.int32),
            instructions=n * 5.0,
        )
        from repro.ingest import write_trace_file

        write_trace_file(path, ArraySource.from_trace(trace), "csv")

    def test_convert_to_interchange_rejects_pipeline_flags(
        self, tmp_path, capsys
    ):
        # Regression: --instructions/--dedup used to be silently dropped
        # when the destination was not an .rtrace archive.
        src = tmp_path / "t.csv"
        self.export_csv(src)
        rc = main(
            ["ingest", "convert", str(src), str(tmp_path / "t.mtrace"),
             "--instructions", "5000", "--dedup"]
        )
        assert rc == 2
        assert ".rtrace" in capsys.readouterr().err


class TestIngestedCampaign:
    def test_campaign_grid_over_ingested_trace(self, tmp_path, monkeypatch):
        # The PR-1 campaign engine resolves apps through build_workload,
        # so a trace dir in the environment makes external traces
        # sweepable like any built-in benchmark.  The profile cache is
        # redirected so ad-hoc test traces don't pollute the committed
        # fixture set.
        monkeypatch.setenv("REPRO_PROFILE_CACHE", str(tmp_path / "cache"))
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path / "traces"))
        (tmp_path / "traces").mkdir()
        make_rtrace(tmp_path / "traces" / "extcamp.rtrace", n=1500)

        from repro.exp import Campaign, ResultStore, run_campaign

        campaign = Campaign(
            name="ingested",
            apps=["extcamp"],
            schemes=["Jigsaw", "LRU"],
            scale="train",
        )
        store_path = tmp_path / "store.jsonl"
        report = run_campaign(campaign, store_path, workers=1)
        assert report.executed == 2
        assert not report.failures
        store = ResultStore(store_path)
        assert len(store) == 2
