"""Unit tests for the virtual-memory substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem import (
    PAGE_SIZE,
    AddressSpace,
    HeapAllocator,
    PoolAllocator,
    VCError,
    VCRegistry,
)
from repro.mem.address_space import POOL_NONE


class TestAddressSpace:
    def test_base_alignment_enforced(self):
        with pytest.raises(ValueError):
            AddressSpace(base=123)

    def test_map_pages_contiguous(self):
        space = AddressSpace()
        a = space.map_pages(2)
        b = space.map_pages(1)
        assert b == a + 2 * PAGE_SIZE

    def test_map_zero_pages_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace().map_pages(0)

    def test_pool_tagging(self):
        space = AddressSpace()
        addr = space.map_pages(2, pool=7)
        assert space.pool_of(addr) == 7
        assert space.pool_of(addr + PAGE_SIZE + 10) == 7

    def test_untagged_default(self):
        space = AddressSpace()
        addr = space.map_pages(1)
        assert space.pool_of(addr) == POOL_NONE

    def test_pools_of_vectorized(self):
        space = AddressSpace()
        a = space.map_pages(1, pool=1)
        b = space.map_pages(1, pool=2)
        tags = space.pools_of(np.array([a, b, a + 8]))
        assert list(tags) == [1, 2, 1]

    def test_retag(self):
        space = AddressSpace()
        addr = space.map_pages(4, pool=1)
        n = space.retag_pages(addr + PAGE_SIZE, 2 * PAGE_SIZE, pool=9)
        assert n == 2
        assert space.pool_of(addr) == 1
        assert space.pool_of(addr + PAGE_SIZE) == 9

    def test_mapped_bytes(self):
        space = AddressSpace()
        space.map_pages(3)
        assert space.mapped_bytes == 3 * PAGE_SIZE


class TestHeapAllocator:
    def test_pool_isolation_invariant(self):
        """Pages never hold data from two pools (paper Sec 3.1)."""
        heap = HeapAllocator()
        p1 = heap.pool_create()
        p2 = heap.pool_create()
        allocs = []
        for i in range(50):
            allocs.append(heap.pool_malloc(48, p1))
            allocs.append(heap.pool_malloc(48, p2))
        for a in allocs:
            assert heap.space.pool_of(a.base) == a.pool
            assert heap.space.pool_of(a.end - 1) == a.pool

    def test_large_allocation_page_aligned(self):
        heap = HeapAllocator()
        pool = heap.pool_create()
        a = heap.pool_malloc(3 * PAGE_SIZE + 5, pool)
        assert a.base % PAGE_SIZE == 0
        assert heap.space.pool_of(a.base + 3 * PAGE_SIZE) == pool

    def test_unknown_pool_rejected(self):
        heap = HeapAllocator()
        with pytest.raises(ValueError):
            heap.pool_malloc(10, 42)

    def test_zero_size_rejected(self):
        heap = HeapAllocator()
        with pytest.raises(ValueError):
            heap.malloc(0)

    def test_free_and_reuse_within_pool(self):
        heap = HeapAllocator()
        pool = heap.pool_create()
        a = heap.pool_malloc(64, pool)
        heap.free(a)
        b = heap.pool_malloc(64, pool)
        assert b.base == a.base  # recycled from the free list

    def test_double_free_rejected(self):
        heap = HeapAllocator()
        a = heap.malloc(64)
        heap.free(a)
        with pytest.raises(ValueError):
            heap.free(a)

    def test_calloc_and_realloc(self):
        heap = HeapAllocator()
        pool = heap.pool_create()
        a = heap.pool_calloc(10, 8, pool)
        assert a.size == 80
        b = heap.pool_realloc(a, 200)
        assert b.size == 200
        assert b.pool == pool

    def test_allocated_bytes_accounting(self):
        heap = HeapAllocator()
        a = heap.malloc(100)
        b = heap.malloc(50)
        heap.free(a)
        assert heap.allocated_bytes == 50
        del b

    def test_callpoints_differ_by_site(self):
        heap = HeapAllocator()
        a = heap.malloc(16)
        b = heap.malloc(16)  # different line -> different callpoint
        assert a.callpoint != b.callpoint

    def test_callpoints_same_site_equal(self):
        heap = HeapAllocator()
        allocs = [heap.malloc(16) for __ in range(3)]
        assert len({x.callpoint for x in allocs}) == 1

    def test_addresses_helper(self):
        heap = HeapAllocator()
        a = heap.malloc(1024)
        addrs = a.addresses(np.array([0, 8, 16]))
        assert list(addrs) == [a.base, a.base + 8, a.base + 16]

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(1, 20000), min_size=1, max_size=60))
    def test_no_overlapping_live_allocations(self, sizes):
        heap = HeapAllocator()
        pool = heap.pool_create()
        spans = []
        for size in sizes:
            a = heap.pool_malloc(size, pool)
            spans.append((a.base, a.end))
        spans.sort()
        for (b1, e1), (b2, __) in zip(spans, spans[1:]):
            assert e1 <= b2


class TestPoolAllocator:
    def test_named_pools_lazily_created(self):
        alloc = PoolAllocator()
        a = alloc.malloc(100, "vertices")
        b = alloc.malloc(100, "edges")
        assert a.pool != b.pool
        assert set(alloc.pool_names) == {"vertices", "edges"}

    def test_same_name_same_pool(self):
        alloc = PoolAllocator()
        a = alloc.malloc(10, "x")
        b = alloc.malloc(10, "x")
        assert a.pool == b.pool

    def test_unpooled(self):
        alloc = PoolAllocator()
        a = alloc.malloc(10)
        assert a.pool == POOL_NONE


class TestVCRegistry:
    def make(self):
        space = AddressSpace()
        return space, VCRegistry(space)

    def test_alloc_and_tag(self):
        space, reg = self.make()
        addr = space.map_pages(4)
        vc = reg.sys_vc_alloc(pid=1)
        n = reg.sys_vc_tag(pid=1, addr=addr, n_bytes=2 * PAGE_SIZE, vc=vc)
        assert n == 2
        assert space.pool_of(addr) == vc

    def test_foreign_process_rejected(self):
        space, reg = self.make()
        addr = space.map_pages(1)
        vc = reg.sys_vc_alloc(pid=1)
        with pytest.raises(VCError):
            reg.sys_vc_tag(pid=2, addr=addr, n_bytes=10, vc=vc)

    def test_freed_vc_rejected(self):
        space, reg = self.make()
        vc = reg.sys_vc_alloc(pid=1)
        reg.sys_vc_free(pid=1, vc=vc)
        with pytest.raises(VCError):
            reg.sys_vc_tag(pid=1, addr=0, n_bytes=10, vc=vc)

    def test_unknown_vc_rejected(self):
        __, reg = self.make()
        with pytest.raises(VCError):
            reg.sys_vc_free(pid=1, vc=99)

    def test_user_vcs_listing(self):
        __, reg = self.make()
        a = reg.sys_vc_alloc(pid=1)
        b = reg.sys_vc_alloc(pid=1)
        reg.sys_vc_alloc(pid=2)
        reg.sys_vc_free(pid=1, vc=a)
        assert reg.user_vcs(pid=1) == [b]

    def test_user_ids_start_after_reserved(self):
        __, reg = self.make()
        vc = reg.sys_vc_alloc(pid=1)
        assert vc >= VCRegistry._FIRST_USER_VC

    def test_sys_mmap_with_vc(self):
        space, reg = self.make()
        vc = reg.sys_vc_alloc(pid=1)
        addr = reg.sys_mmap(pid=1, n_pages=2, vc=vc)
        assert space.pool_of(addr + PAGE_SIZE) == vc
