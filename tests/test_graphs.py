"""Unit tests for the graph substrate."""

import numpy as np
import pytest

from repro.workloads.graphs import (
    Graph,
    edge_cut,
    grid_graph,
    partition_graph,
    rmat_graph,
    uniform_random_graph,
)


class TestGraph:
    def test_bad_offsets_rejected(self):
        with pytest.raises(ValueError):
            Graph(offsets=np.array([1, 2]), targets=np.array([0]))
        with pytest.raises(ValueError):
            Graph(offsets=np.array([0, 5]), targets=np.array([0]))

    def test_counts(self):
        g = uniform_random_graph(100, 6.0, seed=0)
        assert g.n == 100
        assert g.m == g.offsets[-1]

    def test_symmetric(self):
        g = uniform_random_graph(60, 4.0, seed=1)
        for v in range(g.n):
            for u in g.neighbors(v).tolist():
                assert v in g.neighbors(u).tolist()

    def test_no_self_loops(self):
        g = uniform_random_graph(60, 4.0, seed=2)
        for v in range(g.n):
            assert v not in g.neighbors(v).tolist()

    def test_degrees_sum(self):
        g = uniform_random_graph(80, 5.0, seed=3)
        assert g.degrees().sum() == g.m


class TestGenerators:
    def test_uniform_requires_two_vertices(self):
        with pytest.raises(ValueError):
            uniform_random_graph(1, 2.0)

    def test_rmat_power_law_skew(self):
        g = rmat_graph(2048, 8.0, seed=4)
        degs = np.sort(g.degrees())[::-1]
        # Top-decile vertices own a disproportionate share of edges.
        top = degs[: len(degs) // 10].sum()
        assert top > 0.25 * degs.sum()

    def test_grid_graph_degrees(self):
        g = grid_graph(4)
        degs = g.degrees()
        assert degs.max() == 4
        assert degs.min() == 2

    def test_determinism(self):
        a = uniform_random_graph(100, 6.0, seed=7)
        b = uniform_random_graph(100, 6.0, seed=7)
        assert np.array_equal(a.targets, b.targets)


class TestPartitioning:
    def test_invalid_k(self):
        g = grid_graph(4)
        with pytest.raises(ValueError):
            partition_graph(g, 0)

    def test_single_partition(self):
        g = grid_graph(4)
        parts = partition_graph(g, 1)
        assert set(parts.tolist()) == {0}

    def test_balance(self):
        g = grid_graph(20)  # 400 vertices
        parts = partition_graph(g, 4, seed=0)
        counts = np.bincount(parts, minlength=4)
        assert counts.min() >= 0.7 * 100
        assert counts.max() <= 1.3 * 100

    def test_all_assigned(self):
        g = uniform_random_graph(500, 6.0, seed=5)
        parts = partition_graph(g, 8, seed=1)
        assert np.all(parts >= 0)
        assert np.all(parts < 8)

    def test_beats_random_cut_on_grid(self):
        g = grid_graph(24)
        parts = partition_graph(g, 4, seed=2)
        rng = np.random.default_rng(0)
        random_parts = rng.integers(0, 4, size=g.n).astype(np.int32)
        assert edge_cut(g, parts) < 0.5 * edge_cut(g, random_parts)

    def test_edge_cut_zero_for_single_part(self):
        g = grid_graph(6)
        assert edge_cut(g, np.zeros(g.n, dtype=np.int32)) == 0
