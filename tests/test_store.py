"""The content-addressed artifact store: publish, map, maintain.

Everything runs against a temp root via ``$REPRO_STORE_DIR``; the
legacy fixture pile and env-pinned caches are exercised separately in
``test_profiling_cache.py``.
"""

import json
import zipfile

import numpy as np
import pytest

from repro.store import (
    ArtifactStore,
    default_root,
    npz_arrays,
    provenance_record,
    publish_trace,
)
from repro.store.artifacts import ENV_STORE
from repro.store.mmapzip import MappedArchive
from repro.store.profiles import (
    FORMAT_VERSION,
    load_profile,
    publish_profile,
    verify_profile_payload,
)


@pytest.fixture()
def store(tmp_path, monkeypatch):
    monkeypatch.setenv(ENV_STORE, str(tmp_path / "store"))
    return ArtifactStore()


def make_curves(n_intervals=2, n_chunks=4, seed=0):
    from repro.curves.miss_curve import MissCurve

    rng = np.random.default_rng(seed)
    out = {}
    for vc in (0, 1):
        out[vc] = [
            MissCurve(
                misses=np.sort(rng.uniform(0, 100, n_chunks + 1))[::-1],
                chunk_bytes=1024,
                accesses=100.0 + vc,
                instructions=1000.0 + t,
            )
            for t in range(n_intervals)
        ]
    return out


def make_rtrace(path, n=800, seed=3, **kwargs):
    from repro.ingest import ArraySource, convert_to_rtrace
    from repro.workloads.trace import Trace

    rng = np.random.default_rng(seed)
    trace = Trace(
        lines=rng.integers(0, 128, n),
        regions=rng.integers(0, 3, n).astype(np.int32),
        instructions=n * 8.0,
        region_names={0: "a", 1: "b", 2: "c"},
    )
    header = convert_to_rtrace(ArraySource.from_trace(trace), path, **kwargs)
    return trace, header


class TestDefaultRoot:
    def test_env_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_STORE, str(tmp_path / "r"))
        assert default_root() == tmp_path / "r"

    def test_checkout_default_is_inside_the_repo(self, monkeypatch):
        # The legacy cache default resolved parents[3] unconditionally,
        # which lands inside site-packages for an installed package; the
        # store only uses it when it really is a source checkout.
        monkeypatch.delenv(ENV_STORE, raising=False)
        root = default_root()
        assert root.name == ".repro_store"
        assert (root.parent / "pyproject.toml").exists()


class TestMappedArchive:
    def test_npz_roundtrip_views(self, tmp_path):
        a = np.arange(100, dtype=np.int64)
        b = np.linspace(0, 1, 33)
        path = tmp_path / "p.npz"
        with open(path, "wb") as f:
            np.savez(f, a=a, b=b)
        arrays = npz_arrays(path)
        assert arrays is not None
        assert np.array_equal(arrays["a"], a)
        assert np.array_equal(arrays["b"], b)
        # Views over one shared mapping, never private heap copies.
        for arr in arrays.values():
            assert not arr.flags.writeable
            assert arr.base is not None

    def test_compressed_npz_returns_none(self, tmp_path):
        path = tmp_path / "p.npz"
        np.savez_compressed(path, a=np.arange(10))
        assert npz_arrays(path) is None

    def test_member_names_and_missing_member(self, tmp_path):
        path = tmp_path / "p.npz"
        with open(path, "wb") as f:
            np.savez(f, only=np.arange(4))
        archive = MappedArchive(path)
        assert archive.members() == ["only.npy"]
        with pytest.raises(KeyError):
            archive.npy_member("other.npy")

    def test_non_npy_member_rejected(self, tmp_path):
        path = tmp_path / "p.zip"
        with zipfile.ZipFile(path, "w", zipfile.ZIP_STORED) as zf:
            zf.writestr("x.npy", b"not an array")
        with pytest.raises(ValueError, match="magic"):
            MappedArchive(path).npy_member("x.npy")

    def test_fortran_order_and_2d(self, tmp_path):
        arr = np.asfortranarray(np.arange(12, dtype=np.float64).reshape(3, 4))
        path = tmp_path / "p.npz"
        with open(path, "wb") as f:
            np.savez(f, m=arr)
        out = npz_arrays(path)["m"]
        assert np.array_equal(out, arr)


class TestArtifactStore:
    def test_publish_and_provenance(self, store):
        meta = provenance_record(
            "profiles", "ab" * 16, builder="test", inputs={"k": 1}
        )
        path = store.publish(
            "profiles", "ab" * 16, lambda p: p.write_bytes(b"x"), meta
        )
        assert path.read_bytes() == b"x"
        assert path.parent.name == "ab"
        got = store.provenance("profiles", "ab" * 16)
        assert got["builder"] == "test"
        assert got["inputs"] == {"k": 1}
        assert got["tool"].startswith("repro ")
        assert store.get("profiles", "ab" * 16) == path
        assert store.get("profiles", "cd" * 16) is None

    def test_publish_failure_leaves_no_artifact(self, store):
        def boom(tmp):
            tmp.write_bytes(b"partial")
            raise RuntimeError("disk on fire")

        with pytest.raises(RuntimeError):
            store.publish("profiles", "ee" * 16, boom)
        assert store.get("profiles", "ee" * 16) is None
        assert not list(store.root.rglob(".*.tmp"))

    def test_unknown_kind_rejected(self, store):
        with pytest.raises(ValueError, match="unknown artifact kind"):
            store.path("figures", "ab" * 16)

    def test_name_bindings(self, store):
        store.publish("traces", "11" * 16, lambda p: p.write_bytes(b"t"))
        store.bind_name("myapp", "traces", "11" * 16)
        binding = store.resolve_name("myapp")
        assert binding["fingerprint"] == "11" * 16
        assert store.resolve_name("other") is None
        assert list(store.names()) == ["myapp"]

    def test_gc_dry_run_then_real(self, store):
        store.publish("profiles", "aa" * 16, lambda p: p.write_bytes(b"x"))
        # Garbage: a staging temp, an orphaned sidecar, a dead binding.
        staging = store.root / "profiles" / "aa" / ".junk.123.tmp"
        staging.write_bytes(b"crash leftover")
        store._write_json(
            store.meta_path("profiles", "bb" * 16), {"orphan": True}
        )
        store.bind_name("dead", "traces", "cc" * 16)

        dry = store.gc(dry_run=True)
        assert len(dry["removed"]) == 3
        assert staging.exists()  # dry run touches nothing
        assert store.meta_path("profiles", "bb" * 16).exists()

        real = store.gc()
        assert sorted(real["removed"]) == sorted(dry["removed"])
        assert not staging.exists()
        assert not store.meta_path("profiles", "bb" * 16).exists()
        assert store.resolve_name("dead") is None
        # The payload itself is never collected.
        assert store.get("profiles", "aa" * 16) is not None

    def test_gc_reports_unprovenanced_payloads(self, store):
        store.publish("profiles", "aa" * 16, lambda p: p.write_bytes(b"x"))
        report = store.gc(dry_run=True)
        assert report["unprovenanced"] == ["profiles/" + "aa" * 16]

    def test_verify_flags_corrupt_artifacts(self, store, tmp_path):
        curves = make_curves()
        publish_profile(store, "aa" * 16, curves)
        make_rtrace(tmp_path / "t.rtrace", apki=8.0)
        fp, __ = publish_trace(store, tmp_path / "t.rtrace", name="t")
        report = store.verify()
        assert sorted(report["ok"]) == sorted(
            ["profiles/" + "aa" * 16, f"traces/{fp}"]
        )
        assert report["bad"] == {}
        # Corrupt the profile payload; verify must call it out.
        store.path("profiles", "aa" * 16).write_bytes(b"garbage")
        report = store.verify()
        assert "profiles/" + "aa" * 16 in report["bad"]

    def test_verify_flags_misfiled_trace(self, store, tmp_path):
        make_rtrace(tmp_path / "t.rtrace", apki=8.0)
        store.publish_file("traces", "00" * 16, tmp_path / "t.rtrace")
        report = store.verify()
        assert "traces/" + "00" * 16 in report["bad"]
        assert "does not match" in report["bad"]["traces/" + "00" * 16]

    def test_compact_rewrites_deflated_payloads(self, store):
        payload = {"format_version": np.array(FORMAT_VERSION), "x": np.arange(50)}

        def write_deflated(tmp):
            np.savez_compressed(open(tmp, "wb"), **payload)

        store.publish("profiles", "aa" * 16, write_deflated)
        path = store.path("profiles", "aa" * 16)
        assert npz_arrays(path) is None  # not mappable yet
        dry = store.compact(dry_run=True)
        assert dry["rewritten"] == ["profiles/" + "aa" * 16]
        assert npz_arrays(path) is None
        real = store.compact()
        assert real["rewritten"] == dry["rewritten"]
        arrays = npz_arrays(path)
        assert arrays is not None
        assert np.array_equal(arrays["x"], np.arange(50))
        assert store.compact()["rewritten"] == []  # idempotent


class TestProfilePayload:
    def test_publish_is_mappable_and_loads(self, store):
        curves = make_curves(n_intervals=3)
        publish_profile(store, "ab" * 16, curves)
        path = store.get("profiles", "ab" * 16)
        loaded = load_profile(path, chunk_bytes=1024, n_intervals=3)
        assert set(loaded) == set(curves)
        for vc in curves:
            for got, want in zip(loaded[vc], curves[vc]):
                assert np.array_equal(got.misses, want.misses)
                assert got.accesses == want.accesses
                assert got.instructions == want.instructions
                # Zero-copy: a read-only view over the file mapping.
                assert not got.misses.flags.writeable
                assert got.misses.base is not None

    def test_load_falls_back_on_compressed(self, tmp_path):
        from repro.store.profiles import encode_payload

        curves = make_curves()
        path = tmp_path / "legacy.npz"
        np.savez_compressed(path, **encode_payload(curves))
        loaded = load_profile(path, chunk_bytes=1024, n_intervals=2)
        assert loaded is not None
        assert np.array_equal(loaded[0][0].misses, curves[0][0].misses)

    def test_load_missing_and_garbage(self, tmp_path):
        assert load_profile(tmp_path / "no.npz", 1024, 1) is None
        (tmp_path / "bad.npz").write_bytes(b"nope")
        assert load_profile(tmp_path / "bad.npz", 1024, 1) is None

    def test_verify_payload_diagnoses(self, store):
        publish_profile(store, "ab" * 16, make_curves(n_intervals=2))
        path = store.get("profiles", "ab" * 16)
        assert verify_profile_payload(path) is None
        data = dict(np.load(path))
        del data["m_0_1"]
        np.savez(open(path, "wb"), **data)
        assert "m_0_1" in verify_profile_payload(path)


class TestPublishTrace:
    def test_deflated_archive_published_mappable(self, store, tmp_path):
        trace, header = make_rtrace(tmp_path / "t.rtrace", apki=8.0)
        fp, dst = publish_trace(store, tmp_path / "t.rtrace", name="app")
        assert fp == header["fingerprint"]
        with zipfile.ZipFile(dst) as zf:
            assert all(
                i.compress_type == zipfile.ZIP_STORED for i in zf.infolist()
            )
        from repro.ingest import RTraceSource

        source = RTraceSource(dst)
        assert source.fingerprint == fp  # compression-invariant key
        assert source.verify_fingerprint()
        assert store.resolve_name("app")["fingerprint"] == fp
        meta = store.provenance("traces", fp)
        assert meta["builder"].endswith("publish_trace")

    def test_no_instruction_count_rejected(self, store, tmp_path):
        from repro.ingest import (
            ArraySource,
            convert_to_rtrace,
            open_trace_source,
            write_trace_file,
        )
        from repro.workloads.trace import Trace

        rng = np.random.default_rng(4)
        trace = Trace(
            lines=rng.integers(0, 64, 100),
            regions=rng.integers(0, 2, 100).astype(np.int32),
            instructions=500.0,
        )
        # CSV carries no instruction count, so neither does the archive.
        write_trace_file(
            tmp_path / "t.csv", ArraySource.from_trace(trace), "csv"
        )
        convert_to_rtrace(
            open_trace_source(tmp_path / "t.csv"), tmp_path / "t.rtrace"
        )
        with pytest.raises(ValueError, match="instruction count"):
            publish_trace(store, tmp_path / "t.rtrace", name="app")
        assert store.names() == {}


class TestStoreCLI:
    def test_status_gc_verify_roundtrip(self, store, tmp_path, capsys):
        from repro.cli import main

        publish_profile(store, "ab" * 16, make_curves())
        make_rtrace(tmp_path / "t.rtrace", apki=8.0)
        publish_trace(store, tmp_path / "t.rtrace", name="app")
        assert main(["store", "status"]) == 0
        out = capsys.readouterr().out
        assert "profiles: 1 artifacts" in out
        assert "traces: 1 artifacts" in out
        assert "names: 1 bindings" in out
        assert main(["store", "gc", "--dry-run"]) == 0
        assert main(["store", "verify"]) == 0
        assert "2 artifacts, 0 bad" in capsys.readouterr().out

    def test_verify_fails_on_corruption(self, store, tmp_path, capsys):
        from repro.cli import main

        publish_profile(store, "ab" * 16, make_curves())
        store.path("profiles", "ab" * 16).write_bytes(b"junk")
        assert main(["store", "verify"]) == 1
        assert "BAD" in capsys.readouterr().err

    def test_missing_store_handled(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv(ENV_STORE, str(tmp_path / "nowhere"))
        assert main(["store", "status"]) == 0
        assert "(empty)" in capsys.readouterr().out
        assert main(["store", "verify"]) == 2

    def test_compact_imports_legacy_piles(
        self, store, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main
        from repro.workloads.registry import TRACE_DIR_ENV

        # A legacy trace dir with one archive, a legacy profile cache
        # with one entry: compact pulls both into the store.
        traces = tmp_path / "traces"
        traces.mkdir()
        make_rtrace(traces / "legacyapp.rtrace", apki=8.0)
        monkeypatch.setenv(TRACE_DIR_ENV, str(traces))
        legacy_cache = tmp_path / "cache"
        legacy_cache.mkdir()
        from repro.store.profiles import encode_payload

        np.savez_compressed(
            legacy_cache / ("cd" * 16 + ".npz"), **encode_payload(make_curves())
        )
        monkeypatch.setenv("REPRO_PROFILE_CACHE", str(legacy_cache))

        assert main(["store", "compact", "--dry-run"]) == 0
        assert store.status()["kinds"]["profiles"]["artifacts"] == 0
        assert main(["store", "compact"]) == 0
        assert store.status()["kinds"]["profiles"]["artifacts"] == 1
        assert store.resolve_name("legacyapp") is not None
        # Imported payloads come out mappable.
        assert npz_arrays(store.path("profiles", "cd" * 16)) is not None
        assert main(["store", "compact"]) == 0  # idempotent
        assert store.status()["kinds"]["profiles"]["artifacts"] == 1


class TestRegistryStoreResolution:
    @pytest.fixture(autouse=True)
    def clean_registry(self):
        from repro.workloads.registry import _REGISTERED_TRACES

        yield
        _REGISTERED_TRACES.clear()

    def test_store_named_trace_is_a_workload(
        self, store, tmp_path, monkeypatch
    ):
        from repro.workloads import build_workload, ingested_apps

        monkeypatch.delenv("REPRO_TRACE_DIR", raising=False)
        trace, __ = make_rtrace(tmp_path / "t.rtrace", apki=8.0)
        publish_trace(store, tmp_path / "t.rtrace", name="storeapp")
        assert "storeapp" in ingested_apps()
        workload = build_workload("storeapp")
        assert workload.name == "storeapp"
        assert np.array_equal(workload.trace.lines, trace.lines)
        assert np.array_equal(workload.trace.regions, trace.regions)
        # Stored archives materialize as zero-copy mapped views.
        assert not workload.trace.lines.flags.writeable

    def test_trace_dir_still_wins_over_store(
        self, store, tmp_path, monkeypatch
    ):
        from repro.workloads import build_workload
        from repro.workloads.registry import TRACE_DIR_ENV

        dir_trace, __ = make_rtrace(
            tmp_path / "dup.rtrace", n=300, seed=5, apki=8.0
        )
        publish_trace(store, tmp_path / "dup.rtrace", name="dup")
        other = tmp_path / "dir"
        other.mkdir()
        env_trace, __ = make_rtrace(
            other / "dup.rtrace", n=200, seed=9, apki=8.0
        )
        monkeypatch.setenv(TRACE_DIR_ENV, str(other))
        workload = build_workload("dup")
        assert len(workload.trace) == 200  # the env dir's capture

    def test_ingest_register_without_trace_dir_uses_store(
        self, store, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main
        from repro.workloads import build_workload

        monkeypatch.delenv("REPRO_TRACE_DIR", raising=False)
        make_rtrace(tmp_path / "in.rtrace", apki=8.0)
        rc = main(
            ["ingest", "register", str(tmp_path / "in.rtrace"),
             "--name", "cliapp"]
        )
        assert rc == 0
        assert "registered 'cliapp'" in capsys.readouterr().out
        assert build_workload("cliapp").name == "cliapp"
        assert store.status()["kinds"]["traces"]["artifacts"] == 1
        assert not list((store.root / "tmp").glob("*")) if (
            store.root / "tmp"
        ).exists() else True

    def test_ingest_register_conversion_path_to_store(
        self, store, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main
        from repro.ingest import ArraySource, write_trace_file
        from repro.workloads import build_workload
        from repro.workloads.trace import Trace

        monkeypatch.delenv("REPRO_TRACE_DIR", raising=False)
        rng = np.random.default_rng(2)
        trace = Trace(
            lines=rng.integers(0, 64, 400),
            regions=rng.integers(0, 2, 400).astype(np.int32),
            instructions=2000.0,
        )
        src = tmp_path / "t.csv"
        write_trace_file(src, ArraySource.from_trace(trace), "csv")
        rc = main(
            ["ingest", "register", str(src), "--name", "csvapp", "--apki", "8"]
        )
        assert rc == 0
        workload = build_workload("csvapp")
        assert np.array_equal(workload.trace.lines, trace.lines)
        # Conversion staged in the store's tmp/ and cleaned up after.
        assert not list((store.root / "tmp").iterdir())
