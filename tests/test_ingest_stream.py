"""Streaming profiler vs in-memory engine: bit-identical, any chunk size.

The acceptance contract of the out-of-core path: for every chunk size,
interval count and sampling shift, :class:`StreamingStackProfiler`
over a :class:`TraceSource` produces *exactly* the curves the in-memory
:class:`StackDistanceProfiler` produces over the materialized arrays —
same floats, not just close ones.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves.reuse import StackDistanceProfiler
from repro.ingest import (
    ArraySource,
    IterableSource,
    RTraceSource,
    StreamingStackProfiler,
    TraceChunk,
    convert_to_rtrace,
)
from repro.sim.profiling import profile_vcs
from repro.workloads.trace import Trace


def assert_identical(got, want):
    assert sorted(got) == sorted(want)
    for rid in want:
        assert len(got[rid]) == len(want[rid])
        for cg, cw in zip(got[rid], want[rid]):
            assert np.array_equal(cg.misses, cw.misses)
            assert cg.accesses == cw.accesses
            assert cg.instructions == cw.instructions
            assert cg.chunk_bytes == cw.chunk_bytes


def run_both(lines, regions, instructions, n_intervals, chunk, shift):
    mem = StackDistanceProfiler(
        chunk_bytes=512, n_chunks=9, line_bytes=64, sample_shift=shift
    )
    want = mem.profile(lines, regions, instructions, n_intervals=n_intervals)
    source = ArraySource(
        addrs=lines * 64, regions=regions, instructions=instructions
    )
    got = StreamingStackProfiler(
        chunk_bytes=512, n_chunks=9, line_bytes=64, sample_shift=shift
    ).profile_source(source, n_intervals=n_intervals, chunk_records=chunk)
    assert_identical(got, want)


class TestStreamingEqualsInMemory:
    @settings(max_examples=120, deadline=None)
    @given(
        lines=st.lists(st.integers(0, 40), min_size=1, max_size=300),
        regions=st.lists(st.integers(0, 4), min_size=1, max_size=300),
        n_intervals=st.integers(1, 4),
        chunk=st.integers(1, 64),
    )
    def test_any_chunk_size_exact(self, lines, regions, n_intervals, chunk):
        n = min(len(lines), len(regions))
        run_both(
            np.array(lines[:n], dtype=np.int64),
            np.array(regions[:n], dtype=np.int32),
            float(n) * 11.0,
            n_intervals,
            chunk,
            shift=0,
        )

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        chunk=st.integers(1, 200),
        shift=st.sampled_from([0, 2, 3]),
        n_intervals=st.integers(1, 5),
    )
    def test_sampled_streams_exact(self, seed, chunk, shift, n_intervals):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 600))
        run_both(
            rng.integers(0, 80, n).astype(np.int64),
            rng.integers(0, 5, n).astype(np.int32),
            float(n) * 7.0,
            n_intervals,
            chunk,
            shift,
        )

    def test_large_trace_small_chunks(self):
        # Many chunk boundaries inside long reuse windows.
        rng = np.random.default_rng(9)
        n = 20_000
        lines = rng.integers(0, 2000, n).astype(np.int64)
        regions = rng.integers(0, 6, n).astype(np.int32)
        run_both(lines, regions, n * 5.0, n_intervals=4, chunk=97, shift=0)

    def test_chunk_size_one(self):
        rng = np.random.default_rng(2)
        n = 300
        run_both(
            rng.integers(0, 20, n).astype(np.int64),
            rng.integers(0, 3, n).astype(np.int32),
            n * 3.0,
            n_intervals=3,
            chunk=1,
            shift=0,
        )

    def test_single_region_none_regions(self):
        # Sources without regions profile as a single region 0.
        rng = np.random.default_rng(4)
        lines = rng.integers(0, 50, 500).astype(np.int64)
        mem = StackDistanceProfiler(chunk_bytes=512, n_chunks=9)
        want = mem.profile_combined(lines, 5000.0, n_intervals=2)
        source = ArraySource(addrs=lines * 64, instructions=5000.0)
        got = StreamingStackProfiler(
            chunk_bytes=512, n_chunks=9
        ).profile_source(source, n_intervals=2, chunk_records=37)
        assert_identical({0: got[0]}, {0: want})


class TestStreamingFromArchive:
    def test_rtrace_streams_identically(self, tmp_path):
        rng = np.random.default_rng(5)
        n = 3000
        trace = Trace(
            lines=rng.integers(0, 300, n),
            regions=rng.integers(0, 3, n).astype(np.int32),
            instructions=n * 8.0,
        )
        path = tmp_path / "t.rtrace"
        convert_to_rtrace(
            ArraySource.from_trace(trace), path, max_records=271
        )
        mem = StackDistanceProfiler(chunk_bytes=1024, n_chunks=6)
        want = mem.profile(
            trace.lines, trace.regions, trace.instructions, n_intervals=3
        )
        got = StreamingStackProfiler(
            chunk_bytes=1024, n_chunks=6
        ).profile_source(RTraceSource(path), n_intervals=3, chunk_records=113)
        assert_identical(got, want)

    def test_mapping_matches_profile_vcs(self, tmp_path):
        rng = np.random.default_rng(6)
        n = 2000
        trace = Trace(
            lines=rng.integers(0, 200, n),
            regions=rng.integers(0, 5, n).astype(np.int32),
            instructions=n * 4.0,
        )
        mapping = {0: 0, 1: 1, 2: 1, 3: 0, 4: 2}
        want = profile_vcs(
            trace, mapping, chunk_bytes=512, n_chunks=8, n_intervals=2,
            use_cache=False,
        )
        got = StreamingStackProfiler(
            chunk_bytes=512, n_chunks=8, line_bytes=trace.line_bytes
        ).profile_source(
            ArraySource.from_trace(trace),
            n_intervals=2,
            chunk_records=173,
            mapping=mapping,
        )
        assert_identical(got, want)


class TestStreamingErrors:
    def test_missing_instructions_rejected(self):
        source = ArraySource(addrs=np.array([64, 128]))
        with pytest.raises(ValueError, match="instruction"):
            StreamingStackProfiler(chunk_bytes=512, n_chunks=4).profile_source(
                source
            )

    def test_lying_source_rejected(self):
        class Short(ArraySource):
            def chunks(self, max_records=1 << 21):
                it = super().chunks(max_records)
                next(it)  # drop the first chunk
                yield from it

        source = Short(addrs=np.arange(100) * 64, instructions=1000.0)
        with pytest.raises(ValueError, match="declared"):
            StreamingStackProfiler(chunk_bytes=512, n_chunks=4).profile_source(
                source, chunk_records=30
            )

    def test_overlong_source_rejected(self):
        class Long(ArraySource):
            def chunks(self, max_records=1 << 21):
                yield from super().chunks(max_records)
                yield TraceChunk(addrs=np.array([64, 128], dtype=np.int64))

        source = Long(addrs=np.arange(100) * 64, instructions=1000.0)
        with pytest.raises(ValueError, match="more than its declared"):
            StreamingStackProfiler(chunk_bytes=512, n_chunks=4).profile_source(
                source, chunk_records=30
            )

    def test_zero_record_source_rejected(self):
        # Regression: used to return silently-empty curve dicts.
        source = ArraySource(
            addrs=np.array([], dtype=np.int64), instructions=10.0
        )
        with pytest.raises(ValueError, match="source yielded no records"):
            StreamingStackProfiler(chunk_bytes=512, n_chunks=4).profile_source(
                source
            )

    def test_unbounded_source_rejected(self):
        def gen():
            yield TraceChunk(addrs=np.array([64, 128], dtype=np.int64))

        source = IterableSource(gen(), instructions=100.0)
        with pytest.raises(ValueError, match="unbounded"):
            StreamingStackProfiler(chunk_bytes=512, n_chunks=4).profile_source(
                source
            )

    def test_bad_n_intervals_rejected(self):
        source = ArraySource(addrs=np.arange(10) * 64, instructions=100.0)
        with pytest.raises(ValueError, match="n_intervals"):
            StreamingStackProfiler(chunk_bytes=512, n_chunks=4).profile_source(
                source, n_intervals=0
            )


class TestIntervalBoundaries:
    """Satellite pins for ``_count_accesses`` / ``_accumulate`` edges.

    The audit of the chunk-straddles-interval-boundary arithmetic found
    no off-by-one, so these pin the cases it checked: a chunk ending
    exactly on an interval bound, single-record chunks, and empty
    intervals (``n_intervals > n_records`` makes ``linspace`` repeat
    bounds).
    """

    def test_chunk_ends_exactly_on_interval_bound(self):
        # n=120, 4 intervals -> bounds at 0/30/60/90/120; chunk=30 makes
        # every chunk boundary coincide with an interval boundary.
        rng = np.random.default_rng(7)
        n = 120
        run_both(
            rng.integers(0, 30, n).astype(np.int64),
            rng.integers(0, 3, n).astype(np.int32),
            n * 2.0,
            n_intervals=4,
            chunk=30,
            shift=0,
        )

    def test_single_record_chunks_across_bounds(self):
        rng = np.random.default_rng(8)
        n = 23
        run_both(
            rng.integers(0, 10, n).astype(np.int64),
            rng.integers(0, 2, n).astype(np.int32),
            n * 2.0,
            n_intervals=7,
            chunk=1,
            shift=0,
        )

    def test_more_intervals_than_records(self):
        # linspace(0, 5, 17) repeats bounds -> empty intervals between
        # t0 and t1; streaming must emit the same zero-access curves the
        # in-memory engine does.
        rng = np.random.default_rng(9)
        n = 5
        for chunk in (1, 2, 64):
            run_both(
                rng.integers(0, 6, n).astype(np.int64),
                rng.integers(0, 2, n).astype(np.int32),
                n * 3.0,
                n_intervals=16,
                chunk=chunk,
                shift=0,
            )

    def test_access_counts_per_interval_match_repeat_semantics(self):
        # Offline interval ids are np.repeat over np.diff(bounds); pin
        # the streaming access tallies against that directly.
        lines = np.arange(10, dtype=np.int64)
        regions = np.zeros(10, dtype=np.int32)
        n_intervals = 3
        bounds = np.linspace(0, 10, n_intervals + 1).astype(np.int64)
        interval_of = np.repeat(np.arange(n_intervals), np.diff(bounds))
        want = np.bincount(interval_of, minlength=n_intervals)
        prof = StreamingStackProfiler(chunk_bytes=512, n_chunks=4).begin(
            bounds
        )
        for start in range(0, 10, 3):  # chunk=3 straddles both bounds
            prof.push_chunk(
                TraceChunk(
                    addrs=lines[start : start + 3] * 64,
                    regions=regions[start : start + 3],
                )
            )
        got = prof._acc[0].accesses[:n_intervals]
        assert np.array_equal(got, want)


class TestOpenEndedEpochs:
    """``begin()`` + ``open_interval`` equals the sized one-shot path."""

    def test_manual_epochs_match_profile_source(self):
        rng = np.random.default_rng(11)
        n = 400
        lines = rng.integers(0, 40, n).astype(np.int64)
        regions = rng.integers(0, 3, n).astype(np.int32)
        kw = dict(chunk_bytes=512, n_chunks=9, line_bytes=64, sample_shift=0)
        want = StreamingStackProfiler(**kw).profile_source(
            ArraySource(addrs=lines * 64, regions=regions, instructions=n * 4.0),
            n_intervals=4,
            chunk_records=64,
        )
        prof = StreamingStackProfiler(**kw).begin()
        for end in np.linspace(0, n, 5).astype(np.int64)[1:]:
            prof.open_interval(int(end))
        for start in range(0, n, 64):
            prof.push_chunk(
                TraceChunk(
                    addrs=lines[start : start + 64] * 64,
                    regions=regions[start : start + 64],
                )
            )
        assert_identical(prof.finalize(n * 4.0), want)

    def test_push_past_open_bound_rejected(self):
        prof = StreamingStackProfiler(chunk_bytes=512, n_chunks=4).begin()
        prof.open_interval(3)
        with pytest.raises(ValueError, match="open_interval"):
            prof.push_chunk(
                TraceChunk(addrs=np.array([0, 64, 128, 192], dtype=np.int64))
            )

    def test_open_interval_must_extend(self):
        prof = StreamingStackProfiler(chunk_bytes=512, n_chunks=4).begin()
        prof.open_interval(5)
        with pytest.raises(ValueError, match="extend"):
            prof.open_interval(5)


class TestIterableSource:
    def test_one_shot_replay_rejected(self):
        def gen():
            yield TraceChunk(addrs=np.array([64], dtype=np.int64))

        source = IterableSource(gen())
        assert source.n_records is None
        list(source.chunks())
        with pytest.raises(ValueError, match="one-shot"):
            list(source.chunks())

    def test_oversized_producer_chunks_are_split(self):
        def gen():
            yield TraceChunk(addrs=np.arange(10, dtype=np.int64) * 64)

        got = list(IterableSource(gen()).chunks(max_records=4))
        assert [len(c) for c in got] == [4, 4, 2]
        joined = np.concatenate([c.addrs for c in got])
        assert np.array_equal(joined, np.arange(10) * 64)
