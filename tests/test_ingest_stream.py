"""Streaming profiler vs in-memory engine: bit-identical, any chunk size.

The acceptance contract of the out-of-core path: for every chunk size,
interval count and sampling shift, :class:`StreamingStackProfiler`
over a :class:`TraceSource` produces *exactly* the curves the in-memory
:class:`StackDistanceProfiler` produces over the materialized arrays —
same floats, not just close ones.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves.reuse import StackDistanceProfiler
from repro.ingest import (
    ArraySource,
    RTraceSource,
    StreamingStackProfiler,
    convert_to_rtrace,
)
from repro.sim.profiling import profile_vcs
from repro.workloads.trace import Trace


def assert_identical(got, want):
    assert sorted(got) == sorted(want)
    for rid in want:
        assert len(got[rid]) == len(want[rid])
        for cg, cw in zip(got[rid], want[rid]):
            assert np.array_equal(cg.misses, cw.misses)
            assert cg.accesses == cw.accesses
            assert cg.instructions == cw.instructions
            assert cg.chunk_bytes == cw.chunk_bytes


def run_both(lines, regions, instructions, n_intervals, chunk, shift):
    mem = StackDistanceProfiler(
        chunk_bytes=512, n_chunks=9, line_bytes=64, sample_shift=shift
    )
    want = mem.profile(lines, regions, instructions, n_intervals=n_intervals)
    source = ArraySource(
        addrs=lines * 64, regions=regions, instructions=instructions
    )
    got = StreamingStackProfiler(
        chunk_bytes=512, n_chunks=9, line_bytes=64, sample_shift=shift
    ).profile_source(source, n_intervals=n_intervals, chunk_records=chunk)
    assert_identical(got, want)


class TestStreamingEqualsInMemory:
    @settings(max_examples=120, deadline=None)
    @given(
        lines=st.lists(st.integers(0, 40), min_size=1, max_size=300),
        regions=st.lists(st.integers(0, 4), min_size=1, max_size=300),
        n_intervals=st.integers(1, 4),
        chunk=st.integers(1, 64),
    )
    def test_any_chunk_size_exact(self, lines, regions, n_intervals, chunk):
        n = min(len(lines), len(regions))
        run_both(
            np.array(lines[:n], dtype=np.int64),
            np.array(regions[:n], dtype=np.int32),
            float(n) * 11.0,
            n_intervals,
            chunk,
            shift=0,
        )

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        chunk=st.integers(1, 200),
        shift=st.sampled_from([0, 2, 3]),
        n_intervals=st.integers(1, 5),
    )
    def test_sampled_streams_exact(self, seed, chunk, shift, n_intervals):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 600))
        run_both(
            rng.integers(0, 80, n).astype(np.int64),
            rng.integers(0, 5, n).astype(np.int32),
            float(n) * 7.0,
            n_intervals,
            chunk,
            shift,
        )

    def test_large_trace_small_chunks(self):
        # Many chunk boundaries inside long reuse windows.
        rng = np.random.default_rng(9)
        n = 20_000
        lines = rng.integers(0, 2000, n).astype(np.int64)
        regions = rng.integers(0, 6, n).astype(np.int32)
        run_both(lines, regions, n * 5.0, n_intervals=4, chunk=97, shift=0)

    def test_chunk_size_one(self):
        rng = np.random.default_rng(2)
        n = 300
        run_both(
            rng.integers(0, 20, n).astype(np.int64),
            rng.integers(0, 3, n).astype(np.int32),
            n * 3.0,
            n_intervals=3,
            chunk=1,
            shift=0,
        )

    def test_single_region_none_regions(self):
        # Sources without regions profile as a single region 0.
        rng = np.random.default_rng(4)
        lines = rng.integers(0, 50, 500).astype(np.int64)
        mem = StackDistanceProfiler(chunk_bytes=512, n_chunks=9)
        want = mem.profile_combined(lines, 5000.0, n_intervals=2)
        source = ArraySource(addrs=lines * 64, instructions=5000.0)
        got = StreamingStackProfiler(
            chunk_bytes=512, n_chunks=9
        ).profile_source(source, n_intervals=2, chunk_records=37)
        assert_identical({0: got[0]}, {0: want})


class TestStreamingFromArchive:
    def test_rtrace_streams_identically(self, tmp_path):
        rng = np.random.default_rng(5)
        n = 3000
        trace = Trace(
            lines=rng.integers(0, 300, n),
            regions=rng.integers(0, 3, n).astype(np.int32),
            instructions=n * 8.0,
        )
        path = tmp_path / "t.rtrace"
        convert_to_rtrace(
            ArraySource.from_trace(trace), path, max_records=271
        )
        mem = StackDistanceProfiler(chunk_bytes=1024, n_chunks=6)
        want = mem.profile(
            trace.lines, trace.regions, trace.instructions, n_intervals=3
        )
        got = StreamingStackProfiler(
            chunk_bytes=1024, n_chunks=6
        ).profile_source(RTraceSource(path), n_intervals=3, chunk_records=113)
        assert_identical(got, want)

    def test_mapping_matches_profile_vcs(self, tmp_path):
        rng = np.random.default_rng(6)
        n = 2000
        trace = Trace(
            lines=rng.integers(0, 200, n),
            regions=rng.integers(0, 5, n).astype(np.int32),
            instructions=n * 4.0,
        )
        mapping = {0: 0, 1: 1, 2: 1, 3: 0, 4: 2}
        want = profile_vcs(
            trace, mapping, chunk_bytes=512, n_chunks=8, n_intervals=2,
            use_cache=False,
        )
        got = StreamingStackProfiler(
            chunk_bytes=512, n_chunks=8, line_bytes=trace.line_bytes
        ).profile_source(
            ArraySource.from_trace(trace),
            n_intervals=2,
            chunk_records=173,
            mapping=mapping,
        )
        assert_identical(got, want)


class TestStreamingErrors:
    def test_missing_instructions_rejected(self):
        source = ArraySource(addrs=np.array([64, 128]))
        with pytest.raises(ValueError, match="instruction"):
            StreamingStackProfiler(chunk_bytes=512, n_chunks=4).profile_source(
                source
            )

    def test_lying_source_rejected(self):
        class Short(ArraySource):
            def chunks(self, max_records=1 << 21):
                it = super().chunks(max_records)
                next(it)  # drop the first chunk
                yield from it

        source = Short(addrs=np.arange(100) * 64, instructions=1000.0)
        with pytest.raises(ValueError, match="declared"):
            StreamingStackProfiler(chunk_bytes=512, n_chunks=4).profile_source(
                source, chunk_records=30
            )
