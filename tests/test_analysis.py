"""Unit tests for the analysis/reporting helpers."""

import pytest

from repro.analysis import format_table, gmean, placement_map, run_schemes
from repro.analysis.report import write_result
from repro.nuca import MeshGeometry, four_core_config
from repro.nuca.geometry import Placement
from repro.workloads import build_workload


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [["x", 1.0], ["longer", 2.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "1.000" in text

    def test_empty_rows(self):
        text = format_table(["h1", "h2"], [])
        assert "h1" in text


class TestGmean:
    def test_basic(self):
        assert gmean([2.0, 8.0]) == pytest.approx(4.0)

    def test_identity(self):
        assert gmean([1.0, 1.0, 1.0]) == 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            gmean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            gmean([1.0, 0.0])


class TestWriteResult:
    def test_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = write_result("myexp", "hello")
        assert path.read_text() == "hello\n"
        assert path.parent == tmp_path


class TestPlacementMap:
    def test_symbols_and_unused(self):
        geo = MeshGeometry(dim=3, n_cores=1, bank_bytes=1024)
        p = Placement({0: 1024.0, 4: 512.0})
        text = placement_map(geo, {"points": p}, core=0)
        assert "P" in text
        assert "." in text
        assert "*" in text  # core marker
        assert "P=points" in text

    def test_majority_owner_shown(self):
        geo = MeshGeometry(dim=2, n_cores=1, bank_bytes=1024)
        a = Placement({0: 300.0})
        b = Placement({0: 700.0})
        text = placement_map(geo, {"alpha": a, "beta": b})
        first_cell = text.splitlines()[0].split()[0]
        assert first_cell == "B"

    def test_symbol_collision_resolved(self):
        geo = MeshGeometry(dim=2, n_cores=1, bank_bytes=1024)
        text = placement_map(
            geo,
            {"points": Placement({0: 1.0}), "pugh": Placement({1: 1.0})},
        )
        legend = text.splitlines()[-1]
        # Two distinct symbols despite the same initial.
        assert "points" in legend and "pugh" in legend
        syms = [part.split("=")[0].strip() for part in legend.split()[1:3]]
        assert len(set(syms)) == 2


class TestRunSchemes:
    def test_subset_and_whirlpool_fallbacks(self):
        cfg = four_core_config()
        w = build_workload("MIS", scale="train", seed=0)
        out = run_schemes(w, cfg, schemes=["Jigsaw", "Whirlpool"])
        assert set(out) == {"Jigsaw", "Whirlpool"}
        # MIS is ported: Whirlpool uses the manual classification and
        # should not lose to Jigsaw.
        assert out["Whirlpool"].cycles <= out["Jigsaw"].cycles * 1.02

    def test_whirltool_fallback_for_unported_app(self):
        cfg = four_core_config()
        w = build_workload("dict", scale="train", seed=0)
        out = run_schemes(w, cfg, schemes=["Jigsaw", "Whirlpool"])
        assert "Whirlpool" in out
