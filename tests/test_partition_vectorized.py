"""Property suite for the vectorized partitioner vs. the heapq oracle.

The vectorized engine must be *bit-identical* to
``partition_cost_curves_reference`` — same sizes, same total cost — on
every input, including adversarial float patterns (exact ties, ulp-level
hull-interpolation jitter).  The same holds one layer down for the
run-skipping convex-hull scan vs. the original monotone chain.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves.miss_curve import _lower_convex_hull, _lower_convex_hull_fast
from repro.curves.partition import (
    partition_cost_curves,
    partition_cost_curves_reference,
)

# Finite floats with plenty of exact collisions (integers shrink well and
# tie often) plus fractional values that exercise interpolation rounding.
curve_value = st.one_of(
    st.integers(0, 8).map(float),
    st.floats(0, 1000, allow_nan=False, allow_infinity=False),
)
cost_curve = st.lists(curve_value, min_size=2, max_size=24).map(np.array)
curve_set = st.lists(cost_curve, min_size=1, max_size=6)


class TestHullEquivalence:
    @settings(max_examples=300, deadline=None)
    @given(st.lists(curve_value, min_size=1, max_size=60).map(np.array))
    def test_fast_hull_bit_identical(self, values):
        got = _lower_convex_hull_fast(values)
        want = _lower_convex_hull(values)
        assert np.array_equal(got, want)

    def test_fast_hull_convex_decay_with_cliffs(self):
        """The shape the partitioner actually sees (hulled latency curves)."""
        rng = np.random.default_rng(5)
        for __ in range(20):
            gains = np.sort(rng.exponential(1.0, size=200)) + 1e-9
            vals = np.concatenate([[0.0], np.cumsum(gains)])[::-1].copy()
            vals[: int(rng.integers(1, 200))] += rng.uniform(1, 10)
            assert np.array_equal(
                _lower_convex_hull_fast(vals), _lower_convex_hull(vals)
            )


class TestAllocatorEquality:
    @settings(max_examples=200, deadline=None)
    @given(curve_set, st.integers(1, 64))
    def test_bit_identical_to_reference(self, curves, total):
        got_sizes, got_cost = partition_cost_curves(
            [c.copy() for c in curves], total
        )
        want_sizes, want_cost = partition_cost_curves_reference(
            [c.copy() for c in curves], total
        )
        assert got_sizes == want_sizes
        assert got_cost == want_cost  # exact, not approx

    @settings(max_examples=150, deadline=None)
    @given(curve_set, st.integers(1, 64))
    def test_sizes_sum_within_budget(self, curves, total):
        sizes, __ = partition_cost_curves(curves, total)
        assert len(sizes) == len(curves)
        assert all(s >= 0 for s in sizes)
        assert sum(sizes) <= total
        assert all(s <= len(c) - 1 for s, c in zip(sizes, curves))

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.lists(curve_value, min_size=2, max_size=6).map(np.array),
            min_size=1,
            max_size=3,
        ),
        st.integers(1, 12),
    )
    def test_optimal_vs_bruteforce_dp(self, curves, total):
        """On tiny inputs, the greedy cost matches the exhaustive optimum
        over the hulls (greedy is optimal on convex curves)."""
        __, cost = partition_cost_curves([c.copy() for c in curves], total)
        hulls = [_lower_convex_hull(np.asarray(c, dtype=np.float64)) for c in curves]
        best = min(
            sum(h[s] for h, s in zip(hulls, combo))
            for combo in itertools.product(
                *(range(len(h)) for h in hulls)
            )
            if sum(combo) <= total
        )
        assert cost == pytest.approx(best, rel=1e-9, abs=1e-9)

    @settings(max_examples=100, deadline=None)
    @given(curve_set, st.integers(1, 40))
    def test_allocation_monotone_in_capacity(self, curves, total):
        """More capacity never shrinks any consumer's allocation."""
        small, __ = partition_cost_curves([c.copy() for c in curves], total)
        large, __ = partition_cost_curves([c.copy() for c in curves], total + 1)
        assert all(lg >= sm for sm, lg in zip(small, large))


class TestValidationRegressions:
    """The silent fall-through cases now fail loudly."""

    def test_empty_curve_list(self):
        with pytest.raises(ValueError, match="must not be empty"):
            partition_cost_curves([], 4)

    @pytest.mark.parametrize("total", [0, -1, -100])
    def test_non_positive_capacity(self, total):
        with pytest.raises(ValueError, match="total_chunks must be positive"):
            partition_cost_curves([np.array([3.0, 1.0])], total)

    def test_single_point_curve(self):
        with pytest.raises(ValueError, match="at least 2 points"):
            partition_cost_curves([np.array([7.0])], 4)

    def test_two_dimensional_curve(self):
        with pytest.raises(ValueError, match="1-D"):
            partition_cost_curves([np.zeros((2, 2))], 4)

    def test_error_names_offending_curve(self):
        with pytest.raises(ValueError, match="cost curve 1"):
            partition_cost_curves([np.array([3.0, 1.0]), np.array([7.0])], 4)


class TestPartitionedCurveBatch:
    """Batched optimal-split curves vs the serial ``partitioned_miss_curve``."""

    @staticmethod
    def _curve(values, instr=1000.0):
        from repro.curves.miss_curve import MissCurve

        values = np.asarray(values, dtype=float)
        return MissCurve(
            misses=values,
            chunk_bytes=1024,
            accesses=float(values[0]),
            instructions=instr,
        )

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.lists(curve_value, min_size=2, max_size=24),
                st.floats(1e-6, 1e7, allow_nan=False),
                st.lists(curve_value, min_size=2, max_size=24),
                st.floats(1e-6, 1e7, allow_nan=False),
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_batch_bit_identical_to_serial(self, specs):
        from repro.curves.partition import (
            partitioned_miss_curve,
            partitioned_miss_curve_batch,
        )

        pairs = [
            (self._curve(va, ia), self._curve(vb, ib))
            for va, ia, vb, ib in specs
        ]
        got = partitioned_miss_curve_batch(pairs)
        for (a, b), g in zip(pairs, got):
            want = partitioned_miss_curve(a, b)
            assert np.array_equal(g.misses, want.misses)
            assert g.chunk_bytes == want.chunk_bytes
            assert g.accesses == want.accesses
            assert g.instructions == want.instructions

    def test_shared_curves_hull_primed_once(self):
        """A curve appearing in many pairs yields the same rows as serial."""
        from repro.curves.partition import (
            partitioned_miss_curve,
            partitioned_miss_curve_batch,
        )

        rng = np.random.default_rng(9)
        shared = self._curve(np.sort(rng.uniform(0, 100, 17))[::-1].copy())
        others = [
            self._curve(np.sort(rng.uniform(0, 100, 17))[::-1].copy())
            for __ in range(4)
        ]
        pairs = [(shared, o) for o in others]
        got = partitioned_miss_curve_batch(pairs)
        for (a, b), g in zip(pairs, got):
            assert np.array_equal(
                g.misses, partitioned_miss_curve(a, b).misses
            )

    def test_empty_batch(self):
        from repro.curves.partition import partitioned_miss_curve_batch

        assert partitioned_miss_curve_batch([]) == []

    def test_chunk_mismatch_rejected(self):
        from repro.curves.miss_curve import MissCurve
        from repro.curves.partition import partitioned_miss_curve_batch

        a = self._curve([2.0, 1.0])
        b = MissCurve(np.array([2.0, 1.0]), 2048, 2.0, 1000.0)
        with pytest.raises(ValueError, match="chunk_bytes"):
            partitioned_miss_curve_batch([(a, b)])

    def test_rate_rows_shape_mismatch_rejected(self):
        from repro.curves.partition import partitioned_rate_rows

        with pytest.raises(ValueError, match="shape"):
            partitioned_rate_rows(np.zeros((2, 5)), np.zeros((2, 6)))
