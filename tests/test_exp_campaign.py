"""Integration tests for the campaign engine (repro.exp).

Covers the PR's acceptance criteria: a parallel campaign matches the
serial ``run_schemes`` path exactly, an interrupted campaign resumes by
executing only the missing jobs, and serial vs. multi-worker runs
produce byte-identical stores modulo ordering.
"""

import json

from repro.analysis import run_schemes
from repro.exp import Campaign, ResultStore, campaign_status, run_campaign
from repro.nuca import four_core_config
from repro.workloads import build_workload

APPS = ["MIS", "dict", "lbm"]
SCHEMES = ["LRU", "IdealSPD", "Jigsaw"]


def small_campaign() -> Campaign:
    return Campaign(
        name="grid3x3", apps=APPS, schemes=SCHEMES, scale="train"
    )


class TestCampaignRun:
    def test_parallel_matches_serial_run_schemes(self, tmp_path):
        campaign = small_campaign()
        store = ResultStore(tmp_path / "store.jsonl")
        report = run_campaign(campaign, store, workers=4)
        assert report.executed == len(APPS) * len(SCHEMES)
        assert not report.failures

        cfg = four_core_config()
        by_key = {
            (job.app, job.scheme): job.key() for job in campaign.jobs()
        }
        for app in APPS:
            workload = build_workload(app, scale="train", seed=0)
            expected = run_schemes(workload, cfg, schemes=SCHEMES)
            for scheme in SCHEMES:
                record = store.get(by_key[(app, scheme)])
                assert record["cycles"] == expected[scheme].cycles
                assert record["hits"] == expected[scheme].hits
                assert record["misses"] == expected[scheme].misses
                assert (
                    record["energy"]["memory"]
                    == expected[scheme].energy.memory
                )

    def test_interrupted_run_resumes_missing_jobs_only(self, tmp_path):
        campaign = small_campaign()
        path = tmp_path / "store.jsonl"
        run_campaign(campaign, ResultStore(path), workers=1)

        # Simulate a kill mid-run: keep the first 4 completed records
        # plus one half-written line.
        lines = path.read_text().splitlines()
        assert len(lines) == 9
        path.write_text("\n".join(lines[:4]) + "\n" + lines[4][: len(lines[4]) // 2])

        status = campaign_status(campaign, path)
        assert status["done"] == 4
        assert status["pending"] == 5

        report = run_campaign(campaign, ResultStore(path), workers=1)
        assert report.executed == 5
        assert report.skipped == 4
        assert campaign_status(campaign, path)["pending"] == 0

    def test_serial_and_parallel_stores_identical_modulo_order(self, tmp_path):
        campaign = small_campaign()
        serial = tmp_path / "serial.jsonl"
        parallel = tmp_path / "parallel.jsonl"
        run_campaign(campaign, ResultStore(serial), workers=1)
        run_campaign(campaign, ResultStore(parallel), workers=4)
        assert sorted(serial.read_text().splitlines()) == sorted(
            parallel.read_text().splitlines()
        )

    def test_status_fingerprints_each_job_once(self, tmp_path, monkeypatch):
        # Regression: campaign_status used to recompute every Job.key()
        # three times (done list, pending list, per-scheme loop); keys
        # hash the full job spec, so the grid was fingerprinted 3x over.
        from repro.exp import job as job_module

        campaign = small_campaign()
        calls: list[str] = []
        original_key = job_module.Job.key

        def counting_key(self):
            calls.append(self.app)
            return original_key(self)

        monkeypatch.setattr(job_module.Job, "key", counting_key)
        status = campaign_status(campaign, tmp_path / "empty.jsonl")
        n_jobs = len(APPS) * len(SCHEMES)
        assert len(calls) == n_jobs
        assert status["total"] == n_jobs
        assert status["pending"] == n_jobs
        assert sum(
            row["pending"] for row in status["per_scheme"].values()
        ) == n_jobs


class TestCampaignCli:
    def test_submit_status_export(self, tmp_path, capsys):
        from repro.cli import main

        spec = tmp_path / "spec.json"
        store = tmp_path / "store.jsonl"
        Campaign(
            name="cli", apps=["MIS"], schemes=["LRU", "Jigsaw"], scale="train"
        ).save(spec)

        assert (
            main(
                ["campaign", "submit", "--spec", str(spec), "--store", str(store)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2 executed" in out

        assert (
            main(
                ["campaign", "status", "--spec", str(spec), "--store", str(store)]
            )
            == 0
        )
        assert "2/2 done" in capsys.readouterr().out

        # Resuming a finished campaign is a no-op.
        assert (
            main(
                ["campaign", "resume", "--spec", str(spec), "--store", str(store)]
            )
            == 0
        )
        assert "0 executed" in capsys.readouterr().out

        assert main(["campaign", "export", "--store", str(store)]) == 0
        table = capsys.readouterr().out
        assert "MIS" in table and "LRU" in table

    def test_status_requires_spec(self, capsys):
        from repro.cli import main

        assert main(["campaign", "status"]) == 2

    def test_store_records_carry_job_specs(self, tmp_path):
        campaign = Campaign(
            name="meta", apps=["MIS"], schemes=["LRU"], scale="train"
        )
        path = tmp_path / "store.jsonl"
        run_campaign(campaign, ResultStore(path), workers=1)
        entry = json.loads(path.read_text().splitlines()[0])
        assert entry["job"]["app"] == "MIS"
        assert entry["job"]["scheme"] == "LRU"
        assert entry["result"]["cycles"] > 0
