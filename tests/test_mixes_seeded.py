"""Seeded-mix regression: pin the Fig-22 mix compositions.

``make_mix``/``make_mixes`` compositions feed the mix campaigns and the
Fig-22 benchmarks; a numpy RNG change or an app-registry reorder would
silently alter every published number.  These tests pin the exact
compositions (and per-app seeds) for a few (n_cores, seed) pairs.
"""

from repro.exp import MixCampaign
from repro.workloads.mixes import make_mix, make_mixes, mix_names, mix_seeds

PINNED = {
    (4, 1000): ["milc", "soplex", "astar", "libqntm"],
    (4, 1001): ["sphinx3", "libqntm", "astar", "bzip2"],
    (4, 42): ["gcc", "omnet", "libqntm", "leslie"],
    (16, 1000): [
        "milc", "soplex", "astar", "libqntm", "astar", "soplex", "milc",
        "milc", "soplex", "soplex", "zeusmp", "mcf", "soplex", "zeusmp",
        "milc", "omnet",
    ],
}


class TestSeededCompositions:
    def test_pinned_names(self):
        for (n_cores, seed), names in PINNED.items():
            assert mix_names(n_cores, seed) == names, (n_cores, seed)

    def test_pinned_seeds(self):
        assert mix_seeds(4, 1000) == [31000, 31001, 31002, 31003]
        assert mix_seeds(4, 42) == [1302, 1303, 1304, 1305]

    def test_make_mix_matches_names(self):
        mix = make_mix(2, seed=1000, scale="train")
        assert [w.name for w in mix] == ["milc", "soplex"]

    def test_make_mixes_sequential_seeds(self):
        mixes = make_mixes(2, 2, scale="train", base_seed=1000)
        assert [[w.name for w in m] for m in mixes] == [
            ["milc", "soplex"],
            ["sphinx3", "libqntm"],
        ]

    def test_campaign_uses_make_mix_compositions(self):
        """MixCampaign jobs carry exactly the make_mix apps and seeds."""
        campaign = MixCampaign(n_cores=[4], n_mixes=2, base_seed=1000)
        (app0, seeds0), (app1, seeds1) = campaign.mixes(4)
        assert app0 == "milc+soplex+astar+libqntm"
        assert seeds0 == (31000, 31001, 31002, 31003)
        assert app1 == "sphinx3+libqntm+astar+bzip2"
        assert seeds1 == (31031, 31032, 31033, 31034)
