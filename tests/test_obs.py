"""Unit tests for the repro.obs tracing and metrics layer.

Covers the span model (nesting, explicit handles, error tagging), the
sinks, cross-process context propagation via ``current_context`` /
``adopt``, the replay path (``load_events`` -> ``replay_metrics`` ->
``rollup``), the shared perf-timings writer, and — critically — that
every public helper is a true no-op while observability is disabled.
The replay-equality invariant (event-log replay reproduces the live
registry exactly) is pinned property-based with Hypothesis.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs import (
    JsonlSink,
    MemorySink,
    MetricRegistry,
    events_path_for,
)
from repro.obs.core import _ZERO_BUCKET, _log_bucket
from repro.obs.report import (
    format_report,
    load_events,
    percentile,
    replay_metrics,
    rollup,
)
from repro.obs.timings import SCHEMA, infer_unit, record_timings


@pytest.fixture(autouse=True)
def obs_off(monkeypatch):
    """Every test starts and ends with observability disabled."""
    monkeypatch.delenv(obs.ENV_VAR, raising=False)
    obs.disable()
    yield
    obs.disable()


def enable_memory():
    sink = MemorySink()
    obs.enable(sinks=[sink])
    return sink


class TestMetricRegistry:
    def test_counters_accumulate(self):
        reg = MetricRegistry()
        reg.count("a")
        reg.count("a", 2.5)
        reg.count("b")
        assert reg.counters == {"a": 3.5, "b": 1.0}

    def test_gauges_keep_latest(self):
        reg = MetricRegistry()
        reg.set_gauge("depth", 3.0)
        reg.set_gauge("depth", 1.0)
        assert reg.gauges == {"depth": 1.0}

    def test_histogram_log_buckets(self):
        reg = MetricRegistry()
        # 1.0 and 1.5 share bucket 0 (2**0 <= v < 2**1); 4.0 is bucket 2.
        for v in (1.0, 1.5, 4.0):
            reg.observe("lat", v)
        assert reg.histograms["lat"] == {0: 2, 2: 1}

    def test_bucket_edge_cases(self):
        assert _log_bucket(0.0) == _ZERO_BUCKET
        assert _log_bucket(-1.0) == _ZERO_BUCKET
        assert _log_bucket(float("nan")) == _ZERO_BUCKET
        assert _log_bucket(float("inf")) == 1 << 30
        assert _log_bucket(0.5) == -1
        assert _log_bucket(1.0) == 0
        assert _log_bucket(2.0) == 1

    def test_apply_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            MetricRegistry().apply("timer", "x", 1.0)

    def test_snapshot_is_json_friendly(self):
        reg = MetricRegistry()
        reg.count("c")
        reg.set_gauge("g", 2.0)
        reg.observe("h", 3.0)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["counters"] == {"c": 1.0}
        assert snap["histograms"]["h"] == {"1": 1}


class TestSpans:
    def test_span_pairs_and_nests(self):
        sink = enable_memory()
        with obs.span("outer", key="k") as outer:
            with obs.span("inner"):
                pass
            outer.note(done=True)
        kinds = [(e["kind"], e["name"]) for e in sink.events]
        assert kinds == [
            ("span-start", "outer"),
            ("span-start", "inner"),
            ("span-end", "inner"),
            ("span-end", "outer"),
        ]
        start_outer, start_inner, end_inner, end_outer = sink.events
        assert start_inner["parent"] == start_outer["span"]
        assert "parent" not in start_outer
        assert end_outer["fields"] == {"key": "k", "done": True}
        assert end_inner["dur_s"] >= 0.0
        # Both spans share the state's trace id.
        assert len({e["trace"] for e in sink.events}) == 1

    def test_span_records_error_on_exception(self):
        sink = enable_memory()
        with pytest.raises(RuntimeError):
            with obs.span("boom"):
                raise RuntimeError("bad")
        end = sink.events[-1]
        assert end["kind"] == "span-end"
        assert "RuntimeError" in end["fields"]["error"]

    def test_start_span_handle_does_not_join_stack(self):
        sink = enable_memory()
        handle = obs.start_span("submit", key="j1")
        # A nested span opened while the handle is live must NOT parent
        # under it — handles live outside the local nesting stack.
        with obs.span("unrelated"):
            pass
        handle.end(outcome="completed")
        handle.end(outcome="twice")  # idempotent: ignored
        by_kind = [(e["kind"], e["name"]) for e in sink.events]
        assert by_kind.count(("span-end", "submit")) == 1
        unrelated = next(
            e for e in sink.events
            if e["kind"] == "span-start" and e["name"] == "unrelated"
        )
        assert "parent" not in unrelated
        end = next(
            e for e in sink.events
            if e["kind"] == "span-end" and e["name"] == "submit"
        )
        assert end["fields"] == {"key": "j1", "outcome": "completed"}

    def test_events_and_metrics_emit_records(self):
        sink = enable_memory()
        obs.event("job.retry", key="k", attempt=2)
        obs.counter("jobs", 2)
        obs.gauge("depth", 5.0)
        obs.histogram("lat", 0.25)
        kinds = [e["kind"] for e in sink.events]
        assert kinds == ["event", "metric", "metric", "metric"]
        reg = obs.get_registry()
        assert reg.counters == {"jobs": 2.0}
        assert reg.gauges == {"depth": 5.0}
        assert reg.histograms == {"lat": {-2: 1}}


class TestDisabledPath:
    def test_every_helper_is_a_noop(self):
        assert not obs.enabled()
        assert obs.get_registry() is None
        assert obs.current_context() is None
        obs.event("x")
        obs.counter("x")
        obs.gauge("x", 1.0)
        obs.histogram("x", 1.0)
        with obs.span("x") as sp:
            sp.note(a=1)
        handle = obs.start_span("y")
        handle.end()
        # The shared no-op span is a singleton: no per-call allocation.
        # (Bare calls on purpose — the disabled path is what's under test.)
        assert obs.span("a") is obs.span("b") is obs.start_span("c")  # repro: noqa[obs-span-pairing]

    def test_adopt_none_context_stays_dark(self):
        with obs.adopt(None):
            assert not obs.enabled()
        with obs.adopt({"trace": "t", "parent": None, "path": None}):
            assert not obs.enabled()


class TestSessionAndEnv:
    def test_session_enables_and_restores(self, tmp_path):
        path = tmp_path / "run.events.jsonl"
        with obs.session(path=path):
            assert obs.enabled()
            obs.event("inside")
        assert not obs.enabled()
        assert [e["name"] for e in load_events(path)] == ["inside"]

    def test_nested_session_is_passthrough(self, tmp_path):
        sink = enable_memory()
        with obs.session(path=tmp_path / "ignored.jsonl"):
            obs.event("kept")
        # The outer enable survives; the inner session wrote nowhere else.
        assert obs.enabled()
        assert not (tmp_path / "ignored.jsonl").exists()
        assert [e["name"] for e in sink.events] == ["kept"]

    def test_env_zero_vetoes_session(self, tmp_path, monkeypatch):
        monkeypatch.setenv(obs.ENV_VAR, "0")
        with obs.session(path=tmp_path / "vetoed.jsonl"):
            assert not obs.enabled()
        assert not (tmp_path / "vetoed.jsonl").exists()


class TestContextPropagation:
    def test_current_context_carries_sidecar_path(self, tmp_path):
        path = tmp_path / "c.events.jsonl"
        obs.enable(path=path)
        with obs.span("campaign"):
            ctx = obs.current_context()
        assert ctx["path"] == str(path)
        assert ctx["trace"]
        obs.disable()

    def test_parent_override_for_handles(self):
        enable_memory()
        handle = obs.start_span("engine.job")
        ctx = obs.current_context(parent=handle.span_id)
        assert ctx["parent"] == handle.span_id
        assert obs.current_context()["parent"] is None
        handle.end()

    def test_adopt_installs_supervisor_trace(self, tmp_path):
        path = tmp_path / "w.events.jsonl"
        ctx = {"trace": "feedc0de", "parent": "sup-1", "path": str(path)}
        with obs.adopt(ctx):
            assert obs.enabled()
            with obs.span("worker.attempt", key="j"):
                pass
        assert not obs.enabled()
        events = load_events(path)
        assert all(e["trace"] == "feedc0de" for e in events)
        start = events[0]
        assert start["name"] == "worker.attempt"
        assert start["parent"] == "sup-1"

    def test_adopt_overrides_inherited_state(self, tmp_path):
        # Fork-started workers inherit the supervisor's enabled state;
        # a real context must still win (fresh parent, fresh pid).
        local = enable_memory()
        path = tmp_path / "w.events.jsonl"
        ctx = {"trace": "aa", "parent": "sup-9", "path": str(path)}
        with obs.adopt(ctx):
            obs.event("from-worker")
        obs.event("from-supervisor")
        assert [e["name"] for e in load_events(path)] == ["from-worker"]
        assert [e["name"] for e in local.events] == ["from-supervisor"]


class TestSinksAndReplay:
    def test_events_path_for(self):
        assert events_path_for("runs/campaign.jsonl").name == (
            "campaign.events.jsonl"
        )

    def test_jsonl_sink_appends_flushed_lines(self, tmp_path):
        path = tmp_path / "s.jsonl"
        sink = JsonlSink(path)
        sink.emit({"a": 1})
        # Flushed before close: a crashed worker leaves its events.
        assert path.read_text() == '{"a": 1}\n'
        sink.emit({"b": 2})
        sink.close()
        sink.close()  # idempotent
        assert len(path.read_text().splitlines()) == 2

    def test_load_events_skips_torn_lines(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"kind": "event", "name": "ok"}\n{"kind": "eve')
        events = load_events(path)
        assert [e["name"] for e in events] == ["ok"]

    def test_percentile_nearest_rank(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        assert percentile(vals, 50) == 2.0
        assert percentile(vals, 95) == 4.0
        assert percentile([7.0], 50) == 7.0
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_rollup_reads_lifecycle_events(self):
        sink = enable_memory()
        with obs.span("engine.job", key="a"):
            pass
        obs.event("job.completed", key="a", elapsed_s=0.5, scheme="LRU")
        obs.event("job.retry", key="b", attempt=1)
        obs.event("job.retry", key="b", attempt=2)
        obs.event("job.quarantined", key="b")
        obs.event("fault.injected", site="worker", mode="crash", key="b")
        obs.counter("profile_cache.hit", 3)
        obs.counter("profile_cache.miss", 1)
        summary = rollup(sink.events)
        assert summary["jobs"] == {
            "completed": 1, "retried": 2, "quarantined": 1
        }
        assert summary["schemes"]["LRU"]["jobs"] == 1
        assert summary["retry_storms"] == [{"key": "b", "retries": 2}]
        assert summary["cache_hit_ratios"]["profile_cache"] == 0.75
        assert summary["faults"]["injected"] == 1
        assert summary["spans"]["engine.job"]["count"] == 1
        text = format_report(summary)
        assert "1 completed, 2 retried, 1 quarantined" in text
        assert "faults injected: 1" in text
        assert "b: 2 retries" in text

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["counter", "gauge", "hist"]),
                st.sampled_from(["a", "b", "c", "d"]),
                st.floats(
                    allow_nan=False,
                    allow_infinity=False,
                    min_value=-1e9,
                    max_value=1e9,
                ),
            ),
            max_size=60,
        )
    )
    def test_replay_equals_live_registry(self, ops):
        """Replaying an event log reproduces the live registry exactly."""
        obs.disable()
        sink = MemorySink()
        obs.enable(sinks=[sink])
        try:
            for metric, name, value in ops:
                if metric == "counter":
                    obs.counter(name, value)
                elif metric == "gauge":
                    obs.gauge(name, value)
                else:
                    obs.histogram(name, value)
            live = obs.get_registry().snapshot()
        finally:
            obs.disable()
        # Round-trip through JSON like the sidecar does.
        lines = [json.dumps(e, sort_keys=True) for e in sink.events]
        replayed = replay_metrics([json.loads(ln) for ln in lines])
        assert replayed.snapshot() == live


class TestTimingsWriter:
    def test_schema_and_units(self, tmp_path):
        path = tmp_path / "perf_x_timings.json"
        record_timings(
            path,
            "smoke",
            {"elapsed_s": 1.5, "speedup": (7.0, "x")},
            gate="speedup >= 5.0x",
        )
        data = json.loads(path.read_text())
        assert data["schema"] == SCHEMA
        entry = data["entries"]["smoke"]
        assert entry["gate"] == "speedup >= 5.0x"
        assert entry["metrics"]["elapsed_s"] == {"value": 1.5, "unit": "s"}
        assert entry["metrics"]["speedup"] == {"value": 7.0, "unit": "x"}

    def test_entries_merge_and_corrupt_files_replaced(self, tmp_path):
        path = tmp_path / "perf_x_timings.json"
        path.write_text("not json {")
        record_timings(path, "a", {"t_s": 1.0})
        record_timings(path, "b", {"t_s": 2.0})
        record_timings(path, "a", {"t_s": 3.0})  # re-run replaces entry
        data = json.loads(path.read_text())
        assert sorted(data["entries"]) == ["a", "b"]
        assert data["entries"]["a"]["metrics"]["t_s"]["value"] == 3.0

    def test_emits_perf_timing_events_when_traced(self, tmp_path):
        sink = enable_memory()
        record_timings(tmp_path / "t.json", "smoke", {"t_s": 1.0})
        assert [e["name"] for e in sink.events] == ["perf.timing"]
        assert sink.events[0]["fields"]["entry"] == "smoke"

    def test_infer_unit_conventions(self):
        assert infer_unit("us_per_job") == "us"
        assert infer_unit("mb_per_s") == "MB/s"
        assert infer_unit("streaming_s") == "s"
        assert infer_unit("seconds") == "s"
        assert infer_unit("mb") == "MB"
        assert infer_unit("speedup") == "x"
        assert infer_unit("supervised_ratio") == "x"
        assert infer_unit("count") == ""


class TestEnvBootstrap:
    def test_env_path_enables_jsonl(self, tmp_path, monkeypatch):
        path = tmp_path / "env.events.jsonl"
        monkeypatch.setenv(obs.ENV_VAR, str(path))
        from repro.obs import core

        core._bootstrap_env()
        try:
            assert obs.enabled()
            obs.event("booted")
        finally:
            obs.disable()
        assert [e["name"] for e in load_events(path)] == ["booted"]

    def test_env_off_values_stay_dark(self, monkeypatch):
        from repro.obs import core

        for value in (None, "0", ""):
            if value is None:
                monkeypatch.delenv(obs.ENV_VAR, raising=False)
            else:
                monkeypatch.setenv(obs.ENV_VAR, value)
            core._bootstrap_env()
            assert not obs.enabled()
