"""Unit tests for system configurations (Table 3)."""

import pytest

from repro.nuca import four_core_config, sixteen_core_config


class TestFourCore:
    def test_matches_table3(self):
        cfg = four_core_config()
        assert cfg.n_cores == 4
        assert cfg.geometry.dim == 5
        assert cfg.geometry.bank_bytes == 512 * 1024
        assert cfg.latency.bank_latency == 9
        assert cfg.latency.mem_latency == 120
        assert len(cfg.geometry.mcu_entries) == 1

    def test_capacity_per_core(self):
        cfg = four_core_config()
        per_core_mb = cfg.llc_bytes / cfg.n_cores / (1 << 20)
        assert per_core_mb == pytest.approx(3.125)  # ~3.1 MB/core


class TestSixteenCore:
    def test_matches_table3(self):
        cfg = sixteen_core_config()
        assert cfg.n_cores == 16
        assert cfg.geometry.dim == 9
        assert len(cfg.geometry.mcu_entries) == 4

    def test_capacity_per_core(self):
        cfg = sixteen_core_config()
        per_core_mb = cfg.llc_bytes / cfg.n_cores / (1 << 20)
        assert per_core_mb == pytest.approx(2.53, abs=0.05)  # ~2.5 MB/core


class TestConfigHelpers:
    def test_n_chunks(self):
        cfg = four_core_config()
        assert cfg.n_chunks == cfg.llc_bytes // cfg.chunk_bytes

    def test_latency_for_core_uses_geometry(self):
        cfg = four_core_config()
        lat = cfg.latency_for_core(0)
        assert lat.mem_hops == cfg.geometry.mem_hops(0)

    def test_describe_contains_key_rows(self):
        desc = four_core_config().describe()
        assert "L3 cache" in desc
        assert "512KB per bank" in desc["L3 cache"]

    def test_overrides(self):
        cfg = four_core_config(base_cpi=1.0)
        assert cfg.base_cpi == 1.0
