"""Unit + property tests for the Appendix-B combined-curve model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves import MissCurve, combine_miss_curves
from repro.curves.combine import combine_many


def curve(values, chunk=1024, instr=1000.0):
    values = np.asarray(values, dtype=float)
    return MissCurve(
        misses=values, chunk_bytes=chunk, accesses=float(values[0]), instructions=instr
    )


def exp_curve(rate0, decay, n, chunk=1024, instr=1000.0):
    vals = rate0 * np.power(decay, np.arange(n + 1))
    return curve(vals, chunk=chunk, instr=instr)


class TestBasics:
    def test_grid_mismatch_rejected(self):
        with pytest.raises(ValueError):
            combine_miss_curves(curve([1, 0], chunk=64), curve([1, 0], chunk=128))

    def test_combining_with_zero_curve_is_identity(self):
        a = exp_curve(100, 0.5, 10)
        z = MissCurve.zero(10, 1024, instructions=1000.0)
        c = combine_miss_curves(a, z)
        assert np.allclose(c.misses, a.misses, rtol=1e-6)

    def test_size_zero_is_sum_of_peaks(self):
        a = curve([10, 0, 0])
        b = curve([6, 6, 0])
        c = combine_miss_curves(a, b)
        assert c.misses[0] == pytest.approx(16)

    def test_combined_needs_more_space_than_either(self):
        """Sharing never beats giving one pool the whole cache for itself."""
        a = exp_curve(100, 0.6, 20)
        b = exp_curve(80, 0.7, 20)
        c = combine_miss_curves(a, b)
        for s in range(21):
            assert c.misses[s] >= a.misses[s] - 1e-6
            assert c.misses[s] >= b.misses[s] - 1e-6

    def test_non_increasing(self):
        a = exp_curve(100, 0.8, 30)
        b = curve([50] * 10 + [0] * 21)
        c = combine_miss_curves(a, b)
        assert np.all(np.diff(c.misses) <= 1e-9)

    def test_accesses_add(self):
        a = exp_curve(10, 0.5, 5)
        b = exp_curve(20, 0.5, 5)
        assert combine_miss_curves(a, b).accesses == a.accesses + b.accesses


class TestPaperProperties:
    """Properties the paper claims for the model (Appendix B)."""

    def test_commutative(self):
        a = exp_curve(100, 0.6, 25)
        b = curve([70] * 12 + [5] * 14)
        ab = combine_miss_curves(a, b)
        ba = combine_miss_curves(b, a)
        assert np.allclose(ab.misses, ba.misses, rtol=1e-9)

    def test_associative_up_to_interpolation(self):
        a = exp_curve(100, 0.7, 30)
        b = exp_curve(60, 0.8, 30)
        c = curve([40] * 10 + [2] * 21)
        left = combine_miss_curves(combine_miss_curves(a, b), c)
        right = combine_miss_curves(a, combine_miss_curves(b, c))
        scale = max(left.misses[0], 1.0)
        assert np.allclose(left.misses / scale, right.misses / scale, atol=0.05)

    def test_self_similar_recombination(self):
        """Splitting one pool in half and recombining ≈ the original.

        (Paper: 'insensitive to arbitrary divisions of a single pool into
        subpools', Fig 23b.)
        """
        full = exp_curve(100, 0.75, 40)
        half = exp_curve(50, 0.75, 40)  # same shape, half the flow...
        # A pool split in half has each subpool covering half the working
        # set: subpool curve = half the misses at half the size.
        sub_vals = np.interp(
            np.arange(41) * 2.0, np.arange(41), full.misses
        ) / 2.0
        sub = curve(sub_vals)
        recombined = combine_miss_curves(sub, sub)
        # Compare at a few sizes, loose tolerance (model is approximate).
        for s in (0, 5, 10, 20, 40):
            assert recombined.misses[s] == pytest.approx(
                full.misses[s], rel=0.25, abs=2.0
            )
        del half

    def test_infrequent_pool_changes_little(self):
        a = exp_curve(100, 0.6, 30)
        tiny = exp_curve(0.5, 0.6, 30)
        c = combine_miss_curves(a, tiny)
        assert np.all(np.abs(c.misses - a.misses) <= 0.06 * a.misses[0] + 1.0)

    def test_combine_many_matches_folding(self):
        cs = [exp_curve(100, 0.7, 20), exp_curve(50, 0.8, 20), exp_curve(25, 0.9, 20)]
        m = combine_many(cs)
        f = combine_miss_curves(combine_miss_curves(cs[0], cs[1]), cs[2])
        assert np.allclose(m.misses, f.misses)

    def test_combine_many_rejects_empty(self):
        with pytest.raises(ValueError):
            combine_many([])


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(0, 100), min_size=2, max_size=20),
        st.lists(st.floats(0, 100), min_size=2, max_size=20),
    )
    def test_result_bounded_and_monotone(self, va, vb):
        n = max(len(va), len(vb)) - 1
        a = curve(va).extended(n)
        b = curve(vb).extended(n)
        c = combine_miss_curves(a, b)
        assert np.all(np.diff(c.misses) <= 1e-6)
        assert c.misses[0] == pytest.approx(a.misses[0] + b.misses[0], rel=1e-6)
        assert np.all(c.misses >= -1e-9)
