"""Unit tests for replacement policies and the event-driven cache."""

import numpy as np
import pytest

from repro.nuca import CacheSim
from repro.replacement import BRRIP, DRRIP, LRU, SHiP, SRRIP, PoolAwareDRRIP


def lru(n_sets, n_ways):
    return LRU(n_sets, n_ways)


class TestCacheSim:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            CacheSim(size_bytes=100, ways=8, policy_factory=lru)

    def test_cold_then_hit(self):
        cache = CacheSim(size_bytes=8 * 64, ways=8, policy_factory=lru)
        assert cache.access(5) is False
        assert cache.access(5) is True
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_eviction_order(self):
        # Fully associative 4-line cache.
        cache = CacheSim(size_bytes=4 * 64, ways=4, policy_factory=lru)
        for addr in [0, 4, 8, 12]:
            cache.access(addr * cache.n_sets)  # force same set
        # All map to set 0 (multiples of n_sets=1... n_sets=1 here).
        assert cache.n_sets == 1
        cache.access(16)  # evicts 0 (LRU)
        assert cache.access(4 * cache.n_sets) is True  # 4 still resident
        assert cache.access(0) is False  # 0 was evicted

    def test_run_returns_stats(self):
        cache = CacheSim(size_bytes=64 * 64, ways=8, policy_factory=lru)
        lines = np.array([1, 2, 3, 1, 2, 3], dtype=np.int64)
        stats = cache.run(lines)
        assert stats.accesses == 6
        assert stats.hits == 3

    def test_miss_rate_property(self):
        cache = CacheSim(size_bytes=64 * 64, ways=8, policy_factory=lru)
        cache.run(np.array([1, 1], dtype=np.int64))
        assert cache.stats.miss_rate == 0.5

    def test_empty_stats(self):
        cache = CacheSim(size_bytes=64 * 64, ways=8, policy_factory=lru)
        assert cache.stats.miss_rate == 0.0


class TestLRUMatchesMattson:
    def test_lru_miss_rate_close_to_stack_distance_model(self):
        """High-associativity LRU ≈ the analytical Mattson curve."""
        from repro.curves import StackDistanceProfiler

        rng = np.random.default_rng(42)
        # Zipf-ish reuse over 4096 lines.
        lines = (rng.zipf(1.3, size=30000) % 4096).astype(np.int64)
        size_lines = 1024
        cache = CacheSim(size_bytes=size_lines * 64, ways=16, policy_factory=lru)
        stats = cache.run(lines)

        prof = StackDistanceProfiler(chunk_bytes=64 * 64, n_chunks=128)
        curve = prof.profile_combined(lines, instructions=len(lines) * 10)[0]
        predicted = curve.misses_at(size_lines * 64)
        assert stats.misses == pytest.approx(predicted, rel=0.15)


class TestRRIP:
    def run_policy(self, factory, lines, size_lines=256, ways=16):
        cache = CacheSim(size_bytes=size_lines * 64, ways=ways, policy_factory=factory)
        return cache.run(np.asarray(lines, dtype=np.int64))

    def scan_trace(self, hot=64, scan=4096, reps=20, seed=0):
        """Hot set + big streaming scan: thrash-resistance stress test."""
        rng = np.random.default_rng(seed)
        chunks = []
        scan_base = 1 << 20
        for r in range(reps):
            chunks.append(rng.integers(0, hot, size=256))
            chunks.append(np.arange(scan) + scan_base)
        return np.concatenate(chunks)

    def test_srrip_promotes_on_hit(self):
        stats = self.run_policy(
            lambda s, w: SRRIP(s, w), [1, 1, 1, 1], size_lines=8, ways=8
        )
        assert stats.hits == 3

    def test_brrip_resists_scans_better_than_lru(self):
        trace = self.scan_trace()
        lru_stats = self.run_policy(lru, trace)
        brrip_stats = self.run_policy(lambda s, w: BRRIP(s, w), trace)
        assert brrip_stats.misses < lru_stats.misses

    def test_drrip_close_to_best_of_both(self):
        trace = self.scan_trace()
        lru_m = self.run_policy(lru, trace).misses
        brrip_m = self.run_policy(lambda s, w: BRRIP(s, w), trace).misses
        drrip_m = self.run_policy(lambda s, w: DRRIP(s, w), trace).misses
        assert drrip_m <= max(lru_m, brrip_m)
        assert drrip_m <= 1.3 * min(lru_m, brrip_m)

    def test_friendly_trace_drrip_no_worse_than_srrip(self):
        rng = np.random.default_rng(1)
        trace = rng.integers(0, 128, size=8000)
        srrip_m = self.run_policy(lambda s, w: SRRIP(s, w), trace).misses
        drrip_m = self.run_policy(lambda s, w: DRRIP(s, w), trace).misses
        assert drrip_m <= 1.25 * srrip_m


class TestSHiP:
    def test_dead_signature_learned(self):
        """A never-reused pool should stop polluting the cache."""
        rng = np.random.default_rng(2)
        hot = rng.integers(0, 64, size=4000)
        stream = np.arange(4000) + (1 << 20)
        lines = np.empty(8000, dtype=np.int64)
        lines[0::2] = hot
        lines[1::2] = stream
        pools = np.empty(8000, dtype=np.int64)
        pools[0::2] = 0
        pools[1::2] = 1

        ship_cache = CacheSim(size_bytes=128 * 64, ways=16,
                              policy_factory=lambda s, w: SHiP(s, w))
        lru_cache = CacheSim(size_bytes=128 * 64, ways=16, policy_factory=lru)
        ship_stats = ship_cache.run(lines, pools)
        lru_stats = lru_cache.run(lines, pools)
        assert ship_stats.misses < lru_stats.misses


class TestPoolAwareDRRIP:
    def test_runs_and_is_sane(self):
        rng = np.random.default_rng(3)
        hot = rng.integers(0, 64, size=3000)
        stream = np.arange(3000) + (1 << 20)
        lines = np.empty(6000, dtype=np.int64)
        lines[0::2] = hot
        lines[1::2] = stream
        pools = np.empty(6000, dtype=np.int64)
        pools[0::2] = 0
        pools[1::2] = 1
        cache = CacheSim(
            size_bytes=128 * 64,
            ways=16,
            policy_factory=lambda s, w: PoolAwareDRRIP(s, w, n_pools=2),
        )
        stats = cache.run(lines, pools)
        assert 0 < stats.misses < stats.accesses
