"""Unit tests for greedy + trading placement."""

import pytest

from repro.nuca import MeshGeometry
from repro.schemes import greedy_placement, trading_placement

BANK = 512 * 1024


@pytest.fixture
def geo():
    return MeshGeometry(dim=5, n_cores=4, bank_bytes=BANK)


class TestGreedy:
    def test_capacity_satisfied(self, geo):
        demands = {0: (0, 3 * BANK, 1000.0)}
        p = greedy_placement(geo, demands)[0]
        assert p.total_bytes == 3 * BANK

    def test_closest_banks_first(self, geo):
        demands = {0: (0, 2 * BANK, 1000.0)}
        p = greedy_placement(geo, demands)[0]
        hops = p.avg_hops(geo.distances(0))
        assert hops == pytest.approx(geo.reach_avg_hops(0, 2 * BANK))

    def test_intense_vc_gets_priority(self, geo):
        # Small hot VC vs large cold VC, same core.
        demands = {
            0: (0, BANK, 100.0),  # intensity 100/BANK
            1: (0, 4 * BANK, 100.0),  # intensity 25/BANK
        }
        p = greedy_placement(geo, demands)
        d = geo.distances(0)
        assert p[0].avg_hops(d) < p[1].avg_hops(d)

    def test_banks_not_oversubscribed(self, geo):
        demands = {i: (i % 4, 8 * BANK, 100.0) for i in range(4)}
        ps = greedy_placement(geo, demands)
        usage = {}
        for p in ps.values():
            for bank, b in p.bank_bytes.items():
                usage[bank] = usage.get(bank, 0) + b
        assert all(v <= BANK + 1e-6 for v in usage.values())

    def test_zero_size_vc_empty(self, geo):
        ps = greedy_placement(geo, {0: (0, 0.0, 10.0)})
        assert ps[0].total_bytes == 0


class TestTrading:
    def total_movement(self, geo, demands, placements):
        total = 0.0
        for vc, (core, size, acc) in demands.items():
            if size <= 0:
                continue
            intensity = acc / size
            d = geo.distances(core)
            for bank, b in placements[vc].bank_bytes.items():
                total += intensity * d[bank] * b
        return total

    def test_never_worse_than_greedy(self, geo):
        demands = {
            0: (0, 3 * BANK, 500.0),
            1: (2, 3 * BANK, 2000.0),
            2: (1, 2 * BANK, 100.0),
        }
        g = greedy_placement(geo, demands)
        t = trading_placement(geo, demands)
        assert self.total_movement(geo, demands, t) <= self.total_movement(
            geo, demands, g
        ) + 1e-6

    def test_capacity_preserved(self, geo):
        demands = {0: (0, 3 * BANK, 500.0), 1: (2, 5 * BANK, 900.0)}
        t = trading_placement(geo, demands)
        assert t[0].total_bytes == pytest.approx(3 * BANK)
        assert t[1].total_bytes == pytest.approx(5 * BANK)

    def test_single_vc_unchanged(self, geo):
        demands = {0: (0, 2 * BANK, 100.0)}
        t = trading_placement(geo, demands)
        assert t[0].avg_hops(geo.distances(0)) == pytest.approx(
            geo.reach_avg_hops(0, 2 * BANK)
        )

    def test_contended_cores_split_territory(self, geo):
        """Two cores with hot VCs should each keep their nearby banks."""
        demands = {0: (0, 6 * BANK, 5000.0), 1: (2, 6 * BANK, 5000.0)}
        t = trading_placement(geo, demands)
        h0 = t[0].avg_hops(geo.distances(0))
        h1 = t[1].avg_hops(geo.distances(2))
        # Each VC should sit far closer to its own core than S-NUCA would.
        assert h0 < geo.snuca_avg_hops(0)
        assert h1 < geo.snuca_avg_hops(2)
