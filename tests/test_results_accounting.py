"""Tests for result accounting, caches, and bookkeeping edge cases."""

import numpy as np
import pytest

from repro.curves import MissCurve
from repro.nuca import four_core_config
from repro.nuca.energy import EnergyBreakdown
from repro.schemes import JigsawScheme, SNUCAScheme, VCSpec
from repro.schemes.base import IntervalStats, SchemeResult, VCAllocation
from repro.sim.profiling import clear_cache, profile_vcs
from repro.workloads import build_workload

CHUNK = 64 * 1024


def curve_from(values, accesses=None, instr=1e6):
    values = np.asarray(values, dtype=float)
    return MissCurve(
        misses=values,
        chunk_bytes=CHUNK,
        accesses=float(values[0]) if accesses is None else accesses,
        instructions=instr,
    )


class TestIntervalStats:
    def test_accesses_property(self):
        s = IntervalStats(instructions=1.0, hits=10, misses=5, bypasses=3)
        assert s.accesses == 18


class TestSchemeResult:
    def test_add_accumulates(self):
        r = SchemeResult(name="x", base_cpi=0.5)
        r.add(
            IntervalStats(
                instructions=1000.0,
                hits=10,
                misses=2,
                stall_cycles=300.0,
                energy=EnergyBreakdown(1, 2, 3),
            )
        )
        r.add(
            IntervalStats(
                instructions=1000.0,
                hits=5,
                misses=1,
                stall_cycles=200.0,
                energy=EnergyBreakdown(1, 1, 1),
            )
        )
        assert r.instructions == 2000.0
        assert r.cycles == 2000.0 * 0.5 + 500.0
        assert r.energy.total == 9.0
        assert len(r.history) == 2

    def test_ipc_and_stall_cpi(self):
        r = SchemeResult(name="x", base_cpi=1.0)
        r.add(IntervalStats(instructions=1000.0, stall_cycles=1000.0))
        assert r.ipc == pytest.approx(0.5)
        assert r.data_stall_cpi == pytest.approx(1.0)

    def test_apki_breakdown(self):
        r = SchemeResult(name="x", base_cpi=0.5)
        r.add(
            IntervalStats(instructions=1000.0, hits=8, misses=1, bypasses=1)
        )
        b = r.apki_breakdown()
        assert b == {"hits": 8.0, "misses": 1.0, "bypasses": 1.0}


class TestAccountingEdges:
    def test_missing_allocation_treated_as_empty(self):
        """A VC with monitor data but no allocation gets size 0."""
        cfg = four_core_config()
        s = JigsawScheme(cfg, [VCSpec(0, "p"), VCSpec(1, "q")])
        c = curve_from([100.0, 0.0], accesses=100)
        stats = s.account(
            {0: VCAllocation(size_bytes=CHUNK, avg_hops=1.0)},
            {0: c, 1: c},
            instructions=1e6,
        )
        # VC 1 is unallocated but still accounted (all its accesses).
        assert stats.vc_sizes[1] == 0.0
        assert stats.accesses == 200.0

    def test_misses_clamped_to_accesses(self):
        cfg = four_core_config()
        s = SNUCAScheme(cfg, [VCSpec(0, "p")], "lru")
        # Pathological curve: more misses than accesses.
        c = curve_from([500.0, 500.0], accesses=100)
        stats = s.step({0: c}, {0: c}, 1e6)
        assert stats.misses <= 100.0 + 1e-9

    def test_empty_interval(self):
        cfg = four_core_config()
        s = SNUCAScheme(cfg, [VCSpec(0, "p")], "lru")
        zero = MissCurve.zero(4, CHUNK, instructions=1e6)
        stats = s.step({0: zero}, {0: zero}, 1e6)
        assert stats.accesses == 0
        assert stats.energy.total == 0


class TestProfilingCacheManagement:
    def test_clear_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE_CACHE", str(tmp_path))
        w = build_workload("hull", scale="train", seed=0)
        mapping = {rid: 0 for rid in w.region_names}
        profile_vcs(
            w.trace, mapping, chunk_bytes=CHUNK, n_chunks=32,
            n_intervals=2, sample_shift=3,
        )
        assert len(list(tmp_path.glob("*.npz"))) == 1
        assert clear_cache() == 1
        assert len(list(tmp_path.glob("*.npz"))) == 0
        assert clear_cache() == 0  # idempotent

    def test_corrupt_cache_entry_recomputed(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE_CACHE", str(tmp_path))
        w = build_workload("hull", scale="train", seed=0)
        mapping = {rid: 0 for rid in w.region_names}
        kwargs = dict(
            chunk_bytes=CHUNK, n_chunks=32, n_intervals=2, sample_shift=3
        )
        first = profile_vcs(w.trace, mapping, **kwargs)
        (entry,) = tmp_path.glob("*.npz")
        entry.write_bytes(b"garbage")
        second = profile_vcs(w.trace, mapping, **kwargs)
        for vc in first:
            for a, b in zip(first[vc], second[vc]):
                assert np.allclose(a.misses, b.misses)


class TestMixEnergyAttribution:
    def test_per_app_energy_sums_to_joint_total(self):
        from repro.sim import simulate_mix

        cfg = four_core_config()
        apps = [
            build_workload("hull", scale="train", seed=0),
            build_workload("bzip2", scale="train", seed=1),
        ]
        res = simulate_mix(apps, cfg, JigsawScheme, n_intervals=4)
        # The mix's energy is exactly the sum of per-app attributions.
        total = res.energy.total
        assert total > 0
        per_app = sum(r.energy.total for r in res.per_app)
        assert per_app == pytest.approx(total, rel=1e-9)
