"""Unit tests for the Fenwick tree."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.curves import FenwickTree


class TestBasics:
    def test_empty_tree_total(self):
        tree = FenwickTree(0)
        assert tree.total() == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            FenwickTree(-1)

    def test_single_element(self):
        tree = FenwickTree(1)
        tree.add(0, 5)
        assert tree.prefix_sum(0) == 5
        assert tree.total() == 5

    def test_point_updates_accumulate(self):
        tree = FenwickTree(4)
        tree.add(2, 3)
        tree.add(2, 4)
        assert tree.range_sum(2, 2) == 7

    def test_out_of_range_add(self):
        tree = FenwickTree(4)
        with pytest.raises(IndexError):
            tree.add(4, 1)
        with pytest.raises(IndexError):
            tree.add(-1, 1)

    def test_out_of_range_query(self):
        tree = FenwickTree(4)
        with pytest.raises(IndexError):
            tree.prefix_sum(4)

    def test_range_sum_empty_range(self):
        tree = FenwickTree(4)
        tree.add(1, 1)
        assert tree.range_sum(3, 2) == 0

    def test_size_property(self):
        assert FenwickTree(7).size == 7


class TestAgainstReference:
    @given(
        st.lists(
            st.tuples(st.integers(0, 63), st.integers(-5, 5)),
            min_size=0,
            max_size=200,
        )
    )
    def test_matches_numpy_prefix_sums(self, updates):
        tree = FenwickTree(64)
        ref = np.zeros(64, dtype=np.int64)
        for idx, delta in updates:
            tree.add(idx, delta)
            ref[idx] += delta
        for q in (0, 1, 31, 62, 63):
            assert tree.prefix_sum(q) == ref[: q + 1].sum()

    @given(st.lists(st.integers(0, 31), min_size=1, max_size=100))
    def test_range_sums(self, indices):
        tree = FenwickTree(32)
        ref = np.zeros(32, dtype=np.int64)
        for idx in indices:
            tree.add(idx, 1)
            ref[idx] += 1
        for lo, hi in [(0, 31), (5, 10), (10, 10), (0, 0)]:
            assert tree.range_sum(lo, hi) == ref[lo : hi + 1].sum()
