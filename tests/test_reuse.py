"""Unit tests for stack-distance profiling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves import (
    StackDistanceProfiler,
    miss_curve_from_distances,
    stack_distances,
    stack_distances_reference,
)
from repro.curves.reuse import COLD


def brute_force_distances(lines):
    """O(n^2) reference: distinct lines since the previous access."""
    out = []
    last = {}
    for i, addr in enumerate(lines):
        if addr in last:
            out.append(len(set(lines[last[addr] + 1 : i])))
        else:
            out.append(COLD)
        last[addr] = i
    return np.array(out, dtype=np.int64)


class TestStackDistances:
    def test_empty_trace(self):
        assert len(stack_distances(np.array([], dtype=np.int64))) == 0

    def test_all_cold(self):
        dist = stack_distances(np.array([1, 2, 3, 4]))
        assert np.all(dist == COLD)

    def test_immediate_reuse_is_zero(self):
        dist = stack_distances(np.array([7, 7]))
        assert dist[1] == 0

    def test_classic_example(self):
        # a b c a : distance of the second 'a' is 2 (b, c touched between).
        dist = stack_distances(np.array([1, 2, 3, 1]))
        assert dist[3] == 2

    def test_repeated_intermediate_counts_once(self):
        # a b b b a : only one distinct line between the two a's.
        dist = stack_distances(np.array([1, 2, 2, 2, 1]))
        assert dist[4] == 1

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 12), min_size=0, max_size=120))
    def test_matches_brute_force(self, lines):
        got = stack_distances(np.array(lines, dtype=np.int64))
        want = brute_force_distances(lines)
        assert np.array_equal(got, want)


class TestVectorizedEngineVsReference:
    """The vectorized engine must be bit-identical to the Fenwick oracle."""

    @settings(max_examples=120, deadline=None)
    @given(
        st.lists(st.integers(0, 40), min_size=0, max_size=400),
        st.sampled_from([0, 1, 10**9, 2**40]),
    )
    def test_identical_distance_arrays(self, lines, offset):
        arr = np.array(lines, dtype=np.int64) + offset
        assert np.array_equal(
            stack_distances(arr), stack_distances_reference(arr)
        )

    def test_single_element(self):
        got = stack_distances(np.array([7]))
        assert np.array_equal(got, stack_distances_reference(np.array([7])))
        assert got[0] == COLD

    def test_all_duplicates(self):
        arr = np.full(257, 3, dtype=np.int64)
        assert np.array_equal(
            stack_distances(arr), stack_distances_reference(arr)
        )

    def test_all_cold(self):
        arr = np.arange(1000, dtype=np.int64) * 9973
        got = stack_distances(arr)
        assert np.array_equal(got, stack_distances_reference(arr))
        assert np.all(got == COLD)

    def test_larger_than_chunk_boundaries(self):
        # Crosses the engine's internal chunking (powers of two +/- 1).
        rng = np.random.default_rng(11)
        for n in (4095, 4096, 4097, 70000):
            arr = rng.integers(0, 500, size=n)
            assert np.array_equal(
                stack_distances(arr), stack_distances_reference(arr)
            )

    @settings(max_examples=40, deadline=None)
    @given(
        lines=st.lists(st.integers(0, 31), min_size=1, max_size=300),
        regions=st.lists(st.integers(0, 4), min_size=1, max_size=300),
        n_intervals=st.integers(1, 4),
        sample_shift=st.sampled_from([0, 3]),
    )
    def test_profiler_curves_match_reference_engine(
        self, lines, regions, n_intervals, sample_shift
    ):
        """Full MissCurve equality at sample_shift 0 and 3.

        The reference computation mirrors the pre-vectorization profiler:
        per-region re-slicing with Fenwick distances.
        """
        n = min(len(lines), len(regions))
        # Spread line values so the sampling hash selects a non-trivial
        # subset.
        lines = np.array(lines[:n], dtype=np.int64) * 977
        regions = np.array(regions[:n], dtype=np.int32)
        prof = StackDistanceProfiler(
            chunk_bytes=1024, n_chunks=6, sample_shift=sample_shift
        )
        got = prof.profile(lines, regions, 1e4, n_intervals=n_intervals)
        scale = float(1 << sample_shift)
        bounds = np.linspace(0, n, n_intervals + 1).astype(np.int64)
        assert sorted(got) == sorted(np.unique(regions).tolist())
        for rid in np.unique(regions).tolist():
            idx = np.nonzero(regions == rid)[0]
            r_lines = lines[idx]
            keep = prof._sample_mask(r_lines)
            kept_idx = idx[keep]
            dist = stack_distances_reference(r_lines[keep])
            assert len(got[rid]) == n_intervals
            for t in range(n_intervals):
                lo, hi = bounds[t], bounds[t + 1]
                window = (kept_idx >= lo) & (kept_idx < hi)
                n_acc = int(np.count_nonzero((idx >= lo) & (idx < hi)))
                want = miss_curve_from_distances(
                    dist[window],
                    chunk_bytes=1024,
                    n_chunks=6,
                    instructions=1e4 / n_intervals,
                    scale=scale,
                    distance_scale=scale,
                )
                curve = got[rid][t]
                assert curve.accesses == float(n_acc)
                if want.accesses > 0:
                    expect = want.misses * (n_acc / want.accesses)
                else:
                    expect = np.full(7, float(n_acc))
                assert np.array_equal(curve.misses, expect)


class TestMissCurveFromDistances:
    def test_cold_misses_at_every_size(self):
        dist = np.array([COLD, COLD], dtype=np.int64)
        curve = miss_curve_from_distances(
            dist, chunk_bytes=128, n_chunks=4, instructions=1000.0
        )
        assert np.all(curve.misses == 2)

    def test_zero_distance_hits_beyond_size_zero(self):
        dist = np.array([0], dtype=np.int64)
        curve = miss_curve_from_distances(
            dist, chunk_bytes=128, n_chunks=4, instructions=1000.0
        )
        assert curve.misses[0] == 1  # size 0 always misses
        assert curve.misses[1] == 0

    def test_boundary_distance(self):
        # distance exactly lines_per_chunk misses at 1 chunk, hits at 2.
        dist = np.array([2], dtype=np.int64)  # 2 lines = 1 chunk of 128B
        curve = miss_curve_from_distances(
            dist, chunk_bytes=128, n_chunks=4, instructions=1000.0, line_bytes=64
        )
        assert curve.misses[1] == 1
        assert curve.misses[2] == 0

    def test_scale_applied(self):
        dist = np.array([COLD], dtype=np.int64)
        curve = miss_curve_from_distances(
            dist, chunk_bytes=128, n_chunks=2, instructions=1.0, scale=16.0
        )
        assert curve.misses[0] == 16
        assert curve.accesses == 16

    def test_monotone_non_increasing(self):
        rng = np.random.default_rng(0)
        dist = rng.integers(0, 100, size=500)
        curve = miss_curve_from_distances(
            dist, chunk_bytes=256, n_chunks=30, instructions=1000.0
        )
        assert np.all(np.diff(curve.misses) <= 0)


class TestProfiler:
    def make_trace(self, n=4000, ws_lines=100, seed=1):
        rng = np.random.default_rng(seed)
        return rng.integers(0, ws_lines, size=n).astype(np.int64)

    def test_lru_semantics_working_set_fits(self):
        """A trace over W distinct lines has ~zero misses beyond W lines."""
        lines = self.make_trace(ws_lines=64)
        prof = StackDistanceProfiler(chunk_bytes=64 * 64, n_chunks=4)
        curve = prof.profile_combined(lines, instructions=len(lines) * 10)[0]
        # At >= 1 chunk (64 lines) everything but cold misses hits.
        assert curve.misses[1] == pytest.approx(64, abs=1)
        assert curve.misses[0] == len(lines)

    def test_regions_profiled_independently(self):
        lines = np.array([0, 100, 0, 100, 0, 100], dtype=np.int64)
        regions = np.array([0, 1, 0, 1, 0, 1], dtype=np.int32)
        prof = StackDistanceProfiler(chunk_bytes=64, n_chunks=4)
        out = prof.profile(lines, regions, instructions=600.0)
        # Each region re-touches its single line: distance 0, so one cold
        # miss each at any non-zero size.
        assert out[0][0].misses[1] == 1
        assert out[1][0].misses[1] == 1

    def test_interval_split_preserves_access_totals(self):
        lines = self.make_trace()
        regions = np.zeros(len(lines), dtype=np.int32)
        prof = StackDistanceProfiler(chunk_bytes=4096, n_chunks=8)
        out = prof.profile(lines, regions, instructions=40000.0, n_intervals=4)
        total = sum(c.accesses for c in out[0])
        assert total == len(lines)

    def test_sampling_approximates_exact(self):
        lines = self.make_trace(n=20000, ws_lines=2000, seed=3)
        exact = StackDistanceProfiler(chunk_bytes=8192, n_chunks=32)
        sampled = StackDistanceProfiler(chunk_bytes=8192, n_chunks=32, sample_shift=2)
        c_exact = exact.profile_combined(lines, instructions=1e5)[0]
        c_sample = sampled.profile_combined(lines, instructions=1e5)[0]
        # Within 20% at mid sizes (set sampling is unbiased).
        mid = 8
        assert c_sample.misses[mid] == pytest.approx(c_exact.misses[mid], rel=0.25)

    def test_mismatched_lengths_rejected(self):
        prof = StackDistanceProfiler(chunk_bytes=64, n_chunks=2)
        with pytest.raises(ValueError):
            prof.profile(np.zeros(3), np.zeros(2), instructions=1.0)
