"""Differential tests: batched combine engine vs the serial oracles.

The batched kernels replay the serial loops' IEEE expressions
elementwise across the batch axis, so every comparison here is *exact*
(``np.array_equal`` / ``==``), not approximate — the same contract the
stack-distance and partitioning engines are held to.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves import MissCurve
from repro.curves.combine import (
    combine_many,
    combine_miss_curves,
    combine_miss_curves_batch,
    combine_rate_rows,
    shared_cache_misses,
    shared_cache_misses_reference,
)

CHUNK = 1024


def curve(values, instr=1000.0, accesses=None):
    values = np.asarray(values, dtype=float)
    return MissCurve(
        misses=values,
        chunk_bytes=CHUNK,
        accesses=float(values[0]) if accesses is None else accesses,
        instructions=instr,
    )


curve_values = st.lists(
    st.floats(0, 1000, allow_nan=False), min_size=2, max_size=24
)
instr_values = st.floats(1e-6, 1e7, allow_nan=False)


def assert_curves_identical(got: MissCurve, want: MissCurve):
    assert np.array_equal(got.misses, want.misses)
    assert got.chunk_bytes == want.chunk_bytes
    assert got.accesses == want.accesses
    assert got.instructions == want.instructions


class TestCombineBatchVsOracle:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(curve_values, instr_values, curve_values, instr_values),
            min_size=1,
            max_size=6,
        )
    )
    def test_batch_bit_identical_to_serial(self, specs):
        pairs = [
            (curve(va, instr=ia), curve(vb, instr=ib))
            for va, ia, vb, ib in specs
        ]
        got = combine_miss_curves_batch(pairs)
        for (a, b), g in zip(pairs, got):
            assert_curves_identical(g, combine_miss_curves(a, b))

    def test_ragged_grids_grouped_per_pair(self):
        """Pairs with different grid lengths batch by group, exactly."""
        pairs = [
            (curve([100, 10, 0]), curve([50] * 8)),
            (curve([7, 3]), curve([9, 1])),
            (curve([100] * 12), curve([60, 20, 5])),
        ]
        got = combine_miss_curves_batch(pairs)
        for (a, b), g in zip(pairs, got):
            assert_curves_identical(g, combine_miss_curves(a, b))

    def test_zero_flow_lanes_freeze(self):
        """All-zero pairs (flow stops immediately) stay bit-identical."""
        z = MissCurve.zero(6, CHUNK, instructions=1000.0)
        live = curve(100 * np.power(0.5, np.arange(7)))
        pairs = [(z, z), (live, z), (z, live)]
        got = combine_miss_curves_batch(pairs)
        for (a, b), g in zip(pairs, got):
            assert_curves_identical(g, combine_miss_curves(a, b))

    def test_empty_batch(self):
        assert combine_miss_curves_batch([]) == []

    def test_chunk_mismatch_rejected(self):
        a = curve([1, 0])
        b = MissCurve(np.array([1.0, 0.0]), 2 * CHUNK, 1.0, 1000.0)
        with pytest.raises(ValueError):
            combine_miss_curves_batch([(a, b)])

    def test_rate_rows_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            combine_rate_rows(np.zeros((2, 5)), np.zeros((3, 5)))


class TestSharedCacheMisses:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(curve_values, instr_values), min_size=1, max_size=7
        ),
        st.floats(0, 64, allow_nan=False),
    )
    def test_vectorized_bit_identical_to_reference(self, specs, size_chunks):
        curves = [curve(v, instr=i) for v, i in specs]
        size = size_chunks * CHUNK
        got = shared_cache_misses(curves, size)
        want = shared_cache_misses_reference(curves, size)
        assert got == want

    def test_empty(self):
        assert shared_cache_misses([], 1024.0) == []
        assert shared_cache_misses_reference([], 1024.0) == []

    def test_chunk_mismatch_rejected(self):
        a = curve([1, 0])
        b = MissCurve(np.array([1.0, 0.0]), 2 * CHUNK, 1.0, 1000.0)
        with pytest.raises(ValueError):
            shared_cache_misses([a, b], 4096.0)

    def test_zero_flow_stops_early(self):
        """Once every stream stops missing, heads freeze in both engines."""
        curves = [curve([10, 0, 0, 0, 0]), curve([4, 0, 0, 0, 0])]
        got = shared_cache_misses(curves, 100 * CHUNK)
        want = shared_cache_misses_reference(curves, 100 * CHUNK)
        assert got == want


class TestCombineManyTree:
    def test_tree_fold_four_curves(self):
        cs = [
            curve(100 * np.power(d, np.arange(13)))
            for d in (0.5, 0.6, 0.7, 0.8)
        ]
        want = combine_miss_curves(
            combine_miss_curves(cs[0], cs[1]),
            combine_miss_curves(cs[2], cs[3]),
        )
        assert_curves_identical(combine_many(cs), want)

    def test_odd_leftover_carried(self):
        cs = [curve(100 * np.power(d, np.arange(9))) for d in (0.5, 0.7, 0.9)]
        want = combine_miss_curves(combine_miss_curves(cs[0], cs[1]), cs[2])
        assert_curves_identical(combine_many(cs), want)

    def test_single_curve_identity(self):
        c = curve([5, 1, 0])
        assert combine_many([c]) is c

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            combine_many([])
