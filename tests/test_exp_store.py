"""Unit tests for repro.exp jobs, stores, and the generic engine."""

import json

import pytest

from repro.exp import Job, MemoryStore, ResultStore, run_jobs
from repro.exp.campaign import Campaign


class TestJob:
    def test_key_is_stable_and_field_sensitive(self):
        a = Job(app="MIS", scheme="LRU")
        b = Job(app="MIS", scheme="LRU")
        c = Job(app="MIS", scheme="DRRIP")
        assert a.key() == b.key()
        assert a.key() != c.key()

    def test_roundtrip_through_dict(self):
        job = Job(
            app="a+b",
            scheme="Whirlpool",
            kind="mix",
            mix_seeds=(3, 7),
            axis="bank_latency",
            value=12.0,
        )
        clone = Job.from_dict(json.loads(json.dumps(job.to_dict())))
        assert clone == job
        assert clone.key() == job.key()

    def test_from_dict_ignores_unknown_keys(self):
        job = Job.from_dict({"app": "MIS", "scheme": "LRU", "future_field": 1})
        assert job.app == "MIS"

    def test_apps_splits_mixes(self):
        assert Job(app="a+b", scheme="Jigsaw", kind="mix").apps() == ["a", "b"]
        assert Job(app="a+b", scheme="Jigsaw").apps() == ["a+b"]


class TestCampaign:
    def test_expansion_is_full_product(self):
        c = Campaign(
            apps=["x", "y"],
            schemes=["LRU", "Jigsaw"],
            configs=["4core", "16core"],
            seeds=[0, 1],
            classifiers=["single"],
        )
        jobs = c.jobs()
        assert len(jobs) == 2 * 2 * 2 * 2
        assert len({j.key() for j in jobs}) == len(jobs)

    def test_axis_crosses_values(self):
        c = Campaign(
            apps=["x"], schemes=["LRU"], axis="bank_latency", values=[6, 9, 12]
        )
        jobs = c.jobs()
        assert len(jobs) == 3
        assert {j.value for j in jobs} == {6, 9, 12}
        assert all(j.axis == "bank_latency" for j in jobs)

    def test_mix_entries_become_mix_jobs(self):
        c = Campaign(apps=["a+b"], schemes=["Jigsaw"])
        assert c.jobs()[0].kind == "mix"

    def test_json_roundtrip(self, tmp_path):
        c = Campaign(name="demo", apps=["x"], schemes=["LRU"], scale="train")
        path = tmp_path / "spec.json"
        c.save(path)
        assert Campaign.from_json_file(path) == c


class TestResultStore:
    def test_append_and_reload(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.add("k1", {"cycles": 1.0}, job=Job(app="x", scheme="LRU"))
        store.add("k2", {"cycles": 2.0})
        reloaded = ResultStore(path)
        assert set(reloaded.keys()) == {"k1", "k2"}
        assert reloaded.get("k1") == {"cycles": 1.0}
        assert reloaded.job("k1")["app"] == "x"

    def test_truncated_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.add("k1", {"cycles": 1.0})
        with open(path, "a") as fh:
            fh.write('{"key": "k2", "result": {"cyc')  # killed mid-append
        reloaded = ResultStore(path)
        assert set(reloaded.keys()) == {"k1"}

    def test_last_duplicate_wins(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.add("k", {"v": 1})
        store.add("k", {"v": 2})
        assert ResultStore(path).get("k") == {"v": 2}

    def test_export_table(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.add("k1", {"cycles": 10.0}, job=Job(app="x", scheme="LRU"))
        store.add("k2", {"cycles": 5.0}, job=Job(app="x", scheme="Jigsaw"))
        table = store.export_table("cycles")
        assert "LRU" in table and "Jigsaw" in table and "x" in table

    def test_null_result_replays_as_empty_record(self, tmp_path):
        # Regression: a line with "result": null used to replay as None,
        # and records()/export_table then crashed on result.get(...).
        path = tmp_path / "store.jsonl"
        path.write_text(
            '{"key": "dead", "job": {"app": "x", "scheme": "LRU"}, '
            '"result": null}\n'
            '{"key": "ok", "job": {"app": "x", "scheme": "Jigsaw"}, '
            '"result": {"cycles": 5.0}}\n'
        )
        store = ResultStore(path)
        assert store.get("dead") == {}
        assert list(store.records())  # no AttributeError
        table = store.export_table("cycles")
        assert "Jigsaw" in table

    def test_add_normalizes_null_record(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.add("k", None, job=Job(app="x", scheme="LRU"))
        assert store.get("k") == {}
        assert ResultStore(store.path).get("k") == {}
        assert store.export_table("cycles")  # must not crash

    def test_falsy_keys_are_kept(self, tmp_path):
        # Regression: `if key:` dropped keys like "" or 0 silently; only
        # a missing/null key marks an unusable line.
        path = tmp_path / "store.jsonl"
        path.write_text(
            '{"key": "", "result": {"v": 1}}\n'
            '{"job": {}, "result": {"v": 2}}\n'  # no key: skipped
            '{"key": null, "result": {"v": 3}}\n'  # null key: skipped
        )
        store = ResultStore(path)
        assert set(store.keys()) == {""}
        assert store.get("") == {"v": 1}

    def test_truncated_line_repaired_on_next_append(self, tmp_path):
        # Crash recovery end to end: a killed writer leaves a final line
        # without its newline; the next append must insert one first,
        # and the truncated line stays skipped rather than corrupting
        # its successor.
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.add("k1", {"v": 1})
        with open(path, "a") as fh:
            fh.write('{"key": "k2", "result": {"v"')  # killed mid-append
        recovered = ResultStore(path)
        assert recovered._needs_newline
        recovered.add("k3", {"v": 3})
        assert not recovered._needs_newline
        lines = path.read_text().splitlines()
        assert len(lines) == 3  # k1, truncated k2, k3 — all separated
        reloaded = ResultStore(path)
        assert set(reloaded.keys()) == {"k1", "k3"}
        assert reloaded.get("k3") == {"v": 3}

    def test_two_stores_converge_on_union(self, tmp_path):
        # Separate processes appending to one path (a resumed campaign)
        # must converge on the union of their records.
        path = tmp_path / "store.jsonl"
        a = ResultStore(path)
        b = ResultStore(path)
        a.add("ka", {"v": "a"})
        b.add("kb", {"v": "b"})
        a.add("ka2", {"v": "a2"})
        merged = ResultStore(path)
        assert set(merged.keys()) == {"ka", "kb", "ka2"}
        assert merged.get("kb") == {"v": "b"}


class _KeyedJob:
    def __init__(self, key):
        self._key = key

    def key(self):
        return self._key


class TestRunJobs:
    def test_skips_done_and_counts_executed(self):
        store = MemoryStore()
        store.add("a", 1)
        executed = []

        def execute(job):
            executed.append(job.key())
            return job.key().upper()

        jobs = [_KeyedJob("a"), _KeyedJob("b"), _KeyedJob("c")]
        report = run_jobs(jobs, execute, store=store)
        assert report.total == 3
        assert report.skipped == 1
        assert report.executed == 2
        assert executed == ["b", "c"]
        assert store.get("b") == "B"

    def test_duplicate_keys_execute_once(self):
        calls = []

        def execute(job):
            calls.append(1)
            return 0

        run_jobs([_KeyedJob("a"), _KeyedJob("a")], execute)
        assert len(calls) == 1

    def test_strict_raises(self):
        def execute(job):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            run_jobs([_KeyedJob("a")], execute)

    def test_nonstrict_collects_failures(self):
        def execute(job):
            if job.key() == "bad":
                raise RuntimeError("boom")
            return 1

        report = run_jobs(
            [_KeyedJob("bad"), _KeyedJob("ok")], execute, strict=False
        )
        assert report.executed == 1
        assert set(report.failures) == {"bad"}
        assert report.completed == 1


class TestResultStoreVerify:
    def test_clean_store_verifies_clean(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.add("a", {"v": 1})
        store.add("b", {"v": 2})
        report = store.verify()
        assert report["records"] == 2
        assert report["duplicates"] == 0
        assert report["corrupt_lines"] == 0
        assert report["torn_tail"] is False

    def test_duplicate_keys_replay_last_write_wins(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.add("a", {"v": 1})
        store.add("a", {"v": 2}, job={"n": "second"})
        store.add("b", {"v": 3})

        again = ResultStore(path)
        assert len(again) == 2
        assert again.get("a") == {"v": 2}
        assert again.job("a") == {"n": "second"}
        report = again.verify()
        assert report["records"] == 2
        assert report["duplicates"] == 1

    def test_crash_replay_reports_torn_tail_and_recovers(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.add("a", {"v": 1})
        store.add("b", {"v": 2})
        # Simulate a writer killed mid-append: the final line is torn.
        raw = path.read_text()
        lines = raw.splitlines()
        path.write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2])

        survivor = ResultStore(path)
        report = survivor.verify()
        assert report["records"] == 1
        assert report["corrupt_lines"] == 1
        assert report["torn_tail"] is True

        # The next append repairs the tail; a retried duplicate of the
        # lost job replays deterministically (last write wins).
        survivor.add("b", {"v": 2})
        survivor.add("b", {"v": 99})
        final = ResultStore(path)
        assert final.get("b") == {"v": 99}
        assert final.verify()["torn_tail"] is False
        assert final.verify()["duplicates"] == 1
