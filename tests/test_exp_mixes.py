"""Mix-campaign engine: grid expansion, resumability, CLI end-to-end."""

import json

import pytest

from repro.cli import main
from repro.exp import MixCampaign, ResultStore, run_campaign, weighted_speedup_table


class TestMixCampaignSpec:
    def test_grid_shape(self):
        campaign = MixCampaign(
            n_cores=[4, 16], n_mixes=3, schemes=["Jigsaw", "Whirlpool"]
        )
        jobs = campaign.jobs()
        assert len(jobs) == 2 * 3 * 2
        assert all(j.kind == "mix" for j in jobs)
        assert {j.config for j in jobs} == {"4core", "16core"}
        # 16-core jobs carry 16-app mixes.
        sixteens = [j for j in jobs if j.config == "16core"]
        assert all(len(j.apps()) == 16 for j in sixteens)
        assert all(len(j.mix_seeds) == 16 for j in sixteens)

    def test_deterministic_keys(self):
        a = MixCampaign(n_mixes=2).jobs()
        b = MixCampaign(n_mixes=2).jobs()
        assert [j.key() for j in a] == [j.key() for j in b]

    def test_json_roundtrip(self, tmp_path):
        campaign = MixCampaign(
            name="grid", n_cores=[16], n_mixes=5, schemes=["Jigsaw", "IdealSPD"],
            baseline="IdealSPD", scale="train", base_seed=7,
        )
        path = tmp_path / "spec.json"
        campaign.save(path)
        loaded = MixCampaign.from_json_file(path)
        assert loaded == campaign
        assert [j.key() for j in loaded.jobs()] == [j.key() for j in campaign.jobs()]

    def test_unknown_keys_ignored(self):
        campaign = MixCampaign.from_dict({"n_mixes": 2, "bogus": 1})
        assert campaign.n_mixes == 2

    def test_bad_core_count(self):
        with pytest.raises(ValueError, match="core counts"):
            MixCampaign(n_cores=[8])

    def test_bad_mix_count(self):
        with pytest.raises(ValueError, match="n_mixes"):
            MixCampaign(n_mixes=0)

    def test_baseline_must_be_scheduled(self):
        with pytest.raises(ValueError, match="baseline"):
            MixCampaign(schemes=["Whirlpool"], baseline="Jigsaw")


@pytest.fixture(scope="module")
def tiny_campaign():
    return MixCampaign(
        n_cores=[4], n_mixes=1, schemes=["Jigsaw", "S-NUCA/LRU"],
        n_intervals=2, sample_shift=4,
    )


class TestMixCampaignRun:
    def test_sample_shift_reaches_simulation(self):
        """Regression: mix jobs must forward sample_shift to simulate_mix
        — shift-keyed store records used to hold default-shift results."""
        from repro.exp.execute import execute_job

        def job_for(shift):
            campaign = MixCampaign(
                n_cores=[4], n_mixes=1, schemes=["S-NUCA/LRU"],
                baseline="S-NUCA/LRU", n_intervals=2, sample_shift=shift,
            )
            return campaign.jobs()[0]

        exact = execute_job(job_for(0))
        sampled = execute_job(job_for(5))
        assert exact["ipcs"] != sampled["ipcs"]


    def test_run_and_resume(self, tiny_campaign, tmp_path):
        store_path = tmp_path / "mixes.jsonl"
        report = run_campaign(tiny_campaign, store_path, strict=True)
        assert report.executed == 2
        assert report.skipped == 0
        # Resubmitting is a no-op: every job key is already stored.
        again = run_campaign(tiny_campaign, store_path, strict=True)
        assert again.executed == 0
        assert again.skipped == 2

    def test_resume_after_truncated_store(self, tiny_campaign, tmp_path):
        """A killed writer leaves a half line; the rerun heals the store."""
        store_path = tmp_path / "mixes.jsonl"
        run_campaign(tiny_campaign, store_path, strict=True)
        raw = store_path.read_text()
        lines = raw.splitlines(keepends=True)
        store_path.write_text("".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])
        report = run_campaign(tiny_campaign, store_path, strict=True)
        assert report.executed == 1  # exactly the clobbered job reruns
        assert report.skipped == 1
        assert len(ResultStore(store_path)) == 2

    def test_weighted_speedup_table(self, tiny_campaign, tmp_path):
        store_path = tmp_path / "mixes.jsonl"
        run_campaign(tiny_campaign, store_path, strict=True)
        table = weighted_speedup_table(tiny_campaign, store_path)
        assert "4-core" in table
        assert "S-NUCA/LRU vs Jigsaw" in table
        assert "gmean weighted speedup" in table
        assert "nan" not in table

    def test_table_tolerates_pending_jobs(self, tiny_campaign, tmp_path):
        table = weighted_speedup_table(tiny_campaign, tmp_path / "empty.jsonl")
        assert "nan" in table  # pending cells render, not crash


class TestMixCampaignCLI:
    def test_end_to_end_and_resume(self, tmp_path, capsys):
        store = tmp_path / "cli.jsonl"
        argv = [
            "campaign", "mixes", "--mixes", "1",
            "--mix-schemes", "Jigsaw,S-NUCA/LRU",
            "--intervals", "2", "--store", str(store),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 executed, 0 skipped" in out
        assert "S-NUCA/LRU vs Jigsaw" in out
        # Second invocation resumes: nothing left to execute.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 executed, 2 skipped" in out

    def test_spec_file(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "n_cores": [4], "n_mixes": 1,
            "schemes": ["Jigsaw", "S-NUCA/LRU"], "n_intervals": 2,
        }))
        store = tmp_path / "spec.jsonl"
        assert main([
            "campaign", "mixes", "--spec", str(spec), "--store", str(store),
        ]) == 0
        assert "gmean weighted speedup" in capsys.readouterr().out

    def test_bad_spec_path(self, tmp_path, capsys):
        assert main([
            "campaign", "mixes", "--spec", str(tmp_path / "missing.json"),
            "--store", str(tmp_path / "s.jsonl"),
        ]) == 2

    def test_baseline_defaults_to_first_scheme(self, tmp_path, capsys):
        assert main([
            "campaign", "mixes", "--mixes", "1", "--intervals", "2",
            "--mix-schemes", "S-NUCA/LRU,Jigsaw",
            "--store", str(tmp_path / "s.jsonl"),
        ]) == 0
        assert "Jigsaw vs S-NUCA/LRU" in capsys.readouterr().out

    def test_explicit_baseline_flag(self, tmp_path, capsys):
        assert main([
            "campaign", "mixes", "--mixes", "1", "--intervals", "2",
            "--mix-schemes", "S-NUCA/LRU,Jigsaw", "--baseline", "Jigsaw",
            "--store", str(tmp_path / "s.jsonl"),
        ]) == 0
        assert "S-NUCA/LRU vs Jigsaw" in capsys.readouterr().out

    def test_bad_core_count(self, tmp_path, capsys):
        assert main([
            "campaign", "mixes", "--cores", "8",
            "--store", str(tmp_path / "s.jsonl"),
        ]) == 2

    def test_bad_baseline(self, tmp_path, capsys):
        assert main([
            "campaign", "mixes", "--baseline", "IdealSPD",
            "--store", str(tmp_path / "s.jsonl"),
        ]) == 2
