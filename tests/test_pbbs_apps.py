"""Per-app structure tests for the 16 PBBS kernels.

These check the algorithmic structure the instrumented implementations
are supposed to produce — one distinct property per kernel.
"""

import numpy as np
import pytest

from repro.curves import StackDistanceProfiler
from repro.workloads import build_workload
from repro.workloads.registry import PBBS_APPS

_MB = 1 << 20


@pytest.fixture(scope="module")
def load():
    cache = {}

    def _get(name, scale="train"):
        key = (name, scale)
        if key not in cache:
            cache[key] = build_workload(name, scale=scale, seed=0)
        return cache[key]

    return _get


def region_curve(w, rname, chunk=128 * 1024, n_chunks=120, shift=2):
    rid = next(r for r, n in w.region_names.items() if n == rname)
    sel = w.trace.regions == rid
    prof = StackDistanceProfiler(
        chunk_bytes=chunk, n_chunks=n_chunks, sample_shift=shift
    )
    return prof.profile_combined(
        w.trace.lines[sel], instructions=w.trace.instructions
    )[0]


class TestEveryApp:
    @pytest.mark.parametrize("name", PBBS_APPS)
    def test_builds_with_sane_apki(self, name, load):
        w = load(name)
        assert len(w.trace) > 5_000
        assert 5.0 < w.trace.apki < 200.0


class TestBFS:
    def test_edges_touched_once(self, load):
        """BFS reads each adjacency entry exactly once (level-synchronous)."""
        w = load("BFS")
        rid = next(r for r, n in w.region_names.items() if n == "edges")
        edge_lines = w.trace.lines[w.trace.regions == rid]
        __, counts = np.unique(edge_lines, return_counts=True)
        # Post-dedup, a line is touched about once (8 entries/line merge).
        assert counts.mean() < 2.2

    def test_frontier_small(self, load):
        w = load("BFS")
        fp = {
            w.region_names[r]: b
            for r, b in w.trace.region_footprint_bytes().items()
        }
        assert fp["frontier"] < 0.3 * fp["edges"]


class TestMIS:
    def test_flags_reuse_scales_with_degree(self, load):
        """Each vertex's flag is touched ~deg times (neighbor marking)."""
        w = load("MIS")
        rid = next(r for r, n in w.region_names.items() if n == "flags")
        lines = w.trace.lines[w.trace.regions == rid]
        __, counts = np.unique(lines, return_counts=True)
        assert counts.mean() > 3.0  # avg degree ~8 spread over 8/line


class TestMatching:
    def test_result_append_only(self, load):
        w = load("matching")
        rid = next(r for r, n in w.region_names.items() if n == "result")
        lines = w.trace.lines[w.trace.regions == rid]
        # Sequential append: line ids are non-decreasing.
        assert np.all(np.diff(lines) >= 0)


class TestUnionFind:
    @pytest.mark.parametrize("name", ["ST", "MST"])
    def test_parents_reused_heavily(self, name, load):
        w = load(name)
        rid = next(
            r for r, n in w.region_names.items() if n == "union-find parents"
        )
        lines = w.trace.lines[w.trace.regions == rid]
        __, counts = np.unique(lines, return_counts=True)
        assert counts.mean() > 2.0

    def test_mst_comparable_to_st(self, load):
        """MST (sorted edges) runs the same kernel; sorted order shortens
        union-find paths, so access counts differ but stay comparable."""
        st = load("ST")
        mst = load("MST")
        ratio = len(mst.trace) / len(st.trace)
        assert 0.5 < ratio < 1.5


class TestDelaunay:
    def test_structures_grow_over_time(self, load):
        """Incremental insertion: later accesses reach higher addresses."""
        w = load("delaunay")
        rid = next(r for r, n in w.region_names.items() if n == "triangles")
        sel = np.nonzero(w.trace.regions == rid)[0]
        lines = w.trace.lines[sel]
        first = lines[: len(lines) // 4]
        last = lines[-len(lines) // 4 :]
        assert last.max() > 1.5 * first.max() - first.min()


class TestRefine:
    def test_bursts_expand_misc(self, load):
        w = load("refine")
        rid = next(r for r, n in w.region_names.items() if n == "misc")
        sel = np.nonzero(w.trace.regions == rid)[0]
        lines = w.trace.lines[sel] - w.trace.lines[sel].min()
        # Outside bursts misc stays within 0.5 MB; bursts reach further.
        small = 0.5 * _MB / 64
        assert np.count_nonzero(lines < small) > 0.3 * len(lines)
        assert lines.max() > 1.5 * small


class TestHull:
    def test_survivor_passes_shrink(self, load):
        """Quickhull filters: points accesses drop pass over pass."""
        w = load("hull")
        rid = next(r for r, n in w.region_names.items() if n == "points")
        sel = w.trace.regions == rid
        n = len(w.trace)
        first_half = np.count_nonzero(sel[: n // 2])
        second_half = np.count_nonzero(sel[n // 2 :])
        assert second_half < first_half


class TestSortFamily:
    def test_sort_alternates_buffers(self, load):
        w = load("sort")
        ids = sorted(w.region_names)
        n = len(w.trace)
        # In any window, both buffers are active (merge passes).
        window = w.trace.regions[: n // 8]
        assert set(np.unique(window)) == set(ids)

    def test_isort_counts_random_output_seq(self, load):
        w = load("isort")
        rid = next(r for r, n in w.region_names.items() if n == "output")
        lines = w.trace.lines[w.trace.regions == rid]
        assert np.all(np.diff(lines) >= 0)

    def test_sa_rank_gathers_dominate(self, load):
        w = load("SA")
        apki = w.trace.region_apki()
        by_name = {w.region_names[r]: v for r, v in apki.items()}
        assert by_name["ranks"] == max(by_name.values())


class TestHashApps:
    def test_dict_table_skewed(self, load):
        w = load("dict")
        curve = region_curve(w, "table")
        # Zipf-hot head: half the misses gone well before the full table.
        assert curve.misses_at(1 * _MB) < 0.7 * curve.misses_at(0)

    def test_remdups_output_smaller_than_input(self, load):
        w = load("remDups")
        apki = w.trace.region_apki()
        by_name = {w.region_names[r]: v for r, v in apki.items()}
        assert by_name["output"] < by_name["input"]


class TestGridApps:
    def test_neighbors_has_spatial_candidate_locality(self, load):
        w = load("neighbors")
        curve = region_curve(w, "points")
        # Candidate clustering produces strong short-distance reuse.
        assert curve.misses_at(2 * _MB) < 0.9 * curve.misses_at(0)

    def test_ray_triangles_zipf_hot(self, load):
        w = load("ray")
        curve = region_curve(w, "triangles")
        assert curve.misses_at(1 * _MB) < 0.8 * curve.misses_at(0)

    def test_setcover_queue_consumed_once(self, load):
        """The greedy bucket queue is a consume-once stream."""
        w = load("setCover", scale="ref")
        rid = next(
            r for r, n in w.region_names.items() if n == "bucket queue"
        )
        lines = w.trace.lines[w.trace.regions == rid]
        __, counts = np.unique(lines, return_counts=True)
        assert counts.max() <= 8  # at most one touch per queue entry/line
