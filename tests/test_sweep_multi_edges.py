"""Edge-case coverage for sim/sweep.py and sim/multi.py.

Neither module was exercised outside the figure benchmarks; these tests
pin the corners: single-point sweeps, empty scheme dicts, unknown axes,
zero-cycle baselines, empty and oversubscribed mixes.
"""

import math

import pytest

from repro.nuca import four_core_config
from repro.nuca.energy import EnergyBreakdown
from repro.schemes import JigsawScheme, SNUCAScheme
from repro.schemes.base import SchemeResult
from repro.sim import simulate_mix, sweep, weighted_speedup
from repro.sim.multi import MixResult
from repro.sim.sweep import SweepResult, vary_config
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def workload():
    return build_workload("MIS", scale="train", seed=0)


@pytest.fixture(scope="module")
def cfg():
    return four_core_config()


FACTORIES = {
    "LRU": lambda c, v: SNUCAScheme(c, v, "lru"),
    "Jigsaw": JigsawScheme,
}


class TestSweepEdges:
    def test_single_point_sweep(self, workload, cfg):
        out = sweep(workload, cfg, "bank_latency", [9.0], FACTORIES)
        assert out.axis == "bank_latency"
        assert out.points == [9.0]
        assert len(out.results) == 1
        assert set(out.results[0]) == {"LRU", "Jigsaw"}
        assert len(out.series("LRU")) == 1
        assert out.relative_series("LRU", "LRU") == [1.0]

    def test_empty_scheme_dict(self, workload, cfg):
        out = sweep(workload, cfg, "bank_latency", [6.0, 12.0], {})
        assert out.points == [6.0, 12.0]
        assert out.results == [{}, {}]

    def test_empty_values(self, workload, cfg):
        out = sweep(workload, cfg, "bank_latency", [], FACTORIES)
        assert out.points == []
        assert out.results == []

    def test_unknown_axis_rejected_even_without_schemes(self, workload, cfg):
        with pytest.raises(ValueError, match="unknown sweep axis"):
            sweep(workload, cfg, "warp_factor", [1.0], {})

    def test_matches_direct_simulate(self, workload, cfg):
        from repro.sim import simulate

        out = sweep(workload, cfg, "mem_latency", [120.0, 240.0], FACTORIES)
        direct = simulate(
            workload,
            vary_config(cfg, "mem_latency", 240.0),
            FACTORIES["Jigsaw"],
        )
        assert out.results[1]["Jigsaw"].cycles == direct.cycles


def result_with(cycles_stalls=0.0, name="s"):
    r = SchemeResult(name=name, base_cpi=0.0)
    r.stall_cycles = cycles_stalls
    return r


class TestRelativeSeriesGuard:
    def make(self, num, denom):
        out = SweepResult(axis="x", points=[0])
        out.results = [{"a": result_with(num), "b": result_with(denom)}]
        return out

    def test_normal_ratio(self):
        assert self.make(10.0, 5.0).relative_series("a", "b") == [2.0]

    def test_zero_baseline_nonzero_scheme_is_inf(self):
        assert self.make(10.0, 0.0).relative_series("a", "b") == [math.inf]

    def test_zero_over_zero_is_one(self):
        assert self.make(0.0, 0.0).relative_series("a", "b") == [1.0]


class TestMixEdges:
    def test_empty_mix(self, cfg):
        result = simulate_mix([], cfg, JigsawScheme, n_intervals=4)
        assert result.per_app == []
        assert result.ipcs() == []
        assert result.energy.total == 0.0

    def test_oversubscribed_mix_rejected(self, cfg, workload):
        apps = [workload] * (cfg.n_cores + 1)
        with pytest.raises(ValueError, match="cores"):
            simulate_mix(apps, cfg, JigsawScheme)

    def test_single_app_mix_runs(self, cfg, workload):
        result = simulate_mix(
            [workload], cfg, JigsawScheme, n_intervals=4
        )
        assert len(result.per_app) == 1
        assert result.per_app[0].cycles > 0

    def test_weighted_speedup_guards_zero_alone_ipc(self):
        mix = MixResult(scheme_name="s", per_app=[result_with(0.0)])
        # A zero alone-IPC must not divide by zero.
        assert math.isfinite(weighted_speedup(mix, [1.0]))
        assert weighted_speedup(mix, [0.0]) >= 0.0

    def test_weighted_speedup_length_mismatch(self):
        mix = MixResult(scheme_name="s", per_app=[result_with(1.0)])
        with pytest.raises(ValueError, match="mismatch"):
            weighted_speedup(mix, [1.0, 2.0])

    def test_mix_energy_totals(self):
        a = result_with(1.0)
        a.energy = EnergyBreakdown(network=1.0, bank=2.0, memory=3.0)
        b = result_with(2.0)
        b.energy = EnergyBreakdown(network=0.5, bank=0.5, memory=0.5)
        mix = MixResult(scheme_name="s", per_app=[a, b])
        assert mix.energy.total == pytest.approx(7.5)
