"""Unit tests for latency-curve construction."""

import numpy as np
import pytest

from repro.curves import LatencyModel, MissCurve, latency_curve


def curve(values, chunk=1024, accesses=100.0, instr=1000.0):
    return MissCurve(
        misses=np.asarray(values, dtype=float),
        chunk_bytes=chunk,
        accesses=accesses,
        instructions=instr,
    )


FLAT_HOPS = lambda size: 2.0  # noqa: E731 — simple stub reach function


class TestLatencyModel:
    def test_llc_access_latency(self):
        m = LatencyModel(bank_latency=9, hop_latency=5)
        assert m.llc_access_latency(0) == 9
        assert m.llc_access_latency(2) == 29

    def test_miss_penalty(self):
        m = LatencyModel(mem_latency=120, hop_latency=5, mem_hops=3)
        assert m.miss_penalty == 150


class TestLatencyCurve:
    def test_shape_matches_grid(self):
        c = curve([50, 10, 0])
        stalls = latency_curve(c, FLAT_HOPS, LatencyModel())
        assert len(stalls) == 3

    def test_more_capacity_fewer_stalls_when_hops_flat(self):
        c = curve([50, 10, 0])
        stalls = latency_curve(c, FLAT_HOPS, LatencyModel())
        assert stalls[0] > stalls[1] > stalls[2]

    def test_latency_aware_tradeoff(self):
        """With a flat miss curve, more capacity only adds network latency.

        This is the dt effect (Fig 4): Jigsaw stops growing a VC once extra
        banks no longer reduce misses.
        """
        c = curve([10, 10, 10, 10])  # no miss benefit at all
        growing_hops = lambda size: size / 1024.0  # noqa: E731
        stalls = latency_curve(c, growing_hops, LatencyModel())
        assert np.all(np.diff(stalls) > 0)  # strictly worse with more space

    def test_bypass_point_excludes_llc_latency(self):
        c = curve([100, 0], accesses=100.0)  # everything misses at size 0
        model = LatencyModel()
        plain = latency_curve(c, FLAT_HOPS, model, bypassable=False)
        byp = latency_curve(c, FLAT_HOPS, model, bypassable=True)
        assert byp[0] < plain[0]
        assert byp[1] == plain[1]
        # Bypassed stalls = accesses * miss_penalty / instr exactly.
        assert byp[0] == pytest.approx(100.0 * model.miss_penalty / 1000.0)

    def test_streaming_pool_prefers_bypass(self):
        """A no-reuse pool's latency curve is minimized at size 0 (Fig 9)."""
        apki = 100.0
        c = curve([100, 97, 95, 94], accesses=apki)
        hops = lambda size: 1.0 + size / 2048.0  # noqa: E731
        stalls = latency_curve(c, hops, LatencyModel(), bypassable=True)
        assert np.argmin(stalls) == 0

    def test_cacheable_pool_prefers_capacity(self):
        c = curve([100, 40, 5, 0], accesses=100.0)
        hops = lambda size: 1.0 + size / 4096.0  # noqa: E731
        stalls = latency_curve(c, hops, LatencyModel(), bypassable=True)
        assert np.argmin(stalls) == 3
