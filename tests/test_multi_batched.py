"""Differential tests: batched stepping engine vs. the retained serial path.

``simulate`` / ``simulate_mix`` default to the batched engine (decide per
interval, account the whole run as stacked arrays); ``engine="serial"``
is the original interval-by-interval loop.  The two must produce *exact*
``SchemeResult`` / ``MixResult`` equality — dataclass equality covers
every accumulated total, per-interval ``IntervalStats`` (history), per-VC
dicts, and energy breakdowns.
"""

import pytest

from repro.core.whirlpool import WhirlpoolScheme
from repro.nuca import four_core_config
from repro.schemes import (
    AwasthiScheme,
    IdealSPDScheme,
    JigsawScheme,
    ManualPoolClassifier,
    SNUCAScheme,
    SingleVCClassifier,
)
from repro.sim import simulate, simulate_mix
from repro.workloads import build_workload

FACTORIES = {
    "Jigsaw": JigsawScheme,
    "Jigsaw-NoBypass": lambda c, v: JigsawScheme(c, v, bypass=False),
    "Whirlpool": lambda c, v: WhirlpoolScheme(c, v),
    "S-NUCA/LRU": lambda c, v: SNUCAScheme(c, v, "lru"),
    "S-NUCA/DRRIP": lambda c, v: SNUCAScheme(c, v, "drrip"),
    "IdealSPD": IdealSPDScheme,
    "Awasthi": AwasthiScheme,
}


@pytest.fixture(scope="module")
def cfg():
    return four_core_config()


@pytest.fixture(scope="module")
def mix2():
    return [
        build_workload("bzip2", scale="train", seed=0),
        build_workload("mcf", scale="train", seed=1),
    ]


@pytest.fixture(scope="module")
def mix4():
    return [
        build_workload("milc", scale="train", seed=2),
        build_workload("soplex", scale="train", seed=3),
        build_workload("astar", scale="train", seed=4),
        build_workload("libqntm", scale="train", seed=5),
    ]


def assert_mix_equal(a, b):
    assert a.scheme_name == b.scheme_name
    assert len(a.per_app) == len(b.per_app)
    for ra, rb in zip(a.per_app, b.per_app):
        assert ra == rb  # dataclass equality: totals + full history


class TestMixDifferential:
    @pytest.mark.parametrize("scheme", sorted(FACTORIES))
    @pytest.mark.parametrize("shift", [0, 3])
    def test_two_app_mix_exact(self, cfg, mix2, scheme, shift):
        kwargs = dict(n_intervals=5, sample_shift=shift, use_cache=False)
        batched = simulate_mix(
            mix2, cfg, FACTORIES[scheme], engine="batched", **kwargs
        )
        serial = simulate_mix(
            mix2, cfg, FACTORIES[scheme], engine="serial", **kwargs
        )
        assert_mix_equal(batched, serial)

    @pytest.mark.parametrize("scheme", ["Jigsaw", "Whirlpool", "S-NUCA/DRRIP"])
    def test_four_app_mix_exact(self, cfg, mix4, scheme):
        kwargs = dict(n_intervals=4, sample_shift=0, use_cache=False)
        batched = simulate_mix(
            mix4, cfg, FACTORIES[scheme], engine="batched", **kwargs
        )
        serial = simulate_mix(
            mix4, cfg, FACTORIES[scheme], engine="serial", **kwargs
        )
        assert_mix_equal(batched, serial)

    def test_pooled_whirlpool_mix_exact(self, cfg, mix2):
        """Multi-VC-per-app layout (the Whirlpool mix rule)."""
        mis = build_workload("MIS", scale="train", seed=0)
        apps = [mis, mix2[0]]
        classifiers = [ManualPoolClassifier(), SingleVCClassifier()]
        kwargs = dict(
            classifiers=classifiers, n_intervals=5, sample_shift=0,
            use_cache=False,
        )
        batched = simulate_mix(
            apps, cfg, lambda c, v: WhirlpoolScheme(c, v),
            engine="batched", **kwargs,
        )
        serial = simulate_mix(
            apps, cfg, lambda c, v: WhirlpoolScheme(c, v),
            engine="serial", **kwargs,
        )
        assert_mix_equal(batched, serial)

    def test_empty_mix(self, cfg):
        for engine in ("batched", "serial"):
            result = simulate_mix(
                [], cfg, JigsawScheme, n_intervals=4, engine=engine
            )
            assert result.per_app == []

    def test_unknown_engine_rejected(self, cfg, mix2):
        with pytest.raises(ValueError, match="engine"):
            simulate_mix(mix2, cfg, JigsawScheme, engine="warp")


class TestSingleDifferential:
    @pytest.mark.parametrize("scheme", sorted(FACTORIES))
    def test_simulate_exact(self, cfg, scheme):
        workload = build_workload("MIS", scale="train", seed=0)
        kwargs = dict(n_intervals=6, use_cache=False)
        batched = simulate(
            workload, cfg, FACTORIES[scheme], engine="batched", **kwargs
        )
        serial = simulate(
            workload, cfg, FACTORIES[scheme], engine="serial", **kwargs
        )
        assert batched == serial

    def test_unknown_engine_rejected(self, cfg):
        workload = build_workload("MIS", scale="train", seed=0)
        with pytest.raises(ValueError, match="engine"):
            simulate(workload, cfg, JigsawScheme, engine="warp")
