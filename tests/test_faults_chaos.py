"""Chaos tests: campaigns under injected faults converge exactly.

The headline invariant of the fault-tolerance layer: a campaign run
under a deterministic fault plan — worker crashes, hung jobs, transient
I/O errors — produces a ResultStore *byte-identical* (modulo append
order, which parallel completion never fixes) to the fault-free run,
with the retries visible in the RunReport and zero jobs lost.  Poison
jobs (faults on every attempt) are quarantined rather than retried
forever, and ``campaign quarantine retry`` recovers them once the
fault profile is lifted.

Each scenario runs across three fixed seeds; with ``$REPRO_CHAOS_REPORT``
set, every run appends a JSON line (profile, seed, retry/quarantine
counts) for the CI artifact upload.
"""

import json
import os

import pytest

from repro.cli import main
from repro.devtools import faults
from repro.exp import (
    Campaign,
    Quarantine,
    ResultStore,
    quarantine_path_for,
    run_campaign,
)
from repro.obs import events_path_for
from repro.obs.report import load_events, rollup
from repro.retry import RetryPolicy

SEEDS = [101, 202, 303]

#: A small but real grid: 2 apps x 2 schemes at train scale.
APPS = ["MIS", "dict"]
SCHEMES = ["LRU", "Jigsaw"]


def chaos_campaign() -> Campaign:
    return Campaign(
        name="chaos2x2", apps=APPS, schemes=SCHEMES, scale="train"
    )


def _policy(seed: int) -> RetryPolicy:
    return RetryPolicy(
        max_attempts=4, base_delay=0.02, max_delay=0.2, seed=seed
    )


def _chaos_report(**entry) -> None:
    """Append one run's outcome to ``$REPRO_CHAOS_REPORT`` (CI artifact)."""
    path = os.environ.get("REPRO_CHAOS_REPORT")
    if not path:
        return
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.reset()
    yield
    faults.reset()


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """The fault-free reference store (sorted lines are the oracle)."""
    path = tmp_path_factory.mktemp("baseline") / "store.jsonl"
    report = run_campaign(
        chaos_campaign(), ResultStore(path), workers=2, retry=_policy(0)
    )
    assert report.executed == len(APPS) * len(SCHEMES)
    assert not report.failures and report.retried == 0
    return sorted(path.read_text().splitlines())


def _fault_plan(profile: str, seed: int) -> str:
    """The three CI chaos profiles, as inline ``$REPRO_FAULTS`` JSON."""
    jobs = chaos_campaign().jobs()
    if profile == "worker-crash":
        # Every job's first attempt dies like an OOM kill.
        rules = [{"site": "worker", "mode": "crash", "attempts": [1]}]
    elif profile == "hang-timeout":
        # One specific job hangs on its first attempt, far past the
        # engine's per-job deadline.
        rules = [
            {
                "site": "worker",
                "mode": "hang",
                "attempts": [1],
                "seconds": 300.0,
                "match": jobs[0].key(),
            }
        ]
    elif profile == "transient-io":
        # The first execute per (worker process, job) raises OSError.
        rules = [{"site": "execute", "mode": "raise", "count": 1}]
    else:  # pragma: no cover - guarded by parametrize
        raise ValueError(profile)
    return json.dumps({"seed": seed, "rules": rules})


class TestChaosInvariant:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize(
        "profile", ["worker-crash", "hang-timeout", "transient-io"]
    )
    def test_faulted_run_converges_to_fault_free_store(
        self, profile, seed, tmp_path, monkeypatch, baseline
    ):
        monkeypatch.setenv(faults.ENV_VAR, _fault_plan(profile, seed))
        path = tmp_path / "store.jsonl"
        report = run_campaign(
            chaos_campaign(),
            ResultStore(path),
            workers=2,
            retry=_policy(seed),
            job_timeout=3.0 if profile == "hang-timeout" else None,
        )
        _chaos_report(
            profile=profile,
            seed=seed,
            executed=report.executed,
            retried=report.retried,
            quarantined=len(report.quarantined),
            failures=len(report.failures),
        )
        # Zero jobs lost, retries visible, nothing quarantined.
        assert report.executed == len(APPS) * len(SCHEMES)
        assert not report.failures
        assert report.retried > 0
        assert not report.quarantined
        assert len(Quarantine(quarantine_path_for(path))) == 0
        # The headline: the store converged byte-identically.
        assert sorted(path.read_text().splitlines()) == baseline


class TestPoisonQuarantine:
    def test_poison_job_quarantines_then_cli_retry_recovers(
        self, tmp_path, monkeypatch, capsys, baseline
    ):
        jobs = chaos_campaign().jobs()
        poison_key = jobs[0].key()
        plan = json.dumps(
            {
                "seed": 0,
                "rules": [
                    {
                        "site": "worker",
                        "mode": "crash",
                        "attempts": [1, 2, 3, 4],
                        "match": poison_key,
                    }
                ],
            }
        )
        monkeypatch.setenv(faults.ENV_VAR, plan)
        path = tmp_path / "store.jsonl"
        report = run_campaign(
            chaos_campaign(),
            ResultStore(path),
            workers=2,
            strict=False,
            retry=_policy(0),
        )
        # The poison job hit its attempt cap and was parked — not
        # retried forever — while every healthy job completed.
        assert report.executed == len(jobs) - 1
        assert report.quarantined == [poison_key]
        quarantine = Quarantine(quarantine_path_for(path))
        assert poison_key in quarantine
        assert len(quarantine.get(poison_key)["attempts"]) == 4

        # Resubmitting under the same faults skips the parked job
        # instead of burning attempts on it again.
        again = run_campaign(
            chaos_campaign(),
            ResultStore(path),
            workers=2,
            strict=False,
            retry=_policy(0),
        )
        assert again.executed == 0
        assert again.quarantined == [poison_key]

        # Lift the fault profile; the CLI inspects and recovers it.
        monkeypatch.delenv(faults.ENV_VAR)
        faults.reset()
        code = main(["campaign", "quarantine", "list", "--store", str(path)])
        assert code == 0
        assert poison_key in capsys.readouterr().out

        code = main(["campaign", "quarantine", "retry", "--store", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 recovered" in out
        _chaos_report(
            profile="poison-quarantine", seed=0, recovered=1, failures=0
        )

        # Fully converged: quarantine empty, store equals fault-free.
        assert len(Quarantine(quarantine_path_for(path))) == 0
        assert sorted(path.read_text().splitlines()) == baseline


class TestChaosEventLog:
    """The events sidecar must tell the chaos story, exactly.

    A campaign run writes ``<store>.events.jsonl`` by default; after a
    poison-crasher run the log alone must reconstruct the full
    retry -> crash-attribution -> quarantine narrative (every injected
    fault, every charged ``worker-crash`` attempt, the quarantine
    verdict), and its rollup must reproduce the RunReport's counts —
    including events emitted by workers that ``os._exit`` crashed
    immediately afterwards.
    """

    def _poison_run(self, tmp_path, monkeypatch):
        jobs = chaos_campaign().jobs()
        poison_key = jobs[0].key()
        plan = json.dumps(
            {
                "seed": 0,
                "rules": [
                    {
                        "site": "worker",
                        "mode": "crash",
                        "attempts": [1, 2, 3, 4],
                        "match": poison_key,
                    }
                ],
            }
        )
        monkeypatch.setenv(faults.ENV_VAR, plan)
        path = tmp_path / "store.jsonl"
        report = run_campaign(
            chaos_campaign(),
            ResultStore(path),
            workers=2,
            strict=False,
            retry=_policy(0),
        )
        return poison_key, path, report

    def test_event_log_reconstructs_poison_story(
        self, tmp_path, monkeypatch
    ):
        poison_key, path, report = self._poison_run(tmp_path, monkeypatch)
        assert report.quarantined == [poison_key]
        events = load_events(events_path_for(path))

        def for_poison(kind, name):
            return [
                e
                for e in events
                if e.get("kind") == kind
                and e.get("name") == name
                and e.get("fields", {}).get("key") == poison_key
            ]

        # Every injected fault is on record — one per execution the
        # poison job actually got, each emitted by a worker that died
        # by os._exit right after (the flush-per-line guarantee).
        injected = [
            e
            for e in events
            if e.get("name") == "fault.injected"
            and e.get("fields", {}).get("key") == poison_key
        ]
        attempts_started = for_poison("span-start", "worker.attempt")
        assert len(injected) == len(attempts_started) >= 4
        assert all(
            e["fields"]["site"] == "worker"
            and e["fields"]["mode"] == "crash"
            for e in injected
        )

        # Crash attribution: exactly max_attempts charged attempts,
        # every one attributed to a worker crash.
        charged = for_poison("event", "job.attempt-failed")
        assert len(charged) == 4
        assert all(e["fields"]["kind"] == "worker-crash" for e in charged)

        # The verdict: one quarantine event, after the final charge,
        # recording the full attempt history.
        quarantined = for_poison("event", "job.quarantined")
        assert len(quarantined) == 1
        assert quarantined[0]["fields"]["attempts"] == 4
        assert events.index(quarantined[0]) > events.index(charged[-1])

        # Retries in the log match the story: attempts 2..4 re-ran.
        retries = for_poison("event", "job.retry")
        assert len(retries) >= 3

        # Healthy jobs completed normally, on record.
        completed_keys = {
            e["fields"]["key"]
            for e in events
            if e.get("name") == "job.completed"
        }
        assert poison_key not in completed_keys
        assert len(completed_keys) == report.executed

    def test_rollup_replays_run_report_counts(self, tmp_path, monkeypatch):
        poison_key, path, report = self._poison_run(tmp_path, monkeypatch)
        summary = rollup(load_events(events_path_for(path)))
        # The acceptance invariant: replaying the sidecar reproduces
        # the RunReport's counts exactly.
        assert summary["jobs"] == {
            "completed": report.executed,
            "retried": report.retried,
            "quarantined": len(report.quarantined),
        }
        # And the counter metrics agree with the lifecycle events.
        counters = summary["metrics"]["counters"]
        assert counters.get("engine.jobs.completed", 0) == report.executed
        assert counters.get("engine.jobs.retried", 0) == report.retried
        assert counters.get("engine.jobs.quarantined", 0) == len(
            report.quarantined
        )
        # The poison job shows up as the lone retry storm.
        assert poison_key in {s["key"] for s in summary["retry_storms"]}


class TestChaosReport:
    def test_report_lines_append_when_env_set(self, tmp_path, monkeypatch):
        report_path = tmp_path / "chaos-report.jsonl"
        monkeypatch.setenv("REPRO_CHAOS_REPORT", str(report_path))
        _chaos_report(profile="x", seed=1, retried=2)
        _chaos_report(profile="y", seed=2, retried=0)
        lines = [
            json.loads(line)
            for line in report_path.read_text().splitlines()
        ]
        assert [e["profile"] for e in lines] == ["x", "y"]

    def test_report_disabled_without_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS_REPORT", raising=False)
        _chaos_report(profile="x", seed=1)  # must be a no-op, not a crash
