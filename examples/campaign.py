#!/usr/bin/env python3
"""Campaign engine: a parallel, resumable 3-app × 3-scheme grid.

Declares a Campaign over (MIS, dict, lbm) × (LRU, Jigsaw, Whirlpool),
runs it on a 4-process pool against an append-only JSON-lines store,
then demonstrates resume-after-interrupt: the store is truncated to
mimic a run killed partway through, and resubmitting executes only the
missing jobs.

Run:  python examples/campaign.py
"""

import tempfile
from pathlib import Path

from repro.exp import Campaign, ResultStore, campaign_status, run_campaign


def main() -> None:
    campaign = Campaign(
        name="demo-grid",
        apps=["MIS", "dict", "lbm"],
        schemes=["LRU", "Jigsaw", "Whirlpool"],
        configs=["4core"],
        scale="train",
    )
    jobs = campaign.jobs()
    print(f"{campaign.name}: {len(jobs)} jobs, e.g. {jobs[0].app}/{jobs[0].scheme}")

    workdir = Path(tempfile.mkdtemp(prefix="repro-campaign-"))
    store_path = workdir / "results.jsonl"

    # 1. Run the whole grid on 4 worker processes.  Workers share the
    #    on-disk profile cache, so the three schemes of one app pay for
    #    its profiling once.
    report = run_campaign(campaign, store_path, workers=4)
    print(f"first run : {report.executed} executed, {report.skipped} skipped")

    # 2. Simulate a mid-run interrupt: keep only the first 4 records.
    lines = store_path.read_text().splitlines()
    store_path.write_text("\n".join(lines[:4]) + "\n")
    status = campaign_status(campaign, store_path)
    print(f"interrupted: {status['done']}/{status['total']} done")

    # 3. Resubmitting is the resume: the store skips finished jobs.
    report = run_campaign(campaign, store_path, workers=4)
    print(f"resume     : {report.executed} executed, {report.skipped} skipped")

    # 4. Export the result table straight from the store.
    print("\n" + ResultStore(store_path).export_table(metric="cycles"))
    print(f"store: {store_path}")


if __name__ == "__main__":
    main()
