#!/usr/bin/env python3
"""The Whirlpool programmer API (Sec 3.1-3.2), bottom up.

Shows the layers under the scheme: the pool allocator
(``pool_create`` / ``pool_malloc``), the page-tagging invariant, the VC
system calls (``sys_vc_alloc`` / ``sys_vc_tag``), and how a pool's
access stream becomes a miss-rate curve that the dynamic runtime
partitions on.

Run:  python examples/pool_api.py
"""

import numpy as np

from repro.curves import StackDistanceProfiler, latency_curve
from repro.mem import PAGE_SIZE, AddressSpace, HeapAllocator, VCRegistry
from repro.nuca import four_core_config
from repro.workloads import TraceBuilder
from repro.workloads.patterns import scan, zipf_random


def main() -> None:
    # --- Pool allocation (Sec 3.1). ------------------------------------
    heap = HeapAllocator()
    hot_pool = heap.pool_create()
    stream_pool = heap.pool_create()
    hot = heap.pool_malloc(2 << 20, hot_pool)  # 2 MB, reused heavily
    big = heap.pool_malloc(24 << 20, stream_pool)  # 24 MB, streamed
    print("allocations:")
    for a, label in [(hot, "hot"), (big, "big")]:
        print(
            f"  {label}: base={hex(a.base)} size={a.size >> 20} MB "
            f"pool={a.pool} callpoint={a.callpoint}"
        )
    # Pages belong to exactly one pool — the invariant page-granular
    # classification needs.
    assert heap.space.pool_of(hot.base) == hot_pool
    assert heap.space.pool_of(big.base) == stream_pool

    # --- VC system calls (Sec 3.2). ------------------------------------
    space = AddressSpace()
    registry = VCRegistry(space)
    addr = registry.sys_mmap(pid=7, n_pages=4)
    vc = registry.sys_vc_alloc(pid=7)
    tagged = registry.sys_vc_tag(pid=7, addr=addr, n_bytes=2 * PAGE_SIZE, vc=vc)
    print(f"\nsys_vc_alloc -> VC {vc}; sys_vc_tag tagged {tagged} pages")

    # --- From accesses to policy. --------------------------------------
    rng = np.random.default_rng(0)
    tb = TraceBuilder()
    r_hot = tb.region("hot", hot)
    r_big = tb.region("big", big)
    tb.access_interleaved(
        {
            r_hot: zipf_random(rng, hot, 400_000, alpha=1.2),
            r_big: scan(big),
        }
    )
    trace = tb.finalize(apki=30.0)
    profiler = StackDistanceProfiler(chunk_bytes=64 * 1024, n_chunks=400)
    curves = profiler.profile(trace.lines, trace.regions, trace.instructions)

    config = four_core_config()
    print("\npool behaviour (the curves the runtime partitions on):")
    for rid, name in [(r_hot, "hot"), (r_big, "big")]:
        curve = curves[rid][0]
        stalls = latency_curve(
            curve,
            config.geometry.reach_fn(0),
            config.latency_for_core(0),
            bypassable=True,
        )
        best = int(np.argmin(stalls))
        decision = "BYPASS" if best == 0 else f"{best * 64 / 1024:.1f} MB"
        print(
            f"  {name}: mpki(0)={curve.mpki_at(0):6.1f} "
            f"mpki(4MB)={curve.mpki_at(4 << 20):6.1f} -> allocate {decision}"
        )


if __name__ == "__main__":
    main()
