#!/usr/bin/env python3
"""Parallel applications with PaWS on the 16-core chip (Sec 3.4, Fig 13).

Runs connectedComponents (the paper's biggest winner: +67% performance,
2.6x less data-movement energy) under all four configurations and shows
how task-to-home-core affinity drives the result.

Run:  python examples/parallel_paws.py
"""

from repro.analysis import format_table
from repro.nuca import sixteen_core_config
from repro.parallel import build_parallel_workload, schedule_tasks
from repro.sim.parallel import PARALLEL_SCHEMES, evaluate_parallel


def affinity(workload, schedule) -> float:
    """Fraction of tasks that ran on their data's home core."""
    hits = sum(
        1
        for tid, core in enumerate(schedule.assignment)
        if core == workload.tasks[tid].home
    )
    return hits / len(workload.tasks)


def main() -> None:
    config = sixteen_core_config()
    workload = build_parallel_workload("connectedComponents", scale="ref", seed=0)
    print(
        f"connectedComponents: {len(workload.tasks)} tasks over "
        f"{workload.n_partitions} partitions, "
        f"{workload.total_accesses:,} accesses"
    )

    # Scheduling alone: conventional work stealing scatters tasks;
    # PaWS keeps them home.
    ws = schedule_tasks(workload, 16, policy="ws", seed=0)
    paws = schedule_tasks(
        workload, 16, policy="paws", geometry=config.geometry, seed=0
    )
    print(
        f"\ntask/home affinity: work-stealing {affinity(workload, ws):.0%}, "
        f"PaWS {affinity(workload, paws):.0%} "
        f"(imbalance {ws.imbalance:.2f} vs {paws.imbalance:.2f})"
    )

    # Full evaluation (Fig 13e).
    results = {s: evaluate_parallel(workload, config, s) for s in PARALLEL_SCHEMES}
    base = results["snuca"]
    rows = []
    for scheme in PARALLEL_SCHEMES:
        r = results[scheme]
        rows.append(
            [
                scheme,
                r.cycles / base.cycles,
                r.energy.total / base.energy.total,
                round(r.misses / max(r.llc_accesses, 1), 3),
            ]
        )
    print()
    print(
        format_table(
            ["configuration", "exec time (vs S-NUCA)", "energy (vs S-NUCA)", "miss ratio"],
            rows,
        )
    )
    gain = results["jigsaw"].cycles / results["whirlpool+paws"].cycles
    energy_gain = (
        results["jigsaw"].energy.total
        / results["whirlpool+paws"].energy.total
    )
    print(
        f"\nWhirlpool+PaWS vs Jigsaw: {100 * (gain - 1):.0f}% faster, "
        f"{energy_gain:.1f}x less data-movement energy "
        "(paper: 67% and 2.6x)"
    )


if __name__ == "__main__":
    main()
