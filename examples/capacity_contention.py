#!/usr/bin/env python3
"""Multiprogrammed capacity contention (Fig 22's setting), step by step.

Runs a 4-app SPEC mix under Jigsaw and Whirlpool, showing how the joint
partitioner divides the shared LLC across programs and pools, and how
classification changes the division.

Run:  python examples/capacity_contention.py
"""

from repro.analysis import format_table
from repro.core.whirlpool import WhirlpoolScheme
from repro.core.whirltool import train_whirltool
from repro.nuca import four_core_config
from repro.schemes import JigsawScheme, SingleVCClassifier
from repro.sim import simulate_mix, weighted_speedup
from repro.workloads import build_workload

MIX = ["mcf", "sphinx3", "cactus", "omnet"]


def main() -> None:
    config = four_core_config()
    apps = [build_workload(n, scale="train", seed=i) for i, n in enumerate(MIX)]
    print(f"mix: {', '.join(MIX)} on {config.name} "
          f"(LLC {config.llc_bytes / 2**20:.1f} MB)")

    jig = simulate_mix(apps, config, JigsawScheme,
                       classifiers=[SingleVCClassifier()] * 4, n_intervals=8)
    classifiers = [train_whirltool(n, n_pools=3) for n in MIX]
    whirl = simulate_mix(
        apps, config, lambda c, v: WhirlpoolScheme(c, v),
        classifiers=classifiers, n_intervals=8,
    )

    # Per-app outcome.
    rows = []
    for name, rj, rw in zip(MIX, jig.per_app, whirl.per_app):
        rows.append(
            [
                name,
                round(rj.ipc, 3),
                round(rw.ipc, 3),
                f"{100 * (rw.ipc / rj.ipc - 1):+.1f}%",
                round(rw.bypasses * 1000 / rw.instructions, 1),
            ]
        )
    print()
    print(
        format_table(
            ["app", "IPC (Jigsaw)", "IPC (Whirlpool)", "gain", "bypass APKI"],
            rows,
        )
    )

    # Capacity division in the last interval (Whirlpool).
    print("\nWhirlpool's last-interval capacity split (MB per VC):")
    last = [r.history[-1] for r in whirl.per_app]
    for name, stats in zip(MIX, last):
        parts = ", ".join(
            f"{size / 2**20:.2f}" for size in stats.vc_sizes.values()
        )
        print(f"  {name:10s} [{parts}]")

    # Normalize the weighted speedup by Jigsaw's own (per-app IPCs as
    # the 'alone' reference cancel into an average per-app speedup).
    ws = weighted_speedup(whirl, [r.ipc for r in jig.per_app]) / len(MIX)
    print(f"\nweighted speedup vs Jigsaw: {ws:.3f} "
          "(paper Fig 22: up to 1.13 at 4 cores)")


if __name__ == "__main__":
    main()
