#!/usr/bin/env python3
"""Online Whirlpool: classify a live stream, epoch by epoch.

The batch pipeline (``automatic_classification.py``) profiles a whole
training run before clustering.  This example drives the *online*
variant instead:

1. synthesize a three-phase access stream (a drifting working set, the
   Fig-6/Fig-11 situation) and serve it as an **unbounded** source —
   ``n_records`` unknown, chunks arriving one at a time;
2. feed it to :class:`OnlineWhirlTool`, which seals a profiling epoch
   every ``epoch_records`` records, flags phase changes, and revises
   the pool clustering incrementally when they happen;
3. at end of stream, compare against the offline oracle
   (:func:`online_pools_reference`) run over the same records — on a
   sized source the streamed pools are *bit-identical* to it.

The CLI equivalent for real captures is::

    python -m repro ingest watch trace.csv --format csv --epoch-records 65536

Run:  python examples/online_whirlpool.py
"""

import numpy as np

from repro.core.whirltool import OnlineWhirlTool, online_pools_reference
from repro.ingest import ArraySource, IterableSource, TraceChunk

EPOCH_RECORDS = 2_000
N_EPOCHS = 9
NAMES = {0: "nodes", 1: "edges", 2: "flags"}


def synthesize(seed=7):
    """Three regions; the 'edges' working set grows 3x mid-stream."""
    rng = np.random.default_rng(seed)
    n = EPOCH_RECORDS * N_EPOCHS
    regions = rng.integers(0, 3, n).astype(np.int32)
    spread = np.where(np.arange(n) < n // 2, 40, 120)  # the phase change
    per_region = {0: 30, 1: 0, 2: 8}  # edges uses the drifting spread
    lines = np.empty(n, dtype=np.int64)
    for rid, width in per_region.items():
        mask = regions == rid
        w = spread[mask] if rid == 1 else width
        lines[mask] = rng.integers(0, w, mask.sum()) + rid * 4096
    return lines * 64, regions


def main() -> None:
    addrs, regions = synthesize()

    def arriving():
        # One network-packet-sized chunk at a time, no length up front.
        for start in range(0, len(addrs), 512):
            stop = start + 512
            yield TraceChunk(addrs=addrs[start:stop], regions=regions[start:stop])

    tool = OnlineWhirlTool(
        chunk_bytes=4096,
        n_chunks=64,
        sample_shift=0,
        n_pools=2,
        epoch_records=EPOCH_RECORDS,
    )
    tool.start(IterableSource(arriving(), region_names=NAMES))
    print(f"streaming {N_EPOCHS} epochs x {EPOCH_RECORDS} records:")
    for chunk in IterableSource(arriving(), region_names=NAMES).chunks(512):
        for report in tool.push(chunk):
            tags = []
            if report.phase_change:
                tags.append("PHASE CHANGE")
            if report.reclustered:
                tags.append("re-clustered")
            note = f"  <- {', '.join(tags)}" if tags else ""
            pools = {}
            for cp, pool in report.assignments.items():
                pools.setdefault(pool, []).append(NAMES[cp])
            cut = "  ".join(
                f"pool{p}={{{','.join(sorted(ms))}}}"
                for p, ms in sorted(pools.items())
            )
            print(f"  epoch {report.epoch}: {cut}{note}")
    final = tool.finish()

    print("\nfinal merge tree (streamed):")
    print(final.dendrogram_text())

    # The offline oracle over the same records, via a *sized* source:
    # equal-width intervals line up with the record-count epochs here,
    # so the streamed result must match float-for-float.
    offline = online_pools_reference(
        ArraySource(
            addrs=addrs,
            regions=regions,
            instructions=float(len(addrs)),
            region_names=NAMES,
        ),
        chunk_bytes=4096,
        n_chunks=64,
        sample_shift=0,
        n_intervals=N_EPOCHS,
    )
    identical = final.merges == offline.merges
    print(f"\nbit-identical to the offline pipeline: {identical}")
    assert identical


if __name__ == "__main__":
    main()
