#!/usr/bin/env python3
"""Why dynamic policies matter: lbm's alternating grids (Sec 2.2, Fig 6).

lbm's two grids look identical on average — any *static* per-pool policy
treats them the same — but per timestep one is the read-heavy source and
the other the streamed destination.  This example shows:

1. the alternating per-pool access rates (Fig 6),
2. Whirlpool's per-interval allocations following the swap, and
3. the static-classification-only strawman: freezing the first
   interval's allocation forfeits the gain.

Run:  python examples/phase_adaptation.py
"""

import numpy as np

from repro.analysis import format_table
from repro.core.whirlpool import WhirlpoolScheme
from repro.nuca import four_core_config
from repro.schemes import JigsawScheme, ManualPoolClassifier
from repro.sim import simulate
from repro.workloads import build_workload


class FrozenWhirlpool(WhirlpoolScheme):
    """Whirlpool that decides once and never reconfigures (static pools
    + static policy — the 'hints' strawman of Sec 2.2)."""

    def __init__(self, config, vcs, **kwargs):
        super().__init__(config, vcs, **kwargs)
        self._frozen = None

    def decide(self, curves):
        if self._frozen is None:
            self._frozen = super().decide(curves)
        return self._frozen


def main() -> None:
    config = four_core_config()
    workload = build_workload("lbm", scale="ref", seed=0)
    mapping, specs = ManualPoolClassifier().classify(workload)
    names = {s.vc_id: s.name for s in specs}

    # --- 1. Fig 6: alternating APKI. -----------------------------------
    n_windows = 10
    bounds = np.linspace(0, len(workload.trace), n_windows + 1).astype(int)
    print("per-window APKI (Fig 6):")
    ids = sorted(workload.region_names)
    instr_per = workload.trace.instructions / n_windows
    rows = []
    for t in range(n_windows):
        seg = workload.trace.regions[bounds[t] : bounds[t + 1]]
        rows.append(
            [t]
            + [
                round(np.count_nonzero(seg == rid) * 1000.0 / instr_per, 1)
                for rid in ids
            ]
        )
    print(
        format_table(
            ["window"] + [workload.region_names[r] for r in ids], rows
        )
    )

    # --- 2/3. Adaptive vs frozen vs Jigsaw. -----------------------------
    jig = simulate(workload, config, JigsawScheme)
    whirl = simulate(
        workload,
        config,
        lambda c, v: WhirlpoolScheme(c, v),
        classifier=ManualPoolClassifier(),
    )
    frozen = simulate(
        workload,
        config,
        lambda c, v: FrozenWhirlpool(c, v),
        classifier=ManualPoolClassifier(),
    )
    print("\nallocation trace (Whirlpool, MB per pool):")
    rows = []
    for t, stats in enumerate(whirl.history[:12]):
        rows.append(
            [t]
            + [round(stats.vc_sizes.get(vc, 0) / 2**20, 2) for vc in sorted(names)]
        )
    print(format_table(["interval"] + [names[vc] for vc in sorted(names)], rows))

    print("\nexecution time vs Jigsaw:")
    print(f"  Whirlpool (adaptive): {whirl.cycles / jig.cycles:.3f}")
    print(f"  Whirlpool (frozen first decision): {frozen.cycles / jig.cycles:.3f}")
    print(
        "\n(the paper's point: static classification alone is not enough —"
        " the dynamic per-pool policy captures the phase swaps)"
    )


if __name__ == "__main__":
    main()
