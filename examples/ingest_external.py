#!/usr/bin/env python3
"""Ingesting an external memory trace, end to end.

Plays both sides of the fence: first *captures* a fake application —
a packed-binary address trace (the shape a DynamoRIO memtrace client
produces) plus an allocation log — then ingests it:

1. attribute raw addresses to Whirlpool regions via the allocation log
   (unattributed addresses fall into the "heap" pool),
2. convert to the native ``.rtrace`` archive (content-fingerprinted),
3. register it under ``$REPRO_TRACE_DIR`` so every scheme, sweep and
   campaign can run it by name,
4. profile it **out of core** with the streaming engine and check the
   curves are bit-identical to the in-memory profiler.

Run:  python examples/ingest_external.py
"""

import os
import tempfile
from pathlib import Path

import numpy as np

from repro.ingest import (
    ArraySource,
    AttributionTable,
    RTraceSource,
    StreamingStackProfiler,
    convert_to_rtrace,
    open_trace_source,
    write_trace_file,
)
from repro.curves.reuse import StackDistanceProfiler
from repro.mem.allocator import HeapAllocator


def capture_fake_application(workdir: Path) -> tuple[Path, Path]:
    """Produce what an instrumentation tool would hand us."""
    heap = HeapAllocator()
    graph = heap.pool_malloc(4 << 20, heap.pool_create(), callpoint=1001)
    index = heap.pool_malloc(1 << 20, heap.pool_create(), callpoint=1002)
    rng = np.random.default_rng(42)
    addrs = np.concatenate(
        [
            graph.base + rng.integers(0, graph.size, 300_000),  # scattered
            index.base + rng.integers(0, index.size, 150_000),  # hot
            rng.integers(0x7FF0_0000, 0x7FF2_0000, 50_000),  # stack-ish
        ]
    )
    rng.shuffle(addrs)

    trace_path = workdir / "capture.mtrace"
    write_trace_file(trace_path, ArraySource(addrs=addrs.astype(np.int64)))
    table = AttributionTable.from_heap(
        heap, names={1001: "graph", 1002: "index"}
    )
    log_path = workdir / "allocs.jsonl"
    table.to_log(log_path)
    return trace_path, log_path


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-ingest-"))
    trace_path, log_path = capture_fake_application(workdir)
    print(f"captured: {trace_path.name} "
          f"({trace_path.stat().st_size >> 20} MiB), {log_path.name}")

    # 1+2. Attribute and convert (equivalent CLI:
    #   python -m repro ingest convert capture.mtrace app.rtrace \
    #       --alloc-log allocs.jsonl --apki 12)
    source = open_trace_source(trace_path)
    table = AttributionTable.from_log(log_path)
    archive = workdir / "extapp.rtrace"
    header = convert_to_rtrace(source, archive, table=table, apki=12.0)
    print(f"converted: {header['n_records']} records, "
          f"regions {sorted(header['region_names'].values())}, "
          f"fingerprint {header['fingerprint']}")

    # 3. Register: any `<name>.rtrace` in $REPRO_TRACE_DIR resolves by
    #    name (equivalent CLI: python -m repro ingest register ...).
    traces_dir = workdir / "traces"
    traces_dir.mkdir()
    (traces_dir / "extapp.rtrace").write_bytes(archive.read_bytes())
    os.environ["REPRO_TRACE_DIR"] = str(traces_dir)
    from repro.workloads import build_workload

    workload = build_workload("extapp")
    print(f"registered workload: {workload.name}, "
          f"{len(workload.trace)} accesses, apki {workload.trace.apki:.1f}")

    # 4. Out-of-core profiling, bit-identical to in-memory.
    rtrace = RTraceSource(traces_dir / "extapp.rtrace")
    streaming = StreamingStackProfiler(chunk_bytes=64 * 1024, n_chunks=64)
    got = streaming.profile_source(rtrace, n_intervals=4,
                                   chunk_records=1 << 16)
    mem = StackDistanceProfiler(chunk_bytes=64 * 1024, n_chunks=64)
    want = mem.profile(workload.trace.lines, workload.trace.regions,
                       workload.trace.instructions, n_intervals=4)
    exact = all(
        np.array_equal(cg.misses, cw.misses)
        for rid in want
        for cg, cw in zip(got[rid], want[rid])
    )
    print(f"streaming vs in-memory curves bit-identical: {exact}")
    for rid, curves in sorted(got.items()):
        name = rtrace.region_names.get(rid, str(rid))
        print(f"  region {name:>6}: apki {curves[0].apki:.2f}, "
              f"{len(curves)} interval curves")


if __name__ == "__main__":
    main()
