#!/usr/bin/env python3
"""WhirlTool end to end: profile, cluster, classify, evaluate.

Reproduces the Sec-4 pipeline on mis (maximal independent set):

1. profile a *training* run per allocation callpoint,
2. agglomeratively cluster callpoints into pools using the
   combined-vs-partitioned miss-curve distance (Fig 15),
3. apply the trained classifier to the *full-size* run, and
4. compare against plain Jigsaw and the hand classification.

Run:  python examples/automatic_classification.py
"""

from repro.analysis import format_table
from repro.core.whirlpool import WhirlpoolScheme
from repro.core.whirltool import (
    WhirlToolAnalyzer,
    WhirlToolClassifier,
    WhirlToolProfiler,
)
from repro.nuca import four_core_config
from repro.schemes import JigsawScheme, ManualPoolClassifier
from repro.sim import simulate
from repro.workloads import build_workload


def main() -> None:
    config = four_core_config()

    # --- WhirlTool profiler (Sec 4.1): train on the small input. -------
    train = build_workload("MIS", scale="train", seed=0)
    profile = WhirlToolProfiler(n_intervals=8).profile(train)
    print("profiled callpoints (training run):")
    for cp in profile.callpoints:
        print(
            f"  {profile.names[cp]:10s} id={cp:<12d} "
            f"accesses={profile.total_accesses(cp):,.0f}"
        )

    # --- WhirlTool analyzer (Sec 4.2): cluster into pools. -------------
    clustering = WhirlToolAnalyzer().cluster(profile)
    print("\nmerge tree (Fig 17 style — distance, clusters):")
    print(clustering.dendrogram_text())
    assignments = clustering.assignments(2)
    print("\n2-pool cut:")
    for cp, pool in sorted(assignments.items(), key=lambda kv: kv[1]):
        print(f"  pool {pool}: {profile.names[cp]}")

    # --- WhirlTool runtime (Sec 4.3): evaluate on the ref input. -------
    ref = build_workload("MIS", scale="ref", seed=0)
    jigsaw = simulate(ref, config, JigsawScheme)
    rows = [["Jigsaw", 1.0, 1.0]]
    for label, classifier in [
        ("Whirlpool (WhirlTool, 2 pools)", WhirlToolClassifier(clustering, 2)),
        ("Whirlpool (WhirlTool, 3 pools)", WhirlToolClassifier(clustering, 3)),
        ("Whirlpool (manual, Table 2)", ManualPoolClassifier()),
    ]:
        r = simulate(
            ref,
            config,
            lambda c, v: WhirlpoolScheme(c, v),
            classifier=classifier,
        )
        rows.append(
            [
                label,
                jigsaw.cycles / r.cycles,
                jigsaw.energy.total / r.energy.total,
            ]
        )
    print()
    print(format_table(["configuration", "speedup", "energy gain"], rows))
    print(
        "\n(the paper reports +38% performance and -53% data-movement "
        "energy for mis; WhirlTool should match the manual port)"
    )


if __name__ == "__main__":
    main()
