#!/usr/bin/env python3
"""Quickstart: run one benchmark under Jigsaw and Whirlpool.

Builds the paper's dt (Delaunay triangulation) workload, simulates it on
the 4-core / 5x5-bank chip of Fig 1 under S-NUCA, Jigsaw, and Whirlpool
(with the Table-2 manual pools), and prints the Fig-3/4/5-style placement
plus the headline comparison.

Run:  python examples/quickstart.py
"""

from repro.analysis import format_table, placement_map
from repro.nuca import four_core_config
from repro.core.whirlpool import WhirlpoolScheme
from repro.schemes import JigsawScheme, ManualPoolClassifier, SNUCAScheme
from repro.sim import simulate
from repro.workloads import build_workload


def main() -> None:
    config = four_core_config()
    print(f"chip: {config.name}, LLC {config.llc_bytes / 2**20:.1f} MB")

    # 1. Build the workload.  dt allocates points / vertices / triangles
    #    from separate pools (Table 2).
    workload = build_workload("delaunay", scale="ref", seed=0)
    footprint = workload.trace.region_footprint_bytes()
    print(f"\ndt: {len(workload.trace):,} LLC accesses, pools:")
    for rid, nbytes in sorted(footprint.items(), key=lambda kv: kv[1]):
        print(
            f"  {workload.region_names[rid]:10s} {nbytes / 2**20:5.2f} MB"
        )

    # 2. Simulate under three schemes.
    snuca = simulate(workload, config, lambda c, v: SNUCAScheme(c, v, "lru"))
    jigsaw = simulate(workload, config, JigsawScheme)
    whirlpool = simulate(
        workload,
        config,
        lambda c, v: WhirlpoolScheme(c, v),
        classifier=ManualPoolClassifier(),
    )

    # 3. Compare (normalized to Jigsaw, like the paper's figures).
    rows = []
    for result in (snuca, jigsaw, whirlpool):
        rows.append(
            [
                result.name,
                result.cycles / jigsaw.cycles,
                result.energy.total / jigsaw.energy.total,
                round(result.data_stall_cpi, 3),
            ]
        )
    print()
    print(
        format_table(
            ["scheme", "exec time (vs Jigsaw)", "energy (vs Jigsaw)", "stall CPI"],
            rows,
        )
    )

    # 4. Show where Whirlpool placed each pool (Fig 5).
    captured = {}

    class Capturing(WhirlpoolScheme):
        def decide(self, curves):
            alloc = super().decide(curves)
            captured.clear()
            for vc, a in alloc.items():
                if a.placement is not None:
                    captured[self.vcs[vc].name] = a.placement
            return alloc

    simulate(workload, config, Capturing, classifier=ManualPoolClassifier())
    print("\nWhirlpool's placement (core at *):")
    print(placement_map(config.geometry, captured, core=0))


if __name__ == "__main__":
    main()
