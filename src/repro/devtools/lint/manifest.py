"""The invariants manifest: the pinned facts the rules check against.

``invariants.toml`` (shipped next to this module) is the single place
where the repo's fixture-coupled and bit-identity invariants are written
down as data:

- ``[[callpoint_pin]]`` — statements whose *line number* is load-bearing
  because callpoint ids hash (file, line) call-frame pairs.
- ``[[engine]]`` — every public kernel with a vectorized/batched engine,
  paired with its retained serial reference oracle.  New ``engine=``
  kernels must be registered here (the oracle-pairing rule fails
  otherwise).
- ``[[fingerprint]]`` — for each content fingerprint, the functions
  whose hash-update calls define its input field set, pinned as a
  digest, plus the format-version constant that must be bumped whenever
  that set changes.
- ``[atomic_publish]`` — the module prefixes where all final-artifact
  writes must flow through same-directory temp + ``os.replace``.

Fixture tests point the loader at scratch manifests, so every rule can
be exercised against synthetic trees.
"""

from __future__ import annotations

import tomllib
from pathlib import Path

__all__ = ["DEFAULT_MANIFEST", "load_manifest"]

#: The in-repo manifest shipped with the package.
DEFAULT_MANIFEST = Path(__file__).with_name("invariants.toml")


def load_manifest(path: str | Path | None = None) -> dict:
    """Load and structurally validate an invariants manifest."""
    path = Path(path) if path is not None else DEFAULT_MANIFEST
    with open(path, "rb") as f:
        data = tomllib.load(f)
    for pin in data.get("callpoint_pin", []):
        for key in ("file", "line", "statement"):
            if key not in pin:
                raise ValueError(
                    f"{path}: callpoint_pin entry missing {key!r}"
                )
    for eng in data.get("engine", []):
        for key in ("kernel", "module", "reference"):
            if key not in eng:
                raise ValueError(f"{path}: engine entry missing {key!r}")
    for fp in data.get("fingerprint", []):
        for key in (
            "name",
            "file",
            "functions",
            "version_file",
            "version_const",
            "version",
            "fields_digest",
        ):
            if key not in fp:
                raise ValueError(
                    f"{path}: fingerprint entry missing {key!r}"
                )
    return data
