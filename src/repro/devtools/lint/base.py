"""The rule framework: findings, rules, the registry, and suppression.

A rule is a class with an ``id``, a docstring (its rationale, printed by
``repro lint --explain``), and one or both hooks:

- :meth:`Rule.check_file` — called once per linted source file with its
  parsed AST (:class:`LintedFile`).
- :meth:`Rule.check_project` — called once per run with the whole
  :class:`Project`.  Project rules check repo-level invariants (pinned
  line numbers, cross-file pairings) against the repository tree rooted
  at ``project.root``, independent of which paths were passed on the
  command line — so linting a single file still verifies the pins.

Findings on a line carrying ``# repro: noqa[rule-id]`` (or
``# repro: noqa[*]``) are suppressed; every suppression of a shipped
rule should carry a comment justifying why the finding is a false
positive.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Finding",
    "LintedFile",
    "Project",
    "RULES",
    "Rule",
    "register_rule",
]

#: ``# repro: noqa[rule-id]`` / ``# repro: noqa[rule-a,rule-b]`` / ``[*]``.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\[([^\]]+)\]")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a repo-relative file and line."""

    file: str
    line: int
    rule_id: str
    message: str

    def to_dict(self) -> dict[str, object]:
        """The JSON-output record (``repro lint --format json``)."""
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule_id,
            "message": self.message,
        }


class LintedFile:
    """One parsed source file.

    Attributes:
        path: absolute path.
        rel: repo-relative POSIX path (the ``Finding.file`` key).
        source: file text.
        lines: source split into lines (1-indexed via ``lines[n - 1]``).
        tree: parsed AST, or ``None`` when the file does not parse (the
            runner reports a ``parse-error`` finding instead).
        noqa: line number -> set of suppressed rule ids on that line.
    """

    def __init__(self, path: Path, rel: str, source: str) -> None:
        self.path = path
        self.rel = rel
        self.source = source
        self.lines = source.splitlines()
        try:
            self.tree: ast.Module | None = ast.parse(source)
        except SyntaxError:
            self.tree = None
        self.noqa: dict[int, set[str]] = {}
        for n, line in enumerate(self.lines, 1):
            m = _NOQA_RE.search(line)
            if m:
                self.noqa[n] = {
                    rule.strip() for rule in m.group(1).split(",")
                }

    def suppressed(self, finding: Finding) -> bool:
        """Whether this file's noqa comments silence ``finding``."""
        ids = self.noqa.get(finding.line)
        return ids is not None and (finding.rule_id in ids or "*" in ids)


class Project:
    """The repository tree a lint run checks.

    ``files`` holds the explicitly linted files (the CLI's path
    arguments); project rules that need repo-wide context — test
    sources, pinned modules — load them on demand through :meth:`file`
    and :meth:`glob_sources`, cached, so the invariants they check do
    not depend on which paths were linted.
    """

    def __init__(self, root: Path, manifest: dict, files: list[LintedFile]):
        self.root = Path(root)
        self.manifest = manifest
        self.files = files
        self._cache: dict[str, LintedFile | None] = {
            f.rel: f for f in files
        }

    def file(self, rel: str) -> LintedFile | None:
        """Load a repo-relative source file (cached; None if missing)."""
        if rel in self._cache:
            return self._cache[rel]
        path = self.root / rel
        out: LintedFile | None = None
        if path.is_file():
            try:
                out = LintedFile(
                    path, rel, path.read_text(encoding="utf-8")
                )
            except (OSError, UnicodeDecodeError):
                out = None
        self._cache[rel] = out
        return out

    def glob_sources(self, subdir: str) -> list[LintedFile]:
        """All Python sources under ``root/subdir``, loaded via the cache."""
        base = self.root / subdir
        if not base.is_dir():
            return []
        out = []
        for path in sorted(base.rglob("*.py")):
            if any(part.startswith(".") for part in path.parts) or (
                "__pycache__" in path.parts
            ):
                continue
            f = self.file(path.relative_to(self.root).as_posix())
            if f is not None:
                out.append(f)
        return out


class Rule:
    """Base class every lint rule derives from.

    Subclasses set :attr:`id`, write their rationale as the class
    docstring, and override :meth:`check_file`, :meth:`check_project`,
    or both.
    """

    #: Stable kebab-case identifier (CLI ``--rules``, noqa brackets).
    id: str = ""

    def check_file(
        self, f: LintedFile, project: Project
    ) -> Iterator[Finding]:
        """Yield findings for one parsed file (default: none)."""
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        """Yield repo-level findings (default: none)."""
        return iter(())

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def finding(self, f: LintedFile | str, line: int, message: str) -> Finding:
        """Build a finding tagged with this rule's id."""
        rel = f if isinstance(f, str) else f.rel
        return Finding(file=rel, line=line, rule_id=self.id, message=message)

    @staticmethod
    def functions(
        tree: ast.Module,
    ) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
        """Yield ``(qualname, node)`` for every function in a module."""

        def walk(
            body: Iterable[ast.stmt], prefix: str
        ) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
            for node in body:
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    qual = f"{prefix}{node.name}"
                    yield qual, node
                    yield from walk(node.body, f"{qual}.")
                elif isinstance(node, ast.ClassDef):
                    yield from walk(node.body, f"{prefix}{node.name}.")

        return walk(tree.body, "")


#: The rule registry: rule id -> rule class.
RULES: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to :data:`RULES`."""
    if not cls.id:
        raise ValueError(f"{cls.__name__} has no rule id")
    if cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    RULES[cls.id] = cls
    return cls


def iter_rule_instances(
    only: Iterable[str] | None = None,
) -> list[Rule]:
    """Instantiate registered rules, optionally restricted to ``only``."""
    if only is None:
        ids = sorted(RULES)
    else:
        ids = list(only)
        unknown = [i for i in ids if i not in RULES]
        if unknown:
            raise ValueError(
                f"unknown rule ids: {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(RULES))}"
            )
    return [RULES[i]() for i in ids]


def call_name(node: ast.expr) -> str | None:
    """Dotted name of a call target (``np.savez`` -> "np.savez")."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None
