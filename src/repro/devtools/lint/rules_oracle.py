"""Oracle pairing: every batched engine keeps its serial ground truth.

The repo's bit-identity discipline (PRs 2-6) is: a vectorized engine
may replace a serial implementation only if the serial version is
*retained* as an independently-derived oracle and a test pins the two
bit-identical.  This rule makes the discipline mechanical.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.base import (
    Finding,
    Project,
    Rule,
    register_rule,
)

__all__ = ["OraclePairingRule"]

#: Reference spelled ``engine:<name>`` means the oracle is an inline
#: dispatch path selected by the kernel's ``engine=`` switch, not a
#: ``*_reference`` sibling function.
_INLINE_PREFIX = "engine:"


@register_rule
class OraclePairingRule(Rule):
    """Public kernels with a batched engine must retain a serial oracle.

    Every entry in ``invariants.toml``'s ``[[engine]]`` table names a
    public kernel and its reference: either a retained ``*_reference``
    sibling in the same module, or (``engine:<name>``) an inline serial
    path behind the kernel's ``engine=`` switch.  The rule checks three
    things: the kernel exists, the reference still exists, and at least
    one test or benchmark file references both names — i.e. the
    bit-identity pin has not been quietly deleted.  Conversely, any
    public ``src/`` function that grows an ``engine=`` parameter must be
    registered in the manifest, so new engines cannot ship oracle-less.
    """

    id = "oracle-pairing"

    def check_project(self, project: Project) -> Iterator[Finding]:
        entries = project.manifest.get("engine", [])
        registered = {e["kernel"].split(".")[-1] for e in entries}
        for entry in entries:
            yield from self._check_entry(project, entry)
        # Sweep src/ for unregistered engine= switches.
        for f in project.glob_sources("src"):
            if f.tree is None:
                continue
            for qual, node in self.functions(f.tree):
                name = qual.split(".")[-1]
                if name.startswith("_") or name in registered:
                    continue
                if self._has_engine_param(node):
                    yield self.finding(
                        f,
                        node.lineno,
                        f"public kernel {qual!r} takes an engine= switch "
                        "but is not registered in invariants.toml's "
                        "[[engine]] table; register it with its serial "
                        "reference oracle",
                    )

    # ------------------------------------------------------------------
    # Manifest entries
    # ------------------------------------------------------------------
    def _check_entry(self, project: Project, entry: dict) -> Iterator[Finding]:
        kernel = entry["kernel"]
        reference = entry["reference"]
        f = project.file(entry["module"])
        if f is None or f.tree is None:
            yield self.finding(
                entry["module"],
                1,
                f"engine module for kernel {kernel!r} is missing or "
                "unparseable",
            )
            return
        defs = {qual: node for qual, node in self.functions(f.tree)}
        knode = defs.get(kernel)
        if knode is None:
            yield self.finding(
                f,
                1,
                f"kernel {kernel!r} is registered in invariants.toml but "
                f"not defined in {entry['module']}",
            )
            return
        if reference.startswith(_INLINE_PREFIX):
            engine_name = reference[len(_INLINE_PREFIX) :]
            if not self._mentions_literal(knode, engine_name):
                yield self.finding(
                    f,
                    knode.lineno,
                    f"kernel {kernel!r} declares an inline "
                    f"engine={engine_name!r} oracle path but its body "
                    f"never dispatches on the literal {engine_name!r}",
                )
                return
            needles = (kernel.split(".")[-1], f'engine="{engine_name}"')
        else:
            rnode = defs.get(reference)
            if rnode is None:
                yield self.finding(
                    f,
                    knode.lineno,
                    f"kernel {kernel!r} has no retained reference oracle: "
                    f"{reference!r} is not defined in {entry['module']} "
                    "(renamed or deleted?)",
                )
                return
            needles = (kernel.split(".")[-1], reference.split(".")[-1])
        if not self._test_references(project, needles):
            yield self.finding(
                f,
                knode.lineno,
                f"no test or benchmark file references both "
                f"{needles[0]!r} and {needles[1]!r}; the bit-identity "
                "pin between the engine and its oracle is gone",
            )

    @staticmethod
    def _has_engine_param(
        node: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> bool:
        params = node.args.args + node.args.kwonlyargs
        return any(a.arg == "engine" for a in params)

    @staticmethod
    def _mentions_literal(node: ast.AST, literal: str) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Constant) and sub.value == literal:
                return True
        return False

    @staticmethod
    def _test_references(
        project: Project, needles: tuple[str, str]
    ) -> bool:
        for subdir in ("tests", "benchmarks"):
            for f in project.glob_sources(subdir):
                if all(needle in f.source for needle in needles):
                    return True
        return False
