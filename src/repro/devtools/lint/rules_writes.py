"""Atomic publish: final artifacts appear whole or not at all.

Everything under the artifact store and experiment layers must write
final files as same-directory temp + ``os.replace`` so a crash mid-write
leaves only ``.*.tmp`` residue (which ``store gc`` removes) and never a
truncated artifact that a later reader trusts.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.base import (
    Finding,
    LintedFile,
    Project,
    Rule,
    call_name,
    register_rule,
)

__all__ = ["AtomicPublishRule"]

#: open() modes that create/truncate a file (append is exempt: the JSONL
#: result store relies on O_APPEND write-through semantics).
_CREATE_MODES = {"w", "wb", "x", "xb", "w+", "wb+", "w+b", "xt", "wt"}

#: numpy writers that take a path-or-handle first argument.
_NP_WRITERS = {"save", "savez", "savez_compressed", "savetxt"}


def _is_staging_expr(node: ast.expr, staging_names: set[str]) -> bool:
    """Whether a write target is a staging (temp) path or handle."""
    if isinstance(node, ast.Name) and node.id in staging_names:
        return True
    snippet = ast.unparse(node).lower()
    return "tmp" in snippet or "temp" in snippet


class _WriteVisitor(ast.NodeVisitor):
    """Collects non-atomic write sites in one file."""

    def __init__(self, rule: Rule, f: LintedFile) -> None:
        self.rule = rule
        self.f = f
        self.findings: list[Finding] = []
        #: names bound from ``with open(<staging>, ...) as f`` — writes
        #: through these handles land in the temp file, not the final one.
        self.staging_names: set[str] = set()

    # -- staging-handle tracking ---------------------------------------
    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            ctx = item.context_expr
            if (
                isinstance(ctx, ast.Call)
                and call_name(ctx.func) in ("open", "io.open", "Path.open")
                and ctx.args
                and _is_staging_expr(ctx.args[0], self.staging_names)
                and isinstance(item.optional_vars, ast.Name)
            ):
                self.staging_names.add(item.optional_vars.id)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        value = node.value
        if (
            isinstance(value, ast.Call)
            and call_name(value.func) in ("open", "io.open")
            and value.args
            and _is_staging_expr(value.args[0], self.staging_names)
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.staging_names.add(target.id)
        self.generic_visit(node)

    # -- write sites ---------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = call_name(node.func)
        if name in ("os.rename", "shutil.move"):
            self._flag(
                node,
                f"{name}() is not atomic across directories; publish via "
                "same-directory os.replace(tmp, final)",
            )
        elif name is not None and name.split(".")[-1] == "open":
            self._check_open(node)
        elif name is not None and (
            name.startswith("np.") or name.startswith("numpy.")
        ):
            if name.split(".")[-1] in _NP_WRITERS and node.args:
                if not _is_staging_expr(node.args[0], self.staging_names):
                    target = ast.unparse(node.args[0])
                    self._flag(
                        node,
                        f"{name}() writes {target!r} in place; write to a "
                        "same-directory temp path and os.replace() it into "
                        "the final name",
                    )
        elif isinstance(node.func, ast.Attribute) and node.func.attr in (
            "write_text",
            "write_bytes",
        ):
            if not _is_staging_expr(node.func.value, self.staging_names):
                target = ast.unparse(node.func.value)
                self._flag(
                    node,
                    f".{node.func.attr}() on {target!r} truncates the "
                    "final artifact in place; stage to a temp sibling and "
                    "os.replace() it",
                )
        self.generic_visit(node)

    def _check_open(self, node: ast.Call) -> None:
        mode = None
        if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
            mode = node.args[1].value
        for kw in node.keywords:
            if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                mode = kw.value.value
        if not isinstance(mode, str) or mode not in _CREATE_MODES:
            return
        target_expr: ast.expr | None
        if call_name(node.func) in ("open", "io.open"):
            target_expr = node.args[0] if node.args else None
        else:  # path.open("w")
            target_expr = node.func.value  # type: ignore[union-attr]
        if target_expr is None:
            return
        if _is_staging_expr(target_expr, self.staging_names):
            return
        target = ast.unparse(target_expr)
        self._flag(
            node,
            f"open({target!r}, {mode!r}) truncates a final path in "
            "place; a crash mid-write leaves a partial artifact — stage "
            "to a same-directory temp file and os.replace() it",
        )

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            self.rule.finding(self.f, getattr(node, "lineno", 1), message)
        )


@register_rule
class AtomicPublishRule(Rule):
    """Store/exp layers must publish files via temp + ``os.replace``.

    Within the module prefixes listed under ``[atomic_publish]`` in
    ``invariants.toml``, any write that creates or truncates a *final*
    path is a crash hazard: a reader (or ``store verify``) that races or
    follows a crash sees a truncated artifact with a valid name.  The
    discipline is: create ``.{name}.{pid}.tmp`` in the destination
    directory, write it fully, then ``os.replace`` — which is atomic on
    POSIX within a filesystem.  Cross-directory ``os.rename`` and
    ``shutil.move`` are flagged unconditionally (move degrades to
    copy+delete across mounts).  Append-mode opens are exempt.  Writes
    whose target is recognizably a staging path (name contains ``tmp``)
    or a handle opened on one are the sanctioned pattern.
    """

    id = "atomic-publish"

    def check_file(
        self, f: LintedFile, project: Project
    ) -> Iterator[Finding]:
        prefixes = project.manifest.get("atomic_publish", {}).get(
            "modules", []
        )
        if f.tree is None or not any(
            f.rel == p or f.rel.startswith(p.rstrip("/") + "/")
            for p in prefixes
        ):
            return
        visitor = _WriteVisitor(self, f)
        visitor.visit(f.tree)
        yield from visitor.findings
