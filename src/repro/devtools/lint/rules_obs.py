"""Observability discipline: spans must pair, instrumentation must stay.

The ``repro.obs`` span model emits paired ``span-start`` / ``span-end``
records; a span that never ends poisons every rollup built on the log
(durations missing, parents dangling).  The API makes ending automatic
*only* through the ``with`` form — so the lint layer enforces the two
ways a call site can break the pairing: a bare ``obs.span(...)`` call
that is never entered, and an ``obs.start_span(...)`` handle that is
never ``.end()``ed.  A manifest list additionally pins which modules
carry instrumentation at all, so a refactor cannot silently strip the
event vocabulary the chaos replay tests and ``campaign status`` depend
on.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.base import (
    Finding,
    LintedFile,
    Project,
    Rule,
    call_name,
    register_rule,
)

__all__ = ["ObsSpanPairingRule"]


def _obs_aliases(tree: ast.Module) -> tuple[set[str], set[str]]:
    """Names under which ``span`` / ``start_span`` are visible.

    Returns ``(span_names, start_span_names)`` of dotted call-target
    names: ``obs.span`` from ``from repro import obs`` (or any
    ``import repro.obs as obs`` style alias), bare ``span`` from
    ``from repro.obs import span``.
    """
    span_names: set[str] = set()
    start_names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.module == "repro" and any(
                a.name == "obs" for a in node.names
            ):
                for a in node.names:
                    if a.name == "obs":
                        base = a.asname or a.name
                        span_names.add(f"{base}.span")
                        start_names.add(f"{base}.start_span")
            elif node.module in ("repro.obs", "repro.obs.core"):
                for a in node.names:
                    if a.name == "span":
                        span_names.add(a.asname or a.name)
                    elif a.name == "start_span":
                        start_names.add(a.asname or a.name)
        elif isinstance(node, ast.Import):
            for a in node.names:
                if a.name == "repro.obs" and a.asname:
                    span_names.add(f"{a.asname}.span")
                    start_names.add(f"{a.asname}.start_span")
    return span_names, start_names


@register_rule
class ObsSpanPairingRule(Rule):
    """``obs.span`` must be entered; ``obs.start_span`` must be ended.

    ``obs.span(...)`` returns a context manager that emits its
    ``span-start`` on ``__enter__`` and its ``span-end`` (with the
    measured duration) on ``__exit__`` — a call that is not the context
    expression of a ``with`` statement either does nothing (never
    entered) or, worse, is entered manually and leaks an open span into
    the nesting stack on an exception.  ``obs.start_span(...)`` is the
    sanctioned cross-frame escape hatch; its handle must be kept (not
    discarded as a bare expression statement) and the module must call
    ``.end()`` on some handle, or every one of its spans dangles in the
    event log and span rollups silently undercount.

    The ``[obs] instrumented`` manifest list pins modules whose
    instrumentation is load-bearing (chaos-replay tests reconstruct
    runs from their events): each listed file must exist and still
    reference ``repro.obs``.
    """

    id = "obs-span-pairing"

    def check_file(
        self, f: LintedFile, project: Project
    ) -> Iterator[Finding]:
        if f.tree is None:
            return
        span_names, start_names = _obs_aliases(f.tree)
        if not span_names and not start_names:
            return

        with_exprs: set[ast.expr] = set()
        bare_exprs: set[ast.expr] = set()
        for node in ast.walk(f.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_exprs.add(item.context_expr)
            elif isinstance(node, ast.Expr):
                bare_exprs.add(node.value)

        saw_end = any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "end"
            for node in ast.walk(f.tree)
        )

        start_sites: list[ast.Call] = []
        for node in ast.walk(f.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node.func)
            if name in span_names:
                if node not in with_exprs:
                    yield self.finding(
                        f,
                        node.lineno,
                        f"{name}(...) outside a `with` statement: the "
                        "span-end (and its duration) is only emitted by "
                        "__exit__ — use `with "
                        f"{name}(...)`, or start_span() for spans ended "
                        "in another frame",
                    )
            elif name in start_names:
                start_sites.append(node)
                if node in bare_exprs:
                    yield self.finding(
                        f,
                        node.lineno,
                        f"{name}(...) handle discarded: keep the handle "
                        "and call .end() exactly once, or the span never "
                        "closes in the event log",
                    )
        if start_sites and not saw_end:
            yield self.finding(
                f,
                start_sites[0].lineno,
                "start_span() is called but no handle .end() appears in "
                "this module: every started span must be explicitly "
                "ended or it dangles in the event log",
            )

    def check_project(self, project: Project) -> Iterator[Finding]:
        listed = project.manifest.get("obs", {}).get("instrumented", [])
        for rel in listed:
            f = project.file(rel)
            if f is None:
                yield self.finding(
                    rel,
                    1,
                    "listed under [obs] instrumented in invariants.toml "
                    "but missing from the tree; update the manifest if "
                    "the module moved",
                )
                continue
            span_names, start_names = (
                _obs_aliases(f.tree) if f.tree is not None else (set(), set())
            )
            if not span_names and not start_names:
                yield self.finding(
                    rel,
                    1,
                    "listed under [obs] instrumented but no longer "
                    "imports repro.obs — its events are load-bearing "
                    "(chaos replay, campaign status); restore the "
                    "instrumentation or re-pin the manifest deliberately",
                )
