"""Drive a lint run: collect files, apply rules, filter suppressions."""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import Iterable, Sequence

from repro.devtools.lint.base import (
    RULES,
    Finding,
    LintedFile,
    Project,
    iter_rule_instances,
)
from repro.devtools.lint.manifest import load_manifest

__all__ = [
    "explain_rule",
    "find_root",
    "format_json",
    "format_text",
    "lint_paths",
]


def find_root(start: Path | None = None) -> Path:
    """Locate the repository root (nearest ancestor with pyproject.toml)."""
    start = Path(start) if start is not None else Path.cwd()
    for candidate in (start, *start.resolve().parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    # Fall back to the checkout this package was imported from:
    # .../root/src/repro/devtools/lint/runner.py -> root.
    return Path(__file__).resolve().parents[4]


def _collect(root: Path, paths: Sequence[str | Path]) -> list[Path]:
    out: list[Path] = []
    for p in paths:
        path = Path(p)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if any(
                    part.startswith(".") or part == "__pycache__"
                    for part in sub.relative_to(root).parts
                ):
                    continue
                out.append(sub)
        elif path.is_file():
            out.append(path)
    seen: set[Path] = set()
    unique = []
    for path in out:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def lint_paths(
    paths: Sequence[str | Path] | None = None,
    rules: Iterable[str] | None = None,
    root: Path | str | None = None,
    manifest_path: Path | str | None = None,
) -> list[Finding]:
    """Lint ``paths`` (default: the manifest's default set) under ``root``.

    Returns the sorted, suppression-filtered findings.  Project-level
    rules always run against the full repo tree at ``root`` regardless
    of ``paths`` — the pinned invariants hold for the repository, not
    for whichever files happened to be linted.
    """
    root = Path(root) if root is not None else find_root()
    manifest = load_manifest(manifest_path)
    if paths is None:
        paths = manifest.get("lint", {}).get(
            "default_paths", ["src", "tests", "benchmarks"]
        )
    files: list[LintedFile] = []
    for path in _collect(root, paths):
        rel = path.resolve().relative_to(root.resolve()).as_posix()
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            unreadable = LintedFile(path, rel, "")
            unreadable.tree = None
            files.append(unreadable)
            continue
        files.append(LintedFile(path, rel, source))
    project = Project(root, manifest, files)
    findings: list[Finding] = []
    for f in files:
        if f.tree is None:
            findings.append(
                Finding(
                    file=f.rel,
                    line=1,
                    rule_id="parse-error",
                    message="file does not parse; rules skipped",
                )
            )
    for rule in iter_rule_instances(rules):
        for f in files:
            findings.extend(rule.check_file(f, project))
        findings.extend(rule.check_project(project))
    kept = []
    for finding in findings:
        f = project.file(finding.file)
        if f is not None and f.suppressed(finding):
            continue
        kept.append(finding)
    return sorted(set(kept))


def format_text(findings: Sequence[Finding]) -> str:
    """One ``file:line: [rule-id] message`` line per finding."""
    lines = [
        f"{f.file}:{f.line}: [{f.rule_id}] {f.message}" for f in findings
    ]
    lines.append(
        f"{len(findings)} finding(s)"
        if findings
        else "no findings"
    )
    return "\n".join(lines)


def format_json(findings: Sequence[Finding], root: Path) -> dict:
    """The ``--format json`` document (stable schema, version 1)."""
    counts: dict[str, int] = {}
    for f in findings:
        counts[f.rule_id] = counts.get(f.rule_id, 0) + 1
    return {
        "version": 1,
        "root": str(root),
        "findings": [f.to_dict() for f in findings],
        "counts": dict(sorted(counts.items())),
    }


def explain_rule(rule_id: str) -> str:
    """The rule's rationale (its class docstring), dedented."""
    cls = RULES.get(rule_id)
    if cls is None:
        raise ValueError(
            f"unknown rule id {rule_id!r}; known: {', '.join(sorted(RULES))}"
        )
    doc = cls.__doc__ or "(no rationale recorded)"
    first, _, rest = doc.partition("\n")
    return f"{rule_id}: {first.strip()}\n{textwrap.dedent(rest).rstrip()}"
