"""Layout-coupled invariants: pinned linenos and fingerprint field sets.

These two rules guard the invariants that are *invisible* to the test
suite until a fixture silently goes stale: source line numbers that feed
callpoint hashes, and the exact input set of each content fingerprint.
"""

from __future__ import annotations

import ast
import hashlib
from typing import Iterator

from repro.devtools.lint.base import (
    Finding,
    Project,
    Rule,
    register_rule,
)

__all__ = ["CallpointPinRule", "FingerprintVersionRule"]


@register_rule
class CallpointPinRule(Rule):
    """Fixture-coupled statements must sit exactly at their pinned lineno.

    Callpoint ids hash the last two call-frame (file, line) pairs; for a
    builder's top-level allocations the second frame is the registry's
    dispatch statement.  Moving that statement — even by one line —
    relabels every region id, silently invalidating all committed
    profile-cache and dendrogram fixtures.  The pins live in
    ``invariants.toml`` (``[[callpoint_pin]]``); code added to a pinned
    module must go *below* the pinned statement, or the fixtures must be
    regenerated deliberately alongside a manifest update.
    """

    id = "callpoint-pin"

    def check_project(self, project: Project) -> Iterator[Finding]:
        for pin in project.manifest.get("callpoint_pin", []):
            rel = pin["file"]
            lineno = int(pin["line"])
            statement = pin["statement"].strip()
            f = project.file(rel)
            if f is None:
                yield self.finding(
                    rel, 1, f"pinned file {rel} is missing from the tree"
                )
                continue
            actual = (
                f.lines[lineno - 1].strip()
                if 0 < lineno <= len(f.lines)
                else ""
            )
            if actual != statement:
                where = self._locate(f.lines, statement)
                detail = (
                    f" (found at line {where})"
                    if where is not None
                    else " (not found anywhere in the file)"
                )
                yield self.finding(
                    rel,
                    lineno,
                    f"pinned statement {statement!r} must sit exactly at "
                    f"line {lineno}{detail}: callpoint ids hash (file, "
                    "line) pairs, so moving it invalidates every committed "
                    "profile-cache/dendrogram fixture",
                )

    @staticmethod
    def _locate(lines: list[str], statement: str) -> int | None:
        for n, line in enumerate(lines, 1):
            if line.strip() == statement:
                return n
        return None


def fingerprint_fields_digest(
    tree: ast.Module, functions: list[str], rule: Rule
) -> tuple[str, list[str]]:
    """Digest the hash-update argument set of the named functions.

    Collects every ``<hasher>.update(arg)`` argument inside the listed
    (qual-named) functions as normalized source text, and digests the
    sorted set — a stable key for "which fields feed this fingerprint".
    """
    wanted = set(functions)
    snippets: list[str] = []
    for qual, node in rule.functions(tree):
        if qual not in wanted:
            continue
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "update"
            ):
                for arg in sub.args:
                    snippets.append(ast.unparse(arg))
    h = hashlib.blake2b(digest_size=8)
    for snippet in sorted(snippets):
        h.update(snippet.encode())
        h.update(b"\x00")
    return h.hexdigest(), snippets


@register_rule
class FingerprintVersionRule(Rule):
    """Changing a fingerprint's input set requires a format-version bump.

    Every cached artifact is keyed by a content fingerprint; the set of
    fields feeding each hash is pinned in ``invariants.toml``
    (``[[fingerprint]]``, as a digest over the hash-update call
    arguments).  Adding, removing, or reordering an input changes what
    the key *means* — old cache entries would be served for new-format
    requests — so the change must land together with a bump of the
    format-version constant and a manifest re-pin.  PR 2's collision bug
    (v1 fingerprints sampled the trace) is exactly the class of bug this
    prevents from recurring silently.
    """

    id = "fingerprint-version"

    def check_project(self, project: Project) -> Iterator[Finding]:
        for entry in project.manifest.get("fingerprint", []):
            yield from self._check_entry(project, entry)

    def _check_entry(self, project: Project, entry: dict) -> Iterator[Finding]:
        name = entry["name"]
        f = project.file(entry["file"])
        if f is None or f.tree is None:
            yield self.finding(
                entry["file"],
                1,
                f"fingerprint {name!r}: file is missing or unparseable",
            )
            return
        digest, snippets = fingerprint_fields_digest(
            f.tree, list(entry["functions"]), self
        )
        if not snippets:
            yield self.finding(
                f,
                1,
                f"fingerprint {name!r}: no hash-update calls found in "
                f"{', '.join(entry['functions'])} (functions renamed? "
                "update invariants.toml)",
            )
            return
        version = self._version_const(
            project, entry["version_file"], entry["version_const"]
        )
        if version is None:
            yield self.finding(
                entry["version_file"],
                1,
                f"fingerprint {name!r}: version constant "
                f"{entry['version_const']!r} not found as a module-level "
                "integer assignment",
            )
            return
        pinned_digest = entry["fields_digest"]
        pinned_version = int(entry["version"])
        line = self._anchor_line(f.tree, list(entry["functions"]))
        if digest != pinned_digest and version == pinned_version:
            yield self.finding(
                f,
                line,
                f"fingerprint {name!r}: the hashed field set changed "
                f"(digest {digest}, pinned {pinned_digest}) but "
                f"{entry['version_const']} is still {version}; bump the "
                "format version and re-pin fields_digest in "
                "invariants.toml",
            )
        elif digest != pinned_digest:
            yield self.finding(
                f,
                line,
                f"fingerprint {name!r}: field set and version both "
                f"changed; re-pin invariants.toml (fields_digest = "
                f"{digest!r}, version = {version})",
            )
        elif version != pinned_version:
            yield self.finding(
                f,
                line,
                f"fingerprint {name!r}: {entry['version_const']} is "
                f"{version} but invariants.toml pins {pinned_version}; "
                "update the manifest to match",
            )

    @staticmethod
    def _version_const(
        project: Project, rel: str, const: str
    ) -> int | None:
        f = project.file(rel)
        if f is None or f.tree is None:
            return None
        for node in f.tree.body:
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            else:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == const
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, int)
                ):
                    return int(node.value.value)
        return None

    def _anchor_line(self, tree: ast.Module, functions: list[str]) -> int:
        for qual, node in self.functions(tree):
            if qual in functions:
                return node.lineno
        return 1
