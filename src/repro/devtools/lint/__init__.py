"""repro lint: AST-based enforcement of the repo's invariants.

``python -m repro lint`` runs every registered rule over ``src/``,
``tests/``, and ``benchmarks/`` and exits non-zero on findings.  The
rules mechanize the conventions the reproduction's bit-identity story
depends on; each rule's ``--explain`` text records *why* the convention
exists.  Pinned facts (line numbers, oracle pairings, fingerprint field
sets) live in :mod:`repro.devtools.lint.manifest`'s ``invariants.toml``.
"""

from repro.devtools.lint.base import (
    RULES,
    Finding,
    LintedFile,
    Project,
    Rule,
    iter_rule_instances,
    register_rule,
)
from repro.devtools.lint.manifest import DEFAULT_MANIFEST, load_manifest
from repro.devtools.lint.runner import (
    explain_rule,
    find_root,
    format_json,
    format_text,
    lint_paths,
)

# Importing the rule modules populates RULES via @register_rule.
from repro.devtools.lint import rules_arrays  # noqa: F401
from repro.devtools.lint import rules_layout  # noqa: F401
from repro.devtools.lint import rules_obs  # noqa: F401
from repro.devtools.lint import rules_oracle  # noqa: F401
from repro.devtools.lint import rules_writes  # noqa: F401

__all__ = [
    "DEFAULT_MANIFEST",
    "Finding",
    "LintedFile",
    "Project",
    "RULES",
    "Rule",
    "explain_rule",
    "find_root",
    "format_json",
    "format_text",
    "iter_rule_instances",
    "lint_paths",
    "load_manifest",
    "register_rule",
]
