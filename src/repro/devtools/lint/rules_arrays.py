"""Array discipline: read-only mmap views and 64-bit packed words.

Two rules over array-handling code: loader returns are zero-copy views
into shared archive bytes and must never be mutated in place, and
``pos << 32 | count`` packing must happen in an explicit 64-bit dtype.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.base import (
    Finding,
    LintedFile,
    Project,
    Rule,
    call_name,
    register_rule,
)

__all__ = ["MmapWriteSafetyRule", "PackedWordDtypeRule"]

#: Calls whose return values are zero-copy views into mmapped archive
#: bytes (repro.store loaders and payload decoders).
_TAINT_CALLS = {"load_profile", "npz_arrays", "decode_payload", "npy_member"}

#: Calls that return the same buffer when no conversion is needed —
#: they propagate view-ness rather than laundering it.
_VIEW_PRESERVING = {"asarray", "ascontiguousarray"}

#: ndarray methods that mutate in place.
_MUTATING_METHODS = {
    "sort",
    "fill",
    "partition",
    "put",
    "resize",
    "setflags",
    "byteswap",
}


def _is_payload_attr(node: ast.expr) -> bool:
    """``<obj>.misses`` — the MissCurve payload array alias."""
    return isinstance(node, ast.Attribute) and node.attr == "misses"


class _TaintScope:
    """Statement-ordered taint over one function (or module) body."""

    def __init__(self, rule: Rule, f: LintedFile) -> None:
        self.rule = rule
        self.f = f
        self.tainted: set[str] = set()
        self.findings: list[Finding] = []

    # -- taint queries -------------------------------------------------
    def is_tainted(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Subscript):
            # Slicing a view yields a view of the same bytes.
            return self.is_tainted(node.value)
        if isinstance(node, ast.Call):
            name = call_name(node.func)
            leaf = name.split(".")[-1] if name else None
            if leaf in _TAINT_CALLS or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _TAINT_CALLS
            ):
                return True
            if leaf in _VIEW_PRESERVING and node.args:
                return self.is_tainted(node.args[0]) or _is_payload_attr(
                    node.args[0]
                )
        return False

    # -- statement walk ------------------------------------------------
    def run(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        # Nested defs get their own scope (handled by the rule driver).
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return
        self._check_out_kwargs(stmt)
        if isinstance(stmt, ast.Assign):
            self._check_store_targets(stmt.targets, stmt)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if self.is_tainted(stmt.value):
                        self.tainted.add(target.id)
                    else:
                        self.tainted.discard(target.id)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._check_store_targets([stmt.target], stmt)
            if isinstance(stmt.target, ast.Name):
                if self.is_tainted(stmt.value):
                    self.tainted.add(stmt.target.id)
                else:
                    self.tainted.discard(stmt.target.id)
        elif isinstance(stmt, ast.AugAssign):
            target = stmt.target
            if isinstance(target, ast.Name) and target.id in self.tainted:
                self._flag(
                    stmt,
                    f"augmented assignment mutates {target.id!r}, a "
                    "zero-copy view of mmapped archive bytes; copy first "
                    "(np.array(...)) before writing",
                )
            elif isinstance(target, ast.Subscript) and (
                self.is_tainted(target.value)
                or _is_payload_attr(target.value)
            ):
                self._flag(
                    stmt,
                    f"in-place update into "
                    f"{ast.unparse(target.value)!r} mutates a read-only "
                    "mmap view / MissCurve payload; copy before writing",
                )
            # AugAssign on a bare attribute (stats.misses += 1) is the
            # scalar-counter idiom, not an array store — not flagged.
        elif isinstance(stmt, ast.Expr):
            self._check_mutating_call(stmt.value)
        elif isinstance(stmt, ast.For):
            if isinstance(stmt.target, ast.Name):
                if self.is_tainted(stmt.iter):
                    self.tainted.add(stmt.target.id)
                else:
                    self.tainted.discard(stmt.target.id)
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, ast.With):
            self.run(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.run(stmt.body)
            for handler in stmt.handlers:
                self.run(handler.body)
            self.run(stmt.orelse)
            self.run(stmt.finalbody)

    # -- violation checks ----------------------------------------------
    def _check_store_targets(
        self, targets: list[ast.expr], stmt: ast.stmt
    ) -> None:
        for target in targets:
            if isinstance(target, ast.Subscript) and (
                self.is_tainted(target.value)
                or _is_payload_attr(target.value)
            ):
                self._flag(
                    stmt,
                    f"subscript store into "
                    f"{ast.unparse(target.value)!r} mutates a read-only "
                    "mmap view / MissCurve payload in place; copy first",
                )

    def _check_mutating_call(self, expr: ast.expr) -> None:
        if not isinstance(expr, ast.Call):
            return
        func = expr.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_METHODS
            and (self.is_tainted(func.value) or _is_payload_attr(func.value))
        ):
            self._flag(
                expr,
                f".{func.attr}() mutates "
                f"{ast.unparse(func.value)!r} in place; it is a zero-copy "
                "view of mmapped archive bytes — copy before mutating "
                "(or use the returning variant, e.g. np.sort)",
            )

    def _check_out_kwargs(self, stmt: ast.stmt) -> None:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg == "out" and (
                        self.is_tainted(kw.value)
                        or _is_payload_attr(kw.value)
                    ):
                        self._flag(
                            node,
                            f"out={ast.unparse(kw.value)} writes through "
                            "a read-only mmap view / MissCurve payload; "
                            "allocate the output instead",
                        )

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            self.rule.finding(self.f, getattr(node, "lineno", 1), message)
        )


@register_rule
class MmapWriteSafetyRule(Rule):
    """Never mutate store loader returns or MissCurve payloads in place.

    ``load_profile`` / ``npz_arrays`` / ``decode_payload`` /
    ``.npy_member()`` hand back zero-copy views into mmapped (or shared)
    archive bytes, and ``MissCurve.misses`` aliases such a view on the
    fast path.  In-place mutation either crashes (read-only mmap) or —
    worse — silently corrupts the shared backing bytes every other
    reader sees.  The rule taint-tracks loader returns through
    ``np.asarray`` / slicing within each function and flags augmented
    assignment, subscript stores, in-place ndarray methods
    (``.sort()``, ``.fill()``, ...), and ``out=`` arguments targeting a
    tainted array or a ``.misses`` payload.  Copy first
    (``np.array(view)``) when a mutable buffer is genuinely needed.
    """

    id = "mmap-write-safety"

    def check_file(
        self, f: LintedFile, project: Project
    ) -> Iterator[Finding]:
        if f.tree is None:
            return
        for _qual, node in self.functions(f.tree):
            scope = _TaintScope(self, f)
            scope.run(node.body)
            yield from scope.findings
        module_scope = _TaintScope(self, f)
        module_scope.run(f.tree.body)
        yield from module_scope.findings


@register_rule
class PackedWordDtypeRule(Rule):
    """``pos << 32 | count`` packing must be an explicit 64-bit dtype.

    The reuse-profiling engines pack (position, count) pairs into single
    words as ``pos << 32 | count`` to sort both with one argsort.  If
    the left operand is an array in a 32-bit (or platform-default) int
    dtype, the shift silently overflows and unpacking produces garbage
    positions — a corruption that only shows up as subtly wrong miss
    curves.  Any array shift by a constant >= 32 must have a left
    operand that is visibly ``np.int64`` / ``np.uint64`` (an
    ``.astype(np.int64)`` at the shift site, or a name whose defining
    assignment spells the 64-bit dtype).  Pure-int shifts
    (``1 << 32``) are exempt: Python ints do not overflow.
    """

    id = "packed-word-dtype"

    def check_file(
        self, f: LintedFile, project: Project
    ) -> Iterator[Finding]:
        if f.tree is None:
            return
        assigns: list[tuple[int, str, str]] = []
        for node in ast.walk(f.tree):
            if isinstance(node, ast.Assign):
                snippet = ast.unparse(node.value)
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        assigns.append((node.lineno, target.id, snippet))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    assigns.append(
                        (
                            node.lineno,
                            node.target.id,
                            ast.unparse(node.value),
                        )
                    )
        for node in ast.walk(f.tree):
            if not (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, ast.LShift)
                and isinstance(node.right, ast.Constant)
                and isinstance(node.right.value, int)
                and node.right.value >= 32
            ):
                continue
            left = node.left
            if isinstance(left, ast.Constant):
                continue  # Python int: arbitrary precision, no overflow
            if self._is_64bit(left, node.lineno, assigns):
                continue
            yield self.finding(
                f,
                node.lineno,
                f"{ast.unparse(left)!r} << {node.right.value} packs into "
                "a word but the operand's dtype is not visibly 64-bit; "
                "cast with .astype(np.int64) (or np.uint64) at the shift "
                "site so a 32-bit input cannot silently overflow",
            )

    @staticmethod
    def _is_64bit(
        left: ast.expr, lineno: int, assigns: list[tuple[int, str, str]]
    ) -> bool:
        snippet = ast.unparse(left)
        if "int64" in snippet or "uint64" in snippet:
            return True
        if isinstance(left, ast.Name):
            best: str | None = None
            best_line = -1
            for aline, name, asnippet in assigns:
                if name == left.id and best_line < aline <= lineno:
                    best, best_line = asnippet, aline
            if best is not None and (
                "int64" in best or "uint64" in best
            ):
                return True
        return False
