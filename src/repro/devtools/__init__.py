"""Developer tooling: static enforcement of the repo's conventions.

The reproduction's correctness rests on invariants that no test can see
directly — fixture-coupled line numbers, bit-identity oracle pairings,
atomic-publish discipline, read-only mmap views.  :mod:`repro.devtools.
lint` turns those conventions into machine-checked rules (``python -m
repro lint``), the way build infrastructures turn provenance conventions
into ``Package`` records: tooling, not tribal memory.
"""

from repro.devtools.lint import Finding, Rule, lint_paths

__all__ = ["Finding", "Rule", "lint_paths"]
