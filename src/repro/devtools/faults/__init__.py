"""Deterministic fault injection (``repro.devtools.faults``).

The chaos-testing harness: seeded, reproducible failures injected at
named sites in the runtime — worker crashes, job hangs, transient
``OSError`` on store/trace reads, torn ``.rtrace`` chunks, corrupted
artifact payloads — activated by the ``$REPRO_FAULTS`` environment
variable (inherited by process-pool workers) and inert otherwise.

The instrumented code calls two hooks:

- :func:`maybe_inject(site, key=..., attempt=...) <maybe_inject>` —
  may crash the process, hang, or raise a transient ``OSError``.
- :func:`filter_bytes(site, data, key=...) <filter_bytes>` — may
  corrupt or truncate a payload read.

See :mod:`repro.devtools.faults.plan` for the plan format, firing
semantics, and the site catalog (:data:`SITES`).
"""

from repro.devtools.faults.plan import (
    ENV_VAR,
    SITES,
    FaultPlan,
    FaultRule,
    active_plan,
    filter_bytes,
    maybe_inject,
    reset,
)

__all__ = [
    "ENV_VAR",
    "FaultPlan",
    "FaultRule",
    "SITES",
    "active_plan",
    "filter_bytes",
    "maybe_inject",
    "reset",
]
