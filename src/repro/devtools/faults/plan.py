"""Deterministic fault plans: what fails, where, and on which attempt.

A :class:`FaultPlan` is a seed plus a list of :class:`FaultRule`\\ s.
Each rule names an injection *site* (a string the instrumented code
passes to :func:`~repro.devtools.faults.maybe_inject` /
:func:`~repro.devtools.faults.filter_bytes`), a failure *mode*, and a
deterministic firing condition:

- ``attempts`` — explicit 1-based attempt numbers, for sites where the
  caller knows the attempt (the engine's worker boundary does).
- ``count`` — fire on the first N consultations of ``(site, key)``
  within a process, for sites without attempt plumbing (I/O reads
  retried in place).
- ``p`` — fire with probability ``p``, decided by
  :func:`repro.retry.seeded_unit` over ``(seed, site, key, tick)`` —
  reproducible chaos, never wall-clock or global random state.

Modes: ``crash`` (``os._exit``, a SIGKILL/OOM stand-in), ``hang``
(sleep well past any sane deadline), ``raise`` (transient ``OSError``),
and the byte-filter modes ``corrupt`` / ``truncate`` (bit-flipped or
torn payloads, applied by ``filter_bytes``).

Plans serialize to JSON and activate through ``$REPRO_FAULTS`` (a file
path, or the JSON object inline), which process-pool workers inherit —
so one env var chaos-tests a whole campaign.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path

from repro import obs
from repro.retry import seeded_unit

__all__ = [
    "ENV_VAR",
    "FaultPlan",
    "FaultRule",
    "SITES",
    "active_plan",
    "filter_bytes",
    "maybe_inject",
    "reset",
]

#: Environment variable naming (or inlining) the active plan.
ENV_VAR = "REPRO_FAULTS"

#: The injection-point catalog: every site the runtime consults.
SITES = {
    "worker": "engine worker boundary (attempt-aware; crash/hang/raise)",
    "execute": "worker-side execute_job entry (count-based)",
    "store-read": "profile payload read in the artifact store",
    "rtrace-chunk": ".rtrace chunk member decode (raise/corrupt/truncate)",
    "follow-read": "live-tail readline in ingest watch",
}

_MODES = ("crash", "hang", "raise", "corrupt", "truncate")
_BYTE_MODES = ("corrupt", "truncate")


@dataclass(frozen=True)
class FaultRule:
    """One deterministic failure: site + mode + firing condition."""

    site: str
    mode: str
    match: str = ""  # substring of the site key ("" matches every key)
    attempts: tuple[int, ...] = ()
    count: int = 0
    p: float = 0.0
    seconds: float = 3600.0  # hang duration (far past any job timeout)
    exit_code: int = 17

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(
                f"unknown fault mode {self.mode!r}; known: {', '.join(_MODES)}"
            )
        if not (0.0 <= self.p <= 1.0):
            raise ValueError(f"p must be in [0, 1], got {self.p}")
        if self.count < 0:
            raise ValueError(f"count must be >= 0, got {self.count}")

    def fires(self, seed: int, key: str, attempt: int | None, tick: int) -> bool:
        """Whether this rule fires for one consultation.

        ``attempt`` is the caller-supplied 1-based attempt number (the
        engine passes it; I/O sites pass None), ``tick`` the per-process
        consultation index for ``(site, key, rule)``.
        """
        if self.attempts:
            return attempt is not None and attempt in self.attempts
        if self.count:
            return tick < self.count
        if self.p:
            when = attempt if attempt is not None else tick
            return seeded_unit(seed, self.site, key, when) < self.p
        return False


class FaultPlan:
    """A seed plus the rules; see the module docstring for semantics."""

    def __init__(self, rules: list[FaultRule], seed: int = 0) -> None:
        self.rules = list(rules)
        self.seed = seed

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        rules = []
        for raw in data.get("rules", []):
            raw = dict(raw)
            if "attempts" in raw:
                raw["attempts"] = tuple(raw["attempts"])
            rules.append(FaultRule(**raw))
        return cls(rules, seed=int(data.get("seed", 0)))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "rules": [
                    {
                        k: (list(v) if isinstance(v, tuple) else v)
                        for k, v in asdict(rule).items()
                    }
                    for rule in self.rules
                ],
            },
            sort_keys=True,
        )


# Per-process state: parsed plans keyed by the raw env value, and the
# consultation counters the count/p firing conditions tick on.
_plans: dict[str, FaultPlan] = {}
_ticks: dict[tuple[str, str, int], int] = {}


def reset() -> None:
    """Forget parsed plans and consultation counters (tests)."""
    _plans.clear()
    _ticks.clear()


def active_plan() -> FaultPlan | None:
    """The plan ``$REPRO_FAULTS`` names, or None (the fast no-op path)."""
    spec = os.environ.get(ENV_VAR)
    if not spec:
        return None
    plan = _plans.get(spec)
    if plan is None:
        text = (
            spec
            if spec.lstrip().startswith("{")
            else Path(spec).read_text(encoding="utf-8")
        )
        plan = FaultPlan.from_json(text)
        _plans[spec] = plan
    return plan


def _tick(site: str, key: str, index: int) -> int:
    """Consultation counter for ``(site, key, rule-index)``; post-incremented."""
    slot = (site, key, index)
    n = _ticks.get(slot, 0)
    _ticks[slot] = n + 1
    return n


def maybe_inject(site: str, key: str = "", attempt: int | None = None) -> None:
    """Fire any matching crash/hang/raise rule; no-op when inactive."""
    plan = active_plan()
    if plan is None:
        return
    for index, rule in enumerate(plan.rules):
        if rule.site != site or rule.match not in key:
            continue
        if rule.mode in _BYTE_MODES:
            continue  # byte-filter rules apply through filter_bytes
        if not rule.fires(plan.seed, key, attempt, _tick(site, key, index)):
            continue
        # Record the fault BEFORE it fires: the JSONL sink flushes per
        # event, so even an os._exit crash leaves this line on disk and
        # the chaos run stays reconstructable from its log.
        obs.event(
            "fault.injected",
            site=site,
            mode=rule.mode,
            key=key,
            attempt=attempt,
        )
        if rule.mode == "crash":
            # An OOM-kill stand-in: no cleanup, no exception, no flush.
            os._exit(rule.exit_code)
        if rule.mode == "hang":
            time.sleep(rule.seconds)
            continue
        raise OSError(
            f"injected transient fault at {site}"
            + (f" ({key})" if key else "")
        )


def filter_bytes(site: str, data: bytes, key: str = "") -> bytes:
    """Apply any matching corrupt/truncate rule to a payload read."""
    plan = active_plan()
    if plan is None:
        return data
    for index, rule in enumerate(plan.rules):
        if rule.site != site or rule.match not in key:
            continue
        if rule.mode not in _BYTE_MODES:
            continue
        if not rule.fires(plan.seed, key, None, _tick(site, key, index)):
            continue
        obs.event("fault.injected", site=site, mode=rule.mode, key=key)
        if rule.mode == "truncate":
            return data[: len(data) // 2]
        torn = bytearray(data)
        if torn:
            torn[len(torn) // 2] ^= 0xFF
        return bytes(torn)
    return data
