"""Deterministic retry with exponential backoff and seeded jitter.

One policy object serves two layers: the campaign engine retries whole
jobs with it (``repro.exp.engine``), and transient I/O paths — store
payload reads, ``.rtrace`` chunk decodes, live-tail reads — route
through :func:`call_with_retries` so a momentary ``OSError`` costs a
bounded re-read instead of a crashed run.  All delays are pure
functions of ``(seed, key, attempt)``: reruns wait the same fractions,
fleets of workers still decorrelate, and nothing depends on wall-clock
or global random state.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

__all__ = ["IO_RETRY", "RetryPolicy", "call_with_retries", "seeded_unit"]

T = TypeVar("T")


def seeded_unit(seed: int, *parts: object) -> float:
    """Deterministic uniform value in ``[0, 1)`` from a seed + context.

    blake2b over ``"seed:part:part..."`` — stable across processes and
    platforms, so retry jitter (and the fault harness's probability
    rules) reproduce exactly under a fixed seed.
    """
    text = ":".join([str(seed), *map(str, parts)])
    digest = hashlib.blake2b(text.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt cap plus exponential backoff with seeded jitter.

    Attributes:
        max_attempts: total tries (1 = no retry).
        base_delay: seconds before the second attempt.
        backoff: multiplier per further attempt.
        max_delay: backoff ceiling, pre-jitter.
        jitter: extra fraction of the delay, scaled by a deterministic
            ``[0, 1)`` draw from ``(seed, key, attempt)``.
        seed: jitter seed.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    backoff: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    def delay(self, key: str, attempt: int) -> float:
        """Seconds to wait after failed attempt ``attempt`` (1-based)."""
        raw = min(
            self.max_delay, self.base_delay * self.backoff ** (attempt - 1)
        )
        return raw * (1.0 + self.jitter * seeded_unit(self.seed, key, attempt))


#: Default policy for transient I/O: three quick tries, tight delays.
IO_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.25)


def call_with_retries(
    fn: Callable[[], T],
    *,
    policy: RetryPolicy = IO_RETRY,
    retryable: tuple[type[BaseException], ...] = (OSError,),
    key: str = "",
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> T:
    """Call ``fn`` until it succeeds or the policy's attempts run out.

    The transient-retry helper: every new I/O path that can see a
    momentary failure (NFS blip, mid-rotation read, torn payload)
    should route its read through here rather than catching ad hoc.
    Non-``retryable`` exceptions propagate immediately; the last
    retryable failure is re-raised once ``policy.max_attempts`` is
    exhausted.
    """
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn()
        except retryable as exc:
            if attempt >= policy.max_attempts:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(policy.delay(key, attempt))
