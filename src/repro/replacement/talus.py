"""Talus: convex cache performance via shadow partitioning (HPCA 2015).

Jigsaw and Whirlpool assume each VC achieves the *convex hull* of its
miss curve ("this performance could be practically realized by using
partitioning within each VC", paper Sec 4.2, citing Talus).  This module
implements that mechanism so the assumption is backed by a concrete
cache, not just an analytical hull:

To hit the hull at size S lying between hull vertices a < S <= b, split
the cache into two shadow partitions and steer a fraction rho of the
*address space* into partition 1:

    rho = (S - a) / (b - a)          (fraction steered to the 'b' shadow)
    partition 1: size rho * b        (behaves like a cache of size b)
    partition 2: size (1 - rho) * a  (behaves like a cache of size a)

Each partition then operates at a hull vertex of its own scaled-down
curve, so total misses interpolate linearly: rho*m(b) + (1-rho)*m(a) —
the hull.
"""

from __future__ import annotations

import numpy as np

from repro.curves.miss_curve import MissCurve
from repro.replacement.lru import LRU

__all__ = ["TalusCache", "talus_split"]

_HASH_MULT = np.uint64(0x9E3779B97F4A7C15)


def talus_split(
    curve: MissCurve, size_bytes: float
) -> tuple[float, float, float]:
    """Choose the Talus configuration for a target size.

    Returns:
        ``(rho, size1_bytes, size2_bytes)`` — the address fraction routed
        to partition 1 and both partition sizes.  On convex regions of
        the curve this degenerates to a single partition (rho = 1).
    """
    hull = curve.convex_hull()
    raw = curve.misses
    chunk = curve.chunk_bytes
    s_chunks = size_bytes / chunk
    # Find the enclosing hull vertices a <= S <= b (vertices are the
    # points where hull == raw curve).
    vertices = [
        i for i in range(len(raw)) if abs(hull[i] - raw[i]) < 1e-9 * max(raw[0], 1)
    ]
    lower = max((v for v in vertices if v <= s_chunks), default=0)
    upper = min((v for v in vertices if v >= s_chunks), default=len(raw) - 1)
    if upper == lower:
        return 1.0, float(size_bytes), 0.0
    rho = (s_chunks - lower) / (upper - lower)
    return rho, rho * upper * chunk, (1 - rho) * lower * chunk


class TalusCache:
    """An event-driven cache achieving convex (hull) performance.

    Args:
        curve: the access stream's miss curve (used only to choose the
            shadow-partition configuration, as Talus does with its
            monitors).
        size_bytes: total capacity.
        line_bytes: line size.
        ways: associativity of each shadow partition.
    """

    def __init__(
        self,
        curve: MissCurve,
        size_bytes: int,
        line_bytes: int = 64,
        ways: int = 16,
    ) -> None:
        # Imported here: repro.nuca.banks itself imports the replacement
        # package, so a module-level import would be circular.
        from repro.nuca.banks import CacheSim, CacheStats

        self.rho, size1, size2 = talus_split(curve, size_bytes)
        self._caches: list[CacheSim | None] = []
        for size in (size1, size2):
            lines = int(size // line_bytes)
            # Round to a valid set-associative geometry.
            lines = max((lines // ways) * ways, 0)
            if lines >= ways:
                self._caches.append(
                    CacheSim(
                        size_bytes=lines * line_bytes,
                        ways=ways,
                        policy_factory=lambda s, w: LRU(s, w),
                        line_bytes=line_bytes,
                    )
                )
            else:
                self._caches.append(None)
        self.stats = CacheStats()

    def _route(self, line_addr: int):
        # Plain Python ints avoid numpy's overflow warnings on the
        # wrapping multiply.
        hashed = ((line_addr * 0x9E3779B97F4A7C15) & ((1 << 64) - 1)) >> 40
        frac = hashed / float(1 << 24)
        return self._caches[0] if frac < self.rho else self._caches[1]

    def access(self, line_addr: int) -> bool:
        """Access one line; returns True on hit."""
        cache = self._route(int(line_addr))
        if cache is None:
            self.stats.misses += 1
            return False
        hit = cache.access(int(line_addr))
        if hit:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        return hit

    def run(self, lines: np.ndarray) -> CacheStats:
        """Simulate a whole trace."""
        for addr in lines.tolist():
            self.access(addr)
        return self.stats
