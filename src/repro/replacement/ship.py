"""SHiP: signature-based hit prediction (Wu et al., MICRO 2011).

SHiP classifies lines by a *signature* (here: the pool/region id, standing
in for the allocating PC) and keeps a table of saturating counters that
learn whether lines with that signature are re-referenced.  Fills whose
signature never hits insert at distant RRPV.
"""

from __future__ import annotations

import numpy as np

from repro.replacement.base import AccessContext, ReplacementPolicy

__all__ = ["SHiP"]

_MAX_RRPV = 3
_SHCT_BITS = 3


class SHiP(ReplacementPolicy):
    """SHiP-mem: signature = pool id, with a saturating SHCT."""

    def __init__(self, n_sets: int, n_ways: int, table_size: int = 1024) -> None:
        super().__init__(n_sets, n_ways)
        self._rrpv = np.full((n_sets, n_ways), _MAX_RRPV, dtype=np.int8)
        self._sig = np.full((n_sets, n_ways), -1, dtype=np.int32)
        self._outcome = np.zeros((n_sets, n_ways), dtype=bool)
        self._shct = np.ones(table_size, dtype=np.int8)  # weakly re-referenced
        self._table_size = table_size

    def _sig_index(self, pool: int) -> int:
        return (pool + 1) % self._table_size

    def on_hit(self, set_index: int, way: int, ctx: AccessContext) -> None:
        self._rrpv[set_index, way] = 0
        if not self._outcome[set_index, way]:
            self._outcome[set_index, way] = True
            sig = self._sig[set_index, way]
            if sig >= 0:
                self._shct[sig] = min(self._shct[sig] + 1, (1 << _SHCT_BITS) - 1)

    def victim(self, set_index: int, ctx: AccessContext) -> int:
        row = self._rrpv[set_index]
        while True:
            candidates = np.nonzero(row == _MAX_RRPV)[0]
            if len(candidates) > 0:
                return int(candidates[0])
            row += 1

    def on_eviction(self, set_index: int, way: int) -> None:
        if not self._outcome[set_index, way]:
            sig = self._sig[set_index, way]
            if sig >= 0:
                self._shct[sig] = max(self._shct[sig] - 1, 0)

    def on_fill(self, set_index: int, way: int, ctx: AccessContext) -> None:
        sig = self._sig_index(ctx.pool)
        self._sig[set_index, way] = sig
        self._outcome[set_index, way] = False
        predicted_dead = self._shct[sig] == 0
        self._rrpv[set_index, way] = _MAX_RRPV if predicted_dead else _MAX_RRPV - 1
