"""RRIP-family replacement: SRRIP, BRRIP, DRRIP, and a pool-aware DRRIP.

Re-Reference Interval Prediction (Jaleel et al., ISCA 2010) keeps an
M-bit re-reference prediction value (RRPV) per line:

- SRRIP inserts at RRPV = max-1 (long re-reference) and promotes to 0 on
  hit; victims are lines at RRPV = max (aging increments all RRPVs).
- BRRIP inserts at max most of the time (thrash resistance).
- DRRIP set-duels SRRIP vs. BRRIP with a PSEL counter.
- PoolAwareDRRIP duels *per pool* (the Whirlpool-replacement variant of
  Sec 2.3, similar to TA-DRRIP/CAMP): each pool independently picks the
  insertion policy that loses fewer sample-set misses.
"""

from __future__ import annotations

import numpy as np

from repro.replacement.base import AccessContext, ReplacementPolicy

__all__ = ["SRRIP", "BRRIP", "DRRIP", "PoolAwareDRRIP"]

_MAX_RRPV = 3  # 2-bit RRPVs
_BRRIP_LONG_PERIOD = 32  # 1/32 of BRRIP fills use the long (max-1) value


class _RRIPBase(ReplacementPolicy):
    """Shared RRPV bookkeeping."""

    def __init__(self, n_sets: int, n_ways: int) -> None:
        super().__init__(n_sets, n_ways)
        self._rrpv = np.full((n_sets, n_ways), _MAX_RRPV, dtype=np.int8)

    def on_hit(self, set_index: int, way: int, ctx: AccessContext) -> None:
        self._rrpv[set_index, way] = 0

    def victim(self, set_index: int, ctx: AccessContext) -> int:
        row = self._rrpv[set_index]
        while True:
            candidates = np.nonzero(row == _MAX_RRPV)[0]
            if len(candidates) > 0:
                return int(candidates[0])
            row += 1  # age the whole set

    def _insert(self, set_index: int, way: int, rrpv: int) -> None:
        self._rrpv[set_index, way] = rrpv


class SRRIP(_RRIPBase):
    """Static RRIP: always insert with a long re-reference prediction."""

    def on_fill(self, set_index: int, way: int, ctx: AccessContext) -> None:
        self._insert(set_index, way, _MAX_RRPV - 1)


class BRRIP(_RRIPBase):
    """Bimodal RRIP: insert at distant (max) RRPV almost always."""

    def __init__(self, n_sets: int, n_ways: int, seed: int = 0) -> None:
        super().__init__(n_sets, n_ways)
        self._counter = seed

    def _long_insertion(self) -> bool:
        self._counter += 1
        return self._counter % _BRRIP_LONG_PERIOD == 0

    def on_fill(self, set_index: int, way: int, ctx: AccessContext) -> None:
        rrpv = _MAX_RRPV - 1 if self._long_insertion() else _MAX_RRPV
        self._insert(set_index, way, rrpv)


class DRRIP(_RRIPBase):
    """Dynamic RRIP: set-dueling between SRRIP and BRRIP insertion.

    A few leader sets always use SRRIP, a few always BRRIP; misses in
    leader sets steer a saturating PSEL counter that decides the policy of
    follower sets.
    """

    def __init__(
        self, n_sets: int, n_ways: int, n_leader_sets: int = 32, seed: int = 0
    ) -> None:
        super().__init__(n_sets, n_ways)
        n_leader_sets = min(n_leader_sets, max(2, n_sets // 2) & ~1)
        stride = max(1, n_sets // max(n_leader_sets, 1))
        leaders = list(range(0, n_sets, stride))[:n_leader_sets]
        self._srrip_leaders = set(leaders[0::2])
        self._brrip_leaders = set(leaders[1::2])
        self._psel = 512  # 10-bit counter, midpoint
        self._psel_max = 1023
        self._brrip_counter = seed

    def _record_miss(self, set_index: int) -> None:
        if set_index in self._srrip_leaders:
            self._psel = min(self._psel + 1, self._psel_max)
        elif set_index in self._brrip_leaders:
            self._psel = max(self._psel - 1, 0)

    def _use_brrip(self, set_index: int) -> bool:
        if set_index in self._srrip_leaders:
            return False
        if set_index in self._brrip_leaders:
            return True
        return self._psel > self._psel_max // 2

    def on_fill(self, set_index: int, way: int, ctx: AccessContext) -> None:
        self._record_miss(set_index)
        if self._use_brrip(set_index):
            self._brrip_counter += 1
            long_insert = self._brrip_counter % _BRRIP_LONG_PERIOD == 0
            rrpv = _MAX_RRPV - 1 if long_insert else _MAX_RRPV
        else:
            rrpv = _MAX_RRPV - 1
        self._insert(set_index, way, rrpv)


class PoolAwareDRRIP(_RRIPBase):
    """DRRIP with per-pool insertion dueling (the Sec-2.3 study).

    Each pool gets its own PSEL counter and its own leader-set misses, so
    a streaming pool can learn distant insertion while a cache-friendly
    pool keeps near insertion — static classification applied to
    replacement rather than placement.
    """

    def __init__(
        self,
        n_sets: int,
        n_ways: int,
        n_pools: int = 8,
        n_leader_sets: int = 32,
        seed: int = 0,
    ) -> None:
        super().__init__(n_sets, n_ways)
        n_leader_sets = min(n_leader_sets, max(2, n_sets // 2) & ~1)
        stride = max(1, n_sets // max(n_leader_sets, 1))
        leaders = list(range(0, n_sets, stride))[:n_leader_sets]
        self._srrip_leaders = set(leaders[0::2])
        self._brrip_leaders = set(leaders[1::2])
        self._psel = [512] * (n_pools + 1)
        self._psel_max = 1023
        self._brrip_counter = seed
        self._n_pools = n_pools

    def _pool_slot(self, pool: int) -> int:
        if pool < 0 or pool >= self._n_pools:
            return self._n_pools  # unclassified bucket
        return pool

    def on_fill(self, set_index: int, way: int, ctx: AccessContext) -> None:
        slot = self._pool_slot(ctx.pool)
        if set_index in self._srrip_leaders:
            self._psel[slot] = min(self._psel[slot] + 1, self._psel_max)
        elif set_index in self._brrip_leaders:
            self._psel[slot] = max(self._psel[slot] - 1, 0)
        if set_index in self._srrip_leaders:
            use_brrip = False
        elif set_index in self._brrip_leaders:
            use_brrip = True
        else:
            use_brrip = self._psel[slot] > self._psel_max // 2
        if use_brrip:
            self._brrip_counter += 1
            long_insert = self._brrip_counter % _BRRIP_LONG_PERIOD == 0
            rrpv = _MAX_RRPV - 1 if long_insert else _MAX_RRPV
        else:
            rrpv = _MAX_RRPV - 1
        self._insert(set_index, way, rrpv)
