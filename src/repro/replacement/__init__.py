"""Cache replacement policies for the event-driven bank simulator.

These implement the policies the paper compares against (LRU, DRRIP) and
classifies related work by (RRIP variants, SHiP), plus a pool-aware DRRIP
used to reproduce the Sec-2.3 negative result: static classification adds
little *within a monolithic cache*, because replacement is a much easier
problem than NUCA placement.

All policies operate per cache set through a small imperative interface
(:class:`ReplacementPolicy`).
"""

from repro.replacement.base import ReplacementPolicy
from repro.replacement.lru import LRU
from repro.replacement.rrip import BRRIP, DRRIP, SRRIP, PoolAwareDRRIP
from repro.replacement.ship import SHiP
from repro.replacement.talus import TalusCache, talus_split

__all__ = [
    "BRRIP",
    "DRRIP",
    "LRU",
    "PoolAwareDRRIP",
    "ReplacementPolicy",
    "SHiP",
    "TalusCache",
    "talus_split",
    "SRRIP",
]
