"""Least-recently-used replacement."""

from __future__ import annotations

import numpy as np

from repro.replacement.base import AccessContext, ReplacementPolicy

__all__ = ["LRU"]


class LRU(ReplacementPolicy):
    """True LRU via per-line logical timestamps."""

    def __init__(self, n_sets: int, n_ways: int) -> None:
        super().__init__(n_sets, n_ways)
        self._stamp = np.zeros((n_sets, n_ways), dtype=np.int64)
        self._clock = 0

    def _touch(self, set_index: int, way: int) -> None:
        self._clock += 1
        self._stamp[set_index, way] = self._clock

    def on_hit(self, set_index: int, way: int, ctx: AccessContext) -> None:
        self._touch(set_index, way)

    def victim(self, set_index: int, ctx: AccessContext) -> int:
        return int(np.argmin(self._stamp[set_index]))

    def on_fill(self, set_index: int, way: int, ctx: AccessContext) -> None:
        self._touch(set_index, way)
