"""Replacement-policy interface used by :class:`repro.nuca.banks.CacheSim`.

A policy instance manages the metadata of *one cache* (all sets).  The
simulator calls :meth:`on_hit` / :meth:`victim` / :meth:`on_fill`; the
``ctx`` argument carries optional classification context (the access's
pool id, set index parity for set dueling, etc.).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

__all__ = ["ReplacementPolicy", "AccessContext"]


class AccessContext:
    """Classification context for one access.

    Attributes:
        pool: pool/region id of the accessed line (-1 if unclassified).
        set_index: index of the cache set being accessed.
    """

    __slots__ = ("pool", "set_index")

    def __init__(self, pool: int = -1, set_index: int = 0) -> None:
        self.pool = pool
        self.set_index = set_index


class ReplacementPolicy(ABC):
    """Per-cache replacement metadata and victim selection."""

    def __init__(self, n_sets: int, n_ways: int) -> None:
        if n_sets < 1 or n_ways < 1:
            raise ValueError("n_sets and n_ways must be >= 1")
        self.n_sets = n_sets
        self.n_ways = n_ways

    @abstractmethod
    def on_hit(self, set_index: int, way: int, ctx: AccessContext) -> None:
        """Update metadata after a hit in ``(set_index, way)``."""

    @abstractmethod
    def victim(self, set_index: int, ctx: AccessContext) -> int:
        """Choose the way to evict from ``set_index``."""

    @abstractmethod
    def on_fill(self, set_index: int, way: int, ctx: AccessContext) -> None:
        """Update metadata after filling ``(set_index, way)``."""

    def on_eviction(self, set_index: int, way: int) -> None:
        """Hook called when a line is evicted (default: nothing)."""
