"""Command-line interface: ``python -m repro <command>``.

Commands
--------
- ``list-apps`` — the 31-app suite, Table-2 ports, parallel apps.
- ``run`` — simulate one app under one or more schemes.
- ``placement`` — ASCII placement map for an app (Figs 3-5).
- ``whirltool`` — train WhirlTool on an app and show the clustering.
- ``parallel`` — run a Fig-13 parallel app under all four configs.
- ``config`` — print the Table-3 system configuration.
- ``campaign`` — submit/resume/inspect experiment grids (``repro.exp``);
  the ``mixes`` action runs resumable Fig-22-style mix grids, and
  ``quarantine list|retry|clear`` manages jobs parked after exhausting
  their retry budget.
- ``ingest`` — convert/inspect/validate/register external memory traces
  (``repro.ingest``); registered traces become first-class workloads.
- ``store`` — status/gc/verify/compact of the content-addressed
  artifact store (``repro.store``) that holds cached profiles and
  registered traces.
- ``lint`` — AST-based static checks of the repo's bit-identity,
  fixture-stability, and atomicity invariants (``repro.devtools.lint``).
- ``obs`` — inspect the structured-tracing event logs campaigns write
  (``repro.obs``): wall-clock breakdowns, retry storms, cache ratios.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis import STANDARD_SCHEMES, format_table, placement_map, run_schemes
from repro.core import TABLE2
from repro.core.whirltool import WhirlToolAnalyzer, WhirlToolProfiler
from repro.nuca import four_core_config, sixteen_core_config
from repro.workloads import ALL_APPS, MANUAL_APPS, build_workload

__all__ = ["main"]


def _cmd_list_apps(args: argparse.Namespace) -> int:
    print("single-threaded suite (Appendix A):")
    for name in ALL_APPS:
        port = " [Table 2]" if name in MANUAL_APPS else ""
        print(f"  {name}{port}")
    from repro.parallel import PARALLEL_APPS

    print("\nparallel apps (Fig 13):")
    for name in sorted(PARALLEL_APPS):
        print(f"  {name}")
    from repro.workloads import ingested_apps

    ingested = ingested_apps()
    if ingested:
        print("\ningested traces ($REPRO_TRACE_DIR):")
        for name in ingested:
            print(f"  {name}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = sixteen_core_config() if args.cores == 16 else four_core_config()
    try:
        workload = build_workload(args.app, scale=args.scale, seed=args.seed)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    schemes = args.schemes.split(",") if args.schemes else None
    if schemes is not None:
        unknown = set(schemes) - set(STANDARD_SCHEMES)
        if unknown:
            print(f"unknown schemes: {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
    results = run_schemes(workload, config, schemes=schemes)
    base = results.get("Jigsaw") or next(iter(results.values()))
    rows = []
    for name, r in results.items():
        b = r.apki_breakdown()
        rows.append(
            [
                name,
                r.cycles / base.cycles,
                r.energy.total / base.energy.total,
                round(b["hits"], 1),
                round(b["misses"], 1),
                round(b["bypasses"], 1),
            ]
        )
    print(f"{args.app} ({args.scale}) on {config.name}:")
    print(
        format_table(
            ["scheme", "time (rel)", "energy (rel)", "hit", "miss", "byp APKI"],
            rows,
        )
    )
    return 0


def _cmd_placement(args: argparse.Namespace) -> int:
    from repro.core.whirlpool import WhirlpoolScheme
    from repro.schemes import ManualPoolClassifier
    from repro.sim import simulate

    config = four_core_config()
    workload = build_workload(args.app, scale=args.scale, seed=args.seed)
    if not workload.manual_pools:
        print(f"{args.app} has no manual pools; use `whirltool`", file=sys.stderr)
        return 2
    captured: dict = {}

    class Capturing(WhirlpoolScheme):
        def decide(self, curves):
            alloc = super().decide(curves)
            captured.clear()
            for vc, a in alloc.items():
                if a.placement is not None:
                    captured[self.vcs[vc].name] = a.placement
            return alloc

    simulate(workload, config, Capturing, classifier=ManualPoolClassifier())
    print(placement_map(config.geometry, captured, core=0))
    return 0


def _cmd_whirltool(args: argparse.Namespace) -> int:
    workload = build_workload(args.app, scale=args.scale, seed=args.seed)
    profile = WhirlToolProfiler().profile(workload)
    clustering = WhirlToolAnalyzer().cluster(profile)
    print(f"callpoints: {len(profile.callpoints)}")
    print("merge tree:")
    print(clustering.dendrogram_text())
    assignments = clustering.assignments(args.pools)
    pools: dict = {}
    for cp, pool in assignments.items():
        pools.setdefault(pool, []).append(profile.names.get(cp, str(cp)))
    print(f"\n{args.pools}-pool classification:")
    for pool, members in sorted(pools.items()):
        print(f"  pool {pool}: {', '.join(sorted(members))}")
    return 0


def _cmd_parallel(args: argparse.Namespace) -> int:
    from repro.parallel import build_parallel_workload
    from repro.sim.parallel import PARALLEL_SCHEMES, evaluate_parallel

    config = sixteen_core_config()
    pw = build_parallel_workload(args.app, scale=args.scale, seed=args.seed)
    results = {s: evaluate_parallel(pw, config, s) for s in PARALLEL_SCHEMES}
    base = results["snuca"]
    rows = [
        [
            s,
            results[s].cycles / base.cycles,
            results[s].energy.total / base.energy.total,
        ]
        for s in PARALLEL_SCHEMES
    ]
    print(format_table(["configuration", "time (vs S-NUCA)", "energy"], rows))
    return 0


def _cmd_campaign_mixes(args: argparse.Namespace) -> int:
    """Run (or resume) a multiprogrammed-mix grid and print Fig-22 tables."""
    from repro.exp import MixCampaign, run_campaign, weighted_speedup_table

    if args.spec is not None:
        try:
            campaign = MixCampaign.from_json_file(args.spec)
        except (OSError, ValueError, TypeError) as exc:
            print(f"cannot load spec {args.spec}: {exc}", file=sys.stderr)
            return 2
    else:
        schemes = args.mix_schemes.split(",")
        try:
            campaign = MixCampaign(
                n_cores=[int(c) for c in args.cores.split(",") if c],
                n_mixes=args.mixes,
                schemes=schemes,
                baseline=args.baseline if args.baseline else schemes[0],
                scale=args.scale,
                base_seed=args.base_seed,
                n_intervals=args.intervals,
            )
        except ValueError as exc:
            print(f"bad mix-campaign arguments: {exc}", file=sys.stderr)
            return 2
    # Same submit/resume semantics as plain campaigns: the store skips
    # every job that already has a result, so re-running after an
    # interruption executes exactly the missing cells.
    report = run_campaign(
        campaign,
        args.store,
        workers=args.workers,
        strict=False,
        retry=_retry_policy(args),
        job_timeout=args.job_timeout,
    )
    print(
        f"{campaign.name}: {report.executed} executed, "
        f"{report.skipped} skipped, {len(report.failures)} failed"
    )
    for key, err in report.failures.items():
        print(f"  FAILED {key}: {err}", file=sys.stderr)
    print(weighted_speedup_table(campaign, args.store))
    return 1 if report.failures else 0


def _retry_policy(args: argparse.Namespace):
    """The campaign retry policy the CLI flags describe."""
    from repro.retry import RetryPolicy

    return RetryPolicy(
        max_attempts=max(1, args.max_attempts),
        base_delay=args.retry_base_delay,
        seed=args.retry_seed,
    )


def _cmd_campaign_quarantine(args: argparse.Namespace) -> int:
    """Inspect, re-execute, or drop the store's quarantined jobs."""
    from repro.exp import Quarantine, ResultStore, quarantine_path_for

    store = ResultStore(args.store)
    quarantine = Quarantine(quarantine_path_for(store.path))

    if args.qaction == "clear":
        n = quarantine.clear()
        print(f"cleared {n} quarantined job(s)")
        return 0

    if args.qaction == "list":
        if not len(quarantine):
            print(f"no quarantined jobs for {args.store}")
            return 0
        rows = []
        for entry in quarantine.entries():
            attempts = entry.get("attempts", [])
            kinds = ",".join(sorted({a.get("kind", "?") for a in attempts}))
            last = attempts[-1].get("error", "") if attempts else ""
            rows.append(
                [entry["key"], len(attempts), kinds or "?", last[:60]]
            )
        print(format_table(["key", "attempts", "kinds", "last error"], rows))
        return 0

    # "retry": re-execute the parked jobs now that whatever poisoned
    # them (a bad node, a since-fixed bug, an injected fault profile)
    # is presumed gone; successes leave the quarantine.
    from repro.exp import Job, run_jobs
    from repro.exp.execute import execute_job

    if not len(quarantine):
        print(f"no quarantined jobs for {args.store}")
        return 0
    jobs = [Job.from_dict(entry["job"]) for entry in quarantine.entries()]
    report = run_jobs(
        jobs,
        execute_job,
        store=store,
        workers=args.workers,
        strict=False,
        retry=_retry_policy(args),
        job_timeout=args.job_timeout,
        # No quarantine here: the parked keys must actually run.
    )
    recovered = [job.key() for job in jobs if job.key() in store]
    quarantine.remove(recovered)
    print(
        f"retried {len(jobs)} quarantined job(s): {len(recovered)} "
        f"recovered, {len(jobs) - len(recovered)} still failing"
    )
    for key, err in report.failures.items():
        print(f"  FAILED {key}: {err}", file=sys.stderr)
    return 1 if report.failures else 0


def _fmt_timing(timings: dict, scheme: str, stat: str) -> str:
    row = timings.get(scheme)
    if not row:
        return "-"
    return f"{row[stat]:.3f}s"


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.exp import Campaign, ResultStore, campaign_status, run_campaign

    if args.action == "mixes":
        return _cmd_campaign_mixes(args)

    if args.action == "quarantine":
        return _cmd_campaign_quarantine(args)

    if args.action == "export":
        store = ResultStore(args.store)
        if not len(store):
            print(f"no results in {args.store}", file=sys.stderr)
            return 2
        print(store.export_table(metric=args.metric))
        return 0

    if args.spec is None:
        print("--spec is required for this action", file=sys.stderr)
        return 2
    try:
        campaign = Campaign.from_json_file(args.spec)
        campaign.jobs()  # surface grid errors (e.g. axis without values)
    except (OSError, ValueError, TypeError) as exc:
        print(f"cannot load spec {args.spec}: {exc}", file=sys.stderr)
        return 2

    if args.action == "status":
        status = campaign_status(campaign, args.store)
        quarantined = (
            f" ({status['quarantined']} quarantined)"
            if status.get("quarantined")
            else ""
        )
        print(
            f"{status['name']}: {status['done']}/{status['total']} done, "
            f"{status['pending']} pending{quarantined}"
        )
        # Wall-clock rollups come from the events sidecar a traced run
        # leaves next to the store; untraced campaigns have none.
        timings = status.get("timings", {})
        if timings:
            rows = [
                [
                    scheme,
                    row["done"],
                    row["pending"],
                    _fmt_timing(timings, scheme, "p50_s"),
                    _fmt_timing(timings, scheme, "p95_s"),
                ]
                for scheme, row in sorted(status["per_scheme"].items())
            ]
            print(
                format_table(
                    ["scheme", "done", "pending", "p50", "p95"], rows
                )
            )
        else:
            rows = [
                [scheme, row["done"], row["pending"]]
                for scheme, row in sorted(status["per_scheme"].items())
            ]
            print(format_table(["scheme", "done", "pending"], rows))
        return 0

    # "submit" runs the missing jobs; "resume" is the same operation by
    # construction (the store skips everything already done).
    report = run_campaign(
        campaign,
        args.store,
        workers=args.workers,
        strict=False,
        retry=_retry_policy(args),
        job_timeout=args.job_timeout,
    )
    retried = f", {report.retried} retried" if report.retried else ""
    quarantined = (
        f", {len(report.quarantined)} quarantined" if report.quarantined else ""
    )
    print(
        f"{campaign.name}: {report.executed} executed, "
        f"{report.skipped} skipped, {len(report.failures)} failed"
        f"{retried}{quarantined}"
    )
    for key, err in report.failures.items():
        print(f"  FAILED {key}: {err}", file=sys.stderr)
    return 1 if report.failures else 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    """Convert / inspect / validate / register external memory traces."""
    from repro import ingest

    if args.action != "convert" and args.out is not None:
        # Otherwise `ingest register t.rtrace myapp` would silently bind
        # the intended name to the unused convert-only OUT operand.
        print(
            f"unexpected argument {args.out!r}: only convert takes a "
            "destination (use --name for register)",
            file=sys.stderr,
        )
        return 2
    try:
        if args.action == "convert":
            return _ingest_convert(args, ingest)
        if args.action == "inspect":
            return _ingest_inspect(args, ingest)
        if args.action == "validate":
            return _ingest_validate(args, ingest)
        if args.action == "watch":
            return _ingest_watch(args, ingest)
        return _ingest_register(args, ingest)
    except (OSError, ValueError) as exc:
        print(f"ingest {args.action} failed: {exc}", file=sys.stderr)
        return 2


def _open_ingest_source(args, ingest):
    source = ingest.open_trace_source(args.path, fmt=args.format)
    if args.alloc_log is not None:
        table = ingest.AttributionTable.from_log(args.alloc_log)
        source = ingest.AttributedSource(source, table)
    return source


def _pipeline_only_flags(args) -> list[str]:
    """Flags that only the .rtrace conversion pipeline can honour."""
    flags = []
    if args.instructions is not None:
        flags.append("--instructions")
    if args.apki is not None:
        flags.append("--apki")
    if args.line_bytes is not None:
        flags.append("--line-bytes")
    if args.dedup:
        flags.append("--dedup")
    return flags


def _ingest_convert(args: argparse.Namespace, ingest) -> int:
    if args.out is None:
        print("convert requires a destination (OUT)", file=sys.stderr)
        return 2
    # Refuse rather than silently drop — and refuse *before* the source
    # open, whose pre-scan can take minutes on a multi-GB text capture.
    if not args.out.endswith(".rtrace"):
        dropped = _pipeline_only_flags(args)
        if args.alloc_log is not None and not args.out.endswith(
            (".csv", ".jsonl", ".ndjson")
        ):
            # lackey/mtrace carry no region column, so the attribution
            # would be computed and then discarded.
            dropped.append("--alloc-log")
        if dropped:
            print(
                f"{'/'.join(dropped)} cannot be honoured when the "
                f"destination is {args.out!r}; convert to .rtrace (or a "
                "region-carrying format) first",
                file=sys.stderr,
            )
            return 2
    source = _open_ingest_source(args, ingest)
    if args.out.endswith(".rtrace"):
        header = ingest.convert_to_rtrace(
            source,
            args.out,
            line_bytes=args.line_bytes,
            instructions=args.instructions,
            apki=args.apki,
            dedup=args.dedup,
            max_records=args.chunk_records,
        )
        print(
            f"wrote {args.out}: {header['n_records']} records, "
            f"{len(header['region_names'])} regions, "
            f"fingerprint {header['fingerprint']}"
        )
    else:
        ingest.write_trace_file(
            args.out, source, max_records=args.chunk_records
        )
        print(f"wrote {args.out}: {source.n_records} records")
    return 0


def _ingest_inspect(args: argparse.Namespace, ingest) -> int:
    fmt = args.format or ingest.detect_format(args.path)
    source = ingest.open_trace_source(args.path, fmt=fmt)
    n_records = source.n_records
    print(f"{args.path}:")
    print(f"  format: {fmt}")
    print(
        f"  records: "
        f"{n_records if n_records is not None else 'unbounded (live stream)'}"
    )
    print(f"  line_bytes: {source.line_bytes}")
    instr = source.instructions
    print(f"  instructions: {instr if instr is not None else 'unknown'}")
    if instr and n_records is not None:
        print(f"  apki: {n_records * 1000.0 / instr:.2f}")
    if source.region_names:
        print(f"  regions: {len(source.region_names)}")
        for rid, name in sorted(source.region_names.items())[:20]:
            print(f"    {rid}: {name}")
        if len(source.region_names) > 20:
            print(f"    ... {len(source.region_names) - 20} more")
    if hasattr(source, "fingerprint"):
        print(f"  fingerprint: {source.fingerprint}")
        print(f"  chunks: {source.n_chunks}")
    return 0


def _stream_source(args: argparse.Namespace, ingest, one_shot: bool):
    """Open ``args.path`` as an unbounded followed source (watch/stdin)."""
    if args.format is None:
        print(
            "live streams cannot be content-sniffed; pass --format "
            "(lackey/csv/jsonl)",
            file=sys.stderr,
        )
        return None
    return ingest.open_stream_source(
        args.path,
        fmt=args.format,
        line_bytes=args.line_bytes if args.line_bytes is not None else 64,
        poll_interval=args.poll_interval,
        idle_timeout=0.0 if one_shot else args.idle_timeout,
    )


def _ingest_watch(args: argparse.Namespace, ingest) -> int:
    source = _stream_source(args, ingest, one_shot=False)
    if source is None:
        return 2
    return ingest.run_watch(
        source,
        epoch_records=args.epoch_records,
        n_pools=args.pools,
    )


def _ingest_validate(args: argparse.Namespace, ingest) -> int:
    if args.path == "-":
        source = _stream_source(args, ingest, one_shot=True)
        if source is None:
            return 2
    else:
        source = ingest.open_trace_source(args.path, fmt=args.format)
    if hasattr(source, "verify_fingerprint"):
        # One decompression pass: fingerprint + record-count check.
        if not source.verify_fingerprint():
            print(
                f"INVALID {args.path}: content fingerprint or record "
                "count mismatch",
                file=sys.stderr,
            )
            return 1
        print(f"OK {args.path}: {source.n_records} records")
        return 0
    n = 0
    for chunk in source.chunks(args.chunk_records):
        n += len(chunk)  # TraceChunk rejects negative addrs/regions
    if source.n_records is None:
        # Unbounded sources have no declared count to cross-check; the
        # pass above still validated every record it could read.
        print(
            f"OK {args.path}: {n} records parse cleanly "
            "(unbounded source; no declared count to check)"
        )
        return 0
    if n != source.n_records:
        print(
            f"INVALID {args.path}: yielded {n} records, "
            f"declared {source.n_records}",
            file=sys.stderr,
        )
        return 1
    # Text/binary interchange formats carry no checksum, so this is a
    # parse check, not an integrity check — say so.
    print(
        f"OK {args.path}: {n} records parse cleanly "
        "(no content fingerprint in this format)"
    )
    return 0


def _ingest_register(args: argparse.Namespace, ingest) -> int:
    import os
    import shutil

    from repro.workloads.registry import TRACE_DIR_ENV

    root = args.trace_dir or os.environ.get(TRACE_DIR_ENV)
    if root is None:
        # No legacy trace directory: publish into the artifact store
        # (content-addressed, name bound through the store's index).
        return _ingest_register_store(args, ingest)
    from pathlib import Path

    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    name = args.name or Path(args.path).stem
    if name in ALL_APPS:
        # The registry resolves built-ins first, so a shadowed trace
        # would be registered but unreachable.
        print(
            f"{name!r} is a built-in benchmark; pick another --name",
            file=sys.stderr,
        )
        return 2
    dst = root / f"{name}.rtrace"
    fmt = args.format or ingest.detect_format(args.path)
    # Stage in the same directory and os.replace at the end: the trace
    # dir is shared with campaign workers resolving names concurrently,
    # and a failed registration must not destroy an existing archive.
    # The temp suffix is NOT .rtrace, so a crash leftover can never be
    # listed as a phantom workload by the registry's glob.
    tmp = root / f".{name}.{os.getpid()}.rtrace-tmp"
    try:
        if (
            fmt == "rtrace"
            and args.alloc_log is None
            and not _pipeline_only_flags(args)
        ):
            staged = ingest.RTraceSource(args.path)  # structural check
            if staged.instructions is None:
                # Reject before copying a potentially huge archive.
                print(
                    "trace carries no instruction count; re-run with "
                    "--instructions or --apki",
                    file=sys.stderr,
                )
                return 2
            shutil.copyfile(args.path, tmp)
        else:
            source = _open_ingest_source(args, ingest)
            header = ingest.convert_to_rtrace(
                source,
                tmp,
                line_bytes=args.line_bytes,
                instructions=args.instructions,
                apki=args.apki,
                dedup=args.dedup,
                max_records=args.chunk_records,
            )
            # Fail registration, not first use: a trace without an
            # instruction count cannot be simulated.
            if header["instructions"] is None:
                print(
                    "trace carries no instruction count; re-run with "
                    "--instructions or --apki",
                    file=sys.stderr,
                )
                return 2
        os.replace(tmp, dst)
    finally:
        tmp.unlink(missing_ok=True)
    print(f"registered {name!r} -> {dst}")
    print(f'run it with: python -m repro run {name}')
    return 0


def _ingest_register_store(args: argparse.Namespace, ingest) -> int:
    """Register a trace into the artifact store (no legacy trace dir)."""
    import os
    import zipfile
    from pathlib import Path

    from repro.store import ArtifactStore, publish_trace

    name = args.name or Path(args.path).stem
    if name in ALL_APPS:
        print(
            f"{name!r} is a built-in benchmark; pick another --name",
            file=sys.stderr,
        )
        return 2
    store = ArtifactStore()
    fmt = args.format or ingest.detect_format(args.path)
    if (
        fmt == "rtrace"
        and args.alloc_log is None
        and not _pipeline_only_flags(args)
    ):
        # publish_trace validates the archive and rejects one without an
        # instruction count before any copying happens.
        fingerprint, dst = publish_trace(
            store, args.path, name=name, inputs={"registered_as": name}
        )
    else:
        staging = store.root / "tmp"
        staging.mkdir(parents=True, exist_ok=True)
        tmp = staging / f".{name}.{os.getpid()}.rtrace-tmp"
        try:
            source = _open_ingest_source(args, ingest)
            header = ingest.convert_to_rtrace(
                source,
                tmp,
                line_bytes=args.line_bytes,
                instructions=args.instructions,
                apki=args.apki,
                dedup=args.dedup,
                max_records=args.chunk_records,
                compression=zipfile.ZIP_STORED,
            )
            if header["instructions"] is None:
                print(
                    "trace carries no instruction count; re-run with "
                    "--instructions or --apki",
                    file=sys.stderr,
                )
                return 2
            fingerprint, dst = publish_trace(
                store,
                tmp,
                name=name,
                inputs={"registered_as": name, "source": str(args.path)},
            )
        finally:
            tmp.unlink(missing_ok=True)
    print(f"registered {name!r} -> {dst}")
    print(f"run it with: python -m repro run {name}")
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    """Artifact-store maintenance (see :mod:`repro.store.cli`)."""
    from repro.store.cli import cmd_store

    return cmd_store(args)


def _cmd_lint(args: argparse.Namespace) -> int:
    """Static invariant checks (see :mod:`repro.devtools.lint`)."""
    import json as _json

    from repro.devtools.lint import (
        RULES,
        explain_rule,
        find_root,
        format_json,
        format_text,
        lint_paths,
    )

    if args.explain is not None:
        try:
            print(explain_rule(args.explain))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0
    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = sorted(set(rules) - set(RULES))
        if unknown:
            print(
                f"error: unknown rule ids: {', '.join(unknown)}; "
                f"known: {', '.join(sorted(RULES))}",
                file=sys.stderr,
            )
            return 2
    root = Path(args.root) if args.root else find_root()
    try:
        findings = lint_paths(
            paths=args.paths or None,
            rules=rules,
            root=root,
            manifest_path=args.manifest,
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(_json.dumps(format_json(findings, root), indent=2))
    else:
        print(format_text(findings))
    return 1 if findings else 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """Summarize an events sidecar (see :mod:`repro.obs.report`)."""
    import json as _json

    from repro.obs import events_path_for
    from repro.obs.report import format_report, load_events, rollup

    if args.events is not None:
        events_path = Path(args.events)
    else:
        events_path = events_path_for(args.store)
    if not events_path.exists():
        print(
            f"no events log at {events_path} (traced campaigns write "
            "<store>.events.jsonl; set $REPRO_OBS to trace other runs)",
            file=sys.stderr,
        )
        return 2
    summary = rollup(load_events(events_path))
    if args.format == "json":
        print(_json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(f"events log: {events_path}")
        print(format_report(summary, top=args.top))
    return 0


def _cmd_config(args: argparse.Namespace) -> int:
    for cfg in (four_core_config(), sixteen_core_config()):
        print(f"--- {cfg.name} ---")
        for key, value in cfg.describe().items():
            print(f"  {key}: {value}")
    print("\nTable 2 (manual ports):")
    rows = [[e.application, e.pools, e.loc] for e in TABLE2]
    print(format_table(["application", "pools", "LOC"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Whirlpool (ASPLOS 2016) reproduction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-apps", help="list all workloads")

    p_run = sub.add_parser("run", help="simulate one app under schemes")
    p_run.add_argument(
        "app",
        help="a built-in benchmark (see list-apps) or an ingested trace",
    )
    p_run.add_argument("--scale", default="ref", choices=["train", "ref"])
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--cores", type=int, default=4, choices=[4, 16])
    p_run.add_argument(
        "--schemes",
        default=None,
        help=f"comma-separated subset of {','.join(STANDARD_SCHEMES)}",
    )

    p_place = sub.add_parser("placement", help="ASCII placement map")
    p_place.add_argument("app", choices=MANUAL_APPS)
    p_place.add_argument("--scale", default="ref", choices=["train", "ref"])
    p_place.add_argument("--seed", type=int, default=0)

    p_wt = sub.add_parser("whirltool", help="train + show the clustering")
    p_wt.add_argument("app", choices=ALL_APPS)
    p_wt.add_argument("--pools", type=int, default=3)
    p_wt.add_argument("--scale", default="train", choices=["train", "ref"])
    p_wt.add_argument("--seed", type=int, default=0)

    p_par = sub.add_parser("parallel", help="run a Fig-13 parallel app")
    p_par.add_argument(
        "app",
        choices=[
            "mergesort",
            "fft",
            "delaunay",
            "pagerank",
            "connectedComponents",
            "triangleCounting",
        ],
    )
    p_par.add_argument("--scale", default="ref", choices=["train", "ref"])
    p_par.add_argument("--seed", type=int, default=0)

    sub.add_parser("config", help="print the Table-3 configuration")

    p_camp = sub.add_parser(
        "campaign", help="submit/resume/inspect an experiment grid"
    )
    p_camp.add_argument(
        "action",
        choices=["submit", "resume", "status", "export", "mixes", "quarantine"],
        help=(
            "submit or resume a grid, report completion, export a table, "
            "run a multiprogrammed-mix grid (Fig 22 at any scale), or "
            "manage quarantined poison jobs"
        ),
    )
    p_camp.add_argument(
        "qaction",
        nargs="?",
        default="list",
        choices=["list", "retry", "clear"],
        help="quarantine: inspect, re-execute, or drop parked jobs",
    )
    p_camp.add_argument(
        "--spec", default=None, help="campaign spec (JSON file)"
    )
    p_camp.add_argument(
        "--store",
        default="campaign.jsonl",
        help="result store path (JSON lines, append-only)",
    )
    p_camp.add_argument(
        "--workers", type=int, default=1, help="process-pool size"
    )
    p_camp.add_argument(
        "--max-attempts",
        type=int,
        default=4,
        help="tries per job before it is quarantined (1 = no retry)",
    )
    p_camp.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help=(
            "per-attempt wall-clock cap in seconds; an overrunning "
            "worker is killed and the attempt retried (needs --workers > 1)"
        ),
    )
    p_camp.add_argument(
        "--retry-base-delay",
        type=float,
        default=0.05,
        help="seconds before the first retry (doubles per attempt)",
    )
    p_camp.add_argument(
        "--retry-seed",
        type=int,
        default=0,
        help="seed for the deterministic retry-backoff jitter",
    )
    p_camp.add_argument(
        "--metric",
        default="cycles",
        help="result field for `export` (e.g. cycles, ipc)",
    )
    p_camp.add_argument(
        "--cores",
        default="4",
        help="mixes: comma-separated chip sizes (4 and/or 16)",
    )
    p_camp.add_argument(
        "--mixes", type=int, default=8, help="mixes: random mixes per size"
    )
    p_camp.add_argument(
        "--mix-schemes",
        default="Jigsaw,Whirlpool,S-NUCA/LRU",
        help="mixes: comma-separated schemes",
    )
    p_camp.add_argument(
        "--baseline",
        default=None,
        help="mixes: weighted-speedup baseline (default: first scheme)",
    )
    p_camp.add_argument(
        "--scale", default="train", choices=["train", "ref"],
        help="mixes: workload input scale",
    )
    p_camp.add_argument(
        "--base-seed", type=int, default=1000, help="mixes: first mix seed"
    )
    p_camp.add_argument(
        "--intervals", type=int, default=8,
        help="mixes: reconfiguration intervals per run",
    )

    p_ing = sub.add_parser(
        "ingest", help="convert/inspect/validate/register external traces"
    )
    p_ing.add_argument(
        "action",
        choices=["convert", "inspect", "validate", "register", "watch"],
        help=(
            "convert a trace between formats (OUT ending in .rtrace runs "
            "the full pipeline), summarize one, check its integrity, "
            "register it as a named workload, or follow a live text "
            "trace and emit pool assignments per epoch"
        ),
    )
    p_ing.add_argument(
        "path",
        help="input trace file ('-' reads stdin for watch/validate)",
    )
    p_ing.add_argument(
        "out", nargs="?", default=None, help="convert: destination file"
    )
    p_ing.add_argument(
        "--format",
        default=None,
        help="input format (default: detect from extension/content)",
    )
    p_ing.add_argument(
        "--line-bytes", type=int, default=None,
        help="cache-line size (default: the source's, usually 64)",
    )
    p_ing.add_argument(
        "--instructions", type=float, default=None,
        help="total instruction count of the capture",
    )
    p_ing.add_argument(
        "--apki", type=float, default=None,
        help="derive instructions from accesses-per-kilo-instruction",
    )
    p_ing.add_argument(
        "--alloc-log", default=None,
        help="allocation log (JSONL) for address -> region attribution",
    )
    p_ing.add_argument(
        "--dedup", action="store_true",
        help="collapse consecutive same-line accesses per region "
        "(private-cache model, like synthesized workloads)",
    )
    p_ing.add_argument(
        "--chunk-records", type=int, default=1 << 21,
        help="streaming chunk size in records (memory bound)",
    )
    p_ing.add_argument(
        "--name", default=None,
        help="register: workload name (default: file stem)",
    )
    p_ing.add_argument(
        "--trace-dir", default=None,
        help=(
            "register: legacy destination directory (default: "
            "$REPRO_TRACE_DIR, else the artifact store)"
        ),
    )
    p_ing.add_argument(
        "--epoch-records", type=int, default=1 << 16,
        help="watch: records per profiling epoch",
    )
    p_ing.add_argument(
        "--pools", type=int, default=3,
        help="watch: number of pools to assign callpoints to",
    )
    p_ing.add_argument(
        "--poll-interval", type=float, default=0.5,
        help="watch: seconds between end-of-file re-reads",
    )
    p_ing.add_argument(
        "--idle-timeout", type=float, default=None,
        help=(
            "watch: stop after this many idle seconds (default: follow "
            "until interrupted; 0 reads once to the current end)"
        ),
    )

    p_store = sub.add_parser(
        "store", help="artifact-store maintenance (profiles + traces)"
    )
    p_store.add_argument(
        "action",
        choices=["status", "gc", "verify", "compact"],
        help=(
            "summarize the store, remove garbage (temps, orphaned "
            "provenance, dead names), check payload integrity, or "
            "import legacy piles and rewrite payloads mappable"
        ),
    )
    p_store.add_argument(
        "--root",
        default=None,
        help="store root (default: $REPRO_STORE_DIR, else the checkout's "
        ".repro_store)",
    )
    p_store.add_argument(
        "--dry-run", action="store_true",
        help="gc/compact: report what would change without touching disk",
    )

    p_lint = sub.add_parser(
        "lint", help="static checks of the repo's pinned invariants"
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: src tests benchmarks)",
    )
    p_lint.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    p_lint.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (json is the stable CI artifact schema)",
    )
    p_lint.add_argument(
        "--explain",
        metavar="RULE-ID",
        default=None,
        help="print a rule's rationale and exit",
    )
    p_lint.add_argument(
        "--root",
        default=None,
        help="repository root (default: nearest ancestor with "
        "pyproject.toml)",
    )
    p_lint.add_argument(
        "--manifest",
        default=None,
        help="alternate invariants.toml (default: the packaged manifest)",
    )

    p_obs = sub.add_parser(
        "obs", help="inspect structured-tracing event logs"
    )
    p_obs.add_argument(
        "action",
        choices=["report"],
        help="report: per-job wall-clock breakdown, retry storms, "
        "cache hit ratios, slowest spans",
    )
    p_obs.add_argument(
        "--events",
        default=None,
        help="events log to read (default: the sidecar of --store)",
    )
    p_obs.add_argument(
        "--store",
        default="campaign.jsonl",
        help="result store whose .events.jsonl sidecar to read "
        "(default: campaign.jsonl)",
    )
    p_obs.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (json is the full rollup object)",
    )
    p_obs.add_argument(
        "--top",
        type=int,
        default=10,
        help="rows per text section (default: 10)",
    )
    return parser


_COMMANDS = {
    "list-apps": _cmd_list_apps,
    "run": _cmd_run,
    "placement": _cmd_placement,
    "whirltool": _cmd_whirltool,
    "parallel": _cmd_parallel,
    "config": _cmd_config,
    "campaign": _cmd_campaign,
    "ingest": _cmd_ingest,
    "store": _cmd_store,
    "lint": _cmd_lint,
    "obs": _cmd_obs,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Output piped into e.g. `head`; exit quietly like other CLIs.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
