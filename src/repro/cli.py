"""Command-line interface: ``python -m repro <command>``.

Commands
--------
- ``list-apps`` — the 31-app suite, Table-2 ports, parallel apps.
- ``run`` — simulate one app under one or more schemes.
- ``placement`` — ASCII placement map for an app (Figs 3-5).
- ``whirltool`` — train WhirlTool on an app and show the clustering.
- ``parallel`` — run a Fig-13 parallel app under all four configs.
- ``config`` — print the Table-3 system configuration.
- ``campaign`` — submit/resume/inspect experiment grids (``repro.exp``);
  the ``mixes`` action runs resumable Fig-22-style mix grids.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import STANDARD_SCHEMES, format_table, placement_map, run_schemes
from repro.core import TABLE2
from repro.core.whirltool import WhirlToolAnalyzer, WhirlToolProfiler
from repro.nuca import four_core_config, sixteen_core_config
from repro.workloads import ALL_APPS, MANUAL_APPS, build_workload

__all__ = ["main"]


def _cmd_list_apps(args: argparse.Namespace) -> int:
    print("single-threaded suite (Appendix A):")
    for name in ALL_APPS:
        port = " [Table 2]" if name in MANUAL_APPS else ""
        print(f"  {name}{port}")
    from repro.parallel import PARALLEL_APPS

    print("\nparallel apps (Fig 13):")
    for name in sorted(PARALLEL_APPS):
        print(f"  {name}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = sixteen_core_config() if args.cores == 16 else four_core_config()
    workload = build_workload(args.app, scale=args.scale, seed=args.seed)
    schemes = args.schemes.split(",") if args.schemes else None
    if schemes is not None:
        unknown = set(schemes) - set(STANDARD_SCHEMES)
        if unknown:
            print(f"unknown schemes: {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
    results = run_schemes(workload, config, schemes=schemes)
    base = results.get("Jigsaw") or next(iter(results.values()))
    rows = []
    for name, r in results.items():
        b = r.apki_breakdown()
        rows.append(
            [
                name,
                r.cycles / base.cycles,
                r.energy.total / base.energy.total,
                round(b["hits"], 1),
                round(b["misses"], 1),
                round(b["bypasses"], 1),
            ]
        )
    print(f"{args.app} ({args.scale}) on {config.name}:")
    print(
        format_table(
            ["scheme", "time (rel)", "energy (rel)", "hit", "miss", "byp APKI"],
            rows,
        )
    )
    return 0


def _cmd_placement(args: argparse.Namespace) -> int:
    from repro.core.whirlpool import WhirlpoolScheme
    from repro.schemes import ManualPoolClassifier
    from repro.sim import simulate

    config = four_core_config()
    workload = build_workload(args.app, scale=args.scale, seed=args.seed)
    if not workload.manual_pools:
        print(f"{args.app} has no manual pools; use `whirltool`", file=sys.stderr)
        return 2
    captured: dict = {}

    class Capturing(WhirlpoolScheme):
        def decide(self, curves):
            alloc = super().decide(curves)
            captured.clear()
            for vc, a in alloc.items():
                if a.placement is not None:
                    captured[self.vcs[vc].name] = a.placement
            return alloc

    simulate(workload, config, Capturing, classifier=ManualPoolClassifier())
    print(placement_map(config.geometry, captured, core=0))
    return 0


def _cmd_whirltool(args: argparse.Namespace) -> int:
    workload = build_workload(args.app, scale=args.scale, seed=args.seed)
    profile = WhirlToolProfiler().profile(workload)
    clustering = WhirlToolAnalyzer().cluster(profile)
    print(f"callpoints: {len(profile.callpoints)}")
    print("merge tree:")
    print(clustering.dendrogram_text())
    assignments = clustering.assignments(args.pools)
    pools: dict = {}
    for cp, pool in assignments.items():
        pools.setdefault(pool, []).append(profile.names.get(cp, str(cp)))
    print(f"\n{args.pools}-pool classification:")
    for pool, members in sorted(pools.items()):
        print(f"  pool {pool}: {', '.join(sorted(members))}")
    return 0


def _cmd_parallel(args: argparse.Namespace) -> int:
    from repro.parallel import build_parallel_workload
    from repro.sim.parallel import PARALLEL_SCHEMES, evaluate_parallel

    config = sixteen_core_config()
    pw = build_parallel_workload(args.app, scale=args.scale, seed=args.seed)
    results = {s: evaluate_parallel(pw, config, s) for s in PARALLEL_SCHEMES}
    base = results["snuca"]
    rows = [
        [
            s,
            results[s].cycles / base.cycles,
            results[s].energy.total / base.energy.total,
        ]
        for s in PARALLEL_SCHEMES
    ]
    print(format_table(["configuration", "time (vs S-NUCA)", "energy"], rows))
    return 0


def _cmd_campaign_mixes(args: argparse.Namespace) -> int:
    """Run (or resume) a multiprogrammed-mix grid and print Fig-22 tables."""
    from repro.exp import MixCampaign, run_campaign, weighted_speedup_table

    if args.spec is not None:
        try:
            campaign = MixCampaign.from_json_file(args.spec)
        except (OSError, ValueError, TypeError) as exc:
            print(f"cannot load spec {args.spec}: {exc}", file=sys.stderr)
            return 2
    else:
        schemes = args.mix_schemes.split(",")
        try:
            campaign = MixCampaign(
                n_cores=[int(c) for c in args.cores.split(",") if c],
                n_mixes=args.mixes,
                schemes=schemes,
                baseline=args.baseline if args.baseline else schemes[0],
                scale=args.scale,
                base_seed=args.base_seed,
                n_intervals=args.intervals,
            )
        except ValueError as exc:
            print(f"bad mix-campaign arguments: {exc}", file=sys.stderr)
            return 2
    # Same submit/resume semantics as plain campaigns: the store skips
    # every job that already has a result, so re-running after an
    # interruption executes exactly the missing cells.
    report = run_campaign(campaign, args.store, workers=args.workers, strict=False)
    print(
        f"{campaign.name}: {report.executed} executed, "
        f"{report.skipped} skipped, {len(report.failures)} failed"
    )
    for key, err in report.failures.items():
        print(f"  FAILED {key}: {err}", file=sys.stderr)
    print(weighted_speedup_table(campaign, args.store))
    return 1 if report.failures else 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.exp import Campaign, ResultStore, campaign_status, run_campaign

    if args.action == "mixes":
        return _cmd_campaign_mixes(args)

    if args.action == "export":
        store = ResultStore(args.store)
        if not len(store):
            print(f"no results in {args.store}", file=sys.stderr)
            return 2
        print(store.export_table(metric=args.metric))
        return 0

    if args.spec is None:
        print("--spec is required for this action", file=sys.stderr)
        return 2
    try:
        campaign = Campaign.from_json_file(args.spec)
        campaign.jobs()  # surface grid errors (e.g. axis without values)
    except (OSError, ValueError, TypeError) as exc:
        print(f"cannot load spec {args.spec}: {exc}", file=sys.stderr)
        return 2

    if args.action == "status":
        status = campaign_status(campaign, args.store)
        print(
            f"{status['name']}: {status['done']}/{status['total']} done, "
            f"{status['pending']} pending"
        )
        rows = [
            [scheme, row["done"], row["pending"]]
            for scheme, row in sorted(status["per_scheme"].items())
        ]
        print(format_table(["scheme", "done", "pending"], rows))
        return 0

    # "submit" runs the missing jobs; "resume" is the same operation by
    # construction (the store skips everything already done).
    report = run_campaign(
        campaign, args.store, workers=args.workers, strict=False
    )
    print(
        f"{campaign.name}: {report.executed} executed, "
        f"{report.skipped} skipped, {len(report.failures)} failed"
    )
    for key, err in report.failures.items():
        print(f"  FAILED {key}: {err}", file=sys.stderr)
    return 1 if report.failures else 0


def _cmd_config(args: argparse.Namespace) -> int:
    for cfg in (four_core_config(), sixteen_core_config()):
        print(f"--- {cfg.name} ---")
        for key, value in cfg.describe().items():
            print(f"  {key}: {value}")
    print("\nTable 2 (manual ports):")
    rows = [[e.application, e.pools, e.loc] for e in TABLE2]
    print(format_table(["application", "pools", "LOC"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Whirlpool (ASPLOS 2016) reproduction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-apps", help="list all workloads")

    p_run = sub.add_parser("run", help="simulate one app under schemes")
    p_run.add_argument("app", choices=ALL_APPS)
    p_run.add_argument("--scale", default="ref", choices=["train", "ref"])
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--cores", type=int, default=4, choices=[4, 16])
    p_run.add_argument(
        "--schemes",
        default=None,
        help=f"comma-separated subset of {','.join(STANDARD_SCHEMES)}",
    )

    p_place = sub.add_parser("placement", help="ASCII placement map")
    p_place.add_argument("app", choices=MANUAL_APPS)
    p_place.add_argument("--scale", default="ref", choices=["train", "ref"])
    p_place.add_argument("--seed", type=int, default=0)

    p_wt = sub.add_parser("whirltool", help="train + show the clustering")
    p_wt.add_argument("app", choices=ALL_APPS)
    p_wt.add_argument("--pools", type=int, default=3)
    p_wt.add_argument("--scale", default="train", choices=["train", "ref"])
    p_wt.add_argument("--seed", type=int, default=0)

    p_par = sub.add_parser("parallel", help="run a Fig-13 parallel app")
    p_par.add_argument(
        "app",
        choices=[
            "mergesort",
            "fft",
            "delaunay",
            "pagerank",
            "connectedComponents",
            "triangleCounting",
        ],
    )
    p_par.add_argument("--scale", default="ref", choices=["train", "ref"])
    p_par.add_argument("--seed", type=int, default=0)

    sub.add_parser("config", help="print the Table-3 configuration")

    p_camp = sub.add_parser(
        "campaign", help="submit/resume/inspect an experiment grid"
    )
    p_camp.add_argument(
        "action",
        choices=["submit", "resume", "status", "export", "mixes"],
        help=(
            "submit or resume a grid, report completion, export a table, "
            "or run a multiprogrammed-mix grid (Fig 22 at any scale)"
        ),
    )
    p_camp.add_argument(
        "--spec", default=None, help="campaign spec (JSON file)"
    )
    p_camp.add_argument(
        "--store",
        default="campaign.jsonl",
        help="result store path (JSON lines, append-only)",
    )
    p_camp.add_argument(
        "--workers", type=int, default=1, help="process-pool size"
    )
    p_camp.add_argument(
        "--metric",
        default="cycles",
        help="result field for `export` (e.g. cycles, ipc)",
    )
    p_camp.add_argument(
        "--cores",
        default="4",
        help="mixes: comma-separated chip sizes (4 and/or 16)",
    )
    p_camp.add_argument(
        "--mixes", type=int, default=8, help="mixes: random mixes per size"
    )
    p_camp.add_argument(
        "--mix-schemes",
        default="Jigsaw,Whirlpool,S-NUCA/LRU",
        help="mixes: comma-separated schemes",
    )
    p_camp.add_argument(
        "--baseline",
        default=None,
        help="mixes: weighted-speedup baseline (default: first scheme)",
    )
    p_camp.add_argument(
        "--scale", default="train", choices=["train", "ref"],
        help="mixes: workload input scale",
    )
    p_camp.add_argument(
        "--base-seed", type=int, default=1000, help="mixes: first mix seed"
    )
    p_camp.add_argument(
        "--intervals", type=int, default=8,
        help="mixes: reconfiguration intervals per run",
    )
    return parser


_COMMANDS = {
    "list-apps": _cmd_list_apps,
    "run": _cmd_run,
    "placement": _cmd_placement,
    "whirltool": _cmd_whirltool,
    "parallel": _cmd_parallel,
    "config": _cmd_config,
    "campaign": _cmd_campaign,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Output piped into e.g. `head`; exit quietly like other CLIs.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
