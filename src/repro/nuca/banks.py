"""Event-driven set-associative cache simulator.

Used to (a) validate the analytical Mattson curves against a concrete
cache, and (b) run the replacement-policy study of Sec 2.3 (LRU vs DRRIP
vs pool-aware DRRIP in a monolithic cache).  The NUCA schemes themselves
are analytical (see DESIGN.md); this simulator is the ground truth they
are checked against in the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.replacement.base import AccessContext, ReplacementPolicy

__all__ = ["CacheSim", "CacheStats"]


@dataclass
class CacheStats:
    """Hit/miss counters for one simulated cache."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses observed."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed."""
        return self.misses / self.accesses if self.accesses else 0.0


class CacheSim:
    """A set-associative cache with a pluggable replacement policy.

    Args:
        size_bytes: total capacity.
        ways: associativity.
        line_bytes: line size.
        policy_factory: callable ``(n_sets, n_ways) -> ReplacementPolicy``.
    """

    def __init__(
        self,
        size_bytes: int,
        ways: int,
        policy_factory,
        line_bytes: int = 64,
    ) -> None:
        n_lines = size_bytes // line_bytes
        if n_lines < ways or n_lines % ways != 0:
            raise ValueError(
                f"size {size_bytes} not divisible into {ways}-way sets of "
                f"{line_bytes}B lines"
            )
        self.n_sets = n_lines // ways
        self.n_ways = ways
        self.line_bytes = line_bytes
        self._tags = np.full((self.n_sets, ways), -1, dtype=np.int64)
        self.policy: ReplacementPolicy = policy_factory(self.n_sets, ways)
        self.stats = CacheStats()

    def _set_index(self, line_addr: int) -> int:
        return line_addr % self.n_sets

    def access(self, line_addr: int, pool: int = -1) -> bool:
        """Access one line address; returns True on hit."""
        set_index = self._set_index(line_addr)
        ctx = AccessContext(pool=pool, set_index=set_index)
        row = self._tags[set_index]
        hit_ways = np.nonzero(row == line_addr)[0]
        if len(hit_ways) > 0:
            self.stats.hits += 1
            self.policy.on_hit(set_index, int(hit_ways[0]), ctx)
            return True
        self.stats.misses += 1
        empty = np.nonzero(row == -1)[0]
        if len(empty) > 0:
            way = int(empty[0])
        else:
            way = self.policy.victim(set_index, ctx)
            self.policy.on_eviction(set_index, way)
        row[way] = line_addr
        self.policy.on_fill(set_index, way, ctx)
        return False

    def run(self, lines: np.ndarray, pools: np.ndarray | None = None) -> CacheStats:
        """Simulate a whole trace; returns the accumulated stats."""
        if pools is None:
            for addr in lines.tolist():
                self.access(int(addr))
        else:
            for addr, pool in zip(lines.tolist(), pools.tolist()):
                self.access(int(addr), int(pool))
        return self.stats
