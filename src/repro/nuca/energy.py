"""Data-movement energy accounting.

The paper reports *data movement energy*: the dynamic energy of cache
banks, the NoC, and main memory (Figs 10, 13, 19-21).  We account it per
event with constants whose ratios follow the paper's introduction
(an off-chip DRAM access costs ~20-50× an on-chip 1 MB cache access;
sending data across the chip is comparable to a cache access).

Substitution note (DESIGN.md): the paper derives constants from McPAT at
22 nm and Micron DDR3L datasheets; absolute joules differ here, but every
figure normalizes energy to a baseline scheme, so only ratios matter.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EnergyModel", "EnergyBreakdown"]


@dataclass
class EnergyBreakdown:
    """Accumulated data-movement energy, by component (in nJ).

    Matches the stacked bars of Fig 10: ``network`` (NoC routers+links),
    ``bank`` (LLC bank accesses), ``memory`` (DRAM accesses).
    """

    network: float = 0.0
    bank: float = 0.0
    memory: float = 0.0

    @property
    def total(self) -> float:
        """Total data-movement energy."""
        return self.network + self.bank + self.memory

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            network=self.network + other.network,
            bank=self.bank + other.bank,
            memory=self.memory + other.memory,
        )

    def scaled(self, factor: float) -> "EnergyBreakdown":
        """Multiply every component by ``factor``."""
        return EnergyBreakdown(
            network=self.network * factor,
            bank=self.bank * factor,
            memory=self.memory * factor,
        )


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy constants (nJ per 64 B line event).

    Attributes:
        bank_nj: one LLC bank lookup/fill.
        hop_nj: moving one line across one router+link hop (one way).
        mem_nj: one DRAM access (row activation amortized).
        private_nj: one private-cache (L2/private-L3) access, for
            IdealSPD's replicated private region.
    """

    bank_nj: float = 0.8
    hop_nj: float = 0.35
    mem_nj: float = 8.0
    private_nj: float = 0.4

    def llc_access(self, hops: float, count: float = 1.0) -> EnergyBreakdown:
        """Energy of ``count`` LLC accesses placed ``hops`` away.

        Request + data traverse the network both ways (2× per-hop).
        """
        return EnergyBreakdown(
            network=2.0 * hops * self.hop_nj * count,
            bank=self.bank_nj * count,
        )

    def memory_access(self, mem_hops: float, count: float = 1.0) -> EnergyBreakdown:
        """Energy of ``count`` main-memory accesses (NoC to the MCU + DRAM)."""
        return EnergyBreakdown(
            network=2.0 * mem_hops * self.hop_nj * count,
            memory=self.mem_nj * count,
        )

    def bank_lookup(self, count: float = 1.0) -> EnergyBreakdown:
        """Energy of bare bank lookups (no network), e.g. directory checks."""
        return EnergyBreakdown(bank=self.bank_nj * count)

    def private_access(self, count: float = 1.0) -> EnergyBreakdown:
        """Energy of private-region accesses (IdealSPD's replicated L3)."""
        return EnergyBreakdown(bank=self.private_nj * count)

    def migration(self, hops: float, count: float = 1.0) -> EnergyBreakdown:
        """Energy of migrating ``count`` lines ``hops`` away (one way).

        Covers D-NUCA block migration and Awasthi page moves (the page
        migration cost is ``lines_per_page`` such events).
        """
        return EnergyBreakdown(
            network=hops * self.hop_nj * count,
            bank=2.0 * self.bank_nj * count,  # read source + write dest
        )
