"""Mesh geometry: banks, cores, memory controllers, and hop distances.

The LLC is a ``dim × dim`` mesh of banks.  Cores are attached to perimeter
tiles (their *entry tile*); an access from a core to a bank traverses the
X-Y route from the entry tile.  Memory controllers occupy corner entries.

The central abstraction for data placement is the *reach curve* of a core:
the average one-way hop count to the closest banks covering a given
capacity.  Jigsaw's latency model multiplies this by per-hop latency to
decide how big each VC should be (paper Sec 2.4), and the placement
algorithms consume per-bank distances directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["MeshGeometry", "Placement"]


@dataclass
class Placement:
    """Capacity assigned to a VC, per bank.

    Attributes:
        bank_bytes: mapping bank index -> bytes of that bank used.
    """

    bank_bytes: dict[int, float] = field(default_factory=dict)

    @property
    def total_bytes(self) -> float:
        """Total capacity of the placement."""
        return float(sum(self.bank_bytes.values()))

    def avg_hops(self, distances: np.ndarray) -> float:
        """Capacity-weighted average distance given per-bank distances."""
        total = self.total_bytes
        if total == 0:
            return 0.0
        return float(
            sum(b * distances[k] for k, b in self.bank_bytes.items()) / total
        )

    def add(self, bank: int, nbytes: float) -> None:
        """Add ``nbytes`` of capacity in ``bank``."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        self.bank_bytes[bank] = self.bank_bytes.get(bank, 0.0) + nbytes


class MeshGeometry:
    """A ``dim × dim`` NUCA bank mesh with perimeter cores and corner MCUs.

    Args:
        dim: mesh dimension (5 for the 4-core chip, 9 for 16-core).
        n_cores: number of cores, spread evenly over the four sides.
        bank_bytes: capacity of one bank.
        n_mcus: number of memory controllers (corner entry tiles).
    """

    def __init__(
        self,
        dim: int,
        n_cores: int,
        bank_bytes: int = 512 * 1024,
        n_mcus: int = 1,
    ) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if n_cores < 1 or n_cores % 4 not in (0, 1, 2):
            # 1, 2, 4, 8, 12, 16... we only require <= 4*dim placeable.
            pass
        self.dim = dim
        self.n_cores = n_cores
        self.bank_bytes = bank_bytes
        self.n_banks = dim * dim
        # Bank k is at (row, col) = divmod(k, dim).
        rows, cols = np.divmod(np.arange(self.n_banks), dim)
        self._bank_rows = rows
        self._bank_cols = cols
        self.core_entries = self._place_cores(dim, n_cores)
        corners = [(0, 0), (0, dim - 1), (dim - 1, 0), (dim - 1, dim - 1)]
        if not 1 <= n_mcus <= 4:
            raise ValueError(f"n_mcus must be in [1, 4], got {n_mcus}")
        self.mcu_entries = corners[:n_mcus]
        # Precompute per-core distances and reach prefix sums.
        self._dist = np.stack(
            [self._distances_from(entry) for entry in self.core_entries]
        )
        self._reach_order = np.argsort(self._dist, axis=1, kind="stable")
        sorted_dist = np.take_along_axis(self._dist, self._reach_order, axis=1)
        self._reach_cumdist = np.cumsum(sorted_dist, axis=1)
        self._sorted_dist = sorted_dist

    @staticmethod
    def _place_cores(dim: int, n_cores: int) -> list[tuple[int, int]]:
        """Entry tiles for cores, spread evenly around the perimeter.

        The first core is at the middle of the west side (where the paper
        runs dt in Fig 1); subsequent cores rotate around the chip.
        """
        per_side = (n_cores + 3) // 4
        # Offsets along a side, centered (e.g. dim=5, 1/side -> [2];
        # dim=9, 4/side -> [1, 3, 5, 7]).
        if per_side == 1:
            offsets = [dim // 2]
        else:
            step = dim // per_side
            start = (dim - step * (per_side - 1) - 1) // 2
            offsets = [start + i * step for i in range(per_side)]
        west = [(o, 0) for o in offsets]
        north = [(0, o) for o in offsets]
        east = [(o, dim - 1) for o in offsets]
        south = [(dim - 1, o) for o in offsets]
        sides = [west, north, east, south]
        entries: list[tuple[int, int]] = []
        for i in range(n_cores):
            entries.append(sides[i % 4][i // 4])
        return entries

    def _distances_from(self, entry: tuple[int, int]) -> np.ndarray:
        """Manhattan hops from an entry tile to every bank."""
        er, ec = entry
        return (
            np.abs(self._bank_rows - er) + np.abs(self._bank_cols - ec)
        ).astype(np.float64)

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        """Aggregate LLC capacity."""
        return self.n_banks * self.bank_bytes

    def bank_position(self, bank: int) -> tuple[int, int]:
        """(row, col) of a bank index."""
        return int(self._bank_rows[bank]), int(self._bank_cols[bank])

    def distances(self, core: int) -> np.ndarray:
        """Per-bank one-way hop distances from ``core``'s entry tile."""
        return self._dist[core]

    def mem_hops(self, core: int) -> float:
        """One-way hops from ``core`` to its nearest memory controller."""
        er, ec = self.core_entries[core]
        return float(
            min(abs(er - mr) + abs(ec - mc) for mr, mc in self.mcu_entries)
        )

    def snuca_avg_hops(self, core: int) -> float:
        """Average hops when data is hashed evenly over all banks (S-NUCA)."""
        return float(self._dist[core].mean())

    # ------------------------------------------------------------------
    # Reach curves
    # ------------------------------------------------------------------
    def closest_banks(self, core: int) -> np.ndarray:
        """Bank indices sorted by distance from ``core`` (ties stable)."""
        return self._reach_order[core]

    def reach_avg_hops(self, core: int, size_bytes: float) -> float:
        """Average hops to the *closest* banks covering ``size_bytes``.

        This is the reach curve Jigsaw's latency model uses: the best-case
        access latency of a VC of a given size owned by this core.
        Size 0 returns the distance of the closest bank (a lookup still
        touches one bank unless the VC is bypassed).
        """
        if size_bytes <= 0:
            return float(self._sorted_dist[core][0])
        n_full = int(size_bytes // self.bank_bytes)
        n_full = min(n_full, self.n_banks)
        used = n_full * self.bank_bytes
        frac_bytes = min(size_bytes, self.total_bytes) - used
        dist_sum = (
            self._reach_cumdist[core][n_full - 1] * self.bank_bytes
            if n_full > 0
            else 0.0
        )
        if frac_bytes > 0 and n_full < self.n_banks:
            dist_sum += self._sorted_dist[core][n_full] * frac_bytes
        return float(dist_sum / min(size_bytes, self.total_bytes))

    def reach_fn(self, core: int):
        """The reach curve as a callable ``size_bytes -> avg hops``."""
        return lambda size_bytes: self.reach_avg_hops(core, size_bytes)

    def closest_placement(self, core: int, size_bytes: float) -> Placement:
        """Greedy placement of ``size_bytes`` in the closest banks."""
        placement = Placement()
        remaining = min(size_bytes, self.total_bytes)
        for bank in self.closest_banks(core):
            if remaining <= 0:
                break
            take = min(remaining, self.bank_bytes)
            placement.add(int(bank), take)
            remaining -= take
        return placement

    @property
    def center_tile(self) -> tuple[int, int]:
        """The central mesh tile (where shared data wants to live)."""
        return (self.dim // 2, self.dim // 2)

    def distances_from_tile(self, tile: tuple[int, int]) -> np.ndarray:
        """Per-bank hop distances from an arbitrary tile."""
        return self._distances_from(tile)

    def central_placement(self, size_bytes: float) -> Placement:
        """Greedy placement of ``size_bytes`` in the most central banks.

        Used for shared (process/global) VCs accessed from all around the
        chip: the latency-minimizing home for uniformly shared data is
        the mesh center, not any one core's corner.
        """
        dist = self.distances_from_tile(self.center_tile)
        order = np.argsort(dist, kind="stable")
        placement = Placement()
        remaining = min(size_bytes, self.total_bytes)
        for bank in order:
            if remaining <= 0:
                break
            take = min(remaining, self.bank_bytes)
            placement.add(int(bank), take)
            remaining -= take
        return placement

    def central_reach_fn(self, accessing_cores: list[int] | None = None):
        """Reach function for a centrally-placed shared VC.

        Returns average one-way hops from the accessing cores (default:
        all cores) to the closest-to-center banks covering a size.
        """
        cores = accessing_cores or list(range(self.n_cores))
        dist = self.distances_from_tile(self.center_tile)
        order = np.argsort(dist, kind="stable")
        core_dist = np.mean([self._dist[c] for c in cores], axis=0)
        sorted_core_dist = core_dist[order]
        cum = np.cumsum(sorted_core_dist)

        def reach(size_bytes: float) -> float:
            if size_bytes <= 0:
                return float(sorted_core_dist[0])
            n_full = min(int(size_bytes // self.bank_bytes), self.n_banks)
            used = n_full * self.bank_bytes
            frac = min(size_bytes, self.total_bytes) - used
            total = (cum[n_full - 1] * self.bank_bytes) if n_full > 0 else 0.0
            if frac > 0 and n_full < self.n_banks:
                total += sorted_core_dist[n_full] * frac
            return float(total / min(size_bytes, self.total_bytes))

        return reach

    def centroid_core(self, weights: dict[int, float]) -> int:
        """The core whose entry is closest to the weighted core centroid.

        Used to place shared (process/global) VCs accessed by many cores.
        """
        if not weights:
            return 0
        total = sum(weights.values())
        if total <= 0:
            return next(iter(weights))
        r = sum(self.core_entries[c][0] * w for c, w in weights.items()) / total
        c = sum(self.core_entries[cc][1] * w for cc, w in weights.items()) / total
        best = min(
            range(self.n_cores),
            key=lambda k: abs(self.core_entries[k][0] - r)
            + abs(self.core_entries[k][1] - c),
        )
        return best
