"""ZCache: high associativity from few ways (Sanchez & Kozyrakis, MICRO'10).

Table 3 specifies the LLC banks as "4-way 52-candidate zcaches".  A
zcache hashes a line to one position per way with *different* hash
functions; on a miss it walks the candidate graph (each victim
candidate's other positions are candidates too) and relocates a short
chain of lines, so a 4-way array behaves like a ~52-way cache.

This implementation supports the analytical model's key assumption:
bank-level conflict misses are negligible, so fully-associative Mattson
curves predict bank behaviour.  The tests verify a 4-way zcache tracks
the fully-associative curve far better than a 4-way set-associative
cache.
"""

from __future__ import annotations

import numpy as np

from repro.nuca.banks import CacheStats

__all__ = ["ZCache"]

_MULTS = [
    0x9E3779B97F4A7C15,
    0xC2B2AE3D27D4EB4F,
    0x165667B19E3779F9,
    0x27D4EB2F165667C5,
    0xFF51AFD7ED558CCD,
    0xC4CEB9FE1A85EC53,
]
_MASK = (1 << 64) - 1


class ZCache:
    """A zcache with W ways and an L-level replacement walk.

    Args:
        size_bytes: capacity.
        ways: hash functions / physical ways (Table 3: 4).
        walk_levels: relocation-walk depth; candidates = ways *
            (ways - 1)^0..levels ~ 52 for 4 ways, 2 levels (4+12+36).
        line_bytes: line size.
    """

    def __init__(
        self,
        size_bytes: int,
        ways: int = 4,
        walk_levels: int = 2,
        line_bytes: int = 64,
    ) -> None:
        n_lines = size_bytes // line_bytes
        if ways < 2 or ways > len(_MULTS):
            raise ValueError(f"ways must be in [2, {len(_MULTS)}], got {ways}")
        if n_lines < ways or n_lines % ways != 0:
            raise ValueError("size not divisible into ways")
        self.ways = ways
        self.walk_levels = walk_levels
        self.n_sets = n_lines // ways
        # One bucket array per way; each position holds a line address.
        self._arrays = np.full((ways, self.n_sets), -1, dtype=np.int64)
        self._stamp = np.zeros((ways, self.n_sets), dtype=np.int64)
        self._clock = 0
        self.stats = CacheStats()

    def _position(self, way: int, line_addr: int) -> int:
        # Use the *high* bits of the multiplicative hash: low bits are
        # degenerate for strided address streams.
        h = ((line_addr + 1) * _MULTS[way]) & _MASK
        return (h >> 24) % self.n_sets

    def _candidates(self, line_addr: int) -> list[tuple[int, int]]:
        """BFS over the candidate graph up to ``walk_levels``."""
        frontier = [(w, self._position(w, line_addr)) for w in range(self.ways)]
        seen = set(frontier)
        out = list(frontier)
        for __ in range(self.walk_levels):
            nxt = []
            for way, pos in frontier:
                victim = self._arrays[way, pos]
                if victim < 0:
                    continue
                for w2 in range(self.ways):
                    if w2 == way:
                        continue
                    cand = (w2, self._position(w2, int(victim)))
                    if cand not in seen:
                        seen.add(cand)
                        nxt.append(cand)
                        out.append(cand)
            frontier = nxt
        return out

    @property
    def associativity(self) -> int:
        """Nominal candidate count (ways + expansion levels)."""
        total = self.ways
        level = self.ways
        for __ in range(self.walk_levels):
            level = level * (self.ways - 1)
            total += level
        return total

    def access(self, line_addr: int) -> bool:
        """Access one line; returns True on hit."""
        line_addr = int(line_addr)
        self._clock += 1
        for way in range(self.ways):
            pos = self._position(way, line_addr)
            if self._arrays[way, pos] == line_addr:
                self.stats.hits += 1
                self._stamp[way, pos] = self._clock
                return True
        self.stats.misses += 1
        self._fill(line_addr)
        return False

    def _fill(self, line_addr: int) -> None:
        candidates = self._candidates(line_addr)
        # Empty candidate anywhere: take it (relocation chain implied).
        for way, pos in candidates:
            if self._arrays[way, pos] < 0:
                self._move_chain(line_addr, way, pos)
                return
        # Evict the globally LRU candidate.
        way, pos = min(candidates, key=lambda wp: self._stamp[wp[0], wp[1]])
        self._move_chain(line_addr, way, pos)

    def _move_chain(self, line_addr: int, way: int, pos: int) -> None:
        """Place ``line_addr``; relocate displaced lines toward the slot.

        A real zcache moves the chain of lines along the walk; for
        hit/miss accounting only the final occupancy matters, so the
        displaced line is dropped once the chain depth is exhausted and
        the new line lands in one of its own positions, swapping through
        at most ``walk_levels`` hops.
        """
        # Find whether (way, pos) is one of the new line's own positions.
        own = {(w, self._position(w, line_addr)) for w in range(self.ways)}
        if (way, pos) in own:
            self._arrays[way, pos] = line_addr
            self._stamp[way, pos] = self._clock
            return
        # Relocate the occupant of one of our own positions into
        # (way, pos), then take the freed slot: one-hop chain.
        for w, p in own:
            occupant = self._arrays[w, p]
            if occupant >= 0:
                occ_positions = {
                    (w2, self._position(w2, int(occupant)))
                    for w2 in range(self.ways)
                }
                if (way, pos) in occ_positions:
                    self._arrays[way, pos] = occupant
                    self._stamp[way, pos] = self._stamp[w, p]
                    self._arrays[w, p] = line_addr
                    self._stamp[w, p] = self._clock
                    return
        # Fallback: overwrite one of our own positions (LRU among them).
        w, p = min(own, key=lambda wp: self._stamp[wp[0], wp[1]])
        self._arrays[w, p] = line_addr
        self._stamp[w, p] = self._clock

    def run(self, lines: np.ndarray) -> CacheStats:
        """Simulate a whole trace."""
        for addr in lines.tolist():
            self.access(addr)
        return self.stats
