"""NUCA hardware substrate: mesh geometry, latency/energy models, configs.

Models the simulated CMPs of Table 3: a 4-core chip with a 5×5 mesh of
512 KB LLC banks (Fig 1) and a 16-core chip with a 9×9 mesh (Fig 12).
Cores sit on the mesh perimeter; memory controllers at the corners.

Modules
-------
- :mod:`repro.nuca.geometry` — mesh coordinates, hop distances, and
  "reach" curves (average hops to the closest banks covering a size).
- :mod:`repro.nuca.energy` — per-event data-movement energy accounting.
- :mod:`repro.nuca.config` — Table-3 system configurations.
- :mod:`repro.nuca.banks` — event-driven set-associative bank simulator.
"""

from repro.nuca.banks import CacheSim
from repro.nuca.config import SystemConfig, four_core_config, sixteen_core_config
from repro.nuca.energy import EnergyBreakdown, EnergyModel
from repro.nuca.geometry import MeshGeometry, Placement
from repro.nuca.zcache import ZCache

__all__ = [
    "CacheSim",
    "EnergyBreakdown",
    "EnergyModel",
    "MeshGeometry",
    "Placement",
    "SystemConfig",
    "ZCache",
    "four_core_config",
    "sixteen_core_config",
]
