"""System configurations (paper Table 3).

Two simulated CMPs:

- 4 cores, 5×5 mesh of 512 KB banks (12.5 MB LLC, ~3.1 MB/core), 1 MCU.
- 16 cores, 9×9 mesh of 512 KB banks (40.5 MB LLC, ~2.5 MB/core), 4 MCUs.

Both use 64 B lines, 9-cycle banks, 3-cycle routers + 2-cycle links
(5 cycles/hop one way), and 120-cycle zero-load memory latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.curves.latency import LatencyModel
from repro.nuca.energy import EnergyModel
from repro.nuca.geometry import MeshGeometry

__all__ = ["SystemConfig", "four_core_config", "sixteen_core_config"]


@dataclass
class SystemConfig:
    """Everything a scheme needs to know about the simulated chip.

    Attributes:
        name: human-readable config name.
        geometry: the bank mesh (banks, cores, MCUs, distances).
        latency: latency parameters (banks, hops, memory).
        energy: per-event energy model.
        line_bytes: cache line size.
        l2_bytes: per-core private L2 size (the LLC trace is the L2 miss
            stream; L2 size matters to IdealSPD's private region model).
        base_cpi: core CPI when never stalled on LLC/memory data.
        reconfig_instructions: instructions between runtime
            reconfigurations (scaled-down stand-in for the 25 ms epoch).
        chunk_bytes: size granularity for miss curves and allocations.
    """

    name: str
    geometry: MeshGeometry
    latency: LatencyModel
    energy: EnergyModel = field(default_factory=EnergyModel)
    line_bytes: int = 64
    l2_bytes: int = 128 * 1024
    base_cpi: float = 0.35
    reconfig_instructions: float = 250_000.0
    chunk_bytes: int = 64 * 1024

    @property
    def n_cores(self) -> int:
        """Number of cores."""
        return self.geometry.n_cores

    @property
    def llc_bytes(self) -> int:
        """Total LLC capacity."""
        return self.geometry.total_bytes

    @property
    def n_chunks(self) -> int:
        """LLC capacity in miss-curve chunks."""
        return self.llc_bytes // self.chunk_bytes

    @property
    def model_chunks(self) -> int:
        """Miss-curve grid extent: 2× the LLC, so models that interpolate
        or hull the curve (DRRIP scan resistance, WhirlTool distances)
        see behaviour beyond the cache size."""
        return 2 * self.n_chunks

    def latency_for_core(self, core: int) -> LatencyModel:
        """Latency model with this core's distance to its memory controller."""
        return LatencyModel(
            bank_latency=self.latency.bank_latency,
            hop_latency=self.latency.hop_latency,
            mem_latency=self.latency.mem_latency,
            mem_hops=self.geometry.mem_hops(core),
        )

    def describe(self) -> dict[str, str]:
        """Table-3-style description of the configuration."""
        geo = self.geometry
        return {
            "Cores": f"{geo.n_cores} cores, trace-driven in-order model, "
            f"base CPI {self.base_cpi}",
            "L2 caches": f"{self.l2_bytes // 1024}KB private per-core "
            "(traces are the L2 miss stream)",
            "L3 cache": f"{geo.bank_bytes // 1024}KB per bank, "
            f"{geo.dim}x{geo.dim} mesh, "
            f"{self.latency.bank_latency:.0f}-cycle bank latency",
            "NUCA NoC": f"{geo.dim}x{geo.dim} mesh, X-Y routing, "
            f"{self.latency.hop_latency:.0f} cycles/hop one-way",
            "Memory": f"{len(geo.mcu_entries)} MCUs, "
            f"{self.latency.mem_latency:.0f}-cycle zero-load latency",
            "Lines": f"{self.line_bytes} B lines",
        }


def four_core_config(**overrides) -> SystemConfig:
    """The 4-core, 5×5-mesh chip of Fig 1 / Table 3."""
    geometry = MeshGeometry(dim=5, n_cores=4, bank_bytes=512 * 1024, n_mcus=1)
    cfg = SystemConfig(
        name="4-core 5x5",
        geometry=geometry,
        latency=LatencyModel(bank_latency=9, hop_latency=5, mem_latency=120),
    )
    for key, value in overrides.items():
        setattr(cfg, key, value)
    return cfg


def sixteen_core_config(**overrides) -> SystemConfig:
    """The 16-core, 9×9-mesh chip of Fig 12 / Table 3."""
    geometry = MeshGeometry(dim=9, n_cores=16, bank_bytes=512 * 1024, n_mcus=4)
    cfg = SystemConfig(
        name="16-core 9x9",
        geometry=geometry,
        latency=LatencyModel(bank_latency=9, hop_latency=5, mem_latency=120),
    )
    for key, value in overrides.items():
        setattr(cfg, key, value)
    return cfg
