"""Multiprogrammed mixes of SPEC apps (Fig 22 methodology).

The paper runs 20 mixes of randomly-chosen memory-intensive SPEC apps on
the 4- and 16-core chips with a fixed-work methodology.  A mix here is a
list of per-core workloads; the multiprogram driver runs them side by
side and reports weighted speedup.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.registry import SPEC_APPS, build_workload
from repro.workloads.trace import Workload

__all__ = ["make_mix", "make_mixes"]


def make_mix(n_cores: int, seed: int, scale: str = "ref") -> list[Workload]:
    """One random mix: ``n_cores`` SPEC apps chosen with replacement."""
    rng = np.random.default_rng(seed)
    names = rng.choice(SPEC_APPS, size=n_cores, replace=True)
    return [
        build_workload(str(name), scale=scale, seed=seed * 31 + i)
        for i, name in enumerate(names)
    ]


def make_mixes(
    n_mixes: int, n_cores: int, scale: str = "ref", base_seed: int = 1000
) -> list[list[Workload]]:
    """The Fig 22 experiment set: ``n_mixes`` random mixes."""
    return [
        make_mix(n_cores, seed=base_seed + k, scale=scale) for k in range(n_mixes)
    ]
