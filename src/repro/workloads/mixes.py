"""Multiprogrammed mixes of SPEC apps (Fig 22 methodology).

The paper runs 20 mixes of randomly-chosen memory-intensive SPEC apps on
the 4- and 16-core chips with a fixed-work methodology.  A mix here is a
list of per-core workloads; the multiprogram driver runs them side by
side and reports weighted speedup.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.registry import SPEC_APPS, build_workload
from repro.workloads.trace import Workload

__all__ = ["make_mix", "make_mixes", "mix_names", "mix_seeds"]


def mix_names(n_cores: int, seed: int) -> list[str]:
    """The app names of one random mix (the composition behind
    :func:`make_mix`, without building the workloads)."""
    rng = np.random.default_rng(seed)
    return [str(n) for n in rng.choice(SPEC_APPS, size=n_cores, replace=True)]


def mix_seeds(n_cores: int, seed: int) -> list[int]:
    """The per-app workload seeds :func:`make_mix` uses."""
    return [seed * 31 + i for i in range(n_cores)]


def make_mix(n_cores: int, seed: int, scale: str = "ref") -> list[Workload]:
    """One random mix: ``n_cores`` SPEC apps chosen with replacement."""
    return [
        build_workload(name, scale=scale, seed=app_seed)
        for name, app_seed in zip(
            mix_names(n_cores, seed), mix_seeds(n_cores, seed)
        )
    ]


def make_mixes(
    n_mixes: int, n_cores: int, scale: str = "ref", base_seed: int = 1000
) -> list[list[Workload]]:
    """The Fig 22 experiment set: ``n_mixes`` random mixes."""
    return [
        make_mix(n_cores, seed=base_seed + k, scale=scale) for k in range(n_mixes)
    ]
