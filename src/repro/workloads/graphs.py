"""Graph substrate: CSR graphs, random generators, and partitioning.

PBBS's graph kernels and the parallel graph applications (pagerank,
connectedComponents, triangleCounting) run on these.  The partitioner is
the METIS substitute (DESIGN.md): a BFS-grown balanced k-way partition
with a boundary-refinement pass minimizing edge cut.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Graph",
    "uniform_random_graph",
    "rmat_graph",
    "grid_graph",
    "partition_graph",
    "edge_cut",
]


@dataclass
class Graph:
    """Compressed-sparse-row undirected graph.

    Attributes:
        offsets: int64 array of length ``n + 1``.
        targets: int64 array of length ``m`` (each undirected edge appears
            in both endpoints' adjacency lists).
    """

    offsets: np.ndarray
    targets: np.ndarray

    def __post_init__(self) -> None:
        self.offsets = np.ascontiguousarray(self.offsets, dtype=np.int64)
        self.targets = np.ascontiguousarray(self.targets, dtype=np.int64)
        if len(self.offsets) < 1 or self.offsets[0] != 0:
            raise ValueError("offsets must start at 0")
        if self.offsets[-1] != len(self.targets):
            raise ValueError("offsets[-1] must equal len(targets)")

    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self.offsets) - 1

    @property
    def m(self) -> int:
        """Number of directed adjacency entries (2x undirected edges)."""
        return len(self.targets)

    def neighbors(self, v: int) -> np.ndarray:
        """Adjacency list of ``v``."""
        return self.targets[self.offsets[v] : self.offsets[v + 1]]

    def degrees(self) -> np.ndarray:
        """Vertex degrees."""
        return np.diff(self.offsets)


def _edges_to_csr(n: int, src: np.ndarray, dst: np.ndarray) -> Graph:
    """Build a symmetric CSR from (possibly duplicated) edge endpoints."""
    keep = src != dst
    src, dst = src[keep], dst[keep]
    all_src = np.concatenate([src, dst])
    all_dst = np.concatenate([dst, src])
    # Dedup directed pairs.
    key = all_src * n + all_dst
    __, unique_idx = np.unique(key, return_index=True)
    all_src, all_dst = all_src[unique_idx], all_dst[unique_idx]
    order = np.argsort(all_src, kind="stable")
    all_src, all_dst = all_src[order], all_dst[order]
    counts = np.bincount(all_src, minlength=n)
    offsets = np.concatenate([[0], np.cumsum(counts)])
    return Graph(offsets=offsets, targets=all_dst)


def uniform_random_graph(n: int, avg_degree: float, seed: int = 0) -> Graph:
    """Erdős–Rényi-style random graph with ``n`` vertices."""
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    rng = np.random.default_rng(seed)
    m = int(n * avg_degree / 2)
    src = rng.integers(0, n, size=m, dtype=np.int64)
    dst = rng.integers(0, n, size=m, dtype=np.int64)
    return _edges_to_csr(n, src, dst)


def rmat_graph(n: int, avg_degree: float, seed: int = 0) -> Graph:
    """R-MAT power-law graph (a=0.57 b=c=0.19), like real social graphs."""
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    rng = np.random.default_rng(seed)
    levels = int(np.ceil(np.log2(n)))
    size = 1 << levels
    m = int(n * avg_degree / 2)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    probs = np.array([0.57, 0.19, 0.19, 0.05])
    for level in range(levels):
        quadrant = rng.choice(4, size=m, p=probs)
        bit = size >> (level + 1)
        src += np.where((quadrant == 2) | (quadrant == 3), bit, 0)
        dst += np.where((quadrant == 1) | (quadrant == 3), bit, 0)
    src %= n
    dst %= n
    return _edges_to_csr(n, src, dst)


def grid_graph(side: int) -> Graph:
    """A 2-D ``side × side`` mesh (regular, trivially partitionable)."""
    n = side * side
    rows, cols = np.divmod(np.arange(n), side)
    src_list = []
    dst_list = []
    right = cols < side - 1
    src_list.append(np.nonzero(right)[0])
    dst_list.append(np.nonzero(right)[0] + 1)
    down = rows < side - 1
    src_list.append(np.nonzero(down)[0])
    dst_list.append(np.nonzero(down)[0] + side)
    return _edges_to_csr(
        n, np.concatenate(src_list).astype(np.int64),
        np.concatenate(dst_list).astype(np.int64),
    )


def edge_cut(graph: Graph, parts: np.ndarray) -> int:
    """Number of undirected edges crossing partitions."""
    src = np.repeat(np.arange(graph.n), graph.degrees())
    crossing = parts[src] != parts[graph.targets]
    return int(np.count_nonzero(crossing) // 2)


def partition_graph(graph: Graph, k: int, seed: int = 0, refine_passes: int = 2) -> np.ndarray:
    """Balanced k-way partitioning, minimizing edge cut (METIS substitute).

    BFS-grows ``k`` regions from spread-out seeds to balance sizes, then
    runs greedy boundary refinement (move a vertex to the neighboring
    partition where most of its neighbors live, subject to balance).

    Returns:
        int32 membership array of length ``graph.n``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n = graph.n
    parts = np.full(n, -1, dtype=np.int32)
    if k == 1:
        return np.zeros(n, dtype=np.int32)
    rng = np.random.default_rng(seed)
    target = n / k
    cap = int(np.ceil(target))
    seeds = rng.choice(n, size=k, replace=False)
    frontiers: list[list[int]] = [[int(s)] for s in seeds]
    sizes = [0] * k
    for i, s in enumerate(seeds):
        parts[s] = i
        sizes[i] = 1
    # Round-robin BFS growth, smallest partition first.
    active = True
    while active:
        active = False
        order = np.argsort(sizes)
        for p in order:
            if not frontiers[p] or sizes[p] >= cap:
                continue
            new_frontier: list[int] = []
            for v in frontiers[p]:
                for u in graph.neighbors(v).tolist():
                    if parts[u] == -1 and sizes[p] < cap:
                        parts[u] = p
                        sizes[p] += 1
                        new_frontier.append(u)
            frontiers[p] = new_frontier
            if new_frontier:
                active = True
    # Unreached vertices (disconnected): assign to smallest partitions.
    for v in np.nonzero(parts == -1)[0].tolist():
        p = int(np.argmin(sizes))
        parts[v] = p
        sizes[p] += 1
    # Greedy boundary refinement.
    slack = int(np.ceil(0.05 * target)) + 1
    for __ in range(refine_passes):
        moved = 0
        for v in range(n):
            neigh = graph.neighbors(v)
            if len(neigh) == 0:
                continue
            counts = np.bincount(parts[neigh], minlength=k)
            best = int(np.argmax(counts))
            cur = parts[v]
            if best != cur and counts[best] > counts[cur]:
                if sizes[best] < cap + slack and sizes[cur] > target - slack:
                    parts[v] = best
                    sizes[cur] -= 1
                    sizes[best] += 1
                    moved += 1
        if moved == 0:
            break
    return parts
