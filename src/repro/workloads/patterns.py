"""Reusable access-pattern primitives for workload generators.

These produce *byte-address* streams over an :class:`Allocation`.  They
model what an L2-filtered access stream looks like for common idioms:
sequential scans touch each line once; working-set random access produces
reuse at the working-set stack distance; Zipf access produces a smooth
miss-rate curve; pointer chases are permutation walks.
"""

from __future__ import annotations

import numpy as np

from repro.mem.allocator import Allocation

__all__ = [
    "scan",
    "repeated_scan",
    "uniform_random",
    "zipf_random",
    "pointer_chase",
    "strided",
    "gather",
]


def _line_base(alloc: Allocation, line_bytes: int) -> tuple[int, int]:
    n_lines = max(1, alloc.size // line_bytes)
    return alloc.base, n_lines


def scan(alloc: Allocation, line_bytes: int = 64) -> np.ndarray:
    """One sequential pass over the allocation, one access per line."""
    base, n_lines = _line_base(alloc, line_bytes)
    return base + np.arange(n_lines, dtype=np.int64) * line_bytes


def repeated_scan(
    alloc: Allocation, passes: int, line_bytes: int = 64
) -> np.ndarray:
    """``passes`` sequential sweeps (stencil-style reuse at WS distance)."""
    one = scan(alloc, line_bytes)
    return np.tile(one, passes)


def strided(
    alloc: Allocation, stride_bytes: int, count: int, line_bytes: int = 64
) -> np.ndarray:
    """Strided walk, wrapping at the end of the allocation."""
    if stride_bytes <= 0:
        raise ValueError(f"stride_bytes must be positive, got {stride_bytes}")
    offs = (np.arange(count, dtype=np.int64) * stride_bytes) % max(
        alloc.size - line_bytes + 1, 1
    )
    return alloc.base + offs


def uniform_random(
    rng: np.random.Generator, alloc: Allocation, count: int, line_bytes: int = 64
) -> np.ndarray:
    """Uniform random line accesses within the allocation."""
    base, n_lines = _line_base(alloc, line_bytes)
    idx = rng.integers(0, n_lines, size=count, dtype=np.int64)
    return base + idx * line_bytes


def zipf_random(
    rng: np.random.Generator,
    alloc: Allocation,
    count: int,
    alpha: float = 1.2,
    line_bytes: int = 64,
) -> np.ndarray:
    """Zipf-skewed random line accesses (hot-head reuse).

    Line popularity ranks are shuffled so the hot lines are spread over
    the allocation rather than packed at its start.
    """
    base, n_lines = _line_base(alloc, line_bytes)
    ranks = rng.zipf(alpha, size=count).astype(np.int64)
    ranks = (ranks - 1) % n_lines
    # Fixed permutation decouples rank from address.
    perm_rng = np.random.default_rng(0xC0FFEE ^ n_lines)
    perm = perm_rng.permutation(n_lines)
    return base + perm[ranks] * line_bytes


def pointer_chase(
    rng: np.random.Generator,
    alloc: Allocation,
    count: int,
    line_bytes: int = 64,
) -> np.ndarray:
    """A random-permutation walk (linked-list traversal).

    Touches lines in a fixed pseudo-random cycle: full-working-set reuse
    distance, like mcf's node walks.
    """
    base, n_lines = _line_base(alloc, line_bytes)
    perm = rng.permutation(n_lines)
    idx = perm[np.arange(count, dtype=np.int64) % n_lines]
    return base + idx * line_bytes


def gather(
    alloc: Allocation, indices: np.ndarray, elem_bytes: int
) -> np.ndarray:
    """Element accesses ``alloc[indices]`` (CSR gathers, hash probes)."""
    return alloc.base + np.asarray(indices, dtype=np.int64) * elem_bytes
