"""A small DSL for phase-structured synthetic workloads.

A workload is a set of named :class:`RegionSpec` (one per data structure
/ allocation callpoint) plus a list of :class:`PhaseSpec` giving each
phase's access mix.  The generator allocates each region from its own
pool, then emits the interleaved access stream phase by phase.

Patterns:

- ``uniform`` — random lines over the whole region (reuse distance ≈
  working set; caches well iff the region fits).
- ``zipf`` — skewed reuse (smooth, convex miss curve; hot head caches in
  little space).
- ``stream`` — sequential, cursor persists across phases (no reuse until
  the region wraps; the classic bypass candidate).
- ``chase`` — pointer chase over a fixed permutation (whole-region reuse
  distance, like mcf's node walks).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.mem.allocator import HeapAllocator, PoolAllocator
from repro.workloads import patterns
from repro.workloads.trace import TraceBuilder, Workload

__all__ = ["RegionSpec", "PhaseSpec", "build_synthetic"]

_PATTERNS = ("uniform", "zipf", "stream", "chase")


@dataclass(frozen=True)
class RegionSpec:
    """One data structure of a synthetic workload.

    Attributes:
        name: region/pool name.
        size_bytes: working-set size.
        pattern: one of ``uniform``, ``zipf``, ``stream``, ``chase``.
        zipf_alpha: skew for the ``zipf`` pattern.
    """

    name: str
    size_bytes: int
    pattern: str = "uniform"
    zipf_alpha: float = 1.2

    def __post_init__(self) -> None:
        if self.pattern not in _PATTERNS:
            raise ValueError(f"unknown pattern {self.pattern!r}")
        if self.size_bytes < 64:
            raise ValueError(f"region {self.name}: size too small")


@dataclass(frozen=True)
class PhaseSpec:
    """One program phase.

    Attributes:
        weights: region name -> relative share of this phase's accesses
            (regions absent from the dict are idle in the phase).
        accesses: number of LLC accesses in the phase.
    """

    weights: dict[str, float]
    accesses: int


@dataclass
class _RegionState:
    alloc: object
    region_id: int
    stream_cursor: int = 0
    chase_perm: np.ndarray | None = None


def build_synthetic(
    name: str,
    regions: list[RegionSpec],
    phases: list[PhaseSpec],
    apki: float,
    seed: int = 0,
    manual_pool_names: list[str] | None = None,
    table2_loc: int | None = None,
) -> Workload:
    """Generate a :class:`Workload` from region and phase specs.

    Args:
        name: benchmark name.
        regions: the data structures.
        phases: phase list, executed in order.
        apki: LLC accesses per kilo-instruction (fixes the instruction
            count, and thus the cost of every miss in CPI terms).
        seed: RNG seed.
        manual_pool_names: if given, the subset of region names that were
            manually classified (Table 2 apps); each named region becomes
            its own manual pool.
        table2_loc: lines-of-code-changed metadata (Table 2).
    """
    if not regions:
        raise ValueError("at least one region required")
    if not phases:
        raise ValueError("at least one phase required")
    rng = np.random.default_rng(seed)
    heap = HeapAllocator()
    alloc = PoolAllocator(heap)
    tb = TraceBuilder()
    states: dict[str, _RegionState] = {}
    specs = {r.name: r for r in regions}
    for spec in regions:
        # Each region models a distinct allocation site in the real
        # program, so give it a name-derived callpoint id rather than the
        # (shared) line of this loop.
        site = zlib.crc32(f"{name}:{spec.name}".encode()) & 0x7FFFFFFF
        a = alloc.malloc(spec.size_bytes, spec.name, callpoint=site)
        rid = tb.region(spec.name, a)
        states[spec.name] = _RegionState(alloc=a, region_id=rid)

    for phase in phases:
        total_w = sum(phase.weights.values())
        if total_w <= 0:
            raise ValueError("phase weights must sum to a positive value")
        streams: dict[int, np.ndarray] = {}
        for rname, w in phase.weights.items():
            if rname not in specs:
                raise ValueError(f"phase references unknown region {rname!r}")
            count = int(round(phase.accesses * w / total_w))
            if count <= 0:
                continue
            spec = specs[rname]
            state = states[rname]
            streams[state.region_id] = _emit(spec, state, count, rng)
        tb.access_interleaved(streams)

    trace = tb.finalize(apki=apki)
    manual = None
    if manual_pool_names is not None:
        manual = {
            states[rname].region_id: rname for rname in manual_pool_names
        }
    return Workload(
        name=name,
        trace=trace,
        heap=heap,
        manual_pools=manual,
        table2_loc=table2_loc,
    )


def _emit(
    spec: RegionSpec, state: _RegionState, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Produce ``count`` byte addresses for one region in one phase."""
    a = state.alloc
    n_lines = max(1, spec.size_bytes // 64)
    if spec.pattern == "uniform":
        return patterns.uniform_random(rng, a, count)
    if spec.pattern == "zipf":
        return patterns.zipf_random(rng, a, count, alpha=spec.zipf_alpha)
    if spec.pattern == "chase":
        if state.chase_perm is None:
            state.chase_perm = rng.permutation(n_lines)
        idx = state.chase_perm[
            (state.stream_cursor + np.arange(count, dtype=np.int64)) % n_lines
        ]
        state.stream_cursor = (state.stream_cursor + count) % n_lines
        return a.base + idx * 64
    # stream: sequential with persistent cursor.
    idx = (state.stream_cursor + np.arange(count, dtype=np.int64)) % n_lines
    state.stream_cursor = (state.stream_cursor + count) % n_lines
    return a.base + idx * 64
