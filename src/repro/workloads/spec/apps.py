"""The 15 memory-intensive SPEC CPU2006 models (paper Appendix A).

Each builder accepts ``scale`` ("train"/"small" for profiling inputs,
"ref"/"large" for evaluation inputs) and a seed.  Working-set sizes and
access mixes follow the paper's descriptions where given (lbm Sec 2.2,
cactus/mcf/bzip2 Table 2) and public characterization data otherwise.

Four apps (leslie3d, omnetpp, xalancbmk — plus PBBS setCover) change
access-pattern shape between train and ref inputs; they drive the
training-input sensitivity study of Fig 18.
"""

from __future__ import annotations

from repro.workloads.spec.synth import PhaseSpec, RegionSpec, build_synthetic
from repro.workloads.trace import Workload

__all__ = ["SPEC_BUILDERS"]

_MB = 1 << 20
_KB = 1 << 10


def _is_ref(scale: str) -> bool:
    if scale in ("ref", "large"):
        return True
    if scale in ("train", "small"):
        return False
    raise ValueError(f"unknown scale {scale!r}")


def _steady(weights: dict[str, float], accesses: int, n: int) -> list[PhaseSpec]:
    """n identical phases (steady-state program)."""
    return [PhaseSpec(weights=weights, accesses=accesses) for __ in range(n)]


def build_bzip2(scale: str = "ref", seed: int = 0) -> Workload:
    """401.bzip2 (Table 2: arr1/arr2/ftab/tt, 43 LOC).

    Block-sorting compression: two block buffers with solid reuse, a hot
    frequency table, and a larger suffix-pointer work area.  Total
    working set ≈ 4 MB — small enough that IdealSPD's private region does
    well on it (paper Sec 4.5).
    """
    big = _is_ref(scale)
    f = 1.0 if big else 0.35
    regions = [
        RegionSpec("arr1", int(1.0 * _MB * f), "uniform"),
        RegionSpec("arr2", int(1.0 * _MB * f), "uniform"),
        RegionSpec("ftab", int(256 * _KB * f), "zipf", zipf_alpha=1.4),
        RegionSpec("tt", int(2.0 * _MB * f), "uniform"),
    ]
    compress = {"arr1": 3.0, "arr2": 2.0, "ftab": 2.5, "tt": 2.5}
    entropy = {"arr2": 4.0, "ftab": 4.0}
    phases = []
    per_phase = 220_000 if big else 90_000
    for __ in range(6):
        phases.append(PhaseSpec(compress, per_phase))
        phases.append(PhaseSpec(entropy, per_phase // 2))
    return build_synthetic(
        "bzip2", regions, phases, apki=14.0, seed=seed,
        manual_pool_names=["arr1", "arr2", "ftab", "tt"], table2_loc=43,
    )


def build_gcc(scale: str = "ref", seed: int = 0) -> Workload:
    """403.gcc: many allocation sites, bursty per-pass working sets.

    High phase variability — the paper notes gcc slightly *loses* from
    more pools (Fig 16) because finer partitioning amplifies phase churn.
    """
    big = _is_ref(scale)
    f = 1.0 if big else 0.4
    regions = [
        RegionSpec("rtl", int(3.0 * _MB * f), "uniform"),
        RegionSpec("tree", int(2.0 * _MB * f), "uniform"),
        RegionSpec("symtab", int(640 * _KB * f), "zipf", zipf_alpha=1.3),
        RegionSpec("bitmaps", int(1.5 * _MB * f), "stream"),
        RegionSpec("df", int(2.5 * _MB * f), "uniform"),
    ]
    passes = [
        {"rtl": 4.0, "symtab": 2.0},
        {"tree": 4.0, "symtab": 1.5},
        {"df": 4.0, "bitmaps": 3.0},
        {"rtl": 2.0, "df": 3.0, "bitmaps": 2.0},
        {"tree": 2.0, "rtl": 2.0},
    ]
    per_phase = 160_000 if big else 60_000
    phases = [PhaseSpec(w, per_phase) for w in passes * 3]
    return build_synthetic("gcc", regions, phases, apki=12.0, seed=seed)


def build_mcf(scale: str = "ref", seed: int = 0) -> Workload:
    """429.mcf (Table 2: nodes/arcs, 14 LOC).

    Network simplex: pointer-chased node structures with a moderate
    working set, and a much larger arc array swept with poor locality.
    """
    big = _is_ref(scale)
    f = 1.0 if big else 0.3
    regions = [
        RegionSpec("nodes", int(3.0 * _MB * f), "chase"),
        RegionSpec("arcs", int(18.0 * _MB * f), "stream"),
    ]
    phases = _steady({"nodes": 5.0, "arcs": 6.0}, 300_000 if big else 100_000, 8)
    return build_synthetic(
        "mcf", regions, phases, apki=45.0, seed=seed,
        manual_pool_names=["nodes", "arcs"], table2_loc=14,
    )


def build_milc(scale: str = "ref", seed: int = 0) -> Workload:
    """433.milc: lattice QCD, large streaming su3 field sweeps."""
    big = _is_ref(scale)
    f = 1.0 if big else 0.35
    regions = [
        RegionSpec("links", int(9.0 * _MB * f), "stream"),
        RegionSpec("fields", int(6.0 * _MB * f), "stream"),
        RegionSpec("temporaries", int(1.0 * _MB * f), "uniform"),
    ]
    phases = _steady(
        {"links": 4.0, "fields": 3.0, "temporaries": 1.0},
        280_000 if big else 100_000, 8,
    )
    return build_synthetic("milc", regions, phases, apki=30.0, seed=seed)


def build_zeusmp(scale: str = "ref", seed: int = 0) -> Workload:
    """434.zeusmp: astrophysics stencils over several 3-D grids."""
    big = _is_ref(scale)
    f = 1.0 if big else 0.35
    regions = [
        RegionSpec("field_grids", int(8.0 * _MB * f), "stream"),
        RegionSpec("flux_grids", int(4.0 * _MB * f), "stream"),
        RegionSpec("boundary", int(768 * _KB * f), "uniform"),
    ]
    phases = _steady(
        {"field_grids": 4.0, "flux_grids": 2.5, "boundary": 1.0},
        260_000 if big else 90_000, 8,
    )
    return build_synthetic("zeusmp", regions, phases, apki=22.0, seed=seed)


def build_cactus(scale: str = "ref", seed: int = 0) -> Workload:
    """436.cactusADM (Table 2: Pugh variables / leapfrog grid, 53 LOC).

    Two regions, only one with reuse (Fig 19): the Pugh variables cache
    well; the staggered-leapfrog grid streams and is bypassed by
    Whirlpool.
    """
    big = _is_ref(scale)
    f = 1.0 if big else 0.35
    regions = [
        RegionSpec("pugh", int(2.5 * _MB * f), "zipf", zipf_alpha=1.1),
        RegionSpec("grid", int(20.0 * _MB * f), "stream"),
    ]
    phases = _steady({"pugh": 5.0, "grid": 5.0}, 300_000 if big else 100_000, 8)
    return build_synthetic(
        "cactus", regions, phases, apki=18.0, seed=seed,
        manual_pool_names=["pugh", "grid"], table2_loc=53,
    )


def build_leslie(scale: str = "ref", seed: int = 0) -> Workload:
    """437.leslie3d: LES fluid dynamics.

    Training-sensitive (Fig 18): on the train input the flux arrays are
    small and stream with the grids; on ref they develop reuse, so a
    classifier trained on train merges pools that ref wants separated.
    """
    big = _is_ref(scale)
    if big:
        regions = [
            RegionSpec("grids_u", int(7.0 * _MB), "stream"),
            RegionSpec("grids_v", int(7.0 * _MB), "stream"),
            RegionSpec("flux", int(2.5 * _MB), "uniform"),
            RegionSpec("metrics", int(1.0 * _MB), "zipf", zipf_alpha=1.2),
        ]
    else:
        # On the train input the flux arrays stream with the grids (the
        # grouping trap WhirlTool falls into, Fig 18).
        regions = [
            RegionSpec("grids_u", int(1.5 * _MB), "stream"),
            RegionSpec("grids_v", int(1.5 * _MB), "stream"),
            RegionSpec("flux", int(4.0 * _MB), "stream"),
            RegionSpec("metrics", int(384 * _KB), "zipf", zipf_alpha=1.2),
        ]
    weights = {"grids_u": 2.0, "grids_v": 2.0, "flux": 3.0, "metrics": 1.5}
    phases = _steady(weights, 260_000 if big else 90_000, 8)
    return build_synthetic("leslie", regions, phases, apki=24.0, seed=seed)


def build_soplex(scale: str = "ref", seed: int = 0) -> Workload:
    """450.soplex: simplex LP — sparse-matrix sweeps + hot dense vectors."""
    big = _is_ref(scale)
    f = 1.0 if big else 0.35
    regions = [
        RegionSpec("matrix", int(14.0 * _MB * f), "stream"),
        RegionSpec("vectors", int(1.2 * _MB * f), "uniform"),
        RegionSpec("basis", int(512 * _KB * f), "zipf", zipf_alpha=1.3),
    ]
    phases = _steady(
        {"matrix": 5.0, "vectors": 3.0, "basis": 1.5},
        280_000 if big else 100_000, 8,
    )
    return build_synthetic("soplex", regions, phases, apki=28.0, seed=seed)


def build_gems(scale: str = "ref", seed: int = 0) -> Workload:
    """459.GemsFDTD: FDTD electromagnetics — giant streaming field grids."""
    big = _is_ref(scale)
    f = 1.0 if big else 0.35
    regions = [
        RegionSpec("e_field", int(8.0 * _MB * f), "stream"),
        RegionSpec("h_field", int(8.0 * _MB * f), "stream"),
        RegionSpec("coefficients", int(1.0 * _MB * f), "uniform"),
    ]
    phases = []
    per_phase = 240_000 if big else 80_000
    for __ in range(5):
        phases.append(
            PhaseSpec({"e_field": 5.0, "h_field": 2.0, "coefficients": 1.0}, per_phase)
        )
        phases.append(
            PhaseSpec({"h_field": 5.0, "e_field": 2.0, "coefficients": 1.0}, per_phase)
        )
    return build_synthetic("gems", regions, phases, apki=26.0, seed=seed)


def build_libquantum(scale: str = "ref", seed: int = 0) -> Workload:
    """462.libquantum: one big quantum-register vector, streamed repeatedly."""
    big = _is_ref(scale)
    f = 1.0 if big else 0.35
    regions = [RegionSpec("register", int(4.0 * _MB * f), "stream")]
    phases = _steady({"register": 1.0}, 350_000 if big else 120_000, 8)
    return build_synthetic("libqntm", regions, phases, apki=34.0, seed=seed)


def build_lbm(scale: str = "ref", seed: int = 0) -> Workload:
    """470.lbm (Table 2: source/destination grids, 21 LOC).

    The Sec-2.2 phase example (Fig 6): each timestep reads the source
    grid with good reuse and streams the destination grid, and the grids
    swap roles every timestep.  On average the two pools look identical;
    only a dynamic policy exploits them.
    """
    big = _is_ref(scale)
    f = 1.0 if big else 0.35
    regions = [
        RegionSpec("grid1", int(6.0 * _MB * f), "zipf", zipf_alpha=1.15),
        RegionSpec("grid2", int(6.0 * _MB * f), "stream"),
    ]
    # NOTE: both regions carry *both* patterns over time; the pattern
    # field gives each region's behaviour when it is the source (zipf) or
    # the destination (stream).  We emulate the swap by weighting: in odd
    # timesteps grid1 is read-heavy (source), in even timesteps grid2.
    phases = []
    per_phase = 200_000 if big else 70_000
    for t in range(10):
        if t % 2 == 0:
            phases.append(PhaseSpec({"grid1": 6.0, "grid2": 4.0}, per_phase))
        else:
            phases.append(PhaseSpec({"grid2": 6.0, "grid1": 4.0}, per_phase))
    return build_synthetic(
        "lbm", regions, phases, apki=40.0, seed=seed,
        manual_pool_names=["grid1", "grid2"], table2_loc=21,
    )


def build_omnet(scale: str = "ref", seed: int = 0) -> Workload:
    """471.omnetpp: discrete-event simulation.

    Training-sensitive (Fig 18): the train network is small, so the
    message pool looks hot; at ref scale messages spread over a much
    larger pool and only the event heap stays hot.
    """
    big = _is_ref(scale)
    if big:
        regions = [
            RegionSpec("event_heap", int(1.0 * _MB), "zipf", zipf_alpha=1.5),
            RegionSpec("messages", int(6.0 * _MB), "uniform"),
            RegionSpec("topology", int(2.5 * _MB), "uniform"),
            RegionSpec("stats_log", int(4.0 * _MB), "stream"),
        ]
    else:
        # Train network is tiny: messages look as hot as the event heap
        # (so WhirlTool merges them), and the log barely streams.
        regions = [
            RegionSpec("event_heap", int(512 * _KB), "zipf", zipf_alpha=1.5),
            RegionSpec("messages", int(640 * _KB), "zipf", zipf_alpha=1.5),
            RegionSpec("topology", int(1.0 * _MB), "uniform"),
            RegionSpec("stats_log", int(1.5 * _MB), "stream"),
        ]
    phases = _steady(
        {"event_heap": 3.0, "messages": 4.0, "topology": 2.0, "stats_log": 1.0},
        240_000 if big else 80_000, 8,
    )
    return build_synthetic("omnet", regions, phases, apki=20.0, seed=seed)


def build_astar(scale: str = "ref", seed: int = 0) -> Workload:
    """473.astar: pathfinding — hot open list, big map with spread reuse."""
    big = _is_ref(scale)
    f = 1.0 if big else 0.35
    regions = [
        RegionSpec("open_list", int(640 * _KB * f), "zipf", zipf_alpha=1.4),
        RegionSpec("map", int(7.0 * _MB * f), "uniform"),
        RegionSpec("came_from", int(2.0 * _MB * f), "uniform"),
    ]
    phases = _steady(
        {"open_list": 3.0, "map": 5.0, "came_from": 2.0},
        260_000 if big else 90_000, 8,
    )
    return build_synthetic("astar", regions, phases, apki=25.0, seed=seed)


def build_sphinx(scale: str = "ref", seed: int = 0) -> Workload:
    """482.sphinx3: speech recognition — hot acoustic model scores."""
    big = _is_ref(scale)
    f = 1.0 if big else 0.35
    regions = [
        RegionSpec("acoustic_model", int(7.0 * _MB * f), "zipf", zipf_alpha=1.05),
        RegionSpec("lattice", int(1.5 * _MB * f), "uniform"),
        RegionSpec("dictionary", int(512 * _KB * f), "zipf", zipf_alpha=1.4),
    ]
    phases = _steady(
        {"acoustic_model": 6.0, "lattice": 2.0, "dictionary": 1.0},
        280_000 if big else 100_000, 8,
    )
    return build_synthetic("sphinx3", regions, phases, apki=27.0, seed=seed)


def build_xalanc(scale: str = "ref", seed: int = 0) -> Workload:
    """483.xalancbmk: XSLT — pointer-heavy DOM plus string churn.

    Training-sensitive (Fig 18): the train document's DOM fits easily, so
    DOM and strings cluster; on ref the DOM grows past the strings.
    """
    big = _is_ref(scale)
    if big:
        regions = [
            RegionSpec("dom", int(6.0 * _MB), "chase"),
            RegionSpec("strings", int(3.0 * _MB), "uniform"),
            RegionSpec("templates", int(768 * _KB), "zipf", zipf_alpha=1.3),
            RegionSpec("output", int(5.0 * _MB), "stream"),
        ]
    else:
        # The train document is small: the DOM behaves like the strings
        # (both fit easily), so a train-trained clustering merges them.
        regions = [
            RegionSpec("dom", int(1.0 * _MB), "uniform"),
            RegionSpec("strings", int(1.0 * _MB), "uniform"),
            RegionSpec("templates", int(384 * _KB), "zipf", zipf_alpha=1.3),
            RegionSpec("output", int(1.5 * _MB), "stream"),
        ]
    phases = _steady(
        {"dom": 5.0, "strings": 3.0, "templates": 1.5, "output": 1.0},
        240_000 if big else 80_000, 8,
    )
    return build_synthetic("xalanc", regions, phases, apki=21.0, seed=seed)


#: Name -> builder for the 15 SPEC apps of Appendix A.
SPEC_BUILDERS = {
    "bzip2": build_bzip2,
    "gcc": build_gcc,
    "mcf": build_mcf,
    "milc": build_milc,
    "zeusmp": build_zeusmp,
    "cactus": build_cactus,
    "leslie": build_leslie,
    "soplex": build_soplex,
    "gems": build_gems,
    "libqntm": build_libquantum,
    "lbm": build_lbm,
    "omnet": build_omnet,
    "astar": build_astar,
    "sphinx3": build_sphinx,
    "xalanc": build_xalanc,
}
