"""SPEC CPU2006 workload models.

Substitution note (DESIGN.md): real SPEC binaries are unavailable
offline, so each of the 15 memory-intensive apps the paper evaluates
(>5 L2 MPKI) is modeled as a parameterized generator reproducing its
documented pool structure, working-set sizes, and phase behaviour —
e.g. lbm's two grids with alternating source/destination roles (Fig 6),
mcf's pointer-chased nodes vs. streamed arcs, and cactus's reused Pugh
variables vs. streaming grid (Fig 19).
"""

from repro.workloads.spec.apps import SPEC_BUILDERS
from repro.workloads.spec.synth import PhaseSpec, RegionSpec, build_synthetic

__all__ = ["PhaseSpec", "RegionSpec", "SPEC_BUILDERS", "build_synthetic"]
