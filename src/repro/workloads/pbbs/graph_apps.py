"""PBBS graph kernels: BFS, MIS, matching, MST, ST, setCover.

These run the real algorithms on random CSR graphs (vectorized with
numpy) while recording the address stream of every data structure.  Their
shared character — small, reusable vertex-state arrays vs. a large,
stream-once edge array — is exactly what drives the paper's mis case
study (Fig 9/10): Whirlpool caches vertex state and bypasses edges.
"""

from __future__ import annotations

import numpy as np

from repro.mem.allocator import HeapAllocator, PoolAllocator
from repro.workloads import patterns
from repro.workloads.graphs import Graph, uniform_random_graph
from repro.workloads.trace import TraceBuilder, Workload

__all__ = [
    "build_bfs",
    "build_mis",
    "build_matching",
    "build_mst",
    "build_st",
    "build_setcover",
]

#: Graph sizes by scale: (vertices, average degree).
_GRAPH_SCALES = {
    "train": (60_000, 8.0),
    "small": (60_000, 8.0),
    "ref": (260_000, 11.0),
    "large": (260_000, 11.0),
}

_WORD = 8  # bytes per vertex-state element


def _graph_scale(scale: str) -> tuple[int, float]:
    try:
        return _GRAPH_SCALES[scale]
    except KeyError:
        raise ValueError(f"unknown scale {scale!r}") from None


def _alloc_graph(
    alloc: PoolAllocator, graph: Graph, offsets_pool: str, targets_pool: str
):
    """Allocate CSR arrays from named pools."""
    offsets = alloc.malloc((graph.n + 1) * _WORD, offsets_pool)
    targets = alloc.malloc(max(graph.m, 1) * _WORD, targets_pool)
    return offsets, targets


def _row_edge_positions(graph: Graph, frontier: np.ndarray) -> np.ndarray:
    """Edge-array positions of all adjacency entries of ``frontier``."""
    degs = graph.offsets[frontier + 1] - graph.offsets[frontier]
    total = int(degs.sum())
    if total == 0:
        return np.array([], dtype=np.int64)
    starts = np.repeat(graph.offsets[frontier], degs)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(degs) - degs, degs
    )
    return starts + within


def build_bfs(scale: str = "ref", seed: int = 0) -> Workload:
    """Breadth-first search (Table 2: vertices/edges/frontier/visited).

    Level-synchronous BFS: per level, read the frontier queue, the CSR
    offsets of frontier vertices, gather their adjacency lists, and
    check/update the visited array of every neighbor.
    """
    n, deg = _graph_scale(scale)
    graph = uniform_random_graph(n, deg, seed=seed)
    heap = HeapAllocator()
    alloc = PoolAllocator(heap)
    offsets_a, targets_a = _alloc_graph(alloc, graph, "vertices", "edges")
    visited_a = alloc.malloc(graph.n * _WORD, "visited")
    frontier_a = alloc.malloc(graph.n * _WORD, "frontier")

    tb = TraceBuilder()
    r_vert = tb.region("vertices", offsets_a)
    r_edge = tb.region("edges", targets_a)
    r_vis = tb.region("visited", visited_a)
    r_front = tb.region("frontier", frontier_a)

    visited = np.zeros(graph.n, dtype=bool)
    rng = np.random.default_rng(seed + 1)
    source = int(rng.integers(0, graph.n))
    frontier = np.array([source], dtype=np.int64)
    visited[source] = True
    while len(frontier) > 0:
        edge_pos = _row_edge_positions(graph, frontier)
        neighbors = graph.targets[edge_pos]
        tb.access_interleaved(
            {
                r_front: patterns.gather(frontier_a, np.arange(len(frontier)), _WORD),
                r_vert: patterns.gather(offsets_a, frontier, _WORD),
                r_edge: patterns.gather(targets_a, edge_pos, _WORD),
                r_vis: patterns.gather(visited_a, neighbors, _WORD),
            }
        )
        fresh = neighbors[~visited[neighbors]]
        frontier = np.unique(fresh)
        visited[frontier] = True

    trace = tb.finalize(apki=30.0)
    return Workload(
        name="BFS",
        trace=trace,
        heap=heap,
        manual_pools={
            r_vert: "vertices",
            r_edge: "edges",
            r_front: "frontier",
            r_vis: "visited",
        },
        table2_loc=16,
    )


def build_mis(scale: str = "ref", seed: int = 0) -> Workload:
    """Maximal independent set (Table 2: vertices/edges/flags).

    Greedy sequential MIS: visit vertices in order; an undecided vertex
    joins the set and marks all neighbors out.  Vertex state (flags)
    caches well; the edge array streams once — the paper's flagship
    bypassing example (Fig 9/10: +38% over Jigsaw).
    """
    n, deg = _graph_scale(scale)
    graph = uniform_random_graph(n, deg, seed=seed + 10)
    heap = HeapAllocator()
    alloc = PoolAllocator(heap)
    offsets_a, targets_a = _alloc_graph(alloc, graph, "vertices", "edges")
    flags_a = alloc.malloc(graph.n * _WORD, "flags")

    tb = TraceBuilder()
    r_vert = tb.region("vertices", offsets_a)
    r_edge = tb.region("edges", targets_a)
    r_flag = tb.region("flags", flags_a)

    flags = np.zeros(graph.n, dtype=np.int8)  # 0 undecided, 1 in, 2 out
    # Process vertices in blocks so the recorded stream stays vectorized.
    block = 4096
    order = np.arange(graph.n, dtype=np.int64)
    for lo in range(0, graph.n, block):
        vs = order[lo : lo + block]
        undecided = vs[flags[vs] == 0]
        flags[undecided] = 1
        edge_pos = _row_edge_positions(graph, undecided)
        neighbors = graph.targets[edge_pos]
        flags[neighbors[flags[neighbors] == 0]] = 2
        tb.access_interleaved(
            {
                r_vert: patterns.gather(offsets_a, vs, _WORD),
                r_edge: patterns.gather(targets_a, edge_pos, _WORD),
                r_flag: np.concatenate(
                    [
                        patterns.gather(flags_a, vs, _WORD),
                        patterns.gather(flags_a, neighbors, _WORD),
                    ]
                ),
            }
        )

    trace = tb.finalize(apki=110.0)
    return Workload(
        name="MIS",
        trace=trace,
        heap=heap,
        manual_pools={r_vert: "vertices", r_edge: "edges", r_flag: "flags"},
        table2_loc=13,
    )


def build_matching(scale: str = "ref", seed: int = 0) -> Workload:
    """Maximal matching (Table 2: vertices/edges/result).

    Scans the edge list once; an edge joins the matching when both
    endpoints are free.  Endpoint checks are random accesses into the
    small matched array; results append sequentially.
    """
    n, deg = _graph_scale(scale)
    rng = np.random.default_rng(seed + 20)
    m = int(n * deg / 2)
    src = rng.integers(0, n, size=m, dtype=np.int64)
    dst = rng.integers(0, n, size=m, dtype=np.int64)

    heap = HeapAllocator()
    alloc = PoolAllocator(heap)
    edges_a = alloc.malloc(2 * m * _WORD, "edges")
    matched_a = alloc.malloc(n * _WORD, "vertices")
    result_a = alloc.malloc(n * _WORD, "result")

    tb = TraceBuilder()
    r_edge = tb.region("edges", edges_a)
    r_vert = tb.region("vertices", matched_a)
    r_res = tb.region("result", result_a)

    matched = np.zeros(n, dtype=bool)
    block = 16384
    n_matched = 0
    for lo in range(0, m, block):
        u = src[lo : lo + block]
        v = dst[lo : lo + block]
        ok = ~matched[u] & ~matched[v] & (u != v)
        # Sequential conflicts within a block are rare on random graphs;
        # first-wins semantics approximated by unique-endpoint filtering.
        matched[u[ok]] = True
        matched[v[ok]] = True
        k = int(np.count_nonzero(ok))
        tb.access_interleaved(
            {
                r_edge: patterns.gather(
                    edges_a, np.arange(2 * lo, 2 * lo + 2 * len(u)), _WORD
                ),
                r_vert: np.concatenate(
                    [
                        patterns.gather(matched_a, u, _WORD),
                        patterns.gather(matched_a, v, _WORD),
                    ]
                ),
                r_res: patterns.gather(
                    result_a, np.arange(n_matched, n_matched + k), _WORD
                ),
            }
        )
        n_matched += k

    trace = tb.finalize(apki=45.0)
    return Workload(
        name="matching",
        trace=trace,
        heap=heap,
        manual_pools={r_vert: "vertices", r_edge: "edges", r_res: "result"},
        table2_loc=13,
    )


def _union_find_workload(
    name: str,
    loc: int,
    scale: str,
    seed: int,
    sort_edges: bool,
) -> Workload:
    """Shared skeleton of ST (spanning forest) and MST (Kruskal).

    Scans the edge list (sorted by weight for MST), doing union-find on
    the parents array (random accesses with path compression) and
    appending tree edges to the output.
    """
    n, deg = _graph_scale(scale)
    rng = np.random.default_rng(seed + 30)
    m = int(n * deg / 4)  # sparser input: union-find paths dominate anyway
    src = rng.integers(0, n, size=m, dtype=np.int64)
    dst = rng.integers(0, n, size=m, dtype=np.int64)
    if sort_edges:
        weights = rng.random(m)
        order = np.argsort(weights)
        src, dst = src[order], dst[order]

    heap = HeapAllocator()
    alloc = PoolAllocator(heap)
    edges_a = alloc.malloc(2 * m * _WORD, "input edges")
    parents_a = alloc.malloc(n * _WORD, "union-find parents")
    output_a = alloc.malloc(n * _WORD, "output tree")

    tb = TraceBuilder()
    r_edge = tb.region("input edges", edges_a)
    r_par = tb.region("union-find parents", parents_a)
    r_out = tb.region("output tree", output_a)

    parents = np.arange(n, dtype=np.int64)

    def find_batch(vs: np.ndarray, touched: list[np.ndarray]) -> np.ndarray:
        roots = vs.copy()
        active = np.arange(len(vs))
        nodes_list = [vs.copy()]
        pos_list = [active.copy()]
        touched.append(vs.copy())
        for __ in range(30):
            nxt = parents[roots[active]]
            moved = nxt != roots[active]
            roots[active] = nxt
            active = active[moved]
            if len(active) == 0:
                break
            nodes_list.append(roots[active].copy())
            pos_list.append(active.copy())
            touched.append(roots[active].copy())
        # Full path compression: every touched node points at its root.
        all_nodes = np.concatenate(nodes_list)
        all_pos = np.concatenate(pos_list)
        parents[all_nodes] = roots[all_pos]
        return roots

    block = 16384
    n_out = 0
    for lo in range(0, m, block):
        u = src[lo : lo + block]
        v = dst[lo : lo + block]
        touched: list[np.ndarray] = []
        ru = find_batch(u, touched)
        rv = find_batch(v, touched)
        join = ru != rv
        parents[ru[join]] = rv[join]
        # Path compression.
        parents[u] = parents[ru]
        parents[v] = parents[rv]
        k = int(np.count_nonzero(join))
        tb.access_interleaved(
            {
                r_edge: patterns.gather(
                    edges_a, np.arange(2 * lo, 2 * lo + 2 * len(u)), _WORD
                ),
                r_par: patterns.gather(parents_a, np.concatenate(touched), _WORD),
                r_out: patterns.gather(output_a, np.arange(n_out, n_out + k), _WORD),
            }
        )
        n_out += k

    trace = tb.finalize(apki=40.0)
    return Workload(
        name=name,
        trace=trace,
        heap=heap,
        manual_pools={
            r_par: "union-find parents",
            r_out: "output tree",
            r_edge: "input edges",
        },
        table2_loc=loc,
    )


def build_st(scale: str = "ref", seed: int = 0) -> Workload:
    """Spanning forest via union-find (Table 2, 13 LOC)."""
    return _union_find_workload("ST", 13, scale, seed, sort_edges=False)


def build_mst(scale: str = "ref", seed: int = 0) -> Workload:
    """Minimal spanning forest, Kruskal on pre-sorted edges (Table 2, 11 LOC)."""
    return _union_find_workload("MST", 11, scale, seed, sort_edges=True)


def build_setcover(scale: str = "ref", seed: int = 0) -> Workload:
    """Greedy set cover: bucketed sets scanned by size, coverage flags random.

    The ref input uses a power-law set-size distribution; the train input
    is near-uniform, which shifts the sets pool's reuse profile — one of
    the four apps whose training input matters in Fig 18.
    """
    n, deg = _graph_scale(scale)
    n_elems = n
    n_sets = n // 4
    rng = np.random.default_rng(seed + 40)
    if scale in ("ref", "large"):
        sizes = np.clip(rng.zipf(1.6, size=n_sets), 2, 400)
    else:
        sizes = rng.integers(2, int(2 * deg), size=n_sets)
    total = int(sizes.sum())
    members = rng.integers(0, n_elems, size=total, dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)

    heap = HeapAllocator()
    alloc = PoolAllocator(heap)
    sets_a = alloc.malloc(total * _WORD, "sets")
    covered_a = alloc.malloc(n_elems * _WORD, "covered")
    chosen_a = alloc.malloc(n_sets * _WORD, "chosen")
    queue_a = alloc.malloc(n_sets * _WORD, "bucket queue")

    tb = TraceBuilder()
    r_sets = tb.region("sets", sets_a)
    r_cov = tb.region("covered", covered_a)
    r_cho = tb.region("chosen", chosen_a)
    r_q = tb.region("bucket queue", queue_a)

    covered = np.zeros(n_elems, dtype=bool)
    order = np.argsort(sizes)[::-1]  # largest sets first (greedy buckets)
    block = 2048
    n_chosen = 0
    for lo in range(0, n_sets, block):
        set_ids = order[lo : lo + block]
        positions = np.concatenate(
            [np.arange(offsets[s], offsets[s + 1]) for s in set_ids.tolist()]
        )
        elems = members[positions]
        new = ~covered[elems]
        covered[elems[new]] = True
        k = int(np.count_nonzero(new) > 0)
        tb.access_interleaved(
            {
                r_sets: patterns.gather(sets_a, positions, _WORD),
                r_cov: patterns.gather(covered_a, elems, _WORD),
                r_cho: patterns.gather(
                    chosen_a, np.arange(n_chosen, n_chosen + len(set_ids)), _WORD
                ),
                # The bucket queue is consumed once, in priority order.
                r_q: patterns.gather(queue_a, set_ids, _WORD),
            }
        )
        n_chosen += k

    trace = tb.finalize(apki=35.0)
    return Workload(name="setCover", trace=trace, heap=heap)
