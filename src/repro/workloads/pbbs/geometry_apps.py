"""PBBS geometry kernels: delaunay (dt), refine, hull, neighbors, ray.

dt reproduces the structure of Fig 2: three pools (points, vertices,
triangles) of 0.5 / 1.5 / 4 MB with near-equal access splits, built by an
incremental-insertion loop whose structures grow as points are inserted.
refine reproduces the Fig 11 phase behaviour: long stretches where
vertices cache well, punctuated by irregular bursts where vertices
stream and misc blows up.
"""

from __future__ import annotations

import numpy as np

from repro.mem.allocator import HeapAllocator, PoolAllocator
from repro.workloads import patterns
from repro.workloads.trace import TraceBuilder, Workload

__all__ = [
    "build_delaunay",
    "build_refine",
    "build_hull",
    "build_neighbors",
    "build_ray",
]

_WORD = 8

_MB = 1 << 20

#: Structure sizes by scale for dt (points, vertices, triangles), bytes.
_DT_SCALES = {
    "train": (_MB // 8, 3 * _MB // 8, _MB),
    "small": (_MB // 8, 3 * _MB // 8, _MB),
    "ref": (_MB // 2, 3 * _MB // 2, 4 * _MB),
    "large": (_MB // 2, 3 * _MB // 2, 4 * _MB),
}


def build_delaunay(scale: str = "ref", seed: int = 0) -> Workload:
    """Delaunay triangulation (Table 2: points/vertices/triangles).

    Randomized incremental insertion: each inserted point reads its input
    point, walks a handful of triangles to locate itself, and updates a
    few vertices.  Working sets grow to 0.5 / 1.5 / 4 MB (Fig 2) with
    accesses split roughly evenly across the three structures.
    """
    try:
        pts_bytes, vert_bytes, tri_bytes = _DT_SCALES[scale]
    except KeyError:
        raise ValueError(f"unknown scale {scale!r}") from None
    rng = np.random.default_rng(seed)

    heap = HeapAllocator()
    alloc = PoolAllocator(heap)
    points_a = alloc.malloc(pts_bytes, "points")
    vertices_a = alloc.malloc(vert_bytes, "vertices")
    triangles_a = alloc.malloc(tri_bytes, "triangles")

    tb = TraceBuilder()
    r_pts = tb.region("points", points_a)
    r_vert = tb.region("vertices", vertices_a)
    r_tri = tb.region("triangles", triangles_a)

    n_points = pts_bytes // (2 * _WORD)  # 2 coordinates per point
    n_rounds = 24
    per_round = n_points // n_rounds
    tri_lines = tri_bytes // 64
    vert_lines = vert_bytes // 64
    for round_idx in range(1, n_rounds + 1):
        grown = round_idx / n_rounds
        # Points are revisited heavily while being inserted (locality).
        pt_idx = rng.integers(0, max(1, int(n_points * grown)), size=10 * per_round)
        # Triangle walk: ~12 triangle reads per insertion over the grown part.
        tri_idx = rng.integers(
            0, max(1, int(tri_lines * grown)), size=12 * per_round
        )
        # Vertex updates: ~12 per insertion.
        vert_idx = rng.integers(
            0, max(1, int(vert_lines * grown)), size=12 * per_round
        )
        tb.access_interleaved(
            {
                r_pts: patterns.gather(points_a, pt_idx, 2 * _WORD),
                r_tri: triangles_a.base + tri_idx * 64,
                r_vert: vertices_a.base + vert_idx * 64,
            }
        )

    trace = tb.finalize(apki=25.0)
    return Workload(
        name="delaunay",
        trace=trace,
        heap=heap,
        manual_pools={r_pts: "points", r_vert: "vertices", r_tri: "triangles"},
        table2_loc=11,
    )


def build_refine(scale: str = "ref", seed: int = 0) -> Workload:
    """Delaunay refinement (Table 2: vertices/triangles/misc).

    Reproduces Fig 11: in the common phase, triangles and misc are small
    and hot while vertices has a large cache-friendly working set; at
    irregular intervals the behaviour inverts for a burst — vertices
    streams, triangles fits, misc's working set grows substantially.
    """
    big = scale in ("ref", "large")
    vert_bytes = (7 * _MB) if big else (2 * _MB)
    tri_bytes = (2 * _MB) if big else (_MB // 2)
    misc_small = _MB // 2
    misc_burst = (5 * _MB) if big else (_MB)
    rng = np.random.default_rng(seed + 7)

    heap = HeapAllocator()
    alloc = PoolAllocator(heap)
    vertices_a = alloc.malloc(vert_bytes, "vertices")
    triangles_a = alloc.malloc(tri_bytes, "triangles")
    misc_a = alloc.malloc(misc_burst, "misc")

    tb = TraceBuilder()
    r_vert = tb.region("vertices", vertices_a)
    r_tri = tb.region("triangles", triangles_a)
    r_misc = tb.region("misc", misc_a)

    n_steps = 30
    step_accesses = 60_000 if big else 25_000
    burst = False
    burst_left = 0
    for __ in range(n_steps):
        if not burst and rng.random() < 0.18:
            burst = True
            burst_left = rng.integers(2, 4)
        if burst:
            # Inverted phase: vertices stream, triangles cache, misc big.
            start = int(rng.integers(0, vert_bytes // 64))
            offs = (start + np.arange(step_accesses // 2)) % (vert_bytes // 64)
            vert_stream = vertices_a.base + offs * 64
            streams = {
                r_vert: vert_stream,
                r_tri: patterns.uniform_random(rng, triangles_a, step_accesses // 4),
                r_misc: patterns.uniform_random(rng, misc_a, step_accesses // 4),
            }
            burst_left -= 1
            if burst_left <= 0:
                burst = False
        else:
            hot_tri = patterns.zipf_random(rng, triangles_a, step_accesses // 4, 1.6)
            hot_misc_idx = rng.integers(0, misc_small // 64, size=step_accesses // 8)
            streams = {
                r_vert: patterns.uniform_random(rng, vertices_a, step_accesses // 2),
                r_tri: hot_tri,
                r_misc: misc_a.base + hot_misc_idx * 64,
            }
        tb.access_interleaved(streams)

    trace = tb.finalize(apki=30.0)
    return Workload(
        name="refine",
        trace=trace,
        heap=heap,
        manual_pools={r_vert: "vertices", r_tri: "triangles", r_misc: "misc"},
        table2_loc=8,
    )


def build_hull(scale: str = "ref", seed: int = 0) -> Workload:
    """Convex hull (Table 2: points/hull array).

    Quickhull makes several filtering passes over a shrinking point set;
    the hull output array is tiny and hot.
    """
    big = scale in ("ref", "large")
    n_points = 400_000 if big else 100_000
    rng = np.random.default_rng(seed + 13)

    heap = HeapAllocator()
    alloc = PoolAllocator(heap)
    points_a = alloc.malloc(n_points * 2 * _WORD, "points")
    hull_a = alloc.malloc(4096 * _WORD, "hull array")

    tb = TraceBuilder()
    r_pts = tb.region("points", points_a)
    r_hull = tb.region("hull array", hull_a)

    # Quickhull recursion as survivor-filtering passes.
    survivors = np.arange(n_points, dtype=np.int64)
    n_hull = 2
    while len(survivors) > 64:
        tb.access_interleaved(
            {
                r_pts: patterns.gather(points_a, survivors, 2 * _WORD),
                r_hull: patterns.gather(
                    hull_a, rng.integers(0, max(n_hull, 1), size=len(survivors) // 8),
                    _WORD,
                ),
            }
        )
        keep = rng.random(len(survivors)) < 0.45
        survivors = survivors[keep]
        n_hull = min(n_hull + max(1, len(survivors) // 1000), 4095)

    trace = tb.finalize(apki=20.0)
    return Workload(
        name="hull",
        trace=trace,
        heap=heap,
        manual_pools={r_pts: "points", r_hull: "hull array"},
        table2_loc=10,
    )


def build_neighbors(scale: str = "ref", seed: int = 0) -> Workload:
    """k-nearest-neighbors on a point grid: queries with spatial locality."""
    big = scale in ("ref", "large")
    n_points = 500_000 if big else 120_000
    n_cells = 65_536
    rng = np.random.default_rng(seed + 17)

    heap = HeapAllocator()
    alloc = PoolAllocator(heap)
    points_a = alloc.malloc(n_points * 2 * _WORD, "points")
    cells_a = alloc.malloc(n_cells * _WORD, "grid cells")
    results_a = alloc.malloc(n_points * _WORD, "results")

    tb = TraceBuilder()
    r_pts = tb.region("points", points_a)
    r_cells = tb.region("grid cells", cells_a)
    r_res = tb.region("results", results_a)

    n_queries = n_points
    block = 32_768
    for lo in range(0, n_queries, block):
        count = min(block, n_queries - lo)
        cell_idx = rng.integers(0, n_cells, size=3 * count)
        # Candidate points cluster around the query's cell.
        centers = rng.integers(0, n_points, size=count)
        cand = (
            centers[:, None] + rng.integers(-16, 17, size=(count, 8))
        ).ravel() % n_points
        tb.access_interleaved(
            {
                r_cells: patterns.gather(cells_a, cell_idx, _WORD),
                r_pts: patterns.gather(points_a, cand, 2 * _WORD),
                r_res: patterns.gather(results_a, np.arange(lo, lo + count), _WORD),
            }
        )

    trace = tb.finalize(apki=28.0)
    return Workload(name="neighbors", trace=trace, heap=heap)


def build_ray(scale: str = "ref", seed: int = 0) -> Workload:
    """Ray casting: rays march through grid cells gathering triangles."""
    big = scale in ("ref", "large")
    n_tris = 300_000 if big else 80_000
    n_cells = 262_144
    n_rays = 120_000 if big else 40_000
    rng = np.random.default_rng(seed + 23)

    heap = HeapAllocator()
    alloc = PoolAllocator(heap)
    tris_a = alloc.malloc(n_tris * 4 * _WORD, "triangles")
    cells_a = alloc.malloc(n_cells * _WORD, "grid")
    rays_a = alloc.malloc(n_rays * 2 * _WORD, "rays")

    tb = TraceBuilder()
    r_tri = tb.region("triangles", tris_a)
    r_cell = tb.region("grid", cells_a)
    r_ray = tb.region("rays", rays_a)

    block = 8192
    for lo in range(0, n_rays, block):
        count = min(block, n_rays - lo)
        # Each ray marches ~12 cells (strided walk from a random origin).
        origins = rng.integers(0, n_cells, size=count)
        steps = (origins[:, None] + np.arange(12) * 64).ravel() % n_cells
        # Each cell gathers ~2 candidate triangles, zipf-hot.
        tri_idx = (rng.zipf(1.3, size=2 * len(steps)) - 1) % n_tris
        tb.access_interleaved(
            {
                r_ray: patterns.gather(rays_a, np.arange(lo, lo + count), 2 * _WORD),
                r_cell: patterns.gather(cells_a, steps, _WORD),
                r_tri: patterns.gather(tris_a, tri_idx, 4 * _WORD),
            }
        )

    trace = tb.finalize(apki=22.0)
    return Workload(name="ray", trace=trace, heap=heap)
