"""PBBS sequence kernels: sort, isort, SA (suffix array), dict, remDups.

sort and isort are pass-structured (repeated scans); SA is the paper's
example of Whirlpool *growing* its allocation to retain more working set
(Fig 20); dict and remDups are hash-table workloads with skewed bucket
reuse.
"""

from __future__ import annotations

import numpy as np

from repro.mem.allocator import HeapAllocator, PoolAllocator
from repro.workloads import patterns
from repro.workloads.trace import TraceBuilder, Workload

__all__ = [
    "build_sort",
    "build_isort",
    "build_sa",
    "build_dict",
    "build_remdups",
]

_WORD = 8
_MB = 1 << 20


def build_sort(scale: str = "ref", seed: int = 0) -> Workload:
    """Comparison sort (mergesort): log n alternating scans of two buffers."""
    big = scale in ("ref", "large")
    data_bytes = (8 * _MB) if big else (2 * _MB)
    heap = HeapAllocator()
    alloc = PoolAllocator(heap)
    data_a = alloc.malloc(data_bytes, "data")
    temp_a = alloc.malloc(data_bytes, "temp")

    tb = TraceBuilder()
    r_data = tb.region("data", data_a)
    r_temp = tb.region("temp", temp_a)

    n_passes = 8  # truncated merge cascade (lower levels are L2-resident)
    for p in range(n_passes):
        src, dst = (r_data, r_temp) if p % 2 == 0 else (r_temp, r_data)
        src_a, dst_a = (data_a, temp_a) if p % 2 == 0 else (temp_a, data_a)
        tb.access_interleaved(
            {
                src: patterns.scan(src_a),
                dst: patterns.scan(dst_a),
            }
        )
        del src, dst
    trace = tb.finalize(apki=18.0)
    return Workload(name="sort", trace=trace, heap=heap)


def build_isort(scale: str = "ref", seed: int = 0) -> Workload:
    """Integer (counting) sort: stream input, random counts, stream output."""
    big = scale in ("ref", "large")
    n_keys = (1_500_000) if big else (400_000)
    n_buckets = 262_144
    rng = np.random.default_rng(seed + 3)
    heap = HeapAllocator()
    alloc = PoolAllocator(heap)
    input_a = alloc.malloc(n_keys * _WORD, "input")
    counts_a = alloc.malloc(n_buckets * _WORD, "counts")
    output_a = alloc.malloc(n_keys * _WORD, "output")

    tb = TraceBuilder()
    r_in = tb.region("input", input_a)
    r_cnt = tb.region("counts", counts_a)
    r_out = tb.region("output", output_a)

    keys = rng.integers(0, n_buckets, size=n_keys, dtype=np.int64)
    # Pass 1: count.
    tb.access_interleaved(
        {
            r_in: patterns.scan(input_a),
            r_cnt: patterns.gather(counts_a, keys, _WORD),
        }
    )
    # Pass 2: scatter.
    tb.access_interleaved(
        {
            r_in: patterns.scan(input_a),
            r_cnt: patterns.gather(counts_a, keys, _WORD),
            r_out: patterns.scan(output_a),
        }
    )
    trace = tb.finalize(apki=20.0)
    return Workload(name="isort", trace=trace, heap=heap)


def build_sa(scale: str = "ref", seed: int = 0) -> Workload:
    """Suffix array by prefix doubling (Fig 20's SA).

    Each round sorts suffix ids by (rank[i], rank[i+k]) pairs: sequential
    scans of the suffix-id array plus random gathers into the rank
    arrays.  The rank working set (~6 MB at ref) rewards extra capacity —
    the behaviour Fig 20 highlights (Whirlpool uses *more* banks to keep
    more of the working set).
    """
    big = scale in ("ref", "large")
    n = (400_000) if big else (120_000)
    rng = np.random.default_rng(seed + 5)
    heap = HeapAllocator()
    alloc = PoolAllocator(heap)
    text_a = alloc.malloc(n, "text")
    ranks_a = alloc.malloc(2 * n * _WORD, "ranks")
    sa_a = alloc.malloc(n * _WORD, "suffix ids")

    tb = TraceBuilder()
    r_text = tb.region("text", text_a)
    r_rank = tb.region("ranks", ranks_a)
    r_sa = tb.region("suffix ids", sa_a)

    # Initial ranks from the text.
    tb.access_interleaved(
        {r_text: patterns.scan(text_a), r_rank: patterns.scan(ranks_a)}
    )
    n_rounds = 7
    for round_idx in range(n_rounds):
        k = 1 << round_idx
        ids = np.arange(n, dtype=np.int64)
        partner = (ids + k) % n
        # Sorting pass: scan suffix ids, gather two ranks per id.
        gathers = np.empty(2 * n, dtype=np.int64)
        gathers[0::2] = rng.permutation(ids)  # post-sort order is shuffled
        gathers[1::2] = rng.permutation(partner)
        tb.access_interleaved(
            {
                r_sa: patterns.scan(sa_a),
                r_rank: patterns.gather(ranks_a, gathers, _WORD),
            }
        )
    trace = tb.finalize(apki=35.0)
    return Workload(name="SA", trace=trace, heap=heap)


def build_dict(scale: str = "ref", seed: int = 0) -> Workload:
    """Hash-table insert/lookup with Zipf-skewed keys."""
    big = scale in ("ref", "large")
    n_ops = (2_000_000) if big else (500_000)
    table_bytes = (6 * _MB) if big else (2 * _MB)
    rng = np.random.default_rng(seed + 11)
    heap = HeapAllocator()
    alloc = PoolAllocator(heap)
    keys_a = alloc.malloc(n_ops * _WORD, "keys")
    table_a = alloc.malloc(table_bytes, "table")

    tb = TraceBuilder()
    r_keys = tb.region("keys", keys_a)
    r_table = tb.region("table", table_a)

    block = 262_144
    for lo in range(0, n_ops, block):
        count = min(block, n_ops - lo)
        tb.access_interleaved(
            {
                r_keys: patterns.gather(keys_a, np.arange(lo, lo + count), _WORD),
                r_table: patterns.zipf_random(rng, table_a, count, alpha=1.1),
            }
        )
    trace = tb.finalize(apki=30.0)
    return Workload(name="dict", trace=trace, heap=heap)


def build_remdups(scale: str = "ref", seed: int = 0) -> Workload:
    """Remove duplicates: stream input, probe a hash table, append output."""
    big = scale in ("ref", "large")
    n_elems = (1_800_000) if big else (450_000)
    table_bytes = (4 * _MB) if big else (_MB)
    rng = np.random.default_rng(seed + 19)
    heap = HeapAllocator()
    alloc = PoolAllocator(heap)
    input_a = alloc.malloc(n_elems * _WORD, "input")
    table_a = alloc.malloc(table_bytes, "hash table")
    output_a = alloc.malloc(n_elems * _WORD, "output")

    tb = TraceBuilder()
    r_in = tb.region("input", input_a)
    r_tab = tb.region("hash table", table_a)
    r_out = tb.region("output", output_a)

    n_out = 0
    block = 262_144
    for lo in range(0, n_elems, block):
        count = min(block, n_elems - lo)
        uniques = count // 3
        tb.access_interleaved(
            {
                r_in: patterns.gather(input_a, np.arange(lo, lo + count), _WORD),
                r_tab: patterns.uniform_random(rng, table_a, count),
                r_out: patterns.gather(
                    output_a, np.arange(n_out, n_out + uniques), _WORD
                ),
            }
        )
        n_out += uniques
    trace = tb.finalize(apki=26.0)
    return Workload(name="remDups", trace=trace, heap=heap)
