"""PBBS benchmark kernels (Shun et al., SPAA 2012), instrumented.

Each builder executes a genuine (vectorized) version of the kernel on a
random input, allocating its data structures from named pools and
emitting the resulting LLC access stream.  The eight applications ported
manually in the paper (Table 2) carry their manual pool classification.

Modules
-------
- :mod:`repro.workloads.pbbs.graph_apps` — BFS, MIS, matching, MST, ST
  (spanning forest), setCover.
- :mod:`repro.workloads.pbbs.geometry_apps` — delaunay (dt), refine,
  hull, neighbors, ray.
- :mod:`repro.workloads.pbbs.sequence_apps` — sort, isort, SA, dict,
  remDups.
"""

from repro.workloads.pbbs.geometry_apps import (
    build_delaunay,
    build_hull,
    build_neighbors,
    build_ray,
    build_refine,
)
from repro.workloads.pbbs.graph_apps import (
    build_bfs,
    build_matching,
    build_mis,
    build_mst,
    build_setcover,
    build_st,
)
from repro.workloads.pbbs.sequence_apps import (
    build_dict,
    build_isort,
    build_remdups,
    build_sa,
    build_sort,
)

__all__ = [
    "build_bfs",
    "build_delaunay",
    "build_dict",
    "build_hull",
    "build_isort",
    "build_matching",
    "build_mis",
    "build_mst",
    "build_neighbors",
    "build_ray",
    "build_refine",
    "build_remdups",
    "build_sa",
    "build_setcover",
    "build_sort",
    "build_st",
]
