"""Workload substrate: instrumented synthetic SPEC CPU2006 and PBBS apps.

Substitution note (DESIGN.md): the paper traces real binaries under zsim.
Here, PBBS kernels are genuinely *executed* (BFS levels, greedy MIS,
union-find, quickhull, ...) against an instrumented heap, emitting the
address stream their data structures would produce at the L2-miss level;
SPEC applications are parameterized generators reproducing each app's
documented pool structure and phase behaviour (e.g. lbm's two alternating
grids, Fig 6).

Entry points
------------
- :func:`repro.workloads.registry.build_workload` — name -> Workload.
- :data:`repro.workloads.registry.ALL_APPS` — the 31-app suite of Fig 16.
- :mod:`repro.workloads.mixes` — multiprogram mix construction (Fig 22).
"""

from repro.workloads.graphs import Graph, partition_graph, rmat_graph, uniform_random_graph
from repro.workloads.registry import (
    ALL_APPS,
    MANUAL_APPS,
    PBBS_APPS,
    SPEC_APPS,
    build_workload,
    ingested_apps,
    register_trace,
    trace_dir,
)
from repro.workloads.trace import Trace, TraceBuilder, Workload

__all__ = [
    "ALL_APPS",
    "Graph",
    "MANUAL_APPS",
    "PBBS_APPS",
    "SPEC_APPS",
    "Trace",
    "TraceBuilder",
    "Workload",
    "build_workload",
    "ingested_apps",
    "partition_graph",
    "register_trace",
    "rmat_graph",
    "trace_dir",
    "uniform_random_graph",
]
