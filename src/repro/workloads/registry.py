"""Workload registry: every benchmark of the paper's evaluation, by name.

The suite matches Appendix A: the 15 memory-intensive SPEC CPU2006 apps
plus 16 PBBS apps (all but nbody), 31 in total (Fig 16/21).  The 12 apps
ported by hand in Table 2 carry their manual pool classification.
"""

from __future__ import annotations

from typing import Callable

from repro.workloads.pbbs import (
    build_bfs,
    build_delaunay,
    build_dict,
    build_hull,
    build_isort,
    build_matching,
    build_mis,
    build_mst,
    build_neighbors,
    build_ray,
    build_refine,
    build_remdups,
    build_sa,
    build_setcover,
    build_sort,
    build_st,
)
from repro.workloads.spec.apps import SPEC_BUILDERS
from repro.workloads.trace import Workload

__all__ = [
    "ALL_APPS",
    "MANUAL_APPS",
    "PBBS_APPS",
    "SPEC_APPS",
    "build_workload",
]

#: PBBS builders (16 apps; Fig 16's right half).
_PBBS_BUILDERS: dict[str, Callable[..., Workload]] = {
    "BFS": build_bfs,
    "MIS": build_mis,
    "MST": build_mst,
    "SA": build_sa,
    "ST": build_st,
    "delaunay": build_delaunay,
    "dict": build_dict,
    "hull": build_hull,
    "isort": build_isort,
    "matching": build_matching,
    "neighbors": build_neighbors,
    "ray": build_ray,
    "refine": build_refine,
    "remDups": build_remdups,
    "setCover": build_setcover,
    "sort": build_sort,
}

_BUILDERS: dict[str, Callable[..., Workload]] = {
    **SPEC_BUILDERS,
    **_PBBS_BUILDERS,
}

#: All 31 single-threaded benchmarks, in Fig 16's order.
SPEC_APPS = list(SPEC_BUILDERS.keys())
PBBS_APPS = list(_PBBS_BUILDERS.keys())
ALL_APPS = SPEC_APPS + PBBS_APPS

#: The 12 manually-ported applications of Table 2.
MANUAL_APPS = [
    "BFS",
    "delaunay",
    "matching",
    "refine",
    "MIS",
    "ST",
    "MST",
    "hull",
    "bzip2",
    "lbm",
    "mcf",
    "cactus",
]


def _build_builtin(name: str, scale: str = "ref", seed: int = 0) -> Workload:
    """Dispatch to a synthesized-suite builder.

    LAYOUT CONSTRAINT — ``return builder(...)`` must stay on its
    historical line (103): callpoint ids hash the last two call-frame
    (file, line) pairs, and for a builder's top-level allocations the
    second frame is that line.  Moving it relabels every region id,
    invalidating profile caches and goldens; new code goes at the end.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; known: {', '.join(ALL_APPS)}"
        ) from None
    return builder(scale=scale, seed=seed)


# ----------------------------------------------------------------------
# Ingested external traces (repro.ingest) — appended below the builder
# dispatch to preserve its line number (see _build_builtin's docstring).
# ----------------------------------------------------------------------
import os  # noqa: E402
from pathlib import Path  # noqa: E402

__all__ += ["ingested_apps", "register_trace", "trace_dir"]

#: Environment variable naming the directory of registered ``.rtrace``
#: archives (``python -m repro ingest register`` writes here).
TRACE_DIR_ENV = "REPRO_TRACE_DIR"

#: Process-local name -> archive bindings (:func:`register_trace`).
_REGISTERED_TRACES: dict[str, Path] = {}


def trace_dir() -> Path | None:
    """Directory scanned for ``<name>.rtrace`` archives, or None."""
    root = os.environ.get(TRACE_DIR_ENV)
    return Path(root) if root else None


def register_trace(name: str, path: str | Path) -> None:
    """Bind an ingested ``.rtrace`` archive to a workload name.

    The binding is process-local; to make a trace visible to campaign
    workers and future sessions, place it in ``$REPRO_TRACE_DIR``
    instead (``python -m repro ingest register`` does both).
    """
    if name in _BUILDERS:
        raise ValueError(
            f"cannot register trace {name!r}: the name belongs to a "
            "built-in benchmark"
        )
    path = Path(path)
    if not path.exists():
        raise ValueError(f"trace archive {path} does not exist")
    _REGISTERED_TRACES[name] = path


def _store_trace_names() -> dict[str, Path]:
    """Workload names bound to trace artifacts in the artifact store."""
    from repro.store import ArtifactStore

    store = ArtifactStore()
    out: dict[str, Path] = {}
    for name, binding in store.names().items():
        if binding.get("kind") != "traces":
            continue
        path = store.get("traces", binding["fingerprint"])
        if path is not None:
            out[name] = path
    return out


def ingested_apps() -> list[str]:
    """Names of ingested traces resolvable right now, sorted.

    The union of all three resolution tiers: process-local
    registrations, ``$REPRO_TRACE_DIR`` archives, and the artifact
    store's name index.
    """
    names = set(_REGISTERED_TRACES)
    root = trace_dir()
    if root is not None and root.is_dir():
        # pathlib's glob matches dotfiles; skip hidden entries so e.g.
        # staging temps never surface as phantom workloads.
        names.update(
            p.stem
            for p in root.glob("*.rtrace")
            if not p.name.startswith(".")
        )
    names.update(_store_trace_names())
    return sorted(names)


def _ingested_path(name: str) -> Path | None:
    path = _REGISTERED_TRACES.get(name)
    if path is not None:
        return path
    root = trace_dir()
    if root is not None:
        candidate = root / f"{name}.rtrace"
        if candidate.exists():
            return candidate
    from repro.store import ArtifactStore

    store = ArtifactStore()
    binding = store.resolve_name(name)
    if binding is not None and binding.get("kind") == "traces":
        return store.get("traces", binding["fingerprint"])
    return None


def build_workload(name: str, scale: str = "ref", seed: int = 0) -> Workload:
    """Build a benchmark by name.

    Args:
        name: one of :data:`ALL_APPS`, or an ingested trace name
            (:func:`register_trace` / ``$REPRO_TRACE_DIR``).
        scale: "ref"/"large" (evaluation inputs) or "train"/"small"
            (WhirlTool profiling inputs).  Ingested traces are a single
            fixed capture, so scale is ignored for them.
        seed: RNG seed (kept fixed across scales for the same program).
    """
    if name in _BUILDERS:
        return _build_builtin(name, scale=scale, seed=seed)
    path = _ingested_path(name)
    if path is not None:
        from repro.ingest import load_workload

        return load_workload(path, name=name)
    ingested = ingested_apps()
    raise ValueError(
        f"unknown workload {name!r}; known: {', '.join(ALL_APPS)}"
        + (f"; ingested: {', '.join(ingested)}" if ingested else "")
    )
