"""Workload registry: every benchmark of the paper's evaluation, by name.

The suite matches Appendix A: the 15 memory-intensive SPEC CPU2006 apps
plus 16 PBBS apps (all but nbody), 31 in total (Fig 16/21).  The 12 apps
ported by hand in Table 2 carry their manual pool classification.
"""

from __future__ import annotations

from typing import Callable

from repro.workloads.pbbs import (
    build_bfs,
    build_delaunay,
    build_dict,
    build_hull,
    build_isort,
    build_matching,
    build_mis,
    build_mst,
    build_neighbors,
    build_ray,
    build_refine,
    build_remdups,
    build_sa,
    build_setcover,
    build_sort,
    build_st,
)
from repro.workloads.spec.apps import SPEC_BUILDERS
from repro.workloads.trace import Workload

__all__ = [
    "ALL_APPS",
    "MANUAL_APPS",
    "PBBS_APPS",
    "SPEC_APPS",
    "build_workload",
]

#: PBBS builders (16 apps; Fig 16's right half).
_PBBS_BUILDERS: dict[str, Callable[..., Workload]] = {
    "BFS": build_bfs,
    "MIS": build_mis,
    "MST": build_mst,
    "SA": build_sa,
    "ST": build_st,
    "delaunay": build_delaunay,
    "dict": build_dict,
    "hull": build_hull,
    "isort": build_isort,
    "matching": build_matching,
    "neighbors": build_neighbors,
    "ray": build_ray,
    "refine": build_refine,
    "remDups": build_remdups,
    "setCover": build_setcover,
    "sort": build_sort,
}

_BUILDERS: dict[str, Callable[..., Workload]] = {
    **SPEC_BUILDERS,
    **_PBBS_BUILDERS,
}

#: All 31 single-threaded benchmarks, in Fig 16's order.
SPEC_APPS = list(SPEC_BUILDERS.keys())
PBBS_APPS = list(_PBBS_BUILDERS.keys())
ALL_APPS = SPEC_APPS + PBBS_APPS

#: The 12 manually-ported applications of Table 2.
MANUAL_APPS = [
    "BFS",
    "delaunay",
    "matching",
    "refine",
    "MIS",
    "ST",
    "MST",
    "hull",
    "bzip2",
    "lbm",
    "mcf",
    "cactus",
]


def build_workload(name: str, scale: str = "ref", seed: int = 0) -> Workload:
    """Build a benchmark by name.

    Args:
        name: one of :data:`ALL_APPS`.
        scale: "ref"/"large" (evaluation inputs) or "train"/"small"
            (WhirlTool profiling inputs).
        seed: RNG seed (kept fixed across scales for the same program).
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; known: {', '.join(ALL_APPS)}"
        ) from None
    return builder(scale=scale, seed=seed)
