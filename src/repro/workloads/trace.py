"""Trace containers and the instrumented-heap trace builder.

A :class:`Trace` is the LLC access stream of a program: line-granular
addresses plus a *region id* per access.  Regions are the unit of static
classification — one region per (data structure, allocation callpoint);
manual classification (Table 2) and WhirlTool's clustering both map
regions to pools.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mem.allocator import Allocation, HeapAllocator

__all__ = ["Trace", "TraceBuilder", "Workload", "interleave"]


def _validated_addresses(arr, dtype, what: str) -> np.ndarray:
    """Cast an address/id array, rejecting malformed input.

    Ingestion makes malformed traces a real path: a float array here is
    a parsing bug upstream (silently truncating it would alias distinct
    addresses), and a negative value is a corrupt capture — both raise
    instead of casting.  Empty arrays pass regardless of dtype (numpy
    defaults ``[]`` to float64).
    """
    arr = np.asarray(arr)
    if len(arr):
        if arr.dtype.kind not in "iu":
            raise ValueError(
                f"{what} must be an integer array, got dtype {arr.dtype}"
            )
        if int(arr.min()) < 0:
            raise ValueError(f"{what} must be non-negative")
        if int(arr.max()) > np.iinfo(dtype).max:
            # E.g. kernel-space uint64 addresses >= 2^63 would wrap
            # negative in the cast below.
            raise ValueError(
                f"{what} exceed {np.dtype(dtype).name} range "
                f"(max {int(arr.max())})"
            )
    return np.ascontiguousarray(arr, dtype=dtype)


@dataclass
class Trace:
    """An LLC access trace.

    Attributes:
        lines: int64 line addresses (byte address >> log2(line size)).
        regions: int32 region id per access.
        instructions: total instructions the trace represents.
        line_bytes: cache line size.
        region_names: human-readable region names.
    """

    lines: np.ndarray
    regions: np.ndarray
    instructions: float
    line_bytes: int = 64
    region_names: dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.lines = _validated_addresses(self.lines, np.int64, "lines")
        self.regions = _validated_addresses(self.regions, np.int32, "regions")
        if len(self.lines) != len(self.regions):
            raise ValueError("lines and regions must have equal length")
        if self.instructions <= 0:
            raise ValueError("instructions must be positive")

    def __len__(self) -> int:
        return len(self.lines)

    @property
    def apki(self) -> float:
        """LLC accesses per kilo-instruction."""
        return len(self.lines) * 1000.0 / self.instructions

    def region_apki(self) -> dict[int, float]:
        """APKI per region."""
        ids, counts = np.unique(self.regions, return_counts=True)
        return {
            int(r): float(c) * 1000.0 / self.instructions
            for r, c in zip(ids, counts)
        }

    def region_footprint_bytes(self) -> dict[int, int]:
        """Distinct-line footprint per region, in bytes.

        One lexsort over (region, line) pairs: after sorting, every
        distinct (region, line) pair is the first element of a run, so a
        single adjacent-difference pass counts distinct lines per region
        — no per-region ``np.unique`` scan over the whole trace.
        """
        if len(self.regions) == 0:
            return {}
        order = np.lexsort((self.lines, self.regions))
        regions = self.regions[order]
        lines = self.lines[order]
        first = np.ones(len(regions), dtype=bool)
        first[1:] = (regions[1:] != regions[:-1]) | (lines[1:] != lines[:-1])
        ids, counts = np.unique(regions[first], return_counts=True)
        return {
            int(rid): int(c) * self.line_bytes for rid, c in zip(ids, counts)
        }

    def slice_accesses(self, lo: int, hi: int) -> "Trace":
        """Sub-trace over access indices [lo, hi); instructions pro-rated.

        Bounds are clamped to [0, len(self)], so the pro-rated fraction
        always matches the accesses actually returned.  An empty window
        (``hi <= lo``) yields an empty trace whose instruction count is
        clamped to the smallest positive float, so it still satisfies the
        "instructions must be positive" invariant instead of raising.
        """
        lo = min(max(lo, 0), len(self.lines))
        hi = min(max(hi, lo), len(self.lines))
        frac = (hi - lo) / max(len(self.lines), 1)
        instructions = self.instructions * frac
        if instructions <= 0:
            instructions = np.finfo(np.float64).tiny
        return Trace(
            lines=self.lines[lo:hi],
            regions=self.regions[lo:hi],
            instructions=instructions,
            line_bytes=self.line_bytes,
            region_names=self.region_names,
        )


@dataclass
class Workload:
    """A program ready to be simulated.

    Attributes:
        name: benchmark name.
        trace: the LLC access trace.
        heap: the instrumented heap it allocated from.
        manual_pools: region id -> manual pool name, for the apps ported
            by hand (Table 2); None if the app was never ported.
        table2_loc: lines of code changed when porting (Table 2 metadata).
        core_of_access: owning core per access (parallel workloads only).
        n_cores: number of cores the workload runs on.
    """

    name: str
    trace: Trace
    heap: HeapAllocator | None = None
    manual_pools: dict[int, str] | None = None
    table2_loc: int | None = None
    core_of_access: np.ndarray | None = None
    n_cores: int = 1

    @property
    def region_names(self) -> dict[int, str]:
        """Region names from the trace."""
        return self.trace.region_names


def interleave(*streams: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Proportionally interleave several access streams.

    Elements of each stream keep their order; streams are merged so each
    progresses at a uniform rate (stream ``i``'s ``j``-th element lands at
    fractional position ``(j + 0.5) / len_i``).  This models the fine-
    grained interleaving of accesses to different structures inside a
    program loop.

    Returns:
        ``(merged_values, source_index)`` — the merged stream and, for
        each element, the index of the stream it came from.
    """
    arrays = [np.asarray(s) for s in streams if len(s) > 0]
    sources: list[int] = [
        i for i, s in enumerate(streams) if len(s) > 0
    ]
    if not arrays:
        return np.array([], dtype=np.int64), np.array([], dtype=np.int32)
    positions = np.concatenate(
        [(np.arange(len(a)) + 0.5) / len(a) for a in arrays]
    )
    values = np.concatenate(arrays)
    src = np.concatenate(
        [np.full(len(a), sources[i], dtype=np.int32) for i, a in enumerate(arrays)]
    )
    order = np.argsort(positions, kind="stable")
    return values[order], src[order]


class TraceBuilder:
    """Accumulates address accesses in program order into a :class:`Trace`.

    Workload generators call :meth:`access` with byte-address arrays and a
    region id; regions are registered with :meth:`region` (typically one
    per :class:`~repro.mem.allocator.Allocation`).
    """

    def __init__(self, line_bytes: int = 64) -> None:
        self.line_bytes = line_bytes
        self._chunks: list[np.ndarray] = []
        self._region_chunks: list[np.ndarray] = []
        self._region_names: dict[int, str] = {}
        self._next_region = 0

    def region(self, name: str, alloc: Allocation | None = None) -> int:
        """Register a region; returns its id.

        If ``alloc`` is given, the region id is the allocation's callpoint
        (so WhirlTool sees the same ids the allocator produced).
        Re-registering a callpoint under the same name is a no-op, but a
        callpoint that collides with a differently-named region raises
        instead of silently corrupting the region->name mapping.
        """
        rid = alloc.callpoint if alloc is not None else self._next_region
        while alloc is None and rid in self._region_names:
            self._next_region += 1
            rid = self._next_region
        existing = self._region_names.get(rid)
        if existing is not None and existing != name:
            raise ValueError(
                f"region id {rid} already registered as {existing!r}; "
                f"refusing to rebind it to {name!r} (callpoint collision)"
            )
        self._region_names[rid] = name
        self._next_region = max(self._next_region, rid + 1)
        return rid

    def access(self, addrs: np.ndarray, region: int) -> None:
        """Append byte-address accesses for one region, in order.

        Rejects non-integer dtypes and negative addresses — external
        trace ingestion feeds this path, so malformed input must fail
        loudly instead of being silently cast.
        """
        addrs = _validated_addresses(addrs, np.int64, "addrs")
        if len(addrs) == 0:
            return
        if region not in self._region_names:
            raise ValueError(f"region {region} not registered")
        self._chunks.append(addrs)
        self._region_chunks.append(np.full(len(addrs), region, dtype=np.int32))

    def access_interleaved(self, streams: dict[int, np.ndarray]) -> None:
        """Append several regions' streams, proportionally interleaved."""
        regions = list(streams.keys())
        for r in regions:
            if r not in self._region_names:
                raise ValueError(f"region {r} not registered")
        values, src = interleave(*[streams[r] for r in regions])
        if len(values) == 0:
            return
        region_ids = np.array(regions, dtype=np.int32)[src]
        self._chunks.append(_validated_addresses(values, np.int64, "addrs"))
        self._region_chunks.append(region_ids)

    @property
    def n_accesses(self) -> int:
        """Accesses accumulated so far."""
        return sum(len(c) for c in self._chunks)

    def finalize(
        self,
        instructions: float | None = None,
        dedup: bool = True,
        apki: float | None = None,
    ) -> Trace:
        """Produce the line-granular :class:`Trace`.

        With ``dedup`` (default), consecutive same-line accesses *within a
        region's own stream* are collapsed: the private L1/L2 would serve
        them, so the LLC sees each sequentially-touched line once.

        Provide either ``instructions`` (explicit count) or ``apki`` (the
        instruction count is derived from the post-dedup access count so
        the trace's LLC APKI lands exactly on the target).
        """
        if not self._chunks:
            raise ValueError("no accesses recorded")
        if (instructions is None) == (apki is None):
            raise ValueError("provide exactly one of instructions / apki")
        addrs = np.concatenate(self._chunks)
        regions = np.concatenate(self._region_chunks)
        lines = addrs // self.line_bytes
        if dedup and len(lines) > 1:
            # Group accesses by region (stable, preserving program order
            # within each region) and drop immediate repeats.
            order = np.argsort(regions, kind="stable")
            g_lines = lines[order]
            g_regions = regions[order]
            repeat = np.zeros(len(lines), dtype=bool)
            same_line = g_lines[1:] == g_lines[:-1]
            same_region = g_regions[1:] == g_regions[:-1]
            repeat[order[1:]] = same_line & same_region
            keep = ~repeat
            lines = lines[keep]
            regions = regions[keep]
        if instructions is None:
            instructions = len(lines) * 1000.0 / apki
        return Trace(
            lines=lines,
            regions=regions,
            instructions=instructions,
            line_bytes=self.line_bytes,
            region_names=dict(self._region_names),
        )
