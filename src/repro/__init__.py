"""repro: a reproduction of Whirlpool (ASPLOS 2016).

Whirlpool combines *static data classification* (grouping program data into
memory pools) with *dynamic cache management* (Jigsaw-style virtual caches
that are periodically re-sized and re-placed across NUCA banks).

Public API highlights
---------------------
- :mod:`repro.curves` — miss-rate curves, stack-distance profiling, the
  Appendix-B combined-curve model, and capacity partitioning.
- :mod:`repro.nuca` — mesh geometry, bank/NoC/memory latency and energy
  models, and the Table-3 system configurations.
- :mod:`repro.mem` — paged virtual address space and the pool allocator
  (``pool_create`` / ``pool_malloc``).
- :mod:`repro.workloads` — instrumented synthetic SPEC CPU2006 and PBBS
  workloads that emit LLC access traces.
- :mod:`repro.schemes` — S-NUCA (LRU/DRRIP), IdealSPD, Awasthi, Jigsaw.
- :mod:`repro.core` — the Whirlpool scheme and the WhirlTool automatic
  classifier (profiler / analyzer / runtime).
- :mod:`repro.parallel` — work-stealing and PaWS task-parallel runtimes.
- :mod:`repro.sim` — trace-driven simulation drivers and metrics.
"""

from repro.version import __version__

__all__ = ["__version__"]
