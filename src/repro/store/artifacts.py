"""The content-addressed artifact store.

One store unifies the repo's two fingerprint-keyed file piles — the
profile cache (``.profile_cache/``) and the registered-trace directory
(``$REPRO_TRACE_DIR``) — behind a single root with typed artifact
kinds, provenance records, atomic publishes, and maintenance commands
(``python -m repro store gc|verify|compact|status``).

Layout::

    <root>/profiles/ab/<fingerprint>.npz     profile payload (uncompressed
                                             npz, so reads can be mapped)
    <root>/profiles/ab/<fingerprint>.json    provenance record
    <root>/traces/ab/<fingerprint>.rtrace    native trace archive, keyed by
                                             its content fingerprint
    <root>/traces/ab/<fingerprint>.json      provenance record
    <root>/names/<name>.json                 workload-name -> fingerprint
    <root>/tmp/                              staging area (gc cleans it)

Every payload lands via same-directory temp + ``os.replace``, so
concurrent campaign workers never observe a half-written artifact, and
a crash leaves at most a dot-prefixed temp that ``gc`` removes.

The root resolves from ``$REPRO_STORE_DIR``; without it, a source
checkout keeps artifacts in ``<repo>/.repro_store`` while an installed
package falls back to the per-user cache directory — unlike the legacy
``parents[3]``-relative cache default, which resolved into the install
prefix (e.g. next to ``site-packages``) and broke installed packages.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from pathlib import Path
from typing import Callable, Iterator

from repro import obs
from repro.version import __version__

__all__ = [
    "ENV_STORE",
    "KINDS",
    "ArtifactStore",
    "default_root",
    "provenance_record",
]

#: Environment variable naming the store root.
ENV_STORE = "REPRO_STORE_DIR"

#: Artifact kinds and their payload extensions.
KINDS = {"profiles": ".npz", "traces": ".rtrace"}


def default_root() -> Path:
    """Resolve the store root (see module docstring)."""
    env = os.environ.get(ENV_STORE)
    if env:
        return Path(env)
    repo = Path(__file__).resolve().parents[3]
    if (repo / "pyproject.toml").exists():
        return repo / ".repro_store"
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "store"


def provenance_record(
    kind: str, fingerprint: str, builder: str, inputs: dict | None = None
) -> dict:
    """A provenance record: what built the artifact, from which inputs."""
    return {
        "kind": kind,
        "fingerprint": fingerprint,
        "builder": builder,
        "inputs": inputs or {},
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "tool": f"repro {__version__}",
    }


class ArtifactStore:
    """Content-addressed artifacts under one root, by kind + fingerprint."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_root()

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def path(self, kind: str, fingerprint: str) -> Path:
        """Where ``kind``/``fingerprint``'s payload lives (may not exist)."""
        ext = self._ext(kind)
        return self.root / kind / fingerprint[:2] / f"{fingerprint}{ext}"

    def meta_path(self, kind: str, fingerprint: str) -> Path:
        """Where the provenance sidecar lives."""
        return self.path(kind, fingerprint).with_suffix(".json")

    def _ext(self, kind: str) -> str:
        try:
            return KINDS[kind]
        except KeyError:
            raise ValueError(
                f"unknown artifact kind {kind!r}; known: {', '.join(KINDS)}"
            ) from None

    def get(self, kind: str, fingerprint: str) -> Path | None:
        """The payload path if the artifact exists, else None."""
        path = self.path(kind, fingerprint)
        return path if path.exists() else None

    def provenance(self, kind: str, fingerprint: str) -> dict | None:
        """The artifact's provenance record, or None."""
        meta = self.meta_path(kind, fingerprint)
        try:
            return json.loads(meta.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(
        self,
        kind: str,
        fingerprint: str,
        write: Callable[[Path], None],
        provenance: dict | None = None,
    ) -> Path:
        """Atomically publish a payload produced by ``write(tmp_path)``.

        ``write`` receives a temp path in the destination directory; the
        finished file is renamed into place, so readers never see a
        partial payload.  The provenance sidecar lands after the payload
        (an artifact is usable the instant it exists).
        """
        dst = self.path(kind, fingerprint)
        dst.parent.mkdir(parents=True, exist_ok=True)
        tmp = dst.parent / f".{dst.name}.{os.getpid()}.tmp"
        try:
            write(tmp)
            os.replace(tmp, dst)
        finally:
            tmp.unlink(missing_ok=True)
        if provenance is not None:
            self._write_json(self.meta_path(kind, fingerprint), provenance)
        return dst

    def publish_file(
        self,
        kind: str,
        fingerprint: str,
        src: str | Path,
        provenance: dict | None = None,
    ) -> Path:
        """Atomically publish an existing file as an artifact (copies it)."""
        return self.publish(
            kind,
            fingerprint,
            lambda tmp: shutil.copyfile(src, tmp),
            provenance=provenance,
        )

    def _write_json(self, path: Path, payload: dict) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
        try:
            tmp.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Name index (workload name -> trace fingerprint)
    # ------------------------------------------------------------------
    def bind_name(
        self, name: str, kind: str, fingerprint: str
    ) -> Path:
        """Bind a workload name to an artifact (atomic; last bind wins)."""
        self._ext(kind)
        path = self.root / "names" / f"{name}.json"
        self._write_json(
            path,
            {
                "name": name,
                "kind": kind,
                "fingerprint": fingerprint,
                "bound": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            },
        )
        return path

    def resolve_name(self, name: str) -> dict | None:
        """The name's binding record, or None (corrupt bindings read as None)."""
        path = self.root / "names" / f"{name}.json"
        try:
            binding = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(binding, dict) or "fingerprint" not in binding:
            return None
        return binding

    def names(self) -> dict[str, dict]:
        """All resolvable name bindings (corrupt entries skipped)."""
        out: dict[str, dict] = {}
        names_dir = self.root / "names"
        if not names_dir.is_dir():
            return out
        for path in sorted(names_dir.glob("*.json")):
            if path.name.startswith("."):
                continue
            binding = self.resolve_name(path.stem)
            if binding is not None:
                out[path.stem] = binding
        return out

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def artifacts(
        self, kind: str | None = None
    ) -> Iterator[tuple[str, str, Path]]:
        """Yield ``(kind, fingerprint, payload_path)`` for stored payloads."""
        kinds = [kind] if kind is not None else list(KINDS)
        for k in kinds:
            ext = self._ext(k)
            kind_dir = self.root / k
            if not kind_dir.is_dir():
                continue
            for path in sorted(kind_dir.glob(f"*/*{ext}")):
                if path.name.startswith("."):
                    continue
                yield k, path.stem, path

    def status(self) -> dict:
        """Counts and byte totals per kind, plus the name-index size."""
        report: dict = {"root": str(self.root), "kinds": {}}
        for k in KINDS:
            n = 0
            total = 0
            for __, __, path in self.artifacts(k):
                n += 1
                total += path.stat().st_size
            report["kinds"][k] = {"artifacts": n, "bytes": total}
        report["names"] = len(self.names())
        return report

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def gc(self, dry_run: bool = False) -> dict:
        """Remove garbage: staging temps, orphaned sidecars, dead names.

        Conservative by design — payloads are never deleted (an
        unprovenanced payload is still a valid artifact; it is reported,
        not reclaimed).  Returns a report of what was (or would be)
        removed.
        """
        with obs.span("store.gc", dry_run=dry_run) as sp:
            report = self._gc(dry_run)
            sp.note(
                removed=len(report["removed"]),
                reclaimed_bytes=report["reclaimed_bytes"],
            )
            return report

    def _gc(self, dry_run: bool) -> dict:
        removed: list[str] = []
        reclaimed = 0
        unprovenanced: list[str] = []
        if not self.root.is_dir():
            return {
                "removed": removed,
                "reclaimed_bytes": 0,
                "unprovenanced": unprovenanced,
                "dry_run": dry_run,
            }

        def _remove(path: Path) -> None:
            nonlocal reclaimed
            try:
                reclaimed += path.stat().st_size
            except OSError:
                pass
            removed.append(str(path.relative_to(self.root)))
            if not dry_run:
                path.unlink(missing_ok=True)

        # Staging temps anywhere under the root (crash leftovers).
        for tmp in sorted(self.root.rglob(".*.tmp")):
            if tmp.is_file():
                _remove(tmp)
        staging = self.root / "tmp"
        if staging.is_dir():
            for tmp in sorted(staging.iterdir()):
                if tmp.is_file():
                    _remove(tmp)
        # Orphaned sidecars: provenance whose payload is gone.
        for kind in KINDS:
            kind_dir = self.root / kind
            if not kind_dir.is_dir():
                continue
            for meta in sorted(kind_dir.glob("*/*.json")):
                if meta.name.startswith("."):
                    continue
                if not self.get(kind, meta.stem):
                    _remove(meta)
            for k, fingerprint, __ in self.artifacts(kind):
                if not self.meta_path(k, fingerprint).exists():
                    unprovenanced.append(f"{k}/{fingerprint}")
        # Name bindings whose target artifact is gone.
        for name, binding in self.names().items():
            kind = binding.get("kind", "traces")
            if kind not in KINDS or not self.get(
                kind, binding["fingerprint"]
            ):
                _remove(self.root / "names" / f"{name}.json")
        return {
            "removed": removed,
            "reclaimed_bytes": reclaimed,
            "unprovenanced": unprovenanced,
            "dry_run": dry_run,
        }

    def verify(self) -> dict:
        """Integrity pass: every payload parses and matches its key.

        Profiles must load as a current-version curve payload; traces
        must re-hash to the fingerprint they are filed under; name
        bindings must point at existing artifacts.  Returns ``{"ok":
        [...], "bad": {artifact: reason}}``.
        """
        with obs.span("store.verify") as sp:
            result = self._verify()
            sp.note(ok=len(result["ok"]), bad=len(result["bad"]))
            return result

    def _verify(self) -> dict:
        ok: list[str] = []
        bad: dict[str, str] = {}
        for kind, fingerprint, path in self.artifacts():
            label = f"{kind}/{fingerprint}"
            if kind == "profiles":
                from repro.store.profiles import verify_profile_payload

                error = verify_profile_payload(path)
            else:
                error = _verify_trace_payload(path, fingerprint)
            if error is None:
                ok.append(label)
            else:
                bad[label] = error
        for name, binding in self.names().items():
            kind = binding.get("kind", "traces")
            if kind not in KINDS or not self.get(
                kind, binding["fingerprint"]
            ):
                bad[f"names/{name}"] = "binding targets a missing artifact"
        return {"ok": ok, "bad": bad}

    def compact(self, dry_run: bool = False) -> dict:
        """Rewrite payloads into the mappable (uncompressed) layout.

        Legacy imports arrive deflate-compressed; compacting rewrites
        them member-for-member as ``ZIP_STORED`` so zero-copy readers
        apply.  Content fingerprints are invariant to zip compression,
        so keys and provenance stay valid.  Returns the rewritten list.
        """
        with obs.span("store.compact", dry_run=dry_run) as sp:
            report = self._compact(dry_run)
            sp.note(rewritten=len(report["rewritten"]))
            return report

    def _compact(self, dry_run: bool) -> dict:
        import zipfile

        rewritten: list[str] = []
        for kind, fingerprint, path in self.artifacts():
            with zipfile.ZipFile(path) as zf:
                infos = zf.infolist()
                if all(
                    i.compress_type == zipfile.ZIP_STORED for i in infos
                ):
                    continue
                members = [(i.filename, zf.read(i.filename)) for i in infos]
            rewritten.append(f"{kind}/{fingerprint}")
            if dry_run:
                continue

            def _rewrite(tmp: Path) -> None:
                with zipfile.ZipFile(tmp, "w", zipfile.ZIP_STORED) as out:
                    for member_name, payload in members:
                        out.writestr(member_name, payload)

            self.publish(kind, fingerprint, _rewrite)
        return {"rewritten": rewritten, "dry_run": dry_run}


def _verify_trace_payload(path: Path, fingerprint: str) -> str | None:
    from repro.ingest import RTraceSource

    try:
        source = RTraceSource(path)
    except ValueError as exc:
        return str(exc)
    if source.fingerprint != fingerprint:
        return (
            f"header fingerprint {source.fingerprint} does not match "
            f"storage key {fingerprint}"
        )
    if not source.verify_fingerprint():
        return "content does not match its fingerprint"
    return None
