"""Zero-copy reads of uncompressed zip members.

numpy's ``.npz`` container is a zip of ``.npy`` members, and the native
``.rtrace`` archive is a zip of ``.npy`` chunk members.  When members
are *stored* (``ZIP_STORED``, no compression) every array lives
contiguously in the file at a knowable offset — so instead of inflating
each member into a private heap copy per process, the archive can be
mapped once (``mmap``, ``ACCESS_READ``) and each member exposed as a
read-only ndarray view over the shared mapping.  N campaign workers on
one host then share one page-cache copy of every profile and trace
chunk instead of deserializing N copies.

Deflated members cannot be mapped; :meth:`MappedArchive.npy_member`
returns ``None`` for them and callers fall back to normal
decompression (``np.load`` / ``zipfile``).
"""

from __future__ import annotations

import ast
import mmap
import struct
import zipfile
from pathlib import Path

import numpy as np

__all__ = ["MappedArchive", "npz_arrays"]

_NPY_MAGIC = b"\x93NUMPY"

#: Fixed part of a zip local file header (PK\x03\x04 ... name/extra lens).
_LOCAL_HEADER_BYTES = 30


def _npy_from_buffer(buf: memoryview) -> np.ndarray:
    """Parse one ``.npy`` member into a view over ``buf`` (no copy)."""
    if bytes(buf[:6]) != _NPY_MAGIC:
        raise ValueError("member is not an npy array (bad magic)")
    major = buf[6]
    if major == 1:
        (hlen,) = struct.unpack("<H", bytes(buf[8:10]))
        data_off = 10 + hlen
        header = bytes(buf[10:data_off])
    elif major in (2, 3):
        (hlen,) = struct.unpack("<I", bytes(buf[8:12]))
        data_off = 12 + hlen
        header = bytes(buf[12:data_off])
    else:
        raise ValueError(f"unsupported npy format version {major}")
    meta = ast.literal_eval(header.decode("latin1"))
    dtype = np.dtype(meta["descr"])
    if dtype.hasobject:
        raise ValueError("refusing to map an object-dtype array")
    shape = tuple(meta["shape"])
    count = 1
    for dim in shape:
        count *= dim
    arr = np.frombuffer(buf, dtype=dtype, count=count, offset=data_off)
    return arr.reshape(shape, order="F" if meta["fortran_order"] else "C")


class MappedArchive:
    """Read-only memory-mapped view of a zip archive's stored members.

    Arrays returned by :meth:`npy_member` are views over one shared
    mapping; numpy keeps the mapping alive through ``.base`` for as long
    as any view is referenced, so there is nothing to close explicitly.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        with zipfile.ZipFile(self.path) as zf:
            self._infos = {info.filename: info for info in zf.infolist()}
        with open(self.path, "rb") as f:
            self._view = memoryview(
                mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
            )

    def members(self) -> list[str]:
        """Member names, in archive order."""
        return list(self._infos)

    def _member_view(self, info: zipfile.ZipInfo) -> memoryview:
        lo = info.header_offset
        if bytes(self._view[lo : lo + 4]) != b"PK\x03\x04":
            raise ValueError(
                f"{self.path}: corrupt local header for {info.filename!r}"
            )
        # The local header's name/extra lengths can differ from the
        # central directory's (zip64 padding), so read them from the
        # local header itself.
        nlen, elen = struct.unpack(
            "<HH", bytes(self._view[lo + 26 : lo + 30])
        )
        start = lo + _LOCAL_HEADER_BYTES + nlen + elen
        return self._view[start : start + info.file_size]

    def npy_member(self, name: str) -> np.ndarray | None:
        """The named ``.npy`` member as a zero-copy read-only array.

        Returns ``None`` when the member is compressed (not mappable);
        raises ``KeyError`` when it does not exist.
        """
        info = self._infos[name]
        if info.compress_type != zipfile.ZIP_STORED:
            return None
        return _npy_from_buffer(self._member_view(info))


def npz_arrays(path: str | Path) -> dict[str, np.ndarray] | None:
    """Map an uncompressed ``.npz`` as ``{key: read-only array view}``.

    Returns ``None`` if any member is compressed or not an ``.npy``
    array — the caller should fall back to ``np.load`` (which is what
    legacy ``savez_compressed`` cache entries need).
    """
    archive = MappedArchive(path)
    out: dict[str, np.ndarray] = {}
    for name in archive.members():
        try:
            arr = archive.npy_member(name)
        except ValueError:
            return None
        if arr is None:
            return None
        key = name[:-4] if name.endswith(".npy") else name
        out[key] = arr
    return out
