"""``python -m repro store`` — artifact-store maintenance commands.

- ``status`` — artifact counts and bytes per kind, name-index size.
- ``gc`` — remove staging temps, orphaned provenance, dead name
  bindings (never payloads); ``--dry-run`` reports without deleting.
- ``verify`` — every payload parses and matches its fingerprint key.
- ``compact`` — import legacy piles (``.profile_cache/``,
  ``$REPRO_TRACE_DIR``) and rewrite compressed payloads into the
  mappable layout.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.store.artifacts import ENV_STORE, ArtifactStore, provenance_record

__all__ = ["cmd_store"]


def _fmt_bytes(n: int) -> str:
    size = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{n} B"
        size /= 1024
    return f"{n} B"


def _store_status(store: ArtifactStore) -> int:
    report = store.status()
    print(f"store root: {report['root']}")
    for kind, row in report["kinds"].items():
        print(
            f"  {kind}: {row['artifacts']} artifacts, "
            f"{_fmt_bytes(row['bytes'])}"
        )
    print(f"  names: {report['names']} bindings")
    return 0


def _store_gc(store: ArtifactStore, dry_run: bool) -> int:
    report = store.gc(dry_run=dry_run)
    verb = "would remove" if dry_run else "removed"
    for path in report["removed"]:
        print(f"  {verb} {path}")
    print(
        f"{verb} {len(report['removed'])} files, "
        f"{_fmt_bytes(report['reclaimed_bytes'])}"
    )
    for label in report["unprovenanced"]:
        print(f"  note: {label} has no provenance record (kept)")
    return 0


def _store_verify(store: ArtifactStore) -> int:
    report = store.verify()
    for label, reason in sorted(report["bad"].items()):
        print(f"BAD {label}: {reason}", file=sys.stderr)
    print(f"verified {len(report['ok'])} artifacts, {len(report['bad'])} bad")
    return 1 if report["bad"] else 0


def _store_compact(store: ArtifactStore, dry_run: bool) -> int:
    imported = _import_legacy(store, dry_run=dry_run)
    report = store.compact(dry_run=dry_run)
    verb = "would rewrite" if dry_run else "rewrote"
    for label in report["rewritten"]:
        print(f"  {verb} {label} as mappable")
    print(
        f"imported {imported} legacy artifacts, "
        f"{verb.replace('would ', '')} {len(report['rewritten'])} payloads"
        + (" (dry run)" if dry_run else "")
    )
    return 0


def _import_legacy(store: ArtifactStore, dry_run: bool) -> int:
    """Pull legacy-pile artifacts (profiles + traces) into the store."""
    from repro.sim import profiling
    from repro.store.traces import publish_trace
    from repro.workloads import registry

    n = 0
    legacy_profiles = profiling.cache_dir()
    if legacy_profiles.is_dir():
        for path in sorted(legacy_profiles.glob("*.npz")):
            if path.name.startswith(".") or store.get("profiles", path.stem):
                continue
            n += 1
            print(f"  import profile {path.stem} <- {path}")
            if dry_run:
                continue
            store.publish_file(
                "profiles",
                path.stem,
                path,
                provenance=provenance_record(
                    "profiles",
                    path.stem,
                    builder="repro.store.cli.compact",
                    inputs={"legacy_path": str(path)},
                ),
            )
    trace_root = os.environ.get(registry.TRACE_DIR_ENV)
    if trace_root and Path(trace_root).is_dir():
        for path in sorted(Path(trace_root).glob("*.rtrace")):
            if path.name.startswith("."):
                continue
            binding = store.resolve_name(path.stem)
            if binding and store.get("traces", binding["fingerprint"]):
                continue
            n += 1
            print(f"  import trace {path.stem!r} <- {path}")
            if dry_run:
                continue
            try:
                publish_trace(
                    store,
                    path,
                    name=path.stem,
                    inputs={"legacy_path": str(path)},
                )
            except ValueError as exc:
                print(f"  skipped {path}: {exc}", file=sys.stderr)
                n -= 1
    return n


def cmd_store(args: argparse.Namespace) -> int:
    """Dispatch one ``repro store`` action."""
    store = ArtifactStore(args.root) if args.root else ArtifactStore()
    if args.action != "compact" and not store.root.is_dir():
        if args.action == "status":
            print(f"store root: {store.root} (empty)")
            return 0
        print(
            f"no store at {store.root} (set ${ENV_STORE} or pass --root)",
            file=sys.stderr,
        )
        return 2
    if args.action == "status":
        return _store_status(store)
    if args.action == "gc":
        return _store_gc(store, args.dry_run)
    if args.action == "verify":
        return _store_verify(store)
    return _store_compact(store, args.dry_run)
