"""Trace artifacts: ``.rtrace`` archives keyed by content fingerprint.

The ``.rtrace`` header already carries a blake2b content fingerprint
that is invariant to chunk boundaries *and* to zip compression (it
hashes the line/region arrays, not the container bytes), so an archive
can be re-filed — or rewritten uncompressed for zero-copy readers —
without changing its key.  Workload names attach through the store's
name index rather than the filename, so one payload can serve many
registrations.
"""

from __future__ import annotations

import zipfile
from pathlib import Path

from repro.store.artifacts import ArtifactStore, provenance_record

__all__ = ["publish_trace"]


def publish_trace(
    store: ArtifactStore,
    src: str | Path,
    name: str | None = None,
    inputs: dict | None = None,
) -> tuple[str, Path]:
    """Publish an ``.rtrace`` archive into the store.

    Validates the archive (parseable header, known instruction count —
    the same bar ``register_trace`` sets), rewrites deflated members as
    ``ZIP_STORED`` so reads can be mapped, publishes under the content
    fingerprint, and binds ``name`` when given.  Returns
    ``(fingerprint, payload_path)``.
    """
    from repro.ingest import RTraceSource

    src = Path(src)
    source = RTraceSource(src)  # raises ValueError on a malformed archive
    if source.instructions is None:
        raise ValueError(
            f"{src}: archive has no instruction count; re-run the "
            "conversion with --instructions or --apki"
        )
    fingerprint = source.fingerprint
    meta = provenance_record(
        "traces",
        fingerprint,
        builder="repro.store.traces.publish_trace",
        inputs={
            "source": str(src),
            "n_records": source.n_records,
            "line_bytes": source.line_bytes,
            "instructions": source.instructions,
            **(inputs or {}),
        },
    )
    dst = store.publish(
        "traces",
        fingerprint,
        lambda tmp: _copy_as_stored(src, tmp),
        provenance=meta,
    )
    if name is not None:
        store.bind_name(name, "traces", fingerprint)
    return fingerprint, dst


def _copy_as_stored(src: Path, tmp: Path) -> None:
    """Copy a zip, re-filing deflated members as stored (mappable)."""
    with zipfile.ZipFile(src) as zin:
        infos = zin.infolist()
        if all(i.compress_type == zipfile.ZIP_STORED for i in infos):
            tmp.write_bytes(src.read_bytes())
            return
        with zipfile.ZipFile(tmp, "w", zipfile.ZIP_STORED) as zout:
            for info in infos:
                zout.writestr(info.filename, zin.read(info.filename))
