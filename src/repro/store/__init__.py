"""Content-addressed artifact store (profiles, traces, provenance).

One store replaces the repo's two fingerprint-keyed file piles — the
profile cache and the registered-trace directory — with typed artifact
kinds, provenance sidecars, atomic publishes, zero-copy (memory-mapped)
reads, and ``python -m repro store`` maintenance commands.  See
:mod:`repro.store.artifacts` for the layout.
"""

from repro.store.artifacts import (
    ENV_STORE,
    KINDS,
    ArtifactStore,
    default_root,
    provenance_record,
)
from repro.store.mmapzip import MappedArchive, npz_arrays
from repro.store.profiles import load_profile, publish_profile
from repro.store.traces import publish_trace

__all__ = [
    "ENV_STORE",
    "KINDS",
    "ArtifactStore",
    "MappedArchive",
    "default_root",
    "load_profile",
    "npz_arrays",
    "provenance_record",
    "publish_profile",
    "publish_trace",
]
