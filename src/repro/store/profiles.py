"""Profile artifacts: the cached miss-curve payload, store-side.

The payload schema is the profile cache's (format version 2): a flat
npz with ``format_version``, ``vc_ids``, and per-VC arrays ``a_{i}``
(accesses per interval), ``i_{i}`` (instructions per interval), and
``m_{i}_{t}`` (the interval-``t`` miss curve).  The store publishes it
*uncompressed* (``np.savez``) so readers can map members zero-copy via
:mod:`repro.store.mmapzip`; ``decode_payload`` falls back to ``np.load``
for legacy ``savez_compressed`` files, so committed ``.profile_cache/``
fixtures keep loading byte-for-byte.
"""

from __future__ import annotations

import zipfile
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:
    from repro.curves.miss_curve import MissCurve
    from repro.store.artifacts import ArtifactStore

__all__ = [
    "FORMAT_VERSION",
    "decode_payload",
    "encode_payload",
    "load_profile",
    "publish_profile",
    "verify_profile_payload",
]

#: On-disk payload version — single source of truth for the cache format
#: (``repro.sim.profiling`` re-exports it as ``_FORMAT_VERSION``).
#: Version 1 fingerprints hashed only a stride-257 sample of the trace,
#: so short traces could collide; loads reject any other version.
FORMAT_VERSION = 2


def encode_payload(
    curves: dict[int, list[MissCurve]],
) -> dict[str, np.ndarray]:
    """Flatten per-VC, per-interval curves into the npz payload."""
    payload: dict[str, np.ndarray] = {
        "format_version": np.array(FORMAT_VERSION, dtype=np.int64),
        "vc_ids": np.array(sorted(curves), dtype=np.int64),
    }
    for i, vc in enumerate(sorted(curves)):
        series = curves[vc]
        payload[f"a_{i}"] = np.array([c.accesses for c in series])
        payload[f"i_{i}"] = np.array([c.instructions for c in series])
        for t, c in enumerate(series):
            payload[f"m_{i}_{t}"] = c.misses
    return payload


def decode_payload(
    data: Any, chunk_bytes: int, n_intervals: int
) -> dict[int, list[MissCurve]] | None:
    """Rebuild curves from a payload mapping; None on any staleness.

    ``data`` is either an ``NpzFile`` or a mapped-member dict — anything
    supporting ``in`` and ``[]``.  A stale or partially written payload
    (missing arrays, wrong version) returns ``None`` so callers fall
    back to re-profiling rather than crash.
    """
    from repro.curves.miss_curve import MissCurve

    try:
        version = (
            int(data["format_version"]) if "format_version" in data else 1
        )
        if version != FORMAT_VERSION:
            return None
        out: dict[int, list[MissCurve]] = {}
        vc_ids = data["vc_ids"]
        for i, vc in enumerate(vc_ids.tolist()):
            curves = []
            for t in range(n_intervals):
                curves.append(
                    MissCurve(
                        misses=data[f"m_{i}_{t}"],
                        chunk_bytes=chunk_bytes,
                        accesses=float(data[f"a_{i}"][t]),
                        instructions=float(data[f"i_{i}"][t]),
                    )
                )
            out[int(vc)] = curves
    except (
        KeyError,
        IndexError,
        ValueError,
        OSError,
        zlib.error,
        zipfile.BadZipFile,
    ):
        return None
    return out


def load_profile(
    path: str | Path, chunk_bytes: int, n_intervals: int, mmap: bool = True
) -> dict[int, list[MissCurve]] | None:
    """Load a profile payload, zero-copy when the file permits it.

    Mapped payloads hand :class:`MissCurve` read-only views over one
    shared mapping (N workers share one page-cache copy); compressed or
    foreign files fall back to ``np.load`` and, failing that, ``None``.
    """
    from repro import obs
    from repro.devtools import faults
    from repro.retry import call_with_retries

    path = Path(path)
    if not path.exists():
        return None
    if mmap:
        from repro.store.mmapzip import npz_arrays

        def read_mapped() -> Any:
            faults.maybe_inject("store-read", key=str(path))
            return npz_arrays(path)

        try:
            # A transient read failure costs a bounded re-read; only a
            # persistent one falls through to the np.load path / None.
            arrays = call_with_retries(read_mapped, key=str(path))
        except (OSError, ValueError, zipfile.BadZipFile):
            arrays = None
        if arrays is not None:
            obs.counter("store.load.mmap")
            return decode_payload(arrays, chunk_bytes, n_intervals)

    def read_npz() -> Any:
        faults.maybe_inject("store-read", key=str(path))
        return np.load(path)

    try:
        data = call_with_retries(read_npz, key=str(path))
    except (OSError, ValueError, zipfile.BadZipFile):
        return None
    obs.counter("store.load.npz_fallback")
    return decode_payload(data, chunk_bytes, n_intervals)


def publish_profile(
    store: ArtifactStore,
    fingerprint: str,
    curves: dict[int, list[MissCurve]],
    provenance: dict | None = None,
) -> Path:
    """Publish curves to the store as a mappable (uncompressed) npz."""
    payload = encode_payload(curves)

    def _write(tmp: Path) -> None:
        # np.savez appends ".npz" to bare paths; an open handle keeps the
        # staging name exact so the atomic rename sees the real file.
        with open(tmp, "wb") as f:
            np.savez(f, **payload)

    return store.publish(
        "profiles", fingerprint, _write, provenance=provenance
    )


def verify_profile_payload(path: str | Path) -> str | None:
    """Structural check of a stored profile; None if sound, else why not."""
    try:
        data = np.load(path)
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        return f"unreadable payload: {exc}"
    with data:
        if "format_version" not in data:
            return "missing format_version"
        version = int(data["format_version"])
        if version != FORMAT_VERSION:
            return f"format version {version} != {FORMAT_VERSION}"
        if "vc_ids" not in data:
            return "missing vc_ids"
        n_vcs = len(data["vc_ids"])
        for i in range(n_vcs):
            for prefix in ("a", "i"):
                if f"{prefix}_{i}" not in data:
                    return f"missing {prefix}_{i}"
            n_intervals = len(data[f"a_{i}"])
            if len(data[f"i_{i}"]) != n_intervals:
                return f"a_{i}/i_{i} interval counts disagree"
            for t in range(n_intervals):
                name = f"m_{i}_{t}"
                if name not in data:
                    return f"missing {name}"
                misses = data[name]
                if misses.ndim != 1 or len(misses) == 0:
                    return f"{name} is not a non-empty 1-D curve"
    return None
