"""IdealSPD: idealized private-baseline D-NUCA (Appendix A).

Each core gets a private 1.5 MB L3 that *replicates* the three closest
NUCA banks, backed by a fully-provisioned directory and an exclusive
S-NUCA L4 over the whole LLC (idealized: replication does not reduce
shared capacity).  This upper-bounds shared-private D-NUCAs (DCC, ASR,
ECC — Herrero et al.).

Behaviour the paper highlights (Sec 4.5):

- benchmarks whose working set fits the private region perform close to
  Jigsaw (fast, near hits);
- benchmarks that do not fit pay multi-level lookups on every miss —
  private check, then directory + L4 in parallel — which slows misses
  and makes IdealSPD the most energy-hungry scheme (Fig 10).
"""

from __future__ import annotations

import numpy as np

from repro.curves.miss_curve import MissCurve
from repro.nuca.config import SystemConfig
from repro.nuca.energy import EnergyBreakdown
from repro.schemes.base import (
    IntervalStats,
    Scheme,
    VCAllocation,
    VCSpec,
    _batched_misses_at,
)

__all__ = ["IdealSPDScheme"]

#: Private replicated region: 3 banks of 512 KB.
PRIVATE_BYTES = 3 * 512 * 1024


class IdealSPDScheme(Scheme):
    """Idealized shared-private D-NUCA."""

    name = "IdealSPD"

    def __init__(self, config: SystemConfig, vcs: list[VCSpec]) -> None:
        super().__init__(config, vcs)

    def decide(self, decide_curves: dict[int, MissCurve]) -> dict[int, VCAllocation]:
        out = {}
        for vc_id, spec in self.vcs.items():
            out[vc_id] = VCAllocation(
                size_bytes=float(self.config.llc_bytes),
                avg_hops=self.config.geometry.snuca_avg_hops(spec.owner_core),
            )
        return out

    def account(
        self,
        allocations: dict[int, VCAllocation],
        actual_curves: dict[int, MissCurve],
        instructions: float,
    ) -> IntervalStats:
        cfg = self.config
        geo = cfg.geometry
        stats = IntervalStats(instructions=instructions)
        for vc_id, curve in actual_curves.items():
            spec = self.vcs[vc_id]
            # Private region latency: the owner's three closest banks.
            private_hops = geo.reach_avg_hops(spec.owner_core, PRIVATE_BYTES)
            accesses = curve.accesses
            private_hits = accesses - min(
                curve.misses_at(PRIVATE_BYTES), accesses
            )
            l4_lookups = accesses - private_hits
            total_cap_misses = min(curve.misses_at(cfg.llc_bytes), accesses)
            l4_hits = max(l4_lookups - total_cap_misses, 0.0)
            misses = total_cap_misses
            mem_hops = geo.mem_hops(spec.owner_core)
            snuca_hops = geo.snuca_avg_hops(spec.owner_core)
            penalty = cfg.latency.mem_latency + 2 * cfg.latency.hop_latency * mem_hops
            lat_private = (
                cfg.latency.bank_latency
                + 2 * cfg.latency.hop_latency * private_hops
            )
            lat_l4 = (
                cfg.latency.bank_latency  # directory (parallel with L4)
                + cfg.latency.bank_latency
                + 2 * cfg.latency.hop_latency * snuca_hops
            )
            stalls = (
                accesses * lat_private  # everyone checks private first
                + l4_lookups * lat_l4  # then directory + L4
                + misses * penalty
            )
            energy = (
                cfg.energy.private_access(accesses)
                + cfg.energy.bank_lookup(l4_lookups)  # directory
                + cfg.energy.llc_access(snuca_hops, l4_lookups)  # parallel L4
                + cfg.energy.memory_access(mem_hops, misses)
                # Replication: L4 hits are pulled into the private region.
                + cfg.energy.migration(snuca_hops, l4_hits)
            )
            stats.hits += private_hits + l4_hits
            stats.misses += misses
            stats.stall_cycles += stalls
            stats.energy = stats.energy + energy
            stats.vc_sizes[vc_id] = float(cfg.llc_bytes)
            stats.vc_hops[vc_id] = snuca_hops
            stats.vc_bypass[vc_id] = False
            stats.vc_accesses[vc_id] = accesses
            stats.vc_misses[vc_id] = misses
            stats.vc_stalls[vc_id] = stalls
        return stats

    def account_batch(
        self,
        allocations: list[dict[int, VCAllocation]],
        actual_series: dict[int, list[MissCurve]],
        instructions: float,
    ) -> list[IntervalStats]:
        """Multi-level accounting, vectorized across intervals.

        Every term is the serial :meth:`account` expression applied to a
        per-VC interval array — the two fixed lookup sizes (private
        region, whole LLC) become two batched curve reads per VC.
        """
        cfg = self.config
        geo = cfg.geometry
        e = cfg.energy
        n_intervals = len(allocations)
        stats_list = [
            IntervalStats(instructions=instructions) for __ in range(n_intervals)
        ]
        for vc_id, series in actual_series.items():
            spec = self.vcs[vc_id]
            private_hops = geo.reach_avg_hops(spec.owner_core, PRIVATE_BYTES)
            mem_hops = geo.mem_hops(spec.owner_core)
            snuca_hops = geo.snuca_avg_hops(spec.owner_core)
            penalty = (
                cfg.latency.mem_latency + 2 * cfg.latency.hop_latency * mem_hops
            )
            lat_private = (
                cfg.latency.bank_latency
                + 2 * cfg.latency.hop_latency * private_hops
            )
            lat_l4 = (
                cfg.latency.bank_latency
                + cfg.latency.bank_latency
                + 2 * cfg.latency.hop_latency * snuca_hops
            )
            accesses = np.array([c.accesses for c in series], dtype=np.float64)
            private_misses = _batched_misses_at(
                series, np.full(n_intervals, float(PRIVATE_BYTES)), use_hull=False
            )
            cap_misses = _batched_misses_at(
                series, np.full(n_intervals, float(cfg.llc_bytes)), use_hull=False
            )
            private_hits = accesses - np.minimum(private_misses, accesses)
            l4_lookups = accesses - private_hits
            misses = np.minimum(cap_misses, accesses)
            l4_hits = np.maximum(l4_lookups - misses, 0.0)
            stalls = (
                accesses * lat_private + l4_lookups * lat_l4 + misses * penalty
            )
            # EnergyBreakdown components, added in the serial order.
            llc_network = 2.0 * snuca_hops * e.hop_nj * l4_lookups
            network = llc_network + 2.0 * mem_hops * e.hop_nj * misses
            network = network + snuca_hops * e.hop_nj * l4_hits
            bank = e.private_nj * accesses + e.bank_nj * l4_lookups
            bank = bank + e.bank_nj * l4_lookups
            bank = bank + 2.0 * e.bank_nj * l4_hits
            memory = e.mem_nj * misses
            total_hits = private_hits + l4_hits
            for t, stats in enumerate(stats_list):
                stats.hits += total_hits[t]
                stats.misses += misses[t]
                stats.stall_cycles += stalls[t]
                stats.energy = stats.energy + EnergyBreakdown(
                    network=network[t], bank=bank[t], memory=memory[t]
                )
                stats.vc_sizes[vc_id] = float(cfg.llc_bytes)
                stats.vc_hops[vc_id] = snuca_hops
                stats.vc_bypass[vc_id] = False
                stats.vc_accesses[vc_id] = accesses[t]
                stats.vc_misses[vc_id] = misses[t]
                stats.vc_stalls[vc_id] = stalls[t]
        return stats_list
