"""IdealSPD: idealized private-baseline D-NUCA (Appendix A).

Each core gets a private 1.5 MB L3 that *replicates* the three closest
NUCA banks, backed by a fully-provisioned directory and an exclusive
S-NUCA L4 over the whole LLC (idealized: replication does not reduce
shared capacity).  This upper-bounds shared-private D-NUCAs (DCC, ASR,
ECC — Herrero et al.).

Behaviour the paper highlights (Sec 4.5):

- benchmarks whose working set fits the private region perform close to
  Jigsaw (fast, near hits);
- benchmarks that do not fit pay multi-level lookups on every miss —
  private check, then directory + L4 in parallel — which slows misses
  and makes IdealSPD the most energy-hungry scheme (Fig 10).
"""

from __future__ import annotations

from repro.curves.miss_curve import MissCurve
from repro.nuca.config import SystemConfig
from repro.schemes.base import IntervalStats, Scheme, VCAllocation, VCSpec

__all__ = ["IdealSPDScheme"]

#: Private replicated region: 3 banks of 512 KB.
PRIVATE_BYTES = 3 * 512 * 1024


class IdealSPDScheme(Scheme):
    """Idealized shared-private D-NUCA."""

    name = "IdealSPD"

    def __init__(self, config: SystemConfig, vcs: list[VCSpec]) -> None:
        super().__init__(config, vcs)

    def decide(self, decide_curves: dict[int, MissCurve]) -> dict[int, VCAllocation]:
        out = {}
        for vc_id, spec in self.vcs.items():
            out[vc_id] = VCAllocation(
                size_bytes=float(self.config.llc_bytes),
                avg_hops=self.config.geometry.snuca_avg_hops(spec.owner_core),
            )
        return out

    def account(
        self,
        allocations: dict[int, VCAllocation],
        actual_curves: dict[int, MissCurve],
        instructions: float,
    ) -> IntervalStats:
        cfg = self.config
        geo = cfg.geometry
        stats = IntervalStats(instructions=instructions)
        for vc_id, curve in actual_curves.items():
            spec = self.vcs[vc_id]
            # Private region latency: the owner's three closest banks.
            private_hops = geo.reach_avg_hops(spec.owner_core, PRIVATE_BYTES)
            accesses = curve.accesses
            private_hits = accesses - min(
                curve.misses_at(PRIVATE_BYTES), accesses
            )
            l4_lookups = accesses - private_hits
            total_cap_misses = min(curve.misses_at(cfg.llc_bytes), accesses)
            l4_hits = max(l4_lookups - total_cap_misses, 0.0)
            misses = total_cap_misses
            mem_hops = geo.mem_hops(spec.owner_core)
            snuca_hops = geo.snuca_avg_hops(spec.owner_core)
            penalty = cfg.latency.mem_latency + 2 * cfg.latency.hop_latency * mem_hops
            lat_private = (
                cfg.latency.bank_latency
                + 2 * cfg.latency.hop_latency * private_hops
            )
            lat_l4 = (
                cfg.latency.bank_latency  # directory (parallel with L4)
                + cfg.latency.bank_latency
                + 2 * cfg.latency.hop_latency * snuca_hops
            )
            stalls = (
                accesses * lat_private  # everyone checks private first
                + l4_lookups * lat_l4  # then directory + L4
                + misses * penalty
            )
            energy = (
                cfg.energy.private_access(accesses)
                + cfg.energy.bank_lookup(l4_lookups)  # directory
                + cfg.energy.llc_access(snuca_hops, l4_lookups)  # parallel L4
                + cfg.energy.memory_access(mem_hops, misses)
                # Replication: L4 hits are pulled into the private region.
                + cfg.energy.migration(snuca_hops, l4_hits)
            )
            stats.hits += private_hits + l4_hits
            stats.misses += misses
            stats.stall_cycles += stalls
            stats.energy = stats.energy + energy
            stats.vc_sizes[vc_id] = float(cfg.llc_bytes)
            stats.vc_hops[vc_id] = snuca_hops
            stats.vc_bypass[vc_id] = False
            stats.vc_accesses[vc_id] = accesses
            stats.vc_misses[vc_id] = misses
            stats.vc_stalls[vc_id] = stalls
        return stats
