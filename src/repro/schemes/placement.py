"""Bank placement: greedy by intensity, refined by capacity trading.

Jigsaw's trading placement (paper Sec 2.4): first a greedy pass places
VCs in bank order of distance from their owner core, most *intense* VC
first (intensity = access rate / capacity: how many accesses are affected
by placing one unit of capacity).  Then a trading pass exchanges capacity
units between VCs whenever the swap reduces total data movement
(Σ intensity × hops).
"""

from __future__ import annotations

import numpy as np

from repro.nuca.geometry import MeshGeometry, Placement

__all__ = ["greedy_placement", "trading_placement"]

#: Capacity granularity for placement/trading, bytes.
PLACE_CHUNK = 64 * 1024


def greedy_placement(
    geometry: MeshGeometry,
    demands: dict[int, tuple[int, float, float]],
) -> dict[int, Placement]:
    """Greedy intensity-ordered placement.

    Args:
        geometry: the bank mesh.
        demands: vc id -> (owner core, size_bytes, accesses).  Intensity
            is accesses / size.

    Returns:
        vc id -> :class:`Placement`.  VCs with zero size get empty
        placements.
    """
    bank_free = np.full(geometry.n_banks, float(geometry.bank_bytes))
    placements: dict[int, Placement] = {vc: Placement() for vc in demands}

    def intensity(item) -> float:
        __, (___, size, accesses) = item
        return accesses / max(size, 1.0)

    for vc, (core, size, __) in sorted(
        demands.items(), key=intensity, reverse=True
    ):
        remaining = size
        for bank in geometry.closest_banks(core):
            if remaining <= 0:
                break
            take = min(remaining, bank_free[bank])
            if take > 0:
                placements[vc].add(int(bank), float(take))
                bank_free[bank] -= take
                remaining -= take
    return placements


def trading_placement(
    geometry: MeshGeometry,
    demands: dict[int, tuple[int, float, float]],
    max_passes: int = 3,
) -> dict[int, Placement]:
    """Greedy placement followed by capacity trading (Sec 2.4).

    Capacity is quantized into :data:`PLACE_CHUNK` units.  A trade moves
    one unit of VC A from bank i to bank j and one unit of VC B from j to
    i; it is accepted when it reduces total data movement:
    ``I_A (d_A(i) - d_A(j)) + I_B (d_B(j) - d_B(i)) > 0``.
    """
    placements = greedy_placement(geometry, demands)
    vcs = [vc for vc, (__, size, ___) in demands.items() if size > 0]
    if len(vcs) < 2:
        return placements
    intensities = {
        vc: demands[vc][2] / max(demands[vc][1], 1.0) for vc in vcs
    }
    dist = {vc: geometry.distances(demands[vc][0]) for vc in vcs}

    for __ in range(max_passes):
        improved = False
        for ai in range(len(vcs)):
            for bi in range(ai + 1, len(vcs)):
                a, b = vcs[ai], vcs[bi]
                pa, pb = placements[a], placements[b]
                if not pa.bank_bytes or not pb.bank_bytes:
                    continue
                # Best single swap between a's banks and b's banks.
                ia, ib = intensities[a], intensities[b]
                da, db = dist[a], dist[b]
                banks_a = list(pa.bank_bytes)
                banks_b = list(pb.bank_bytes)
                best_gain = 1e-9
                best_pair = None
                for i in banks_a:
                    for j in banks_b:
                        gain = ia * (da[i] - da[j]) + ib * (db[j] - db[i])
                        if gain > best_gain:
                            best_gain = gain
                            best_pair = (i, j)
                if best_pair is None:
                    continue
                i, j = best_pair
                unit = min(PLACE_CHUNK, pa.bank_bytes[i], pb.bank_bytes[j])
                if unit <= 0:
                    continue
                _move(pa, i, j, unit)
                _move(pb, j, i, unit)
                improved = True
        if not improved:
            break
    return placements


def _move(placement: Placement, src: int, dst: int, nbytes: float) -> None:
    """Move ``nbytes`` of a placement from bank ``src`` to ``dst``."""
    placement.bank_bytes[src] -= nbytes
    if placement.bank_bytes[src] <= 1e-9:
        del placement.bank_bytes[src]
    placement.bank_bytes[dst] = placement.bank_bytes.get(dst, 0.0) + nbytes
