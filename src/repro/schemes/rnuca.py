"""R-NUCA: reactive NUCA (Hardavellas et al., ISCA 2009).

The other shared-baseline D-NUCA the paper discusses (Appendix A:
"R-NUCA achieves 6.8%/7.2% lower performance than Awasthi on 4-/16-core
mixes").  R-NUCA classifies pages by usage:

- *private* data maps to the accessing core's local cluster of banks
  (rotational interleaving over a fixed-size cluster — no global
  capacity borrowing);
- *shared* data is address-interleaved across all banks (S-NUCA-style).

Its weakness on big-working-set programs is structural: private data is
confined to the fixed local cluster regardless of demand, so capacity
cannot follow the miss curve the way Jigsaw's partitioning does.
"""

from __future__ import annotations

from repro.curves.miss_curve import MissCurve
from repro.nuca.config import SystemConfig
from repro.schemes.base import Scheme, VCAllocation, VCSpec

__all__ = ["RNUCAScheme"]

#: Banks in a core's rotational-interleaving cluster.
CLUSTER_BANKS = 4


class RNUCAScheme(Scheme):
    """Reactive NUCA with a fixed private cluster per core.

    Single-owner VCs are treated as private data (the dominant case for
    the paper's single-threaded suite); VCs flagged unbypassable-shared
    would spread S-NUCA-wide, which this model applies when a VC's spec
    name is ``"shared"``.
    """

    name = "R-NUCA"

    def __init__(
        self,
        config: SystemConfig,
        vcs: list[VCSpec],
        cluster_banks: int = CLUSTER_BANKS,
    ) -> None:
        super().__init__(config, vcs)
        if cluster_banks < 1:
            raise ValueError(f"cluster_banks must be >= 1, got {cluster_banks}")
        self.cluster_banks = cluster_banks

    def decide(self, decide_curves: dict[int, MissCurve]) -> dict[int, VCAllocation]:
        geo = self.config.geometry
        cluster_bytes = self.cluster_banks * geo.bank_bytes
        out: dict[int, VCAllocation] = {}
        for vc_id, spec in self.vcs.items():
            if spec.name == "shared":
                out[vc_id] = VCAllocation(
                    size_bytes=float(self.config.llc_bytes),
                    avg_hops=geo.snuca_avg_hops(spec.owner_core),
                )
            else:
                out[vc_id] = VCAllocation(
                    size_bytes=float(cluster_bytes),
                    avg_hops=geo.reach_avg_hops(spec.owner_core, cluster_bytes),
                )
        return out
