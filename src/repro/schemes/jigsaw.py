"""Jigsaw: partitioned shared-baseline D-NUCA (Beckmann & Sanchez).

Per reconfiguration interval (Sec 2.4):

1. Build each VC's *latency curve* — data-stall CPI vs. size, combining
   the monitored miss curve with the reach curve (average network
   distance of the closest banks covering each size) and the memory miss
   penalty.  With bypassing enabled (Sec 3.2), the size-0 point of a
   single-threaded VC's curve excludes the cache access latency, so the
   partitioner chooses bypassing exactly when it wins.
2. Partition LLC capacity across VCs by convex-hull marginal gain on the
   latency curves (this is why unused far-away banks stay unused — dt in
   Fig 4).
3. Place VCs into banks with the greedy + trading placement.

Whirlpool *is* this scheme given per-pool VCs (it only adds VTB entries
and monitors); see :mod:`repro.core.whirlpool`.
"""

from __future__ import annotations

import numpy as np

from repro.curves.latency import latency_curve
from repro.curves.miss_curve import MissCurve
from repro.nuca.config import SystemConfig
from repro.schemes.base import Scheme, VCAllocation, VCSpec
from repro.schemes.placement import greedy_placement, trading_placement
from repro.curves.partition import partition_cost_curves

__all__ = ["JigsawScheme"]


class JigsawScheme(Scheme):
    """Latency-aware VC partitioning + trading placement.

    Args:
        config: system configuration.
        vcs: the VC layout (one process VC = plain Jigsaw; per-pool VCs =
            Whirlpool).
        bypass: enable VC bypassing (both Jigsaw and Whirlpool are
            evaluated with it; the -NoBypass ablation disables it).
        latency_aware: partition on latency curves (Sec 2.4).  False
            falls back to miss-curve partitioning, the traditional
            UCP-style objective — the Sec-2.4 ablation.
        trading: refine the greedy placement with capacity trading.
            False keeps greedy-only placement — the placement ablation.
    """

    hull_accounting = True  # VCs partition internally (Talus)

    def __init__(
        self,
        config: SystemConfig,
        vcs: list[VCSpec],
        bypass: bool = True,
        latency_aware: bool = True,
        trading: bool = True,
    ) -> None:
        super().__init__(config, vcs)
        self.bypass = bypass
        self.latency_aware = latency_aware
        self.trading = trading
        self.name = "Jigsaw" if bypass else "Jigsaw-NoBypass"
        # Entering bypass mode invalidates the VC in the LLC (Sec 3.2),
        # so the runtime only flips a VC to bypassing after the monitors
        # prefer it for two consecutive epochs.
        self._bypass_streak: dict[int, int] = {vc: 0 for vc in self.vcs}
        # Reach vectors are pure functions of (core, size grid); cache
        # them so interval stepping evaluates each geometry walk once.
        self._reach_cache: dict[tuple[int, int, int], np.ndarray] = {}

    def _reach_vector(self, owner_core: int, curve) -> np.ndarray:
        key = (owner_core, curve.chunk_bytes, curve.n_chunks)
        hops = self._reach_cache.get(key)
        if hops is None:
            reach = self.config.geometry.reach_fn(owner_core)
            hops = np.array([reach(s) for s in curve.sizes_bytes()])
            self._reach_cache[key] = hops
        return hops

    #: Consecutive epochs a VC must prefer bypassing before it switches.
    BYPASS_HYSTERESIS = 2

    def decide(self, decide_curves: dict[int, MissCurve]) -> dict[int, VCAllocation]:
        cfg = self.config
        geo = cfg.geometry
        vc_ids = [vc for vc in self.vcs if vc in decide_curves]
        if not vc_ids:
            return {}
        # 1. Latency (data-stall CPI) curves, on the capacity chunk grid.
        cost = []
        for vc in vc_ids:
            spec = self.vcs[vc]
            curve = decide_curves[vc]
            if self.hull_accounting:
                # Keep the decision consistent with the accounting: the
                # VC achieves hull performance (Talus), so size it on the
                # hull, not the raw curve.
                curve = curve.hull_curve()
            if self.latency_aware:
                model = cfg.latency_for_core(spec.owner_core)
                stalls = latency_curve(
                    curve,
                    geo.reach_fn(spec.owner_core),
                    model,
                    bypassable=self.bypass and spec.bypassable,
                    hops=self._reach_vector(spec.owner_core, curve),
                )
            else:
                # Miss-curve (UCP-style) partitioning: no network term,
                # so far-away banks look free.
                stalls = curve.misses / max(curve.instructions, 1e-12)
            cost.append(np.asarray(stalls))
        # 2. Partition capacity by marginal latency gain.
        total_chunks = cfg.llc_bytes // decide_curves[vc_ids[0]].chunk_bytes
        sizes_chunks, __ = partition_cost_curves(cost, total_chunks)
        chunk = decide_curves[vc_ids[0]].chunk_bytes
        sizes = {vc: s * chunk for vc, s in zip(vc_ids, sizes_chunks)}
        # 3. Place VCs in banks (greedy by intensity + trading).
        demands = {
            vc: (
                self.vcs[vc].owner_core,
                float(sizes[vc]),
                float(decide_curves[vc].accesses),
            )
            for vc in vc_ids
            if sizes[vc] > 0
        }
        if self.trading:
            placements = trading_placement(geo, demands)
        else:
            placements = greedy_placement(geo, demands)
        out: dict[int, VCAllocation] = {}
        for vc in vc_ids:
            spec = self.vcs[vc]
            size = float(sizes[vc])
            if size <= 0:
                wants_bypass = self.bypass and spec.bypassable
                if wants_bypass:
                    self._bypass_streak[vc] += 1
                bypassed = (
                    wants_bypass
                    and self._bypass_streak[vc] >= self.BYPASS_HYSTERESIS
                )
                out[vc] = VCAllocation(
                    size_bytes=0.0,
                    # A non-bypassed empty VC still checks its closest bank.
                    avg_hops=0.0 if bypassed else geo.reach_avg_hops(
                        spec.owner_core, 0
                    ),
                    bypass=bypassed,
                )
            else:
                self._bypass_streak[vc] = 0
                placement = placements[vc]
                out[vc] = VCAllocation(
                    size_bytes=size,
                    avg_hops=placement.avg_hops(geo.distances(spec.owner_core)),
                    bypass=False,
                    placement=placement,
                )
        return out
