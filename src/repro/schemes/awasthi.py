"""Awasthi et al.: shared-baseline page-migration D-NUCA (HPCA 2009).

The OS starts each program with a small allocation (its four closest
banks) and periodically migrates the most heavily accessed pages toward
the core, growing or shrinking the allocated region by one bank at a time
based on observed benefit — a *local*, incremental heuristic.

Why it underperforms Whirlpool (Sec 5 / Fig 9): per-page counters see
only point samples of the miss curve, so the hill climber compares the
current allocation against one-bank steps.  On working sets with
cliff-shaped curves the single-step gain is ~zero until several banks are
added at once, so the scheme gets stuck at a small allocation and incurs
more misses.  Page migrations also cost data movement every epoch.
"""

from __future__ import annotations

from repro.curves.miss_curve import MissCurve
from repro.nuca.config import SystemConfig
from repro.schemes.base import IntervalStats, Scheme, VCAllocation, VCSpec

__all__ = ["AwasthiScheme"]

#: Initial allocation: the four closest banks (paper Sec 4.5).
INITIAL_BANKS = 4

#: Relative single-step improvement needed to grow/shrink (hysteresis).
STEP_THRESHOLD = 0.02

#: Growing by one bank also requires the *per-page* benefit to be
#: visible: page counters only justify migrating pages whose individual
#: miss reduction stands out, so diffuse gains spread over a whole bank
#: of pages leave the allocation stuck (the Fig 9 local optimum).
MISS_STEP_FRACTION = 0.06

#: Pages migrated per epoch (per program), and lines per page.
PAGES_PER_EPOCH = 256
LINES_PER_PAGE = 4096 // 64


class AwasthiScheme(Scheme):
    """Incremental page-placement D-NUCA.

    Args:
        config: system configuration.
        vcs: VC layout (one per program).
        alpha_a: relative AMAT improvement required to accept a grow or
            shrink step (the scheme's cost-benefit threshold; the paper
            sweeps the implementation parameters αA, αB to find the
            best-performing values — see ``benchmarks/test_ext_awasthi_
            sweep.py``).
        alpha_b: per-page visibility threshold — the fraction of current
            misses a one-bank step must remove before per-page counters
            justify migrating (see :data:`MISS_STEP_FRACTION`).
    """

    name = "Awasthi"

    def __init__(
        self,
        config: SystemConfig,
        vcs: list[VCSpec],
        alpha_a: float = STEP_THRESHOLD,
        alpha_b: float = MISS_STEP_FRACTION,
    ) -> None:
        super().__init__(config, vcs)
        if not 0 <= alpha_a < 1 or not 0 <= alpha_b < 1:
            raise ValueError("alpha_a and alpha_b must be in [0, 1)")
        self.alpha_a = alpha_a
        self.alpha_b = alpha_b
        self._banks: dict[int, int] = {vc: INITIAL_BANKS for vc in self.vcs}

    def _amat(self, curve: MissCurve, core: int, n_banks: int) -> float:
        """Average stall cycles per instruction at an allocation size."""
        cfg = self.config
        size = n_banks * cfg.geometry.bank_bytes
        hops = cfg.geometry.reach_avg_hops(core, size)
        mem_hops = cfg.geometry.mem_hops(core)
        penalty = cfg.latency.mem_latency + 2 * cfg.latency.hop_latency * mem_hops
        misses = min(curve.misses_at(size), curve.accesses)
        access_lat = cfg.latency.bank_latency + 2 * cfg.latency.hop_latency * hops
        return (curve.accesses * access_lat + misses * penalty) / max(
            curve.instructions, 1e-9
        )

    def decide(self, decide_curves: dict[int, MissCurve]) -> dict[int, VCAllocation]:
        cfg = self.config
        out: dict[int, VCAllocation] = {}
        max_banks = cfg.geometry.n_banks
        for vc_id, spec in self.vcs.items():
            curve = decide_curves.get(vc_id)
            n = self._banks[vc_id]
            if curve is not None and curve.accesses > 0:
                cur = self._amat(curve, spec.owner_core, n)
                bank = cfg.geometry.bank_bytes
                if n < max_banks:
                    grow = self._amat(curve, spec.owner_core, n + 1)
                    cur_misses = max(curve.misses_at(n * bank), 1e-9)
                    step_misses = cur_misses - curve.misses_at((n + 1) * bank)
                    per_page_visible = (
                        step_misses > self.alpha_b * cur_misses
                    )
                    if grow < cur * (1 - self.alpha_a) and per_page_visible:
                        n += 1
                if n > 1:
                    shrink = self._amat(curve, spec.owner_core, n - 1)
                    if shrink < cur * (1 - self.alpha_a):
                        n -= 1
                self._banks[vc_id] = n
            size = n * cfg.geometry.bank_bytes
            out[vc_id] = VCAllocation(
                size_bytes=float(size),
                avg_hops=cfg.geometry.reach_avg_hops(spec.owner_core, size),
            )
        return out

    def account(
        self,
        allocations: dict[int, VCAllocation],
        actual_curves: dict[int, MissCurve],
        instructions: float,
    ) -> IntervalStats:
        stats = super().account(allocations, actual_curves, instructions)
        # Page-migration churn: moving hot pages toward the core each
        # epoch costs one line transfer per line of each moved page.
        cfg = self.config
        for vc_id, curve in actual_curves.items():
            if curve.accesses <= 0:
                continue
            hops = allocations[vc_id].avg_hops + 1.0
            moved_lines = PAGES_PER_EPOCH * LINES_PER_PAGE
            stats.energy = stats.energy + cfg.energy.migration(hops, moved_lines)
        return stats
