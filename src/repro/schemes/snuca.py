"""S-NUCA: addresses hashed evenly across all banks (Sec 2.1, Fig 3).

The whole LLC acts as one shared cache at the average bank distance; no
placement decisions are made.  Replacement is LRU or DRRIP:

- LRU misses come straight from the stack-distance curve.
- DRRIP is modeled as the convex hull of the LRU curve: set-dueling
  bimodal insertion effectively protects the most valuable fraction of
  the access stream, removing the cliffs LRU suffers on thrashing
  patterns (the same argument Talus makes for partitioned LRU).  The
  event-driven simulator in :mod:`repro.replacement` validates this
  approximation in the integration tests.
"""

from __future__ import annotations

from repro.curves.combine import shared_cache_misses
from repro.curves.miss_curve import MissCurve
from repro.nuca.config import SystemConfig
from repro.schemes.base import IntervalStats, Scheme, VCAllocation, VCSpec

__all__ = ["SNUCAScheme"]


class SNUCAScheme(Scheme):
    """Static NUCA with LRU or DRRIP replacement."""

    def __init__(
        self,
        config: SystemConfig,
        vcs: list[VCSpec],
        replacement: str = "lru",
    ) -> None:
        super().__init__(config, vcs)
        if replacement not in ("lru", "drrip"):
            raise ValueError(f"unknown replacement {replacement!r}")
        self.replacement = replacement
        self.name = f"S-NUCA/{replacement.upper()}"

    def decide(self, decide_curves: dict[int, MissCurve]) -> dict[int, VCAllocation]:
        # No decisions: everything shares the whole cache, spread evenly.
        out = {}
        for vc_id in self.vcs:
            spec = self.vcs[vc_id]
            out[vc_id] = VCAllocation(
                size_bytes=float(self.config.llc_bytes),
                avg_hops=self.config.geometry.snuca_avg_hops(spec.owner_core),
                bypass=False,
            )
        return out

    def account(
        self,
        allocations: dict[int, VCAllocation],
        actual_curves: dict[int, MissCurve],
        instructions: float,
    ) -> IntervalStats:
        """Shared-cache accounting.

        All VCs (and in mixes, all programs) share one LRU cache, so
        misses come from the *combined* curve (Appendix B model), with
        each VC's share of misses proportional to its flow at the shared
        operating point.
        """
        vc_ids = [vc for vc, c in actual_curves.items() if c.accesses > 0]
        if not vc_ids:
            return IntervalStats(instructions=instructions)
        inputs = [actual_curves[vc] for vc in vc_ids]
        if self.replacement == "drrip":
            inputs = [c.hull_curve() for c in inputs]
        per_vc_misses = dict(
            zip(vc_ids, shared_cache_misses(inputs, self.config.llc_bytes))
        )
        stats = IntervalStats(instructions=instructions)
        cfg = self.config
        for vc_id, curve in actual_curves.items():
            spec = self.vcs[vc_id]
            alloc = allocations[vc_id]
            accesses = curve.accesses
            misses = min(per_vc_misses.get(vc_id, 0.0), accesses)
            hits = accesses - misses
            mem_hops = cfg.geometry.mem_hops(spec.owner_core)
            penalty = cfg.latency.mem_latency + 2 * cfg.latency.hop_latency * mem_hops
            access_lat = (
                cfg.latency.bank_latency
                + 2 * cfg.latency.hop_latency * alloc.avg_hops
            )
            stalls = accesses * access_lat + misses * penalty
            stats.hits += hits
            stats.misses += misses
            stats.stall_cycles += stalls
            stats.energy = (
                stats.energy
                + cfg.energy.llc_access(alloc.avg_hops, accesses)
                + cfg.energy.memory_access(mem_hops, misses)
            )
            stats.vc_sizes[vc_id] = alloc.size_bytes
            stats.vc_hops[vc_id] = alloc.avg_hops
            stats.vc_bypass[vc_id] = False
            stats.vc_accesses[vc_id] = accesses
            stats.vc_misses[vc_id] = misses
            stats.vc_stalls[vc_id] = stalls
        return stats
