"""S-NUCA: addresses hashed evenly across all banks (Sec 2.1, Fig 3).

The whole LLC acts as one shared cache at the average bank distance; no
placement decisions are made.  Replacement is LRU or DRRIP:

- LRU misses come straight from the stack-distance curve.
- DRRIP is modeled as the convex hull of the LRU curve: set-dueling
  bimodal insertion effectively protects the most valuable fraction of
  the access stream, removing the cliffs LRU suffers on thrashing
  patterns (the same argument Talus makes for partitioned LRU).  The
  event-driven simulator in :mod:`repro.replacement` validates this
  approximation in the integration tests.
"""

from __future__ import annotations

import numpy as np

from repro.curves.combine import advance_flow_heads, shared_cache_misses
from repro.curves.miss_curve import MissCurve, prime_hull_caches
from repro.nuca.config import SystemConfig
from repro.nuca.energy import EnergyBreakdown
from repro.schemes.base import (
    IntervalStats,
    Scheme,
    VCAllocation,
    VCSpec,
    _interp_rows,
)

__all__ = ["SNUCAScheme"]


class SNUCAScheme(Scheme):
    """Static NUCA with LRU or DRRIP replacement."""

    def __init__(
        self,
        config: SystemConfig,
        vcs: list[VCSpec],
        replacement: str = "lru",
    ) -> None:
        super().__init__(config, vcs)
        if replacement not in ("lru", "drrip"):
            raise ValueError(f"unknown replacement {replacement!r}")
        self.replacement = replacement
        self.name = f"S-NUCA/{replacement.upper()}"

    def decide(self, decide_curves: dict[int, MissCurve]) -> dict[int, VCAllocation]:
        # No decisions: everything shares the whole cache, spread evenly.
        out = {}
        for vc_id in self.vcs:
            spec = self.vcs[vc_id]
            out[vc_id] = VCAllocation(
                size_bytes=float(self.config.llc_bytes),
                avg_hops=self.config.geometry.snuca_avg_hops(spec.owner_core),
                bypass=False,
            )
        return out

    def account(
        self,
        allocations: dict[int, VCAllocation],
        actual_curves: dict[int, MissCurve],
        instructions: float,
    ) -> IntervalStats:
        """Shared-cache accounting.

        All VCs (and in mixes, all programs) share one LRU cache, so
        misses come from the *combined* curve (Appendix B model), with
        each VC's share of misses proportional to its flow at the shared
        operating point.
        """
        vc_ids = [vc for vc, c in actual_curves.items() if c.accesses > 0]
        if not vc_ids:
            return IntervalStats(instructions=instructions)
        inputs = [actual_curves[vc] for vc in vc_ids]
        if self.replacement == "drrip":
            inputs = [c.hull_curve() for c in inputs]
        per_vc_misses = dict(
            zip(vc_ids, shared_cache_misses(inputs, self.config.llc_bytes))
        )
        stats = IntervalStats(instructions=instructions)
        cfg = self.config
        for vc_id, curve in actual_curves.items():
            spec = self.vcs[vc_id]
            alloc = allocations[vc_id]
            accesses = curve.accesses
            misses = min(per_vc_misses.get(vc_id, 0.0), accesses)
            hits = accesses - misses
            mem_hops = cfg.geometry.mem_hops(spec.owner_core)
            penalty = cfg.latency.mem_latency + 2 * cfg.latency.hop_latency * mem_hops
            access_lat = (
                cfg.latency.bank_latency
                + 2 * cfg.latency.hop_latency * alloc.avg_hops
            )
            stalls = accesses * access_lat + misses * penalty
            stats.hits += hits
            stats.misses += misses
            stats.stall_cycles += stalls
            stats.energy = (
                stats.energy
                + cfg.energy.llc_access(alloc.avg_hops, accesses)
                + cfg.energy.memory_access(mem_hops, misses)
            )
            stats.vc_sizes[vc_id] = alloc.size_bytes
            stats.vc_hops[vc_id] = alloc.avg_hops
            stats.vc_bypass[vc_id] = False
            stats.vc_accesses[vc_id] = accesses
            stats.vc_misses[vc_id] = misses
            stats.vc_stalls[vc_id] = stalls
        return stats

    def account_batch(
        self,
        allocations: list[dict[int, VCAllocation]],
        actual_series: dict[int, list[MissCurve]],
        instructions: float,
    ) -> list[IntervalStats]:
        """Shared-cache accounting, vectorized across intervals.

        The K-way flow iteration of
        :func:`~repro.curves.combine.shared_cache_misses` advances every
        interval's read heads together as ``(vc, interval)`` arrays; VCs
        with no accesses in an interval contribute exactly ``0.0`` flow,
        which leaves the float sums bit-identical to the serial per-
        interval subsets.  Ragged grids fall back to the serial loop.
        """
        cfg = self.config
        n_intervals = len(allocations)
        stats_list = [
            IntervalStats(instructions=instructions) for __ in range(n_intervals)
        ]
        vc_order = list(actual_series)
        curves_all = [c for vc in vc_order for c in actual_series[vc]]
        if not curves_all or n_intervals == 0:
            return stats_list
        chunk = curves_all[0].chunk_bytes
        n = curves_all[0].n_chunks
        if any(c.chunk_bytes != chunk or c.n_chunks != n for c in curves_all):
            return [
                self.account(
                    allocations[t],
                    {vc: s[t] for vc, s in actual_series.items()},
                    instructions,
                )
                for t in range(n_intervals)
            ]
        acc = np.array(
            [[c.accesses for c in actual_series[vc]] for vc in vc_order],
            dtype=np.float64,
        )
        included = acc > 0.0
        any_included = included.any(axis=0)
        if self.replacement == "drrip":
            prime_hull_caches(curves_all)
            rates = np.stack(
                [
                    [
                        c.convex_hull() / max(c.instructions, 1e-12)
                        for c in actual_series[vc]
                    ]
                    for vc in vc_order
                ]
            )
        else:
            rates = np.stack(
                [
                    [
                        c.misses / max(c.instructions, 1e-12)
                        for c in actual_series[vc]
                    ]
                    for vc in vc_order
                ]
            )
        instr = np.array(
            [[c.instructions for c in actual_series[vc]] for vc in vc_order],
            dtype=np.float64,
        )
        n_vcs = len(vc_order)
        # One (vc × interval)-flat matrix per flow step: every read head
        # of the whole run advances in a single gather, inside the shared
        # K-way kernel.
        rates_flat = rates.reshape(n_vcs * n_intervals, -1)
        heads = advance_flow_heads(
            rates_flat, included, int(cfg.llc_bytes // chunk)
        )
        per_vc = _interp_rows(rates_flat, heads).reshape(n_vcs, n_intervals)
        per_vc = per_vc * instr
        misses_all = np.where(included, np.minimum(per_vc, acc), 0.0)
        e = cfg.energy
        for v, vc_id in enumerate(vc_order):
            spec = self.vcs[vc_id]
            mem_hops = cfg.geometry.mem_hops(spec.owner_core)
            penalty = (
                cfg.latency.mem_latency + 2 * cfg.latency.hop_latency * mem_hops
            )
            hops = np.array(
                [allocations[t][vc_id].avg_hops for t in range(n_intervals)],
                dtype=np.float64,
            )
            access_lat = (
                cfg.latency.bank_latency + 2 * cfg.latency.hop_latency * hops
            )
            misses_v = misses_all[v]
            hits_v = acc[v] - misses_v
            stalls_v = acc[v] * access_lat + misses_v * penalty
            llc_network = 2.0 * hops * e.hop_nj * acc[v]
            llc_bank = e.bank_nj * acc[v]
            mem_network_scale = 2.0 * mem_hops * e.hop_nj
            for t in range(n_intervals):
                if not any_included[t]:
                    continue
                stats = stats_list[t]
                alloc = allocations[t][vc_id]
                stats.hits += hits_v[t]
                stats.misses += misses_v[t]
                stats.stall_cycles += stalls_v[t]
                stats.energy = (
                    stats.energy
                    + EnergyBreakdown(network=llc_network[t], bank=llc_bank[t])
                    + EnergyBreakdown(
                        network=mem_network_scale * misses_v[t],
                        memory=e.mem_nj * misses_v[t],
                    )
                )
                stats.vc_sizes[vc_id] = alloc.size_bytes
                stats.vc_hops[vc_id] = alloc.avg_hops
                stats.vc_bypass[vc_id] = False
                stats.vc_accesses[vc_id] = acc[v][t]
                stats.vc_misses[vc_id] = misses_v[t]
                stats.vc_stalls[vc_id] = stalls_v[t]
        return stats_list
