"""Cache-management schemes (the paper's comparison set, Appendix A).

- :mod:`repro.schemes.snuca` — S-NUCA with LRU or DRRIP replacement.
- :mod:`repro.schemes.idealspd` — IdealSPD, the idealized private-baseline
  D-NUCA upper bound.
- :mod:`repro.schemes.awasthi` — Awasthi et al., shared-baseline
  page-migration D-NUCA.
- :mod:`repro.schemes.jigsaw` — Jigsaw, the partitioned shared-baseline
  D-NUCA Whirlpool builds on (Whirlpool itself lives in
  :mod:`repro.core`: it is Jigsaw driven by a pool classifier).
- :mod:`repro.schemes.placement` — greedy + trading bank placement.
- :mod:`repro.schemes.classifiers` — region -> VC classification.

All schemes share the :class:`repro.schemes.base.Scheme` interface: per
reconfiguration interval they receive monitor miss curves (from the
previous interval, like real hardware), decide an allocation, and account
time/energy against the interval's actual curves.
"""

from repro.schemes.awasthi import AwasthiScheme
from repro.schemes.base import (
    IntervalStats,
    Scheme,
    SchemeResult,
    VCAllocation,
    VCSpec,
)
from repro.schemes.classifiers import (
    Classifier,
    ManualPoolClassifier,
    PerRegionClassifier,
    SingleVCClassifier,
)
from repro.schemes.idealspd import IdealSPDScheme
from repro.schemes.jigsaw import JigsawScheme
from repro.schemes.placement import greedy_placement, trading_placement
from repro.schemes.rnuca import RNUCAScheme
from repro.schemes.snuca import SNUCAScheme

__all__ = [
    "AwasthiScheme",
    "Classifier",
    "IdealSPDScheme",
    "IntervalStats",
    "JigsawScheme",
    "ManualPoolClassifier",
    "PerRegionClassifier",
    "RNUCAScheme",
    "Scheme",
    "SchemeResult",
    "SNUCAScheme",
    "SingleVCClassifier",
    "VCAllocation",
    "VCSpec",
    "greedy_placement",
    "trading_placement",
]
