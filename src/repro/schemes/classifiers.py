"""Region -> VC classification strategies.

A classifier turns a workload's fine-grained regions (allocation
callpoints) into the VC layout a scheme manages:

- :class:`SingleVCClassifier` — everything in one process VC.  This is
  what Jigsaw (and the monolithic baselines) see: they are "blind to
  program semantics" (Sec 2.1).
- :class:`ManualPoolClassifier` — the Table-2 hand classification.
- :class:`PerRegionClassifier` — one VC per callpoint (used by WhirlTool
  internals and diagnostics; real hardware cannot afford this).

WhirlTool's profile-driven classifier lives in
:mod:`repro.core.whirltool.runtime`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.schemes.base import VCSpec
from repro.workloads.trace import Workload

__all__ = [
    "Classifier",
    "SingleVCClassifier",
    "ManualPoolClassifier",
    "PerRegionClassifier",
]


class Classifier(ABC):
    """Maps a workload's regions onto VCs."""

    #: Display name.
    name: str = "classifier"

    @abstractmethod
    def classify(
        self, workload: Workload, owner_core: int = 0
    ) -> tuple[dict[int, int], list[VCSpec]]:
        """Return ``(region id -> vc id, VC specs)``."""


class SingleVCClassifier(Classifier):
    """All regions share one process-level VC."""

    name = "single-vc"

    def classify(
        self, workload: Workload, owner_core: int = 0
    ) -> tuple[dict[int, int], list[VCSpec]]:
        vc = VCSpec(vc_id=0, name="process", owner_core=owner_core)
        mapping = {rid: 0 for rid in workload.region_names}
        return mapping, [vc]


class ManualPoolClassifier(Classifier):
    """The Table-2 manual classification (one VC per hand-chosen pool).

    Regions the programmer did not classify fall into the process VC.
    Raises if the workload was never ported (no manual pool info).
    """

    name = "manual"

    def classify(
        self, workload: Workload, owner_core: int = 0
    ) -> tuple[dict[int, int], list[VCSpec]]:
        if not workload.manual_pools:
            raise ValueError(
                f"{workload.name} has no manual classification (Table 2)"
            )
        pool_names = sorted(set(workload.manual_pools.values()))
        vc_of_pool = {p: i + 1 for i, p in enumerate(pool_names)}
        specs = [VCSpec(vc_id=0, name="process", owner_core=owner_core)]
        specs += [
            VCSpec(vc_id=vc_of_pool[p], name=p, owner_core=owner_core)
            for p in pool_names
        ]
        mapping = {}
        for rid in workload.region_names:
            pool = workload.manual_pools.get(rid)
            mapping[rid] = vc_of_pool[pool] if pool is not None else 0
        used = set(mapping.values())
        specs = [s for s in specs if s.vc_id in used]
        return mapping, specs


class PerRegionClassifier(Classifier):
    """One VC per region (upper bound on classification granularity)."""

    name = "per-region"

    def classify(
        self, workload: Workload, owner_core: int = 0
    ) -> tuple[dict[int, int], list[VCSpec]]:
        mapping = {}
        specs = []
        for i, (rid, rname) in enumerate(sorted(workload.region_names.items())):
            mapping[rid] = i
            specs.append(VCSpec(vc_id=i, name=rname, owner_core=owner_core))
        return mapping, specs
