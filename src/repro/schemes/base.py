"""Scheme interface and time/energy accounting.

A scheme is driven interval by interval (the paper reconfigures every
25 ms; see ``SystemConfig.reconfig_instructions`` for the scaled-down
stand-in).  Each step receives:

- ``decide_curves`` — per-VC miss curves monitored over the *previous*
  interval (what real utility monitors provide), and
- ``actual_curves`` — the current interval's curves, used for accounting.

The default accounting follows Jigsaw's additive latency model (Sec 2.4):
data stalls = accesses × (bank + network RTT) + misses × miss penalty,
and per-event data-movement energy from :class:`repro.nuca.EnergyModel`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.curves.miss_curve import MissCurve
from repro.nuca.config import SystemConfig
from repro.nuca.energy import EnergyBreakdown
from repro.nuca.geometry import Placement

__all__ = ["VCSpec", "VCAllocation", "IntervalStats", "SchemeResult", "Scheme"]


@dataclass(frozen=True)
class VCSpec:
    """Static description of one virtual cache.

    Attributes:
        vc_id: unique id.
        name: human-readable name (pool name, or "process").
        owner_core: the core whose accesses dominate this VC.
        bypassable: True if the VC may be bypassed (single-thread rule,
            Sec 3.2).
    """

    vc_id: int
    name: str
    owner_core: int = 0
    bypassable: bool = True


@dataclass
class VCAllocation:
    """One interval's allocation decision for one VC.

    Attributes:
        size_bytes: LLC capacity granted.
        avg_hops: average one-way hops from the owner core to the VC's
            banks (from the placement).
        bypass: True if the VC is bypassed this interval (implies
            ``size_bytes == 0``).
        placement: per-bank capacity (None for schemes that spread data,
            e.g. S-NUCA).
    """

    size_bytes: float
    avg_hops: float
    bypass: bool = False
    placement: Placement | None = None


@dataclass
class IntervalStats:
    """Measured outcome of one interval.

    ``stall_cycles`` are data-stall cycles attributable to LLC + memory;
    cycles = instructions × base CPI + stalls (single-core programs).
    """

    instructions: float
    hits: float = 0.0
    misses: float = 0.0
    bypasses: float = 0.0
    stall_cycles: float = 0.0
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    vc_sizes: dict[int, float] = field(default_factory=dict)
    vc_hops: dict[int, float] = field(default_factory=dict)
    vc_bypass: dict[int, bool] = field(default_factory=dict)
    vc_accesses: dict[int, float] = field(default_factory=dict)
    vc_misses: dict[int, float] = field(default_factory=dict)
    vc_stalls: dict[int, float] = field(default_factory=dict)

    @property
    def accesses(self) -> float:
        """LLC-level accesses (hits + misses + bypasses)."""
        return self.hits + self.misses + self.bypasses


@dataclass
class SchemeResult:
    """Accumulated simulation result for one workload under one scheme."""

    name: str
    base_cpi: float
    instructions: float = 0.0
    hits: float = 0.0
    misses: float = 0.0
    bypasses: float = 0.0
    stall_cycles: float = 0.0
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    history: list[IntervalStats] = field(default_factory=list)

    def add(self, stats: IntervalStats) -> None:
        """Fold one interval into the totals."""
        self.instructions += stats.instructions
        self.hits += stats.hits
        self.misses += stats.misses
        self.bypasses += stats.bypasses
        self.stall_cycles += stats.stall_cycles
        self.energy = self.energy + stats.energy
        self.history.append(stats)

    @property
    def cycles(self) -> float:
        """Execution time in cycles."""
        return self.instructions * self.base_cpi + self.stall_cycles

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        return self.instructions / max(self.cycles, 1e-9)

    @property
    def data_stall_cpi(self) -> float:
        """Cycles per instruction stalled on data (Fig 8b's unit)."""
        return self.stall_cycles / max(self.instructions, 1e-9)

    def apki_breakdown(self) -> dict[str, float]:
        """LLC accesses per kilo-instruction, split as in Fig 10 (right)."""
        k = 1000.0 / max(self.instructions, 1e-9)
        return {
            "hits": self.hits * k,
            "misses": self.misses * k,
            "bypasses": self.bypasses * k,
        }


class Scheme(ABC):
    """Interval-driven cache management scheme."""

    #: Display name (overridden per scheme).
    name: str = "scheme"

    #: If True, misses are accounted on the convex hull of each VC's miss
    #: curve: the scheme partitions within VCs (Talus), so it actually
    #: achieves hull performance.  Jigsaw/Whirlpool set this (the paper
    #: assumes convex per-VC performance, Sec 4.2); page-grained or plain
    #: LRU schemes do not.
    hull_accounting: bool = False

    def __init__(self, config: SystemConfig, vcs: list[VCSpec]) -> None:
        self.config = config
        self.vcs = {vc.vc_id: vc for vc in vcs}

    @abstractmethod
    def decide(
        self, decide_curves: dict[int, MissCurve]
    ) -> dict[int, VCAllocation]:
        """Choose this interval's allocation from monitored curves."""

    def step(
        self,
        decide_curves: dict[int, MissCurve],
        actual_curves: dict[int, MissCurve],
        instructions: float,
    ) -> IntervalStats:
        """Decide from monitor data, then account the actual interval."""
        allocations = self.decide(decide_curves)
        return self.account(allocations, actual_curves, instructions)

    # ------------------------------------------------------------------
    # Default accounting (shared-baseline schemes)
    # ------------------------------------------------------------------
    def account(
        self,
        allocations: dict[int, VCAllocation],
        actual_curves: dict[int, MissCurve],
        instructions: float,
    ) -> IntervalStats:
        """Jigsaw-model accounting of one interval."""
        cfg = self.config
        stats = IntervalStats(instructions=instructions)
        for vc_id, curve in actual_curves.items():
            alloc = allocations.get(vc_id)
            if alloc is None:
                alloc = VCAllocation(size_bytes=0.0, avg_hops=0.0, bypass=False)
            spec = self.vcs[vc_id]
            mem_hops = cfg.geometry.mem_hops(spec.owner_core)
            accesses = curve.accesses
            stats.vc_sizes[vc_id] = alloc.size_bytes
            stats.vc_hops[vc_id] = alloc.avg_hops
            stats.vc_bypass[vc_id] = alloc.bypass
            stats.vc_accesses[vc_id] = accesses
            penalty = cfg.latency.mem_latency + 2 * cfg.latency.hop_latency * mem_hops
            if alloc.bypass:
                stats.bypasses += accesses
                stats.vc_misses[vc_id] = accesses
                stalls = accesses * penalty
                stats.energy = stats.energy + cfg.energy.memory_access(
                    mem_hops, accesses
                )
            else:
                model = curve.hull_curve() if self.hull_accounting else curve
                misses = min(model.misses_at(alloc.size_bytes), accesses)
                hits = accesses - misses
                stats.hits += hits
                stats.misses += misses
                stats.vc_misses[vc_id] = misses
                access_lat = (
                    cfg.latency.bank_latency
                    + 2 * cfg.latency.hop_latency * alloc.avg_hops
                )
                stalls = accesses * access_lat + misses * penalty
                stats.energy = (
                    stats.energy
                    + cfg.energy.llc_access(alloc.avg_hops, accesses)
                    + cfg.energy.memory_access(mem_hops, misses)
                )
            stats.vc_stalls[vc_id] = stalls
            stats.stall_cycles += stalls
        return stats
