"""Scheme interface and time/energy accounting.

A scheme is driven interval by interval (the paper reconfigures every
25 ms; see ``SystemConfig.reconfig_instructions`` for the scaled-down
stand-in).  Each step receives:

- ``decide_curves`` — per-VC miss curves monitored over the *previous*
  interval (what real utility monitors provide), and
- ``actual_curves`` — the current interval's curves, used for accounting.

The default accounting follows Jigsaw's additive latency model (Sec 2.4):
data stalls = accesses × (bank + network RTT) + misses × miss penalty,
and per-event data-movement energy from :class:`repro.nuca.EnergyModel`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.curves.miss_curve import MissCurve, interp_rows, prime_hull_caches
from repro.nuca.config import SystemConfig
from repro.nuca.energy import EnergyBreakdown
from repro.nuca.geometry import Placement

__all__ = ["VCSpec", "VCAllocation", "IntervalStats", "SchemeResult", "Scheme"]


@dataclass(frozen=True)
class VCSpec:
    """Static description of one virtual cache.

    Attributes:
        vc_id: unique id.
        name: human-readable name (pool name, or "process").
        owner_core: the core whose accesses dominate this VC.
        bypassable: True if the VC may be bypassed (single-thread rule,
            Sec 3.2).
    """

    vc_id: int
    name: str
    owner_core: int = 0
    bypassable: bool = True


@dataclass
class VCAllocation:
    """One interval's allocation decision for one VC.

    Attributes:
        size_bytes: LLC capacity granted.
        avg_hops: average one-way hops from the owner core to the VC's
            banks (from the placement).
        bypass: True if the VC is bypassed this interval (implies
            ``size_bytes == 0``).
        placement: per-bank capacity (None for schemes that spread data,
            e.g. S-NUCA).
    """

    size_bytes: float
    avg_hops: float
    bypass: bool = False
    placement: Placement | None = None


@dataclass
class IntervalStats:
    """Measured outcome of one interval.

    ``stall_cycles`` are data-stall cycles attributable to LLC + memory;
    cycles = instructions × base CPI + stalls (single-core programs).
    """

    instructions: float
    hits: float = 0.0
    misses: float = 0.0
    bypasses: float = 0.0
    stall_cycles: float = 0.0
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    vc_sizes: dict[int, float] = field(default_factory=dict)
    vc_hops: dict[int, float] = field(default_factory=dict)
    vc_bypass: dict[int, bool] = field(default_factory=dict)
    vc_accesses: dict[int, float] = field(default_factory=dict)
    vc_misses: dict[int, float] = field(default_factory=dict)
    vc_stalls: dict[int, float] = field(default_factory=dict)

    @property
    def accesses(self) -> float:
        """LLC-level accesses (hits + misses + bypasses)."""
        return self.hits + self.misses + self.bypasses


@dataclass
class SchemeResult:
    """Accumulated simulation result for one workload under one scheme."""

    name: str
    base_cpi: float
    instructions: float = 0.0
    hits: float = 0.0
    misses: float = 0.0
    bypasses: float = 0.0
    stall_cycles: float = 0.0
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    history: list[IntervalStats] = field(default_factory=list)

    def add(self, stats: IntervalStats) -> None:
        """Fold one interval into the totals."""
        self.instructions += stats.instructions
        self.hits += stats.hits
        self.misses += stats.misses
        self.bypasses += stats.bypasses
        self.stall_cycles += stats.stall_cycles
        self.energy = self.energy + stats.energy
        self.history.append(stats)

    @property
    def cycles(self) -> float:
        """Execution time in cycles."""
        return self.instructions * self.base_cpi + self.stall_cycles

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        return self.instructions / max(self.cycles, 1e-9)

    @property
    def data_stall_cpi(self) -> float:
        """Cycles per instruction stalled on data (Fig 8b's unit)."""
        return self.stall_cycles / max(self.instructions, 1e-9)

    def apki_breakdown(self) -> dict[str, float]:
        """LLC accesses per kilo-instruction, split as in Fig 10 (right)."""
        k = 1000.0 / max(self.instructions, 1e-9)
        return {
            "hits": self.hits * k,
            "misses": self.misses * k,
            "bypasses": self.bypasses * k,
        }


# Row-wise linear interpolation now lives with the curve containers so
# the batched combine/clustering engines can share it; re-exported here
# for the scheme-layer call sites.
_interp_rows = interp_rows


def _batched_misses_at(
    series: list[MissCurve], sizes: np.ndarray, use_hull: bool
) -> np.ndarray:
    """``misses_at(sizes[t])`` across a curve series, one gather per run.

    Mirrors :meth:`MissCurve.misses_at` (and the ``hull_curve()`` step
    when ``use_hull``) expression-for-expression so the values are
    bit-identical to the serial path; ragged grids fall back to the
    scalar calls.
    """
    if not series:
        return np.empty(0, dtype=np.float64)
    first = series[0]
    chunk = first.chunk_bytes
    n = first.n_chunks
    if any(c.chunk_bytes != chunk or c.n_chunks != n for c in series):
        models = [c.hull_curve() if use_hull else c for c in series]
        return np.array(
            [m.misses_at(float(s)) for m, s in zip(models, sizes)],
            dtype=np.float64,
        )
    if use_hull:
        prime_hull_caches(series)
        matrix = np.stack([c.convex_hull() for c in series])
    else:
        matrix = np.stack([c.misses for c in series])
    return _interp_rows(matrix, sizes / chunk)


class Scheme(ABC):
    """Interval-driven cache management scheme."""

    #: Display name (overridden per scheme).
    name: str = "scheme"

    #: If True, misses are accounted on the convex hull of each VC's miss
    #: curve: the scheme partitions within VCs (Talus), so it actually
    #: achieves hull performance.  Jigsaw/Whirlpool set this (the paper
    #: assumes convex per-VC performance, Sec 4.2); page-grained or plain
    #: LRU schemes do not.
    hull_accounting: bool = False

    def __init__(self, config: SystemConfig, vcs: list[VCSpec]) -> None:
        self.config = config
        self.vcs = {vc.vc_id: vc for vc in vcs}

    @abstractmethod
    def decide(
        self, decide_curves: dict[int, MissCurve]
    ) -> dict[int, VCAllocation]:
        """Choose this interval's allocation from monitored curves."""

    def step(
        self,
        decide_curves: dict[int, MissCurve],
        actual_curves: dict[int, MissCurve],
        instructions: float,
    ) -> IntervalStats:
        """Decide from monitor data, then account the actual interval."""
        allocations = self.decide(decide_curves)
        return self.account(allocations, actual_curves, instructions)

    def step_batch(
        self,
        decide_series: dict[int, list[MissCurve]],
        actual_series: dict[int, list[MissCurve]],
        instructions: float,
        n_intervals: int | None = None,
    ) -> list[IntervalStats]:
        """Step a whole run of intervals: decide each, account all at once.

        ``decide_series[vc][t]`` / ``actual_series[vc][t]`` are the monitor
        and accounting curves of interval ``t``.  Decisions stay
        interval-by-interval, in order — schemes carry state between
        epochs (bypass hysteresis, Awasthi's bank counts) — but decisions
        never depend on accounting, so accounting batches over stacked
        per-VC arrays afterwards.  Equivalent to ``step`` per interval
        (the differential tests pin exact equality).
        """
        if n_intervals is None:
            n_intervals = max((len(s) for s in actual_series.values()), default=0)
        if self.hull_accounting:
            # One batched hull pass for the whole run; every later
            # hull_curve() call — in decide and in accounting — hits the
            # cache.
            prime_hull_caches(
                c for series in (decide_series, actual_series)
                for s in series.values() for c in s
            )
        allocations = [
            self.decide({vc: s[t] for vc, s in decide_series.items()})
            for t in range(n_intervals)
        ]
        return self.account_batch(allocations, actual_series, instructions)

    def account_batch(
        self,
        allocations: list[dict[int, VCAllocation]],
        actual_series: dict[int, list[MissCurve]],
        instructions: float,
    ) -> list[IntervalStats]:
        """Account every interval of a run, vectorized across intervals.

        Subclasses that override :meth:`account` without a matching batch
        implementation automatically fall back to the serial loop, so the
        batch engine never silently changes their accounting.
        """
        if type(self).account is not Scheme.account:
            return [
                self.account(
                    allocations[t],
                    {vc: s[t] for vc, s in actual_series.items()},
                    instructions,
                )
                for t in range(len(allocations))
            ]
        cfg = self.config
        n_intervals = len(allocations)
        stats_list = [
            IntervalStats(instructions=instructions) for __ in range(n_intervals)
        ]
        for vc_id, series in actual_series.items():
            spec = self.vcs[vc_id]
            mem_hops = cfg.geometry.mem_hops(spec.owner_core)
            penalty = cfg.latency.mem_latency + 2 * cfg.latency.hop_latency * mem_hops
            allocs = [
                alloc_t.get(vc_id)
                or VCAllocation(size_bytes=0.0, avg_hops=0.0, bypass=False)
                for alloc_t in allocations
            ]
            accesses = np.array([c.accesses for c in series], dtype=np.float64)
            hops = np.array([a.avg_hops for a in allocs], dtype=np.float64)
            sizes = np.array([a.size_bytes for a in allocs], dtype=np.float64)
            raw_misses = _batched_misses_at(series, sizes, self.hull_accounting)
            misses = np.minimum(raw_misses, accesses)
            hits = accesses - misses
            # Same expressions, elementwise, as the serial account().
            access_lat = (
                cfg.latency.bank_latency + 2 * cfg.latency.hop_latency * hops
            )
            stalls_kept = accesses * access_lat + misses * penalty
            stalls_bypassed = accesses * penalty
            e = cfg.energy
            llc_network = 2.0 * hops * e.hop_nj * accesses
            llc_bank = e.bank_nj * accesses
            mem_network_scale = 2.0 * mem_hops * e.hop_nj
            for t, stats in enumerate(stats_list):
                alloc = allocs[t]
                acc = accesses[t]
                stats.vc_sizes[vc_id] = alloc.size_bytes
                stats.vc_hops[vc_id] = alloc.avg_hops
                stats.vc_bypass[vc_id] = alloc.bypass
                stats.vc_accesses[vc_id] = acc
                if alloc.bypass:
                    stats.bypasses += acc
                    stats.vc_misses[vc_id] = acc
                    stalls = stalls_bypassed[t]
                    stats.energy = stats.energy + EnergyBreakdown(
                        network=mem_network_scale * acc, memory=e.mem_nj * acc
                    )
                else:
                    stats.hits += hits[t]
                    stats.misses += misses[t]
                    stats.vc_misses[vc_id] = misses[t]
                    stalls = stalls_kept[t]
                    stats.energy = (
                        stats.energy
                        + EnergyBreakdown(
                            network=llc_network[t], bank=llc_bank[t]
                        )
                        + EnergyBreakdown(
                            network=mem_network_scale * misses[t],
                            memory=e.mem_nj * misses[t],
                        )
                    )
                stats.vc_stalls[vc_id] = stalls
                stats.stall_cycles += stalls
        return stats_list

    # ------------------------------------------------------------------
    # Default accounting (shared-baseline schemes)
    # ------------------------------------------------------------------
    def account(
        self,
        allocations: dict[int, VCAllocation],
        actual_curves: dict[int, MissCurve],
        instructions: float,
    ) -> IntervalStats:
        """Jigsaw-model accounting of one interval."""
        cfg = self.config
        stats = IntervalStats(instructions=instructions)
        for vc_id, curve in actual_curves.items():
            alloc = allocations.get(vc_id)
            if alloc is None:
                alloc = VCAllocation(size_bytes=0.0, avg_hops=0.0, bypass=False)
            spec = self.vcs[vc_id]
            mem_hops = cfg.geometry.mem_hops(spec.owner_core)
            accesses = curve.accesses
            stats.vc_sizes[vc_id] = alloc.size_bytes
            stats.vc_hops[vc_id] = alloc.avg_hops
            stats.vc_bypass[vc_id] = alloc.bypass
            stats.vc_accesses[vc_id] = accesses
            penalty = cfg.latency.mem_latency + 2 * cfg.latency.hop_latency * mem_hops
            if alloc.bypass:
                stats.bypasses += accesses
                stats.vc_misses[vc_id] = accesses
                stalls = accesses * penalty
                stats.energy = stats.energy + cfg.energy.memory_access(
                    mem_hops, accesses
                )
            else:
                model = curve.hull_curve() if self.hull_accounting else curve
                misses = min(model.misses_at(alloc.size_bytes), accesses)
                hits = accesses - misses
                stats.hits += hits
                stats.misses += misses
                stats.vc_misses[vc_id] = misses
                access_lat = (
                    cfg.latency.bank_latency
                    + 2 * cfg.latency.hop_latency * alloc.avg_hops
                )
                stalls = accesses * access_lat + misses * penalty
                stats.energy = (
                    stats.energy
                    + cfg.energy.llc_access(alloc.avg_hops, accesses)
                    + cfg.energy.memory_access(mem_hops, misses)
                )
            stats.vc_stalls[vc_id] = stalls
            stats.stall_cycles += stalls
        return stats
