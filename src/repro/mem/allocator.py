"""Heap allocation with memory pools (paper Sec 3.1).

Implements the programmer-facing API::

    pool = allocator.pool_create()
    buf = allocator.pool_malloc(nbytes, pool)

Each pool draws pages from its own arena, so a page never holds data from
two pools (the invariant Whirlpool's page-granular classification relies
on).  Inside an arena, allocation is a size-class bump allocator with
free-list reuse — a simplified Doug-Lea-style design that is faithful
where it matters: allocations from the same pool pack densely, large
allocations are page-aligned, and freed blocks are recycled within their
pool only.

Every allocation records a *callpoint id* — a hash of the allocating call
stack — which is what the WhirlTool profiler clusters (paper Sec 4.1).
"""

from __future__ import annotations

import inspect
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.mem.address_space import PAGE_SIZE, POOL_NONE, AddressSpace

__all__ = [
    "Allocation",
    "HeapAllocator",
    "PoolAllocator",
    "allocation_ranges",
    "callpoint_id",
]

#: Allocations of at least this size get their own page run.
_LARGE_THRESHOLD = PAGE_SIZE

#: Size classes (bytes) for small allocations.
_SIZE_CLASSES = [16, 32, 64, 128, 256, 512, 1024, 2048, PAGE_SIZE]

#: Pages grabbed per small-object arena refill.
_ARENA_RUN_PAGES = 16


def callpoint_id(depth: int = 2, skip: int = 2) -> int:
    """Hash of the last ``depth`` call frames (paper: last two return PCs).

    Args:
        depth: number of frames to hash.
        skip: frames to skip (the allocator's own).
    """
    frames = inspect.stack()[skip : skip + depth]
    key = "|".join(f"{f.filename}:{f.lineno}" for f in frames)
    return zlib.crc32(key.encode()) & 0x7FFFFFFF


@dataclass(frozen=True)
class Allocation:
    """A live heap allocation.

    Attributes:
        base: virtual base address.
        size: requested size in bytes.
        pool: pool id (POOL_NONE if unpooled).
        callpoint: callpoint id of the allocation site.
    """

    base: int
    size: int
    pool: int
    callpoint: int

    def addresses(self, offsets: np.ndarray) -> np.ndarray:
        """Vectorized ``base + offsets`` with bounds checking disabled.

        Workloads use this to turn index streams into address streams.
        """
        return self.base + np.asarray(offsets, dtype=np.int64)

    @property
    def end(self) -> int:
        """One past the last byte."""
        return self.base + self.size


def allocation_ranges(
    allocs,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sorted, disjoint (base, end, callpoint) arrays for live allocations.

    This is the address-range table region attribution is built from
    (``repro.ingest.attribute``).  Two live allocations overlapping is
    not a tie to break — it means the allocation log is corrupt or two
    logs were merged — so it raises instead of letting the last writer
    silently win the region mapping.

    Args:
        allocs: iterable of :class:`Allocation`.

    Returns:
        ``(starts, ends, callpoints)`` — int64 base/end addresses sorted
        by base, and the int64 callpoint id of each range.
    """
    allocs = sorted(allocs, key=lambda a: a.base)
    starts = np.array([a.base for a in allocs], dtype=np.int64)
    ends = np.array([a.end for a in allocs], dtype=np.int64)
    callpoints = np.array([a.callpoint for a in allocs], dtype=np.int64)
    if len(allocs) > 1:
        overlap = np.nonzero(ends[:-1] > starts[1:])[0]
        if overlap.size:
            i = int(overlap[0])
            a, b = allocs[i], allocs[i + 1]
            raise ValueError(
                f"live allocations overlap: "
                f"[{hex(a.base)}, {hex(a.end)}) (callpoint {a.callpoint}) and "
                f"[{hex(b.base)}, {hex(b.end)}) (callpoint {b.callpoint}); "
                "refusing to build a last-writer-wins attribution table"
            )
    return starts, ends, callpoints


@dataclass
class _Arena:
    """Per-pool allocation arena."""

    bump_addr: int = 0
    bump_end: int = 0
    free_lists: dict[int, list[int]] = field(default_factory=dict)


class HeapAllocator:
    """Size-class heap allocator with per-pool arenas."""

    def __init__(self, space: AddressSpace | None = None) -> None:
        self.space = space if space is not None else AddressSpace()
        self._arenas: dict[int, _Arena] = {}
        self._next_pool = 0
        self._live: dict[int, Allocation] = {}
        self.allocated_bytes = 0

    # ------------------------------------------------------------------
    # Pool API (paper Sec 3.1)
    # ------------------------------------------------------------------
    def pool_create(self) -> int:
        """Create a new memory pool; returns its id."""
        pool = self._next_pool
        self._next_pool += 1
        self._arenas[pool] = _Arena()
        return pool

    def pool_malloc(
        self, size: int, pool: int, callpoint: int | None = None
    ) -> Allocation:
        """Allocate ``size`` bytes from ``pool``."""
        if pool != POOL_NONE and pool not in self._arenas:
            raise ValueError(f"unknown pool {pool}")
        return self._malloc(size, pool, callpoint)

    def pool_calloc(
        self, count: int, elem_size: int, pool: int, callpoint: int | None = None
    ) -> Allocation:
        """Allocate ``count * elem_size`` zeroed bytes from ``pool``."""
        return self.pool_malloc(count * elem_size, pool, callpoint)

    def pool_realloc(
        self, alloc: Allocation, new_size: int, callpoint: int | None = None
    ) -> Allocation:
        """Resize an allocation within its pool (always moves)."""
        self.free(alloc)
        return self._malloc(new_size, alloc.pool, callpoint or alloc.callpoint)

    # ------------------------------------------------------------------
    # Standard API
    # ------------------------------------------------------------------
    def malloc(self, size: int, callpoint: int | None = None) -> Allocation:
        """Allocate untagged (no-pool) memory."""
        return self._malloc(size, POOL_NONE, callpoint)

    def free(self, alloc: Allocation) -> None:
        """Free an allocation, returning it to its pool's free lists."""
        if alloc.base not in self._live:
            raise ValueError(f"double free or foreign allocation at {hex(alloc.base)}")
        del self._live[alloc.base]
        self.allocated_bytes -= alloc.size
        arena = self._arena_for(alloc.pool)
        cls = self._size_class(alloc.size)
        if cls is not None:
            arena.free_lists.setdefault(cls, []).append(alloc.base)
        # Large runs are not recycled (monotonic address space); fine for
        # profiling purposes and keeps pages single-pool by construction.

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _size_class(size: int) -> int | None:
        for cls in _SIZE_CLASSES:
            if size <= cls:
                return cls
        return None

    def _arena_for(self, pool: int) -> _Arena:
        if pool == POOL_NONE:
            return self._arenas.setdefault(POOL_NONE, _Arena())
        return self._arenas[pool]

    def _malloc(self, size: int, pool: int, callpoint: int | None) -> Allocation:
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if callpoint is None:
            callpoint = callpoint_id(skip=3)
        arena = self._arena_for(pool)
        cls = self._size_class(size)
        if cls is None:
            n_pages = -(-size // PAGE_SIZE)
            base = self.space.map_pages(n_pages, pool)
        else:
            free = arena.free_lists.get(cls)
            if free:
                base = free.pop()
            else:
                if arena.bump_addr + cls > arena.bump_end:
                    run = self.space.map_pages(_ARENA_RUN_PAGES, pool)
                    arena.bump_addr = run
                    arena.bump_end = run + _ARENA_RUN_PAGES * PAGE_SIZE
                base = arena.bump_addr
                arena.bump_addr += cls
        alloc = Allocation(base=base, size=size, pool=pool, callpoint=callpoint)
        self._live[base] = alloc
        self.allocated_bytes += size
        return alloc

    @property
    def live_allocations(self) -> list[Allocation]:
        """Currently live allocations."""
        return list(self._live.values())


class PoolAllocator:
    """A thin facade binding a :class:`HeapAllocator` to named pools.

    Mirrors how applications were manually ported (Table 2): create one
    pool per major data structure, then allocate each structure from its
    pool.  ``pool('vertices')`` lazily creates the pool on first use.
    """

    def __init__(self, heap: HeapAllocator | None = None) -> None:
        self.heap = heap if heap is not None else HeapAllocator()
        self._by_name: dict[str, int] = {}

    def pool(self, name: str) -> int:
        """Get (or create) the pool with this name."""
        if name not in self._by_name:
            self._by_name[name] = self.heap.pool_create()
        return self._by_name[name]

    def malloc(
        self, size: int, pool_name: str | None = None, callpoint: int | None = None
    ) -> Allocation:
        """Allocate from a named pool, or untagged when no name is given.

        ``callpoint`` overrides the stack-derived callpoint id — used by
        generators whose allocation loop would otherwise collapse every
        structure onto one site.
        """
        if callpoint is None:
            callpoint = callpoint_id(skip=2)
        if pool_name is None:
            return self.heap.malloc(size, callpoint=callpoint)
        return self.heap.pool_malloc(size, self.pool(pool_name), callpoint=callpoint)

    @property
    def pool_names(self) -> dict[str, int]:
        """Mapping from pool name to pool id."""
        return dict(self._by_name)
