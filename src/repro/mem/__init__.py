"""Virtual-memory substrate: address space, heap allocator, memory pools.

Whirlpool classifies data at page granularity through the virtual memory
system (paper Sec 3.1-3.2): the allocator guarantees that every page
belongs to at most one pool, and pages are tagged with a VC id that the
(simulated) TLB/VTB uses to route accesses.

Modules
-------
- :mod:`repro.mem.address_space` — paged virtual address space + page table.
- :mod:`repro.mem.allocator` — size-class heap allocator with per-pool
  arenas; the ``pool_create`` / ``pool_malloc`` API.
- :mod:`repro.mem.vc` — user-level VC "system calls"
  (``sys_vc_alloc`` / ``sys_vc_free`` / ``sys_vc_tag``).
"""

from repro.mem.address_space import PAGE_SIZE, AddressSpace
from repro.mem.allocator import Allocation, HeapAllocator, PoolAllocator
from repro.mem.vc import VCError, VCRegistry

__all__ = [
    "PAGE_SIZE",
    "AddressSpace",
    "Allocation",
    "HeapAllocator",
    "PoolAllocator",
    "VCError",
    "VCRegistry",
]
