"""User-level virtual-cache "system calls" (paper Sec 3.2).

Whirlpool exposes VCs to user programs through three syscalls:

- ``sys_vc_alloc()`` — allocate a user-level VC, returning its id.
- ``sys_vc_free(vc)`` — deallocate it.
- ``sys_vc_tag(addr, len, vc)`` — tag a page range with a VC.

The registry performs the safety checks the paper calls out: a process
may only tag its own pages with its own VCs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.address_space import AddressSpace

__all__ = ["VCError", "VCRegistry"]


class VCError(Exception):
    """Raised on invalid VC operations (bad id, foreign process, ...)."""


@dataclass
class _VCInfo:
    owner_pid: int
    live: bool = True


class VCRegistry:
    """Tracks user-level VCs and enforces per-process ownership."""

    #: Reserved VC ids for Jigsaw's built-in VC kinds (Sec 2.4).
    THREAD_PRIVATE = 0
    PROCESS = 1
    GLOBAL = 2
    _FIRST_USER_VC = 3

    def __init__(self, space: AddressSpace) -> None:
        self._space = space
        self._vcs: dict[int, _VCInfo] = {}
        self._next_id = self._FIRST_USER_VC

    def sys_vc_alloc(self, pid: int) -> int:
        """Allocate a user-level VC owned by process ``pid``."""
        vc = self._next_id
        self._next_id += 1
        self._vcs[vc] = _VCInfo(owner_pid=pid)
        return vc

    def sys_vc_free(self, pid: int, vc: int) -> None:
        """Free a user-level VC; its pages revert to the process VC."""
        info = self._check(pid, vc)
        info.live = False

    def sys_vc_tag(self, pid: int, addr: int, n_bytes: int, vc: int) -> int:
        """Tag the pages overlapping ``[addr, addr+n_bytes)`` with ``vc``.

        Returns the number of pages tagged.
        """
        self._check(pid, vc)
        return self._space.retag_pages(addr, n_bytes, vc)

    def sys_mmap(self, pid: int, n_pages: int, vc: int | None = None) -> int:
        """``mmap`` with an optional VC tag for the new pages (Sec 3.2)."""
        if vc is not None:
            self._check(pid, vc)
            return self._space.map_pages(n_pages, vc)
        return self._space.map_pages(n_pages)

    def user_vcs(self, pid: int) -> list[int]:
        """Live user-level VCs owned by ``pid``."""
        return [
            vc for vc, info in self._vcs.items() if info.live and info.owner_pid == pid
        ]

    def _check(self, pid: int, vc: int) -> _VCInfo:
        info = self._vcs.get(vc)
        if info is None or not info.live:
            raise VCError(f"VC {vc} does not exist")
        if info.owner_pid != pid:
            raise VCError(f"process {pid} does not own VC {vc}")
        return info
