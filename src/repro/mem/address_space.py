"""A paged virtual address space with a pool-tagging page table.

This is the substrate under the pool allocator: pages are handed out in
contiguous runs, and the page table remembers which memory pool (if any)
each page belongs to.  The simulated hardware classifies an access by
looking up its page here — exactly how Whirlpool uses the TLB to map
pages to VCs (paper Sec 2.4/3.2).
"""

from __future__ import annotations

import numpy as np

__all__ = ["PAGE_SIZE", "AddressSpace", "POOL_NONE"]

#: Page size in bytes (x86-64 small pages).
PAGE_SIZE = 4096

#: Pool tag of untagged pages.
POOL_NONE = -1


class AddressSpace:
    """Monotonic page-granular virtual address space.

    Pages are never re-used for a *different* pool once tagged (freed
    memory returns to its pool's arena), which preserves the paper's
    invariant that a page belongs to exactly one pool or none.
    """

    def __init__(self, base: int = 0x1000_0000) -> None:
        if base % PAGE_SIZE != 0:
            raise ValueError(f"base must be page-aligned, got {hex(base)}")
        self._next_page = base // PAGE_SIZE
        self._pool_of_page: dict[int, int] = {}

    def map_pages(self, n_pages: int, pool: int = POOL_NONE) -> int:
        """Map ``n_pages`` contiguous pages tagged with ``pool``.

        Returns:
            The base virtual address of the run.
        """
        if n_pages <= 0:
            raise ValueError(f"n_pages must be positive, got {n_pages}")
        start = self._next_page
        self._next_page += n_pages
        for p in range(start, start + n_pages):
            self._pool_of_page[p] = pool
        return start * PAGE_SIZE

    def pool_of(self, addr: int) -> int:
        """Pool tag of the page containing ``addr`` (POOL_NONE if untagged)."""
        return self._pool_of_page.get(addr // PAGE_SIZE, POOL_NONE)

    def pools_of(self, addrs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`pool_of` over an address array."""
        pages = np.asarray(addrs, dtype=np.int64) // PAGE_SIZE
        unique, inverse = np.unique(pages, return_inverse=True)
        tags = np.array(
            [self._pool_of_page.get(int(p), POOL_NONE) for p in unique],
            dtype=np.int32,
        )
        return tags[inverse]

    def retag_pages(self, addr: int, n_bytes: int, pool: int) -> int:
        """Retag all pages overlapping ``[addr, addr + n_bytes)``.

        Used by ``sys_vc_tag``.  Returns the number of pages retagged.
        """
        if n_bytes <= 0:
            raise ValueError(f"n_bytes must be positive, got {n_bytes}")
        first = addr // PAGE_SIZE
        last = (addr + n_bytes - 1) // PAGE_SIZE
        for p in range(first, last + 1):
            self._pool_of_page[p] = pool
        return last - first + 1

    @property
    def mapped_bytes(self) -> int:
        """Total bytes mapped so far."""
        return len(self._pool_of_page) * PAGE_SIZE
