"""Online Whirlpool: incremental live-stream classification.

The paper's deployment story is classifying *live* application data,
but the batch pipeline is profile-fully-then-cluster.  This module
closes that gap: :class:`OnlineWhirlTool` consumes a
:class:`~repro.ingest.source.TraceSource` chunk-by-chunk, accumulating
per-(region, epoch) bucket-count histograms on the streaming profiler's
carried state, and revises the pool clustering as traffic arrives.

Epoch model
-----------
Profiling intervals become *epochs* sealed as data passes them:

- **Sized sources** (``n_records`` known) keep the offline engine's
  equal-width ``linspace`` grid, so streaming to completion reproduces
  the offline profile — and therefore the offline
  :meth:`~repro.core.whirltool.analyzer.WhirlToolAnalyzer.cluster` —
  bit-identically (merge order, distances, tie-breaks), for any chunk
  size.  :func:`online_pools_reference` is that offline oracle,
  retained for the differential tests.
- **Unbounded sources** (``n_records`` is ``None``: live pipes,
  growing files, generators) get fixed-size record-count epochs
  appended open-endedly (:meth:`~repro.ingest.stream.StreamingProfile.
  open_interval`); a trailing partial epoch is sealed at
  :meth:`OnlineWhirlTool.finish`.

Re-clustering
-------------
Each sealed epoch's curves feed a :class:`PhaseDetector` — the Fig-6 /
Fig-11 signal (per-region APKI and MPKI at a probe size) compared
against the previous epoch — and a phase change triggers a re-cluster
through :meth:`~repro.core.whirltool.analyzer.WhirlToolAnalyzer.
cluster_incremental`, which replays cached leaf-pair distance terms for
already-evaluated epochs and only computes the new epoch's columns.
Sealed epochs are final (integer bucket counts never change), which is
exactly the cache's contract.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.whirltool.analyzer import (
    ClusteringResult,
    IncrementalClusterCache,
    WhirlToolAnalyzer,
)
from repro.core.whirltool.profiler import CallpointProfile
from repro.curves.miss_curve import MissCurve
from repro.curves.reuse import StackDistanceProfiler
from repro.ingest.source import DEFAULT_CHUNK_RECORDS, TraceChunk, TraceSource
from repro.ingest.stream import StreamingProfile, StreamingStackProfiler

__all__ = [
    "EpochReport",
    "OnlineWhirlTool",
    "PhaseDetector",
    "online_pools_reference",
]

#: Default records per epoch for unbounded sources.
DEFAULT_EPOCH_RECORDS = 1 << 16


@dataclass
class EpochReport:
    """What the online classifier emits when an epoch seals.

    Attributes:
        epoch: sealed epoch index (0-based).
        end_record: stream record index the epoch ends at.
        phase_change: whether the detector flagged a regime shift.
        reclustered: whether pools were revised this epoch.
        pools: the current clustering (None until the first cluster).
        assignments: callpoint -> pool cut at the tool's ``n_pools``
            (None until the first cluster).
    """

    epoch: int
    end_record: int
    phase_change: bool
    reclustered: bool
    pools: ClusteringResult | None
    assignments: dict[int, int] | None


class PhaseDetector:
    """Flags epochs whose traffic regime shifts (Fig 6 / Fig 11 signal).

    The phase signature of an epoch is, per active region, the pair
    (APKI, MPKI at a probe size) — access intensity and how
    cache-friendly the region currently is.  An epoch is a phase change
    when a region appears or disappears (APKI crossing ``min_apki``) or
    when either signature component moves by more than
    ``rel_threshold`` relative to the previous epoch.

    Args:
        rel_threshold: relative change that counts as a shift.
        min_apki: regions below this APKI are ignored (noise floor).
        probe_fraction: probe size as a fraction of the curve's modeled
            range (``max_bytes``).
    """

    def __init__(
        self,
        rel_threshold: float = 0.5,
        min_apki: float = 0.05,
        probe_fraction: float = 0.25,
    ) -> None:
        if rel_threshold <= 0:
            raise ValueError(
                f"rel_threshold must be positive, got {rel_threshold}"
            )
        if not 0.0 <= probe_fraction <= 1.0:
            raise ValueError(
                f"probe_fraction must be in [0, 1], got {probe_fraction}"
            )
        self.rel_threshold = rel_threshold
        self.min_apki = min_apki
        self.probe_fraction = probe_fraction
        self._prev: dict[int, tuple[float, float]] | None = None

    def signature(
        self, curves: dict[int, MissCurve]
    ) -> dict[int, tuple[float, float]]:
        """Per-region (APKI, MPKI@probe) for one epoch's curves."""
        sig: dict[int, tuple[float, float]] = {}
        for rid, curve in curves.items():
            if curve.instructions <= 0:
                continue
            apki = curve.apki
            if apki < self.min_apki:
                continue
            probe = self.probe_fraction * curve.max_bytes
            sig[rid] = (apki, curve.mpki_at(probe))
        return sig

    def update(self, curves: dict[int, MissCurve]) -> bool:
        """Feed one sealed epoch; True when it opens a new phase.

        The first epoch establishes the baseline and is never a phase
        change (the caller clusters it unconditionally anyway).
        """
        sig = self.signature(curves)
        prev, self._prev = self._prev, sig
        if prev is None:
            return False
        if set(sig) != set(prev):
            return True
        for rid, (apki, mpki) in sig.items():
            p_apki, p_mpki = prev[rid]
            for now, was in ((apki, p_apki), (mpki, p_mpki)):
                if abs(now - was) > self.rel_threshold * max(abs(was), 1e-12):
                    return True
        return False


class OnlineWhirlTool:
    """Incremental WhirlTool: pools revised as the stream arrives.

    Drive it either with :meth:`run` (consume a whole source) or with
    :meth:`start` / :meth:`push` / :meth:`finish` for live streams
    where chunks arrive on the caller's schedule.

    Args:
        chunk_bytes: miss-curve grid step.
        n_chunks: grid length.
        sample_shift: address sampling (2^shift speedup).
        n_pools: pools to cut the merge tree at for reported
            assignments (the paper settles on 3).
        n_intervals: epoch count for *sized* sources (equal-width
            windows, the offline grid).
        epoch_records: records per epoch for *unbounded* sources.
        instructions: total instruction count for sized sources
            (defaults to the source's own).
        instructions_per_record: instruction rate for unbounded
            sources, whose totals are unknowable up front; each epoch's
            window is ``records * instructions_per_record``.
        analyzer: clustering engine (defaults to a fresh
            :class:`~repro.core.whirltool.analyzer.WhirlToolAnalyzer`).
        detector: phase detector (defaults to :class:`PhaseDetector`).
    """

    def __init__(
        self,
        chunk_bytes: int = 64 * 1024,
        n_chunks: int = 400,
        sample_shift: int = 3,
        n_pools: int = 3,
        n_intervals: int = 8,
        epoch_records: int = DEFAULT_EPOCH_RECORDS,
        instructions: float | None = None,
        instructions_per_record: float = 1.0,
        analyzer: WhirlToolAnalyzer | None = None,
        detector: PhaseDetector | None = None,
    ) -> None:
        if n_intervals < 1:
            raise ValueError(f"n_intervals must be >= 1, got {n_intervals}")
        if epoch_records < 1:
            raise ValueError(
                f"epoch_records must be >= 1, got {epoch_records}"
            )
        if instructions_per_record <= 0:
            raise ValueError(
                "instructions_per_record must be positive, got "
                f"{instructions_per_record}"
            )
        self.chunk_bytes = chunk_bytes
        self.n_chunks = n_chunks
        self.sample_shift = sample_shift
        self.n_pools = n_pools
        self.n_intervals = n_intervals
        self.epoch_records = epoch_records
        self.instructions = instructions
        self.instructions_per_record = instructions_per_record
        self.analyzer = analyzer if analyzer is not None else WhirlToolAnalyzer()
        self.detector = detector if detector is not None else PhaseDetector()
        self._prof: StreamingProfile | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, source: TraceSource) -> None:
        """Bind to a source: fix the epoch grid and reset all state."""
        profiler = StreamingStackProfiler(
            chunk_bytes=self.chunk_bytes,
            n_chunks=self.n_chunks,
            line_bytes=source.line_bytes,
            sample_shift=self.sample_shift,
        )
        n_total = source.n_records
        if n_total is not None:
            if n_total <= 0:
                # Same diagnosis as materialize / profile_source.
                raise ValueError("source yielded no records")
            instructions = (
                self.instructions
                if self.instructions is not None
                else source.instructions
            )
            if instructions is None or instructions <= 0:
                raise ValueError(
                    "source carries no instruction count; pass instructions="
                )
            # The offline engine's grid, so stream-to-completion
            # reproduces the offline profile bit-identically.
            bounds = np.linspace(0, n_total, self.n_intervals + 1).astype(
                np.int64
            )
            self._prof = profiler.begin(bounds)
            self._instr_per_interval: float | None = (
                instructions / self.n_intervals
            )
        else:
            self._prof = profiler.begin([0])
            self._instr_per_interval = None
        self._n_total = n_total
        self._names = dict(source.region_names)
        self._sealed = 0
        self._epoch_instrs: list[float] = []
        self._curves: dict[int, list[MissCurve]] = {}
        self._cache = IncrementalClusterCache()
        self._result: ClusteringResult | None = None
        self._finished = False

    def push(
        self, chunk: TraceChunk, mapping: dict[int, int] | None = None
    ) -> list[EpochReport]:
        """Consume one chunk; return a report per epoch it seals."""
        prof = self._require_started()
        if self._finished:
            raise ValueError("OnlineWhirlTool is finished; call start() again")
        n = len(chunk)
        if n == 0:
            return []
        if self._n_total is not None and prof.offset + n > self._n_total:
            raise ValueError(
                f"source yielded more than its declared "
                f"{self._n_total} records"
            )
        if self._n_total is None:
            while int(prof.bounds[-1]) < prof.offset + n:
                prof.open_interval(int(prof.bounds[-1]) + self.epoch_records)
        prof.push_chunk(chunk, mapping=mapping)
        reports = []
        while (
            self._sealed < prof.n_intervals
            and int(prof.bounds[self._sealed + 1]) <= prof.offset
        ):
            reports.append(self._seal_epoch())
        return reports

    def finish(self) -> ClusteringResult:
        """End of stream: seal any partial epoch, final re-cluster."""
        prof = self._require_started()
        if self._finished:
            raise ValueError("OnlineWhirlTool is already finished")
        if self._n_total is not None and prof.offset != self._n_total:
            raise ValueError(
                f"source yielded {prof.offset} records but declared "
                f"{self._n_total}"
            )
        if self._n_total is None:
            if prof.offset <= 0:
                raise ValueError("source yielded no records")
            if self._sealed < prof.n_intervals:
                # Trailing partial epoch: close its bound at the actual
                # end of stream and seal it.  Records already landed in
                # it (bucket counts are record-indexed), so truncating
                # the open bound is bookkeeping, not re-binning.
                prof.bounds = prof.bounds.copy()
                prof.bounds[-1] = prof.offset
                while self._sealed < prof.n_intervals:
                    self._seal_epoch()
        self._recluster()
        self._finished = True
        result = self._result
        assert result is not None
        return result

    def run(
        self,
        source: TraceSource,
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
        mapping: dict[int, int] | None = None,
    ) -> ClusteringResult:
        """Stream a whole source through start / push / finish.

        Streaming a *sized* source to completion yields pools
        bit-identical to :func:`online_pools_reference` — the offline
        profile-then-cluster pipeline — for any ``chunk_records``.
        """
        self.start(source)
        for chunk in source.chunks(chunk_records):
            self.push(chunk, mapping=mapping)
        return self.finish()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pools(self) -> ClusteringResult | None:
        """The most recent clustering (None before the first epoch)."""
        return self._result

    @property
    def sealed_epochs(self) -> int:
        """Epochs sealed so far."""
        return self._sealed

    def profile(self) -> CallpointProfile:
        """The sealed-epoch profile (what re-clustering consumes)."""
        return CallpointProfile(
            curves={rid: list(s) for rid, s in self._curves.items()},
            names=dict(self._names),
            n_intervals=self._sealed,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_started(self) -> StreamingProfile:
        if self._prof is None:
            raise ValueError("call start(source) before pushing chunks")
        return self._prof

    def _epoch_instructions(self, t: int) -> float:
        if self._instr_per_interval is not None:
            return self._instr_per_interval
        prof = self._require_started()
        records = int(prof.bounds[t + 1]) - int(prof.bounds[t])
        return records * self.instructions_per_record

    def _seal_epoch(self) -> EpochReport:
        with obs.span("online.seal_epoch", epoch=self._sealed) as seal_span:
            return self._seal_epoch_traced(seal_span)

    def _seal_epoch_traced(self, seal_span) -> EpochReport:
        prof = self._require_started()
        t = self._sealed
        instr_t = self._epoch_instructions(t)
        self._epoch_instrs.append(instr_t)
        for rid in prof.region_ids():
            series = self._curves.get(rid)
            if series is None:
                # Region first seen this epoch: backfill the earlier
                # epochs with its (zero-access, hence inactive) curves
                # so the profile stays rectangular.
                series = self._curves[rid] = [
                    prof.interval_curve(rid, s, self._epoch_instrs[s])
                    for s in range(t)
                ]
            series.append(prof.interval_curve(rid, t, instr_t))
        self._sealed = t + 1
        phase_change = self.detector.update(
            {rid: series[t] for rid, series in self._curves.items()}
        )
        recluster = phase_change or self._result is None
        obs.counter("online.epochs")
        if phase_change:
            obs.counter("online.phase_changes")
            obs.event("online.phase_change", epoch=t)
        if recluster:
            # First cluster pays the full pair table; phase-triggered
            # re-clusters replay cached columns (cluster_incremental).
            obs.counter(
                "online.recluster.full"
                if self._result is None
                else "online.recluster.incremental"
            )
            self._recluster()
        seal_span.note(
            epoch=t, phase_change=phase_change, reclustered=recluster
        )
        result = self._result
        return EpochReport(
            epoch=t,
            end_record=int(prof.bounds[t + 1]),
            phase_change=phase_change,
            reclustered=recluster,
            pools=result,
            assignments=(
                result.assignments(self.n_pools)
                if result is not None
                else None
            ),
        )

    def _recluster(self) -> None:
        if self._sealed == 0 or not self._curves:
            return
        self._result = self.analyzer.cluster_incremental(
            self.profile(), self._cache
        )


def online_pools_reference(
    source: TraceSource,
    chunk_bytes: int = 64 * 1024,
    n_chunks: int = 400,
    sample_shift: int = 3,
    n_intervals: int = 8,
    instructions: float | None = None,
    mapping: dict[int, int] | None = None,
) -> ClusteringResult:
    """The offline oracle for :meth:`OnlineWhirlTool.run`.

    Materializes the (sized) source in memory, profiles it with the
    one-shot :class:`~repro.curves.reuse.StackDistanceProfiler`, and
    clusters with the batch :meth:`~repro.core.whirltool.analyzer.
    WhirlToolAnalyzer.cluster` — the pre-online pipeline, retained so
    the differential tests can pin the streamed result bit-identical to
    it (merge order, distances, tie-breaks) for any chunking.
    """
    if instructions is None:
        instructions = source.instructions
    if instructions is None or instructions <= 0:
        raise ValueError(
            "source carries no instruction count; pass instructions="
        )
    n_total = source.n_records
    if n_total is None:
        raise ValueError(
            "the offline oracle needs a sized, replayable source"
        )
    if n_total <= 0:
        raise ValueError("source yielded no records")
    addr_parts: list[np.ndarray] = []
    region_parts: list[np.ndarray] = []
    for chunk in source.chunks():
        addr_parts.append(chunk.addrs)
        region_parts.append(
            chunk.regions
            if chunk.regions is not None
            else np.zeros(len(chunk), dtype=np.int32)
        )
    lines = np.concatenate(addr_parts) // source.line_bytes
    regions = np.concatenate(region_parts)
    if mapping is not None:
        from repro.sim.profiling import relabel_regions

        regions = relabel_regions(regions, mapping)
    profiler = StackDistanceProfiler(
        chunk_bytes=chunk_bytes,
        n_chunks=n_chunks,
        line_bytes=source.line_bytes,
        sample_shift=sample_shift,
    )
    curves = profiler.profile(
        lines, regions, instructions, n_intervals=n_intervals
    )
    profile = CallpointProfile(
        curves=curves,
        names=dict(source.region_names),
        n_intervals=n_intervals,
    )
    return WhirlToolAnalyzer().cluster(profile)
