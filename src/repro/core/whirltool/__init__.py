"""WhirlTool: automatic data classification from profiles (paper Sec 4).

Three components (Fig 14):

- :class:`WhirlToolProfiler` — tracks allocations by callpoint and
  records per-callpoint miss-rate curves at regular intervals.
- :class:`WhirlToolAnalyzer` — agglomeratively clusters callpoints into
  pools using the combined-vs-partitioned distance metric (Fig 15).
- :class:`WhirlToolClassifier` — the runtime: replaces the allocator's
  callpoint -> pool mapping, sending unprofiled callpoints to the
  process VC.

:func:`train_whirltool` runs the full pipeline on a training input.

The *online* variant (:mod:`repro.core.whirltool.online`) streams the
same pipeline over live traffic: :class:`OnlineWhirlTool` seals
profiling epochs as records arrive and re-clusters on
:class:`PhaseDetector` triggers, bit-identical at completion to the
offline pipeline on sized sources.
"""

from repro.core.whirltool.analyzer import (
    ClusteringResult,
    IncrementalClusterCache,
    WhirlToolAnalyzer,
    pool_distance,
)
from repro.core.whirltool.online import (
    EpochReport,
    OnlineWhirlTool,
    PhaseDetector,
    online_pools_reference,
)
from repro.core.whirltool.profiler import CallpointProfile, WhirlToolProfiler
from repro.core.whirltool.runtime import WhirlToolClassifier, train_whirltool

__all__ = [
    "CallpointProfile",
    "ClusteringResult",
    "EpochReport",
    "IncrementalClusterCache",
    "OnlineWhirlTool",
    "PhaseDetector",
    "WhirlToolAnalyzer",
    "WhirlToolClassifier",
    "WhirlToolProfiler",
    "online_pools_reference",
    "pool_distance",
    "train_whirltool",
]
