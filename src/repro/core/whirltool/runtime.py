"""WhirlTool runtime (paper Sec 4.3).

Replaces the system allocator: each allocation's callpoint is looked up
in the trained callpoint -> pool map and routed to the matching pool's
VC.  Allocations from unprofiled callpoints fall into the thread-private
(process) pool.  As a :class:`~repro.schemes.Classifier`, this plugs
straight into the simulation driver in place of the manual Table-2
classification.
"""

from __future__ import annotations

from repro.core.whirltool.analyzer import ClusteringResult, WhirlToolAnalyzer
from repro.core.whirltool.profiler import WhirlToolProfiler
from repro.schemes.base import VCSpec
from repro.schemes.classifiers import Classifier
from repro.workloads.registry import build_workload
from repro.workloads.trace import Workload

__all__ = ["WhirlToolClassifier", "train_whirltool"]


class WhirlToolClassifier(Classifier):
    """Region -> VC classification from a trained clustering.

    Args:
        clustering: analyzer output for the application.
        n_pools: pools to cut the merge tree at (the paper settles on 3).
    """

    name = "whirltool"

    def __init__(self, clustering: ClusteringResult, n_pools: int = 3) -> None:
        if n_pools < 1:
            raise ValueError(f"n_pools must be >= 1, got {n_pools}")
        self.clustering = clustering
        self.n_pools = n_pools
        self._pool_of_callpoint = clustering.assignments(n_pools)

    def classify(
        self, workload: Workload, owner_core: int = 0
    ) -> tuple[dict[int, int], list[VCSpec]]:
        # VC 0 is the process VC (unprofiled callpoints); pools follow.
        mapping: dict[int, int] = {}
        used_pools: set[int] = set()
        for rid in workload.region_names:
            pool = self._pool_of_callpoint.get(rid)
            if pool is None:
                mapping[rid] = 0
            else:
                mapping[rid] = pool + 1
                used_pools.add(pool)
        specs = [VCSpec(vc_id=0, name="process", owner_core=owner_core)]
        for pool in sorted(used_pools):
            members = [
                self.clustering.names.get(cp, str(cp))
                for cp, p in self._pool_of_callpoint.items()
                if p == pool
            ]
            specs.append(
                VCSpec(
                    vc_id=pool + 1,
                    name="|".join(sorted(members)),
                    owner_core=owner_core,
                )
            )
        used_vcs = set(mapping.values())
        specs = [s for s in specs if s.vc_id in used_vcs]
        return mapping, specs


def train_whirltool(
    app: str,
    n_pools: int = 3,
    train_scale: str = "train",
    seed: int = 0,
    profiler: WhirlToolProfiler | None = None,
) -> WhirlToolClassifier:
    """Full WhirlTool pipeline: profile a training run, cluster, classify.

    Profiling and analysis happen once, offline (the paper runs them at
    compile time on the train inputs); the returned classifier is then
    applied to any input scale of the same application — callpoint ids
    are stable across inputs.
    """
    workload = build_workload(app, scale=train_scale, seed=seed)
    if profiler is None:
        profiler = WhirlToolProfiler()
    profile = profiler.profile(workload)
    clustering = WhirlToolAnalyzer().cluster(profile)
    return WhirlToolClassifier(clustering, n_pools=n_pools)
