"""WhirlTool analyzer (paper Sec 4.2).

Distance metric: for each profiling interval, the distance between two
pools is the area between their *combined* miss curve (sharing a cache,
Appendix B model) and their *partitioned* miss curve (optimal split of
the same capacity).  Cache-friendly pools barely interfere (small area);
a streaming pool combined with a cache-friendly one inflates its misses
(large area) — Fig 15.  Per-interval summation makes pools active in
disjoint phases cheap to merge, which is what lets programs with phase
behaviour use few pools.

Clustering: plain agglomerative — start with one pool per callpoint,
repeatedly merge the closest pair (re-estimating the merged pool's
curves with the combine model), record the merge tree, and cut it at the
desired pool count.  O(n^2) per merge; fine for the 10s-100s of
callpoints real applications have.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.whirltool.profiler import CallpointProfile
from repro.curves.combine import combine_miss_curves
from repro.curves.miss_curve import MissCurve
from repro.curves.partition import partitioned_miss_curve

__all__ = ["WhirlToolAnalyzer", "ClusteringResult", "pool_distance"]


def pool_distance(a: list[MissCurve], b: list[MissCurve]) -> float:
    """Distance between two pools' per-interval curve series.

    Sum over intervals of the area between the combined and partitioned
    miss curves, normalized per instruction so intervals are comparable.
    """
    if len(a) != len(b):
        raise ValueError("pools must share the interval grid")
    total = 0.0
    for ca, cb in zip(a, b):
        if ca.accesses == 0 or cb.accesses == 0:
            continue  # inactive interval: no interference
        combined = combine_miss_curves(ca, cb)
        partitioned = partitioned_miss_curve(ca, cb)
        area = np.sum(combined.misses - partitioned.misses)
        total += max(float(area), 0.0) / max(combined.instructions, 1e-12)
    return total


@dataclass
class ClusteringResult:
    """Hierarchical clustering of callpoints (Fig 17's dendrogram).

    Attributes:
        callpoints: leaf callpoint ids.
        merges: ``(cluster_a, cluster_b, distance)`` triples in merge
            order; clusters are frozensets of callpoint ids.
        names: callpoint id -> region name (reporting).
    """

    callpoints: list[int]
    merges: list[tuple[frozenset, frozenset, float]] = field(default_factory=list)
    names: dict[int, str] = field(default_factory=dict)

    def assignments(self, n_pools: int) -> dict[int, int]:
        """Callpoint -> pool index (0-based) for ``n_pools`` clusters.

        Cutting the merge tree: replay merges until ``n_pools`` clusters
        remain.  Requesting more pools than callpoints yields one pool
        per callpoint.
        """
        if n_pools < 1:
            raise ValueError(f"n_pools must be >= 1, got {n_pools}")
        clusters: list[set[int]] = [{cp} for cp in self.callpoints]
        for a, b, __ in self.merges:
            if len(clusters) <= n_pools:
                break
            clusters = [c for c in clusters if c != set(a) and c != set(b)]
            clusters.append(set(a) | set(b))
        out: dict[int, int] = {}
        for idx, cluster in enumerate(sorted(clusters, key=min)):
            for cp in cluster:
                out[cp] = idx
        return out

    def dendrogram_text(self) -> str:
        """ASCII rendering of the merge tree (Fig 17 stand-in)."""
        lines = []
        for a, b, dist in self.merges:
            name = lambda cluster: "+".join(  # noqa: E731
                sorted(self.names.get(cp, str(cp)) for cp in cluster)
            )
            lines.append(f"{dist:10.4g}  {name(a)}  <->  {name(b)}")
        return "\n".join(lines)


class WhirlToolAnalyzer:
    """Agglomerative clustering of callpoints into pools."""

    def cluster(self, profile: CallpointProfile) -> ClusteringResult:
        """Build the full merge tree for one application's profile."""
        pools: dict[frozenset, list[MissCurve]] = {
            frozenset({cp}): series for cp, series in profile.curves.items()
        }
        result = ClusteringResult(
            callpoints=profile.callpoints, names=dict(profile.names)
        )
        # Pairwise distance table, updated incrementally.
        dist: dict[tuple[frozenset, frozenset], float] = {}
        keys = sorted(pools, key=min)
        for i, a in enumerate(keys):
            for b in keys[i + 1 :]:
                dist[(a, b)] = pool_distance(pools[a], pools[b])
        while len(pools) > 1:
            (a, b), d = min(dist.items(), key=lambda kv: (kv[1], sorted(map(min, kv[0]))))
            result.merges.append((a, b, d))
            merged_key = frozenset(a | b)
            merged_curves = [
                combine_miss_curves(ca, cb)
                for ca, cb in zip(pools[a], pools[b])
            ]
            del pools[a]
            del pools[b]
            dist = {
                pair: v
                for pair, v in dist.items()
                if a not in pair and b not in pair
            }
            for other in list(pools):
                dist[(merged_key, other)] = pool_distance(
                    merged_curves, pools[other]
                )
            pools[merged_key] = merged_curves
        return result
