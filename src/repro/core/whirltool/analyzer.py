"""WhirlTool analyzer (paper Sec 4.2).

Distance metric: for each profiling interval, the distance between two
pools is the area between their *combined* miss curve (sharing a cache,
Appendix B model) and their *partitioned* miss curve (optimal split of
the same capacity).  Cache-friendly pools barely interfere (small area);
a streaming pool combined with a cache-friendly one inflates its misses
(large area) — Fig 15.  Per-interval summation makes pools active in
disjoint phases cheap to merge, which is what lets programs with phase
behaviour use few pools.

Clustering: plain agglomerative — start with one pool per callpoint,
repeatedly merge the closest pair (re-estimating the merged pool's
curves with the combine model), record the merge tree, and cut it at the
desired pool count.

Two interchangeable engines build the merge tree:

- :meth:`WhirlToolAnalyzer.cluster` — the batched engine.  Distances
  live in a condensed numpy matrix keyed by cluster index; the initial
  table is one batched evaluation over all pairs × active intervals
  (through :func:`repro.curves.combine.combine_rate_rows` and
  :func:`repro.curves.partition.partitioned_rate_rows`, with each
  cluster's rate rows and hulls computed once and reused across every
  pair), and each merge computes the merged cluster's row against all
  survivors in a single batch.
- :meth:`WhirlToolAnalyzer.cluster_reference` — the original serial
  loop over :func:`pool_distance`, retained as the oracle.  The batched
  engine is bit-identical to it — merge order, distances, and tie-breaks
  (distance, then sorted min-callpoint) — which the property tests pin
  and which keeps the Fig 17 dendrograms byte-stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.whirltool.profiler import CallpointProfile
from repro.curves.combine import combine_miss_curves, combine_rate_rows
from repro.curves.miss_curve import MissCurve, _lower_convex_hull_fast
from repro.curves.partition import partitioned_miss_curve, partitioned_rate_rows

__all__ = [
    "IncrementalClusterCache",
    "WhirlToolAnalyzer",
    "ClusteringResult",
    "pool_distance",
]


def pool_distance(a: list[MissCurve], b: list[MissCurve]) -> float:
    """Distance between two pools' per-interval curve series.

    Sum over intervals of the area between the combined and partitioned
    miss curves, normalized per instruction so intervals are comparable.
    """
    if len(a) != len(b):
        raise ValueError("pools must share the interval grid")
    total = 0.0
    for ca, cb in zip(a, b):
        if ca.accesses == 0 or cb.accesses == 0:
            continue  # inactive interval: no interference
        combined = combine_miss_curves(ca, cb)
        partitioned = partitioned_miss_curve(ca, cb)
        area = np.sum(combined.misses - partitioned.misses)
        total += max(float(area), 0.0) / max(combined.instructions, 1e-12)
    return total


def _lane_area_terms(
    ra: np.ndarray,
    rb: np.ndarray,
    ha: np.ndarray,
    hb: np.ndarray,
    instr_c: np.ndarray,
) -> np.ndarray:
    """Per-lane combined-vs-partitioned area terms (one interval each).

    The float core every distance evaluation shares: combine model and
    optimal split scaled to misses, the MissCurve monotone/clip
    normalization, and the per-instruction area.  Both
    :meth:`WhirlToolAnalyzer.cluster`'s full-pair batches and
    :meth:`WhirlToolAnalyzer.cluster_incremental`'s single-interval
    columns run lanes through these exact expressions, and the kernels
    underneath are lane-independent, so a term's value does not depend
    on which batch evaluated it — the property that makes cached terms
    reusable bit-identically.
    """
    combined = combine_rate_rows(ra, rb) * instr_c[:, None]
    np.minimum.accumulate(combined, axis=1, out=combined)
    np.clip(combined, 0.0, None, out=combined)
    split = partitioned_rate_rows(ha, hb) * instr_c[:, None]
    np.minimum.accumulate(split, axis=1, out=split)
    np.clip(split, 0.0, None, out=split)
    area = np.sum(combined - split, axis=1)
    return np.maximum(area, 0.0) / np.maximum(instr_c, 1e-12)


@dataclass
class IncrementalClusterCache:
    """Leaf-pair distance terms carried across online re-clusters.

    ``terms[(cpa, cpb)]`` (callpoint ids, ``cpa < cpb``) holds that leaf
    pair's per-interval distance terms for the intervals evaluated so
    far.  Because the pool distance is a per-interval sum and sealed
    intervals' curves never change (the online epoch contract), a
    re-cluster after new intervals arrive only needs the *new* term
    columns; everything else is replayed from the cache.

    The caller owns the contract that cached intervals are final: feed
    the cache profiles whose previously-seen intervals changed and the
    replayed distances are stale.  Grid changes and shrinking interval
    counts are detected and drop the cache wholesale.
    """

    grid: tuple[int, int] | None = None
    terms: dict[tuple[int, int], np.ndarray] = field(default_factory=dict)

    def invalidate(self) -> None:
        """Drop everything (grid change, non-incremental profile)."""
        self.grid = None
        self.terms.clear()


def _pool_label(names: dict[int, str], cluster) -> str:
    """Render a cluster as its '+'-joined member names.

    Sorting the *rendered* names (not the callpoint ids) keeps the label
    deterministic regardless of set iteration order or the insertion
    order of the ``names`` dict.
    """
    return "+".join(sorted(names.get(cp, str(cp)) for cp in cluster))


@dataclass
class ClusteringResult:
    """Hierarchical clustering of callpoints (Fig 17's dendrogram).

    Attributes:
        callpoints: leaf callpoint ids.
        merges: ``(cluster_a, cluster_b, distance)`` triples in merge
            order; clusters are frozensets of callpoint ids.
        names: callpoint id -> region name (reporting).
    """

    callpoints: list[int]
    merges: list[tuple[frozenset, frozenset, float]] = field(default_factory=list)
    names: dict[int, str] = field(default_factory=dict)

    def assignments(self, n_pools: int) -> dict[int, int]:
        """Callpoint -> pool index (0-based) for ``n_pools`` clusters.

        Cutting the merge tree: replay merges until ``n_pools`` clusters
        remain.  Requesting more pools than callpoints yields one pool
        per callpoint.

        The replay is index-based: live clusters are slots in a
        union-find-style table looked up by membership, so each merge
        retires exactly one slot per operand — set-equal duplicates
        (e.g. repeated leaf callpoints) survive — and the whole replay
        is linear in total membership instead of quadratic.
        """
        if n_pools < 1:
            raise ValueError(f"n_pools must be >= 1, got {n_pools}")
        slots: list[set[int] | None] = [{cp} for cp in self.callpoints]
        by_members: dict[frozenset, list[int]] = {}
        for idx, members in enumerate(slots):
            by_members.setdefault(frozenset(members), []).append(idx)
        live = len(slots)
        for a, b, __ in self.merges:
            if live <= n_pools:
                break
            retired = 0
            for operand in (frozenset(a), frozenset(b)):
                open_slots = by_members.get(operand)
                if open_slots:
                    slots[open_slots.pop(0)] = None
                    retired += 1
            merged = set(a) | set(b)
            slots.append(merged)
            by_members.setdefault(frozenset(merged), []).append(len(slots) - 1)
            live += 1 - retired
        clusters = [c for c in slots if c is not None]
        out: dict[int, int] = {}
        for idx, cluster in enumerate(sorted(clusters, key=min)):
            for cp in cluster:
                out[cp] = idx
        return out

    def dendrogram_text(self) -> str:
        """ASCII rendering of the merge tree (Fig 17 stand-in)."""
        return "\n".join(
            f"{dist:10.4g}  {_pool_label(self.names, a)}"
            f"  <->  {_pool_label(self.names, b)}"
            for a, b, dist in self.merges
        )


class WhirlToolAnalyzer:
    """Agglomerative clustering of callpoints into pools."""

    def cluster(self, profile: CallpointProfile) -> ClusteringResult:
        """Build the full merge tree for one application's profile.

        Batched engine: one vectorized evaluation fills the initial
        pair-distance matrix, and each merge re-evaluates a single
        batched row.  Bit-identical to :meth:`cluster_reference` (which
        also serves as the fallback for ragged or degenerate profiles).
        """
        order = sorted(profile.curves)
        n_leaves = len(order)
        series = [profile.curves[cp] for cp in order]
        if n_leaves <= 1:
            return self.cluster_reference(profile)
        n_intervals = len(series[0])
        flat = [c for s in series for c in s]
        if (
            n_intervals == 0
            or any(len(s) != n_intervals for s in series)
            or any(
                c.chunk_bytes != flat[0].chunk_bytes
                or c.n_chunks != flat[0].n_chunks
                for c in flat
            )
        ):
            return self.cluster_reference(profile)

        width = flat[0].n_chunks + 1
        total_clusters = 2 * n_leaves - 1
        # Per-cluster state, indexed by cluster id; merged clusters are
        # appended after the n_leaves leaves.  Miss rows are transient:
        # only the derived rates (and their hulls) feed the distance
        # kernels, so raw miss counts never persist per cluster.
        instr = np.empty((total_clusters, n_intervals))
        accesses = np.empty((total_clusters, n_intervals))
        rates = np.empty((total_clusters, n_intervals, width))
        hulls = np.empty((total_clusters, n_intervals, width))
        members: list[frozenset] = [frozenset({cp}) for cp in order]
        mins = np.empty(total_clusters, dtype=np.int64)
        births = np.zeros(total_clusters, dtype=np.int64)
        leaf_misses = np.empty((n_intervals, width))
        for c, (cp, s) in enumerate(zip(order, series)):
            mins[c] = cp
            for t, curve in enumerate(s):
                leaf_misses[t] = curve.misses
                instr[c, t] = curve.instructions
                accesses[c, t] = curve.accesses
            rates[c] = leaf_misses / np.maximum(instr[c], 1e-12)[:, None]
            for t in range(n_intervals):
                hulls[c, t] = _lower_convex_hull_fast(rates[c, t])

        def pair_distances(ia: np.ndarray, ib: np.ndarray) -> np.ndarray:
            """Batched ``pool_distance`` over cluster-index pairs.

            Inactive (pair, interval) lanes are compacted away up front;
            active lanes run through the combine and partitioned-split
            kernels in one batch, and per-pair totals accumulate in
            interval order so the float sums match the serial loop.
            """
            total = np.zeros(len(ia))
            active = (accesses[ia] > 0) & (accesses[ib] > 0)
            lane_p, lane_t = np.nonzero(active)
            if len(lane_p) == 0:
                return total
            ra = rates[ia[lane_p], lane_t]
            rb = rates[ib[lane_p], lane_t]
            instr_c = np.maximum(
                instr[ia[lane_p], lane_t], instr[ib[lane_p], lane_t]
            )
            combined = combine_rate_rows(ra, rb) * instr_c[:, None]
            np.minimum.accumulate(combined, axis=1, out=combined)
            np.clip(combined, 0.0, None, out=combined)
            split = (
                partitioned_rate_rows(
                    hulls[ia[lane_p], lane_t], hulls[ib[lane_p], lane_t]
                )
                * instr_c[:, None]
            )
            np.minimum.accumulate(split, axis=1, out=split)
            np.clip(split, 0.0, None, out=split)
            area = np.sum(combined - split, axis=1)
            terms = np.zeros((len(ia), n_intervals))
            terms[lane_p, lane_t] = np.maximum(area, 0.0) / np.maximum(
                instr_c, 1e-12
            )
            for t in range(n_intervals):
                total = total + terms[:, t]
            return total

        # Condensed distance matrix over cluster indices (inf = no pair).
        dist = np.full((total_clusters, total_clusters), np.inf)
        ii, jj = np.triu_indices(n_leaves, k=1)
        init = pair_distances(ii, jj)
        dist[ii, jj] = init
        dist[jj, ii] = init
        alive = np.zeros(total_clusters, dtype=bool)
        alive[:n_leaves] = True

        result = ClusteringResult(
            callpoints=profile.callpoints, names=dict(profile.names)
        )
        for step in range(1, n_leaves):
            live = np.flatnonzero(alive)
            sub = dist[np.ix_(live, live)]
            iu, ju = np.triu_indices(len(live), k=1)
            vals = sub[iu, ju]
            d_min = vals.min()
            # Tie-break exactly like the serial dict scan: smallest
            # (distance, sorted pair of cluster-min callpoints).
            ties = np.flatnonzero(vals == d_min)
            lo = np.minimum(mins[live[iu[ties]]], mins[live[ju[ties]]])
            hi = np.maximum(mins[live[iu[ties]]], mins[live[ju[ties]]])
            pick = ties[np.lexsort((hi, lo))[0]]
            ci, cj = live[iu[pick]], live[ju[pick]]
            # Record (a, b) in the serial table's key order: leaf pairs
            # were inserted min-first, any pair touching a merged cluster
            # was inserted when the younger cluster formed, younger first.
            if births[ci] == 0 and births[cj] == 0:
                a_id, b_id = (ci, cj) if mins[ci] < mins[cj] else (cj, ci)
            else:
                a_id, b_id = (ci, cj) if births[ci] > births[cj] else (cj, ci)
            result.merges.append(
                (members[a_id], members[b_id], float(d_min))
            )

            new = n_leaves + step - 1
            members.append(members[ci] | members[cj])
            mins[new] = min(mins[ci], mins[cj])
            births[new] = step
            instr[new] = np.maximum(instr[ci], instr[cj])
            accesses[new] = accesses[ci] + accesses[cj]
            # The merged pool's miss rows (combined model + the MissCurve
            # monotone/clip normalization), used only to derive rates.
            merged_misses = combine_rate_rows(rates[ci], rates[cj])
            merged_misses *= instr[new][:, None]
            np.minimum.accumulate(merged_misses, axis=1, out=merged_misses)
            np.clip(merged_misses, 0.0, None, out=merged_misses)
            rates[new] = merged_misses / np.maximum(instr[new], 1e-12)[:, None]
            for t in range(n_intervals):
                hulls[new, t] = _lower_convex_hull_fast(rates[new, t])
            alive[ci] = alive[cj] = False
            survivors = np.flatnonzero(alive)
            alive[new] = True
            if len(survivors):
                row = pair_distances(
                    np.full(len(survivors), new), survivors
                )
                dist[new, survivors] = row
                dist[survivors, new] = row
        return result

    def cluster_incremental(
        self, profile: CallpointProfile, cache: IncrementalClusterCache
    ) -> ClusteringResult:
        """Re-cluster a growing profile, reusing cached leaf-pair terms.

        The online engine: when a profile gains intervals (sealed
        epochs) between re-clusters, the initial pair-distance table —
        the O(pairs × intervals) bulk of :meth:`cluster` — only needs
        the *new* interval columns; previously evaluated terms replay
        from ``cache``.  The merge phase always runs fresh (merged
        pools' curves depend on every interval).

        Bit-identical to :meth:`cluster` on the same profile — merge
        order, distances, tie-breaks — because per-lane terms are
        batch-composition-independent (:func:`_lane_area_terms`) and
        the per-pair total accumulates in the same interval order.
        Degenerate profiles (ragged series, mismatched grids, <= 1
        leaf) drop the cache and fall back to :meth:`cluster`, which
        itself falls back to :meth:`cluster_reference`.
        """
        order = sorted(profile.curves)
        n_leaves = len(order)
        series = [profile.curves[cp] for cp in order]
        flat = [c for s in series for c in s]
        n_intervals = len(series[0]) if series else 0
        if (
            n_leaves <= 1
            or n_intervals == 0
            or any(len(s) != n_intervals for s in series)
            or any(
                c.chunk_bytes != flat[0].chunk_bytes
                or c.n_chunks != flat[0].n_chunks
                for c in flat
            )
        ):
            cache.invalidate()
            return self.cluster(profile)

        width = flat[0].n_chunks + 1
        grid = (flat[0].chunk_bytes, flat[0].n_chunks)
        if cache.grid != grid or any(
            len(v) > n_intervals for v in cache.terms.values()
        ):
            cache.invalidate()
            cache.grid = grid

        # Per-cluster state, exactly as in cluster().
        total_clusters = 2 * n_leaves - 1
        instr = np.empty((total_clusters, n_intervals))
        accesses = np.empty((total_clusters, n_intervals))
        rates = np.empty((total_clusters, n_intervals, width))
        hulls = np.empty((total_clusters, n_intervals, width))
        members: list[frozenset] = [frozenset({cp}) for cp in order]
        mins = np.empty(total_clusters, dtype=np.int64)
        births = np.zeros(total_clusters, dtype=np.int64)
        leaf_misses = np.empty((n_intervals, width))
        for c, (cp, s) in enumerate(zip(order, series)):
            mins[c] = cp
            for t, curve in enumerate(s):
                leaf_misses[t] = curve.misses
                instr[c, t] = curve.instructions
                accesses[c, t] = curve.accesses
            rates[c] = leaf_misses / np.maximum(instr[c], 1e-12)[:, None]
            for t in range(n_intervals):
                hulls[c, t] = _lower_convex_hull_fast(rates[c, t])

        def pair_distances(ia: np.ndarray, ib: np.ndarray) -> np.ndarray:
            """Same batched pool_distance as cluster()'s closure."""
            total = np.zeros(len(ia))
            active = (accesses[ia] > 0) & (accesses[ib] > 0)
            lane_p, lane_t = np.nonzero(active)
            if len(lane_p) == 0:
                return total
            vals = _lane_area_terms(
                rates[ia[lane_p], lane_t],
                rates[ib[lane_p], lane_t],
                hulls[ia[lane_p], lane_t],
                hulls[ib[lane_p], lane_t],
                np.maximum(
                    instr[ia[lane_p], lane_t], instr[ib[lane_p], lane_t]
                ),
            )
            terms = np.zeros((len(ia), n_intervals))
            terms[lane_p, lane_t] = vals
            for t in range(n_intervals):
                total = total + terms[:, t]
            return total

        def term_column(ia: np.ndarray, ib: np.ndarray, t: int) -> np.ndarray:
            """One interval's terms for a batch of leaf pairs."""
            col = np.zeros(len(ia))
            act = np.nonzero((accesses[ia, t] > 0) & (accesses[ib, t] > 0))[0]
            if len(act) == 0:
                return col
            col[act] = _lane_area_terms(
                rates[ia[act], t],
                rates[ib[act], t],
                hulls[ia[act], t],
                hulls[ib[act], t],
                np.maximum(instr[ia[act], t], instr[ib[act], t]),
            )
            return col

        # Leaf-pair term matrix: cached prefixes + freshly computed
        # columns for intervals each pair has not seen yet.
        ii, jj = np.triu_indices(n_leaves, k=1)
        keys = [(order[i], order[j]) for i, j in zip(ii.tolist(), jj.tolist())]
        lens = np.zeros(len(keys), dtype=np.int64)
        term_matrix = np.zeros((len(keys), n_intervals))
        for k, key in enumerate(keys):
            got = cache.terms.get(key)
            if got is not None and len(got):
                lens[k] = len(got)
                term_matrix[k, : lens[k]] = got
        for t in range(n_intervals):
            need = np.nonzero(lens <= t)[0]
            if len(need):
                term_matrix[need, t] = term_column(ii[need], jj[need], t)
        for k, key in enumerate(keys):
            if lens[k] < n_intervals:
                cache.terms[key] = term_matrix[k].copy()
        init = np.zeros(len(keys))
        for t in range(n_intervals):
            init = init + term_matrix[:, t]

        # Merge phase: identical to cluster() from here on.
        dist = np.full((total_clusters, total_clusters), np.inf)
        dist[ii, jj] = init
        dist[jj, ii] = init
        alive = np.zeros(total_clusters, dtype=bool)
        alive[:n_leaves] = True

        result = ClusteringResult(
            callpoints=profile.callpoints, names=dict(profile.names)
        )
        for step in range(1, n_leaves):
            live = np.flatnonzero(alive)
            sub = dist[np.ix_(live, live)]
            iu, ju = np.triu_indices(len(live), k=1)
            vals = sub[iu, ju]
            d_min = vals.min()
            ties = np.flatnonzero(vals == d_min)
            lo = np.minimum(mins[live[iu[ties]]], mins[live[ju[ties]]])
            hi = np.maximum(mins[live[iu[ties]]], mins[live[ju[ties]]])
            pick = ties[np.lexsort((hi, lo))[0]]
            ci, cj = live[iu[pick]], live[ju[pick]]
            if births[ci] == 0 and births[cj] == 0:
                a_id, b_id = (ci, cj) if mins[ci] < mins[cj] else (cj, ci)
            else:
                a_id, b_id = (ci, cj) if births[ci] > births[cj] else (cj, ci)
            result.merges.append(
                (members[a_id], members[b_id], float(d_min))
            )

            new = n_leaves + step - 1
            members.append(members[ci] | members[cj])
            mins[new] = min(mins[ci], mins[cj])
            births[new] = step
            instr[new] = np.maximum(instr[ci], instr[cj])
            accesses[new] = accesses[ci] + accesses[cj]
            merged_misses = combine_rate_rows(rates[ci], rates[cj])
            merged_misses *= instr[new][:, None]
            np.minimum.accumulate(merged_misses, axis=1, out=merged_misses)
            np.clip(merged_misses, 0.0, None, out=merged_misses)
            rates[new] = merged_misses / np.maximum(instr[new], 1e-12)[:, None]
            for t in range(n_intervals):
                hulls[new, t] = _lower_convex_hull_fast(rates[new, t])
            alive[ci] = alive[cj] = False
            survivors = np.flatnonzero(alive)
            alive[new] = True
            if len(survivors):
                row = pair_distances(
                    np.full(len(survivors), new), survivors
                )
                dist[new, survivors] = row
                dist[survivors, new] = row
        return result

    def cluster_reference(self, profile: CallpointProfile) -> ClusteringResult:
        """The serial merge-tree construction (the oracle).

        O(n^2) pairwise :func:`pool_distance` calls into a dict-keyed
        table, updated incrementally — fine for the 10s-100s of
        callpoints real applications have, and the ground truth the
        batched :meth:`cluster` is pinned against.
        """
        pools: dict[frozenset, list[MissCurve]] = {
            frozenset({cp}): series for cp, series in profile.curves.items()
        }
        result = ClusteringResult(
            callpoints=profile.callpoints, names=dict(profile.names)
        )
        # Pairwise distance table, updated incrementally.
        dist: dict[tuple[frozenset, frozenset], float] = {}
        keys = sorted(pools, key=min)
        for i, a in enumerate(keys):
            for b in keys[i + 1 :]:
                dist[(a, b)] = pool_distance(pools[a], pools[b])
        while len(pools) > 1:
            (a, b), d = min(dist.items(), key=lambda kv: (kv[1], sorted(map(min, kv[0]))))
            result.merges.append((a, b, d))
            merged_key = frozenset(a | b)
            merged_curves = [
                combine_miss_curves(ca, cb)
                for ca, cb in zip(pools[a], pools[b])
            ]
            del pools[a]
            del pools[b]
            dist = {
                pair: v
                for pair, v in dist.items()
                if a not in pair and b not in pair
            }
            for other in list(pools):
                dist[(merged_key, other)] = pool_distance(
                    merged_curves, pools[other]
                )
            pools[merged_key] = merged_curves
        return result
