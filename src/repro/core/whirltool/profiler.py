"""WhirlTool profiler (paper Sec 4.1).

Identifies memory allocations by their *callpoint* (hash of the last two
return PCs — here, the allocator's stack-derived callpoint ids) and
profiles each callpoint's stack-distance distribution at regular
intervals.  The paper implements this as a Pintool sampling every 50M
instructions; here the same information comes from the instrumented
trace, sampled with the set-sampled stack-distance profiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.curves.miss_curve import MissCurve
from repro.curves.reuse import StackDistanceProfiler
from repro.workloads.trace import Workload

__all__ = ["CallpointProfile", "WhirlToolProfiler"]


@dataclass
class CallpointProfile:
    """Profiling output for one application.

    Attributes:
        curves: callpoint id -> per-interval miss curves.
        names: callpoint id -> region name (debugging/reporting only;
            the analyzer never uses names).
        n_intervals: number of profiling intervals.
    """

    curves: dict[int, list[MissCurve]]
    names: dict[int, str] = field(default_factory=dict)
    n_intervals: int = 1

    @property
    def callpoints(self) -> list[int]:
        """Profiled callpoint ids."""
        return sorted(self.curves)

    def total_accesses(self, callpoint: int) -> float:
        """Accesses of one callpoint over the whole run."""
        return sum(c.accesses for c in self.curves[callpoint])


class WhirlToolProfiler:
    """Profiles an application's callpoints into per-interval curves.

    Args:
        chunk_bytes: miss-curve grid step.
        n_chunks: grid length (use the config's ``model_chunks``).
        n_intervals: profiling intervals ("every 50M instructions" in the
            paper; a fixed count of equal windows here).
        sample_shift: address sampling (2^shift speedup).
    """

    def __init__(
        self,
        chunk_bytes: int = 64 * 1024,
        n_chunks: int = 400,
        n_intervals: int = 8,
        sample_shift: int = 3,
    ) -> None:
        self.chunk_bytes = chunk_bytes
        self.n_chunks = n_chunks
        self.n_intervals = n_intervals
        self.sample_shift = sample_shift

    def profile(self, workload: Workload) -> CallpointProfile:
        """Profile one (training) run."""
        profiler = StackDistanceProfiler(
            chunk_bytes=self.chunk_bytes,
            n_chunks=self.n_chunks,
            line_bytes=workload.trace.line_bytes,
            sample_shift=self.sample_shift,
        )
        curves = profiler.profile(
            workload.trace.lines,
            workload.trace.regions,
            workload.trace.instructions,
            n_intervals=self.n_intervals,
        )
        return CallpointProfile(
            curves=curves,
            names=dict(workload.region_names),
            n_intervals=self.n_intervals,
        )
