"""Whirlpool: the paper's primary contribution.

Whirlpool = static classification of data into memory pools + Jigsaw's
dynamic per-VC policies.  The hardware side barely changes (extra VTB
entries and monitors, Sec 3.2); the interesting machinery is the
classification:

- manual pools via the allocator API (Table 2) —
  :class:`repro.schemes.ManualPoolClassifier` +
  :mod:`repro.core.manual`'s Table-2 registry;
- automatic pools via WhirlTool (Sec 4) — :mod:`repro.core.whirltool`.

:class:`WhirlpoolScheme` is Jigsaw with per-pool VCs; :func:`whirlpool`
builds the (scheme factory, classifier) pair for the simulation driver.
"""

from repro.core.manual import TABLE2, table2_rows
from repro.core.whirlpool import WhirlpoolScheme, whirlpool
from repro.core.whirltool import (
    WhirlToolAnalyzer,
    WhirlToolClassifier,
    WhirlToolProfiler,
    train_whirltool,
)

__all__ = [
    "TABLE2",
    "WhirlToolAnalyzer",
    "WhirlToolClassifier",
    "WhirlToolProfiler",
    "WhirlpoolScheme",
    "table2_rows",
    "train_whirltool",
    "whirlpool",
]
