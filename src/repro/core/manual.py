"""Table 2: the manually-ported applications.

Records, for each of the 12 hand-classified applications, its pools, the
data structures they hold, and the lines of code changed during porting.
The actual pool tags live on the workloads themselves
(``Workload.manual_pools``); this module is the paper-facing registry
used by the Table-2 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TABLE2", "Table2Entry", "table2_rows"]


@dataclass(frozen=True)
class Table2Entry:
    """One row of Table 2."""

    application: str
    workload: str  # registry name
    pools: int
    data_structures: str
    loc: int


#: Table 2, in the paper's row order.
TABLE2 = [
    Table2Entry(
        "Breadth-first search", "BFS", 4, "Vertices, edges, frontier, visited", 16
    ),
    Table2Entry(
        "Delaunay triangulation", "delaunay", 3, "Points, vertices, triangles", 11
    ),
    Table2Entry("Maximal matching", "matching", 3, "Vertices, edges, result", 13),
    Table2Entry("Delaunay refinement", "refine", 3, "Vertices, triangles, misc", 8),
    Table2Entry(
        "Maximal independent set", "MIS", 3, "Vertices, edges, flags", 13
    ),
    Table2Entry(
        "Spanning forest", "ST", 3,
        "Union-find parents, output tree, input edges", 13,
    ),
    Table2Entry(
        "Minimal spanning forest", "MST", 3,
        "Union-find parents, output tree, input edges", 11,
    ),
    Table2Entry("Convex hull", "hull", 2, "Points, hull array", 10),
    Table2Entry("401.bzip2", "bzip2", 4, "arr1, arr2, ftab, tt", 43),
    Table2Entry("470.lbm", "lbm", 2, "Source and destination grids", 21),
    Table2Entry("429.mcf", "mcf", 2, "Nodes and arcs", 14),
    Table2Entry(
        "436.cactusADM", "cactus", 2,
        "Pugh variables, staggered-leapfrog grid data", 53,
    ),
]


def table2_rows() -> list[tuple[str, int, str, int]]:
    """(application, pools, data structures, LOC) rows, paper order."""
    return [(e.application, e.pools, e.data_structures, e.loc) for e in TABLE2]
