"""The Whirlpool scheme: Jigsaw driven by pool classification (Sec 3).

Mechanically, Whirlpool *is* Jigsaw with one VC per memory pool plus the
bypass extension — the paper changes no core hardware mechanism and no
reconfiguration algorithm.  What it adds is:

- extra VTB entries and GMON monitors for the user-level VCs (Sec 3.2:
  6 KB of VTB entries + 24 KB of monitors ≈ 0.3% of cache area on the
  4-core chip), and
- the pool classification feeding those VCs (manual or WhirlTool).
"""

from __future__ import annotations

from repro.nuca.config import SystemConfig
from repro.schemes.base import VCSpec
from repro.schemes.classifiers import Classifier, ManualPoolClassifier
from repro.schemes.jigsaw import JigsawScheme

__all__ = ["WhirlpoolScheme", "whirlpool", "MAX_USER_POOLS"]

#: Whirlpool supports up to 4 user pools per core (Sec 3.2).
MAX_USER_POOLS = 4

#: Hardware overhead bookkeeping (Sec 3.2, 4-core system).
VTB_OVERHEAD_BYTES = 6 * 1024
MONITOR_OVERHEAD_BYTES = 24 * 1024


class WhirlpoolScheme(JigsawScheme):
    """Jigsaw with per-pool VCs and bypassing."""

    def __init__(
        self,
        config: SystemConfig,
        vcs: list[VCSpec],
        bypass: bool = True,
        **jigsaw_kwargs,
    ) -> None:
        # The VTB budget is per core (Sec 3.2): each core gets extra
        # entries for up to MAX_USER_POOLS user VCs (+1 slack for the
        # process VC's entry).
        per_core: dict[int, int] = {}
        for v in vcs:
            if v.name != "process":
                per_core[v.owner_core] = per_core.get(v.owner_core, 0) + 1
        worst = max(per_core.values(), default=0)
        if worst > MAX_USER_POOLS + 1:
            raise ValueError(
                f"{worst} pools on one core exceed the {MAX_USER_POOLS}-entry "
                "VTB budget (Sec 3.2)"
            )
        super().__init__(config, vcs, bypass=bypass, **jigsaw_kwargs)
        self.name = "Whirlpool" if bypass else "Whirlpool-NoBypass"

    @property
    def area_overhead_fraction(self) -> float:
        """Extra VTB + monitor area relative to LLC capacity (≈0.3%)."""
        extra = VTB_OVERHEAD_BYTES + MONITOR_OVERHEAD_BYTES
        return extra / (self.config.llc_bytes / 100) / 100


def whirlpool(
    classifier: Classifier | None = None, bypass: bool = True
):
    """Build the (scheme factory, classifier) pair for the driver.

    >>> factory, cls = whirlpool()
    >>> # simulate(workload, config, factory, classifier=cls)
    """
    if classifier is None:
        classifier = ManualPoolClassifier()

    def factory(config: SystemConfig, vcs: list[VCSpec]) -> WhirlpoolScheme:
        return WhirlpoolScheme(config, vcs, bypass=bypass)

    return factory, classifier
